#!/usr/bin/env python3
"""The paper's figure 1, end to end: a.out from local UFS, libc.so over NFS.

"Figure 1 shows a simple address space made up of two files: a.out, a file
from a local UFS file system, and libc.so, a dynamically linked shared
library from a remote NFS file system."

We boot a file server and a workstation on one simulated network, place
``libc.so`` on the server and ``a.out`` on the workstation's local disk,
then build a process address space with one segment mapping each — and
fault both in through the very same vnode interface, which is the entire
point of the VFS architecture.

Run:  python examples/diskless_workstation.py
"""

from repro.kernel import Proc, SystemConfig
from repro.nfs import build_world
from repro.units import KB
from repro.vm.addrspace import AddressSpace

TEXT = b"\x7fELF-ish program text  " * 300         # ~6.6 KB of "a.out"
LIBC = b"shared library code, one copy for all " * 800  # ~30 KB of "libc.so"


def main() -> None:
    client, server, nfs = build_world(
        server_config=SystemConfig.config_a())
    workstation = Proc(client, "login-shell")

    # The server exports /lib/libc.so.
    server_admin = Proc(server, "admin")

    def install_libc():
        yield from server_admin.mkdir("/lib")
        fd = yield from server_admin.creat("/lib/libc.so")
        yield from server_admin.write(fd, LIBC)
        yield from server_admin.fsync(fd)

    server.run(install_libc())

    # The workstation has a.out on its own local UFS.
    client.mkfs()
    client.run(client.mount_fs(), name="local-mount")

    def install_aout():
        fd = yield from workstation.creat("/a.out")
        yield from workstation.write(fd, TEXT)
        yield from workstation.fsync(fd)

    client.run(install_aout())

    # Build the address space of figure 1: two segments, two file systems.
    def exec_program():
        aout_vn = yield from client.mount.namei("/a.out")
        libc_vn = yield from nfs.open("/lib/libc.so")
        aspace = AddressSpace(client.engine, client.cpu,
                              client.pagecache.page_size)
        text_seg = aspace.map(aout_vn, len(TEXT))
        libc_seg = aspace.map(libc_vn, len(LIBC))
        # "Execute": fault in some text locally and some libc remotely.
        text = yield from aspace.read(text_seg.base, 100)
        libc = yield from aspace.read(libc_seg.base, 100)
        libc_deep = yield from aspace.read(libc_seg.base + 24 * KB, 100)
        return text, libc, libc_deep, text_seg, libc_seg

    text, libc, libc_deep, text_seg, libc_seg = client.run(exec_program())
    assert text == TEXT[:100]
    assert libc == LIBC[:100]
    assert libc_deep == LIBC[24 * KB:24 * KB + 100]

    print("figure 1, reproduced:")
    print(f"  a.out   -> local UFS vnode, segment at {text_seg.base:#x}, "
          f"{text_seg.faults} faults")
    print(f"  libc.so -> remote NFS vnode, segment at {libc_seg.base:#x}, "
          f"{libc_seg.faults} faults")
    print(f"  NFS RPCs: {nfs.stats['rpcs']:.0f} "
          f"(reads: {nfs.stats['rpc_read']:.0f})")
    print(f"  elapsed: {client.now * 1000:.1f} simulated ms")
    print("\nOne fault path, two file systems — 'the kernel manipulate[s]")
    print("a file system without knowing the details of how it is "
          "implemented'.")


if __name__ == "__main__":
    main()
