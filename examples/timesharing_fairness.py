#!/usr/bin/env python3
"""Timesharing fairness: the write-limit story, from the victims' side.

"This is a basic fairness problem — the asynchronous nature of writes may
be used to the advantage of one process, but it may be at the expense of
other processes in the system."  One bulk writer dumps a large core file
while an interactive user reads cold files; every read has to queue behind
the dumper's writes.  The per-file write limit bounds how much of the disk
queue (and of memory) the dumper may own, which bounds the reader's
latency.

Run:  python examples/timesharing_fairness.py
"""

import random

from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

CORE_SIZE = 10 * MB
READS = 40


def run(limit: int) -> dict:
    cfg = SystemConfig.config_a()
    cfg = cfg.with_(tuning=cfg.tuning.with_(write_limit=limit))
    system = System.booted(cfg)
    rng = random.Random(9)
    setup = Proc(system, "setup")

    # Files the interactive user will read, spread across the disk.
    def build_files():
        for i in range(READS):
            fd = yield from setup.creat(f"/doc{i:02d}")
            yield from setup.write(fd, bytes(16 * KB))
            yield from setup.fsync(fd)
            yield from setup.close(fd)

    system.run(build_files())
    for i in range(READS):
        vn = system.run(system.mount.namei(f"/doc{i:02d}"))
        for page in system.pagecache.vnode_pages(vn):
            if not page.locked and not page.dirty:
                system.pagecache.destroy(page)

    latencies: list[float] = []
    done = {"dump": None}

    def core_dumper():
        proc = Proc(system, "dumper")
        fd = yield from proc.creat("/core")
        chunk = bytes(64 * KB)
        for _ in range(CORE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)
        done["dump"] = system.now

    def reader():
        proc = Proc(system, "reader")
        for i in range(READS):
            yield system.engine.timeout(0.1 * rng.uniform(0.5, 1.5))
            t0 = system.now
            fd = yield from proc.open(f"/doc{i:02d}")
            yield from proc.read(fd, 16 * KB)
            yield from proc.close(fd)
            latencies.append(system.now - t0)

    system.run_all([core_dumper(), reader()])
    latencies.sort()
    return {
        "mean": sum(latencies) / len(latencies),
        "p90": latencies[int(0.9 * len(latencies))],
        "worst": latencies[-1],
        "dump_time": done["dump"],
        "max_queue": system.driver.queue_depth.maximum,
        "pinned": system.driver.queue_bytes.maximum,
        "memory": system.pagecache.total_pages * system.pagecache.page_size,
    }


def main() -> None:
    print(f"one {CORE_SIZE // MB} MB core dump vs an interactive reader\n")
    for limit, label in ((0, "no write limit (old 4.1 behaviour)"),
                         (240 * KB, "240 KB write limit (the paper's fix)")):
        stats = run(limit)
        print(f"  {label}:")
        print(f"    cold-read latency: mean {stats['mean'] * 1000:5.0f} ms, "
              f"p90 {stats['p90'] * 1000:5.0f} ms, "
              f"worst {stats['worst'] * 1000:5.0f} ms")
        pinned_pct = stats["pinned"] / stats["memory"]
        print(f"    dumper finished at {stats['dump_time']:.2f} s; "
              f"peak memory pinned in the write queue: "
              f"{stats['pinned'] / MB:.1f} MB ({pinned_pct:.0%} of RAM), "
              f"{stats['max_queue']:.0f} requests\n")
    print("Without the limit, one process's dirty pages pin most of memory"
          "\n('all the pages are essentially locked'); the 240 KB limit caps"
          "\nthe damage — the fairness trade-off the paper chose (and the"
          "\nreason figure 10's random-update column got *worse*).")


if __name__ == "__main__":
    main()
