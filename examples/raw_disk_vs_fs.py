#!/usr/bin/env python3
"""The raw-disk escape hatch vs the clustered file system.

The paper's first rejected alternative: "Some users, mostly those running
database applications, actually do this...  The fact that users resort to
the raw disk is usually an indication that the file system is too slow."

A database-style sequential table scan through: (1) the raw device, (2)
the old file system, (3) the clustered file system.  The paper's claim is
that after clustering, abandoning the file system buys almost nothing.

Run:  python examples/raw_disk_vs_fs.py
"""

from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB
from repro.vfs import RW

SCAN_SIZE = 8 * MB


def raw_scan() -> float:
    system = System.booted(SystemConfig.config_a())
    raw = system.raw_disk
    start = 64 * MB  # scan a region well away from the file system front

    def scan():
        offset = start
        while offset < start + SCAN_SIZE:
            yield from raw.rdwr(RW.READ, offset, 56 * KB)
            offset += 56 * KB

    t0 = system.now
    system.run(scan())
    return SCAN_SIZE / (system.now - t0) / 1024


def fs_scan(config_name: str) -> float:
    system = System.booted(SystemConfig.by_name(config_name))
    proc = Proc(system)

    def build():
        fd = yield from proc.creat("/table.db")
        for _ in range(SCAN_SIZE // (64 * KB)):
            yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)

    system.run(build())
    vn = system.run(system.mount.namei("/table.db"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def scan():
        fd = yield from proc.open("/table.db")
        while True:
            data = yield from proc.read(fd, 56 * KB)
            if not data:
                break

    t0 = system.now
    system.run(scan())
    return SCAN_SIZE / (system.now - t0) / 1024


def main() -> None:
    raw = raw_scan()
    old = fs_scan("D")
    new = fs_scan("A")
    print(f"sequential {SCAN_SIZE // MB} MB table scan (56 KB records):\n")
    print(f"  raw disk        : {raw:7.0f} KB/s (no cache, no read-ahead, "
          f"no file abstraction)")
    print(f"  old UFS (D)     : {old:7.0f} KB/s "
          f"({old / raw:.0%} of raw — why databases fled)")
    print(f"  clustered UFS(A): {new:7.0f} KB/s "
          f"({new / raw:.0%} of raw — no reason left to flee)")


if __name__ == "__main__":
    main()
