#!/usr/bin/env python3
"""Quickstart: boot a simulated SPARCstation, make a file system, do I/O.

Run:  python examples/quickstart.py
"""

from repro.kernel import Proc, System, SystemConfig
from repro.ufs import fsck
from repro.units import KB, MB


def main() -> None:
    # Configuration A is the paper's clustered system: 120 KB clusters,
    # rotdelay 0, free-behind and the 240 KB per-file write limit.
    system = System.booted(SystemConfig.config_a())
    proc = Proc(system)

    payload = bytes(range(256)) * 4 * KB  # 1 MB of patterned data

    def workload():
        # Ordinary POSIX-looking calls; all I/O happens on the simulated
        # disk in simulated time.
        yield from proc.mkdir("/demo")
        fd = yield from proc.creat("/demo/hello.dat")
        n = yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.lseek(fd, 0)
        data = yield from proc.read(fd, len(payload))
        yield from proc.close(fd)
        return n, data

    written, data = system.run(workload())
    assert data == payload

    print(f"wrote and re-read {written // MB} MB in "
          f"{system.now * 1000:.1f} simulated ms")
    print(f"CPU used: {system.cpu.system_time * 1000:.1f} ms "
          f"({system.cpu.utilization():.0%} busy)")
    print(f"disk I/Os: {system.disk.stats['requests']:.0f} "
          f"({system.mount.stats['write_ios']:.0f} clustered writes for "
          f"{written // KB} KB — clustering at work)")

    # Everything lands on a real (simulated) disk image: flush and check it.
    system.sync()
    report = fsck(system.store)
    print(report)


if __name__ == "__main__":
    main()
