#!/usr/bin/env python3
"""File-server aging: does clustering survive a fragmented disk?

The paper's allocator experiment in miniature: age a file system with
years' worth of create/delete churn compressed into one run, then write a
large file into what free space remains and see what extents the allocator
still manages, and what that does to sequential read throughput.

Run:  python examples/fileserver_aging.py
"""

from repro.bench.agefs import age_filesystem, measure_extents
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams, fsck
from repro.units import KB, MB


def build(aged: bool) -> System:
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=512, heads=9,
                                      sectors_per_track=28),
        fs_params=FsParams.clustered(120 * KB, cpg=32),
    )
    system = System.booted(cfg)
    if aged:
        survivors = age_filesystem(system, target_utilization=0.80, seed=42)
        print(f"  aged: {survivors} files survive, "
              f"{system.mount.sb.cs_nbfree} free blocks, "
              f"{system.mount.sb.cs_nffree} loose fragments")
    return system


def write_and_read(system: System, size: int) -> float:
    proc = Proc(system)

    def writer():
        fd = yield from proc.creat("/bigfile")
        for _ in range(size // (64 * KB)):
            yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)

    system.run(writer())
    vn = system.run(system.mount.namei("/bigfile"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def reader():
        fd = yield from proc.open("/bigfile")
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    system.run(reader())
    return size / (system.now - t0) / 1024


def main() -> None:
    for aged, label in ((False, "fresh file system"),
                        (True, "aged file system (80% full + churn)")):
        print(f"{label}:")
        system = build(aged)
        rate = write_and_read(system, 6 * MB)
        report = measure_extents(system, "/bigfile")
        print(f"  6 MB file -> {report.count} extents, "
              f"average {report.average / KB:.0f} KB, "
              f"largest {report.largest / KB:.0f} KB")
        print(f"  sequential read: {rate:.0f} KB/s")
        system.sync()
        check = fsck(system.store)
        print(f"  fsck: {'clean' if check.clean else check.findings}\n")
    print("The allocator 'thinks ahead enough' (10% reserve) that clustering"
          "\nkeeps working on an aged disk — the paper's case against"
          "\npreallocation and against exposing extents to users.")


if __name__ == "__main__":
    main()
