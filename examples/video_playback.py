#!/usr/bin/env python3
"""Video playback: the paper's motivating workload.

"Applications such as video and sound require much higher data rates than
are available today through UFS."  A video player must read frames at a
fixed rate; if the file system cannot sustain the rate, frames drop.

We play a 12 MB "video" (30 frames/s, 40 KB per frame = 1.2 MB/s — just
under the disk's media rate, far above half of it) on the old and the
clustered system and count dropped frames.

Run:  python examples/video_playback.py
"""

from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FRAME_SIZE = 40 * KB
FRAME_RATE = 30.0  # frames per second
VIDEO_SIZE = 12 * MB


def play(config_name: str) -> dict:
    system = System.booted(SystemConfig.by_name(config_name))
    proc = Proc(system)

    def record_video():
        fd = yield from proc.creat("/video.mjpg")
        chunk = bytes(64 * KB)
        for _ in range(VIDEO_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(record_video())
    vn = system.run(system.mount.namei("/video.mjpg"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    nframes = VIDEO_SIZE // FRAME_SIZE
    period = 1.0 / FRAME_RATE
    stats = {"frames": nframes, "dropped": 0, "max_lag": 0.0}

    def player():
        fd = yield from proc.open("/video.mjpg")
        # Any real player prebuffers ~half a second before starting the
        # clock; the question is whether the fs can *sustain* the rate.
        start = system.now + 0.5
        for frame in range(nframes):
            yield from proc.read(fd, FRAME_SIZE)
            deadline = start + (frame + 1) * period
            lag = system.now - deadline
            stats["max_lag"] = max(stats["max_lag"], lag)
            if lag > period:
                # More than a frame period late: visibly dropped.
                stats["dropped"] += 1
            if deadline > system.now:
                # Early: idle until the next frame is due (the player
                # renders; the file system reads ahead underneath).
                yield system.engine.timeout(deadline - system.now)
        yield from proc.close(fd)

    system.run(player())
    return stats


def main() -> None:
    rate_kb = FRAME_SIZE * FRAME_RATE / KB
    print(f"playing {VIDEO_SIZE // MB} MB at {FRAME_RATE:.0f} frames/s "
          f"({rate_kb:.0f} KB/s needed)\n")
    for name, label in (("D", "old system (SunOS 4.1)"),
                        ("A", "clustered (SunOS 4.1.1)")):
        stats = play(name)
        # Under 3% of frames dropped reads as smooth playback; the old
        # system drops nearly every frame.
        verdict = ("smooth" if stats["dropped"] <= stats["frames"] * 0.03
                   else "unwatchable")
        print(f"  config {name} ({label}):")
        print(f"    late frames: {stats['dropped']}/{stats['frames']}"
              f"   worst lag: {max(0.0, stats['max_lag']) * 1000:.0f} ms"
              f"   -> {verdict}")


if __name__ == "__main__":
    main()
