"""Tests for address spaces, segments, and the mmap fault path."""

import pytest

from repro.disk import DiskGeometry
from repro.errors import InvalidArgumentError
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import fsck
from repro.units import KB
from repro.vm import SegmentationFault


@pytest.fixture
def booted():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    return system, Proc(system)


def make_file(system, proc, path, data):
    def work():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, data)
        yield from proc.fsync(fd)
        return fd

    return system.run(work())


def test_mapped_read_matches_file(booted):
    system, proc = booted
    data = bytes(range(251)) * 100  # ~25 KB
    fd = make_file(system, proc, "/f", data)

    def work():
        seg = proc.mmap(fd, len(data))
        got = yield from proc.mem_read(seg.base, len(data))
        return got

    assert system.run(work()) == data


def test_mapped_read_unaligned_window(booted):
    system, proc = booted
    data = bytes(range(251)) * 100
    fd = make_file(system, proc, "/f", data)

    def work():
        seg = proc.mmap(fd, len(data))
        return (yield from proc.mem_read(seg.base + 10_000, 500))

    assert system.run(work()) == data[10_000:10_500]


def test_mapping_validation(booted):
    system, proc = booted
    fd = make_file(system, proc, "/f", bytes(10 * KB))
    with pytest.raises(InvalidArgumentError):
        proc.mmap(fd, 20 * KB)  # past EOF
    with pytest.raises(InvalidArgumentError):
        proc.mmap(fd, 1 * KB, offset=100)  # unaligned
    with pytest.raises(InvalidArgumentError):
        proc.mmap(fd, 0)


def test_unmapped_access_faults(booted):
    system, proc = booted
    with pytest.raises(SegmentationFault):
        system.run(proc.mem_read(0xDEAD0000, 1))


def test_store_to_readonly_mapping_faults(booted):
    system, proc = booted
    fd = make_file(system, proc, "/f", bytes(8 * KB))

    def work():
        seg = proc.mmap(fd, 8 * KB, writable=False)
        yield from proc.mem_write(seg.base, b"boom")

    with pytest.raises(SegmentationFault):
        system.run(work())


def test_mapped_write_visible_through_read_syscall(booted):
    system, proc = booted
    fd = make_file(system, proc, "/f", bytes(16 * KB))

    def work():
        seg = proc.mmap(fd, 16 * KB, writable=True)
        yield from proc.mem_write(seg.base + 100, b"MAPPED WRITE")
        yield from proc.msync(seg)
        return (yield from proc.pread(fd, 20, 95))

    got = system.run(work())
    assert got == bytes(5) + b"MAPPED WRITE" + bytes(3)
    system.sync()
    assert fsck(system.store).clean


def test_mapped_write_into_hole_allocates_backing(booted):
    """The UFS_HOLE discipline: the write fault allocates the block."""
    system, proc = booted

    def make_sparse():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"end", 40 * KB)
        yield from proc.fsync(fd)
        return fd

    fd = system.run(make_sparse())
    vn = system.run(system.mount.namei("/sparse"))
    from repro.ufs import bmap

    assert system.run(bmap.get_pointer(system.mount, vn.inode, 0)) == 0

    def work():
        seg = proc.mmap(fd, 40 * KB + 3, writable=True)
        yield from proc.mem_write(seg.base, b"no longer a hole")
        yield from proc.munmap(seg)

    system.run(work())
    # The hole block now has backing store, and the data is durable.
    assert system.run(bmap.get_pointer(system.mount, vn.inode, 0)) != 0

    def read_back():
        return (yield from proc.pread(fd, 16, 0))

    assert system.run(read_back()) == b"no longer a hole"
    system.sync()
    assert fsck(system.store).clean


def test_munmap_flushes_and_removes(booted):
    system, proc = booted
    fd = make_file(system, proc, "/f", bytes(8 * KB))

    def work():
        seg = proc.mmap(fd, 8 * KB, writable=True)
        yield from proc.mem_write(seg.base, b"durable?")
        yield from proc.munmap(seg)
        return seg

    seg = system.run(work())
    assert seg not in proc.addrspace.segments
    vn = system.run(system.mount.namei("/f"))
    assert system.pagecache.dirty_pages(vn) == []
    with pytest.raises(SegmentationFault):
        system.run(proc.mem_read(seg.base, 1))


def test_two_mappings_do_not_overlap(booted):
    system, proc = booted
    fd1 = make_file(system, proc, "/a", bytes(16 * KB))
    fd2 = make_file(system, proc, "/b", bytes(16 * KB))
    seg1 = proc.mmap(fd1, 16 * KB)
    seg2 = proc.mmap(fd2, 16 * KB)
    assert seg1.end <= seg2.base or seg2.end <= seg1.base


def test_mapped_pages_are_shared_with_page_cache(booted):
    """The unified model: a mapped page IS the cached page."""
    system, proc = booted
    data = b"shared page content" + bytes(8 * KB - 19)
    fd = make_file(system, proc, "/f", data)

    def work():
        seg = proc.mmap(fd, 8 * KB)
        yield from proc.mem_read(seg.base, 10)
        return seg

    seg = system.run(work())
    vn = system.run(system.mount.namei("/f"))
    pages = system.pagecache.vnode_pages(vn)
    assert any(bytes(p.data[:19]) == b"shared page content" for p in pages)


def test_fault_counting(booted):
    system, proc = booted
    fd = make_file(system, proc, "/f", bytes(32 * KB))

    def work():
        seg = proc.mmap(fd, 32 * KB)
        yield from proc.mem_read(seg.base, 32 * KB)
        return seg.faults

    assert system.run(work()) == 4  # one fault per 8 KB page
