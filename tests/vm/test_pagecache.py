"""Tests for the unified page cache: lookup, reclaim, allocate, free."""

import pytest

from repro.units import KB
from repro.vm import PageCache


def fill_page(cache, vnode, offset, value=b"\xaa"):
    page = cache.allocate(vnode, offset)
    assert page is not None
    page.fill(value * cache.page_size)
    page.valid = True
    page.unlock()
    return page


def test_construction_validation(engine):
    with pytest.raises(ValueError):
        PageCache(engine, memory_bytes=0)
    with pytest.raises(ValueError):
        PageCache(engine, memory_bytes=100, page_size=64)  # not a multiple
    with pytest.raises(ValueError):
        PageCache(engine, memory_bytes=64 * 8 * KB, page_size=8 * KB,
                  reserved_pages=64)


def test_reserved_pages_shrink_pool(engine):
    cache = PageCache(engine, memory_bytes=64 * 8 * KB, page_size=8 * KB,
                      reserved_pages=16)
    assert cache.total_pages == 48
    assert cache.freemem == 48


def test_lookup_miss_returns_none(cache, vnode):
    assert cache.lookup(vnode, 0) is None
    assert cache.stats["misses"] == 1


def test_allocate_and_lookup_hit(cache, vnode):
    page = cache.allocate(vnode, 8192)
    assert page.locked and page.vnode is vnode and page.offset == 8192
    page.unlock()
    assert cache.lookup(vnode, 8192) is page
    assert cache.stats["hits"] == 1
    assert cache.freemem == cache.total_pages - 1


def test_allocate_existing_page_rejected(cache, vnode):
    page = cache.allocate(vnode, 0)
    page.unlock()
    with pytest.raises(RuntimeError):
        cache.allocate(vnode, 0)


def test_free_and_reclaim_preserves_data(cache, vnode):
    page = fill_page(cache, vnode, 0, b"\x42")
    cache.free(page)
    assert cache.freemem == cache.total_pages
    found = cache.lookup(vnode, 0)
    assert found is page
    assert not found.free
    assert bytes(found.data) == b"\x42" * cache.page_size
    assert cache.stats["reclaims"] == 1


def test_free_validation(cache, vnode):
    page = cache.allocate(vnode, 0)
    with pytest.raises(RuntimeError):
        cache.free(page)  # locked
    page.unlock()
    page.dirty = True
    with pytest.raises(RuntimeError):
        cache.free(page)  # dirty
    page.dirty = False
    cache.free(page)
    with pytest.raises(RuntimeError):
        cache.free(page)  # already free


def test_identity_steal_when_pool_exhausted(cache, vnode):
    total = cache.total_pages
    pages = [fill_page(cache, vnode, i * 8192) for i in range(total)]
    assert cache.freemem == 0
    assert cache.allocate(vnode, total * 8192) is None  # no memory
    cache.free(pages[0])
    newer = cache.allocate(vnode, total * 8192)
    assert newer is pages[0]
    assert cache.stats["identity_steals"] == 1
    # The stolen identity is gone from the cache.
    assert cache.lookup(vnode, 0) is None
    newer.unlock()


def test_free_front_is_reused_first(cache, vnode):
    # Exhaust the pool first so the free list is empty...
    total = cache.total_pages
    pages = [fill_page(cache, vnode, i * 8192) for i in range(total)]
    a, b = pages[0], pages[1]
    # ...then free a normally (tail) and b to the front (free-behind victim).
    cache.free(a)
    cache.free(b, front=True)
    page = cache.allocate(vnode, total * 8192)
    assert page is b  # the front-freed page went first
    page.unlock()


def test_wait_for_memory_wakes_on_free(cache, vnode):
    total = cache.total_pages
    pages = [fill_page(cache, vnode, i * 8192) for i in range(total)]
    woken = []

    def claimant():
        page = cache.allocate(vnode, total * 8192)
        assert page is None
        yield from cache.wait_for_memory()
        woken.append(cache.engine.now)

    def freer():
        yield cache.engine.timeout(3)
        cache.free(pages[5])

    cache.engine.process(claimant())
    cache.engine.process(freer())
    cache.engine.run()
    assert woken == [3]
    assert cache.stats["memory_waits"] == 1


def test_destroy_removes_identity(cache, vnode):
    page = fill_page(cache, vnode, 0)
    cache.destroy(page)
    assert cache.lookup(vnode, 0) is None
    assert page.free and not page.named
    assert cache.freemem == cache.total_pages


def test_destroy_free_page_keeps_single_freelist_entry(cache, vnode):
    page = fill_page(cache, vnode, 0)
    cache.free(page)
    cache.destroy(page)
    assert cache.freemem == cache.total_pages
    got = cache.allocate(vnode, 8192)
    assert got is not None
    got.unlock()


def test_vnode_pages_sorted_and_invalidate(cache, vnode):
    for off in (3 * 8192, 0, 8192):
        fill_page(cache, vnode, off)
    pages = cache.vnode_pages(vnode)
    assert [p.offset for p in pages] == [0, 8192, 3 * 8192]
    assert cache.vnode_invalidate(vnode) == 3
    assert cache.vnode_pages(vnode) == []
    assert cache.named_pages == 0


def test_dirty_pages_listing(cache, vnode):
    a = fill_page(cache, vnode, 0)
    b = fill_page(cache, vnode, 8192)
    b.dirty = True
    assert cache.dirty_pages() == [b]
    assert cache.dirty_pages(vnode) == [b]
    a.dirty = True
    assert cache.dirty_pages(vnode) == [a, b]


def test_low_water_fires_low_memory(engine, vnode):
    cache = PageCache(engine, memory_bytes=8 * 8 * KB, page_size=8 * KB)
    cache.low_water = 6
    fired = []

    def watcher():
        yield cache.low_memory.wait()
        fired.append(engine.now)

    def allocator():
        yield engine.timeout(1)  # let the watcher register first
        for i in range(4):
            page = cache.allocate(vnode, i * 8192)
            page.unlock()

    engine.process(watcher())
    engine.process(allocator())
    engine.run()
    assert fired == [1]
