"""Shared fixtures for VM tests: a fake vnode whose putpage just cleans."""

import pytest

from repro.vfs import PutFlags, RW, Vnode, VnodeType


class FakeVnode(Vnode):
    """A vnode backed by nothing: putpage cleans/frees pages instantly."""

    def __init__(self, cache):
        super().__init__(VnodeType.REGULAR)
        self.cache = cache
        self._size = 0
        self.putpage_calls = []

    @property
    def size(self):
        return self._size

    def rdwr(self, rw, offset, payload):
        raise NotImplementedError
        yield

    def getpage(self, offset, rw=RW.READ):
        raise NotImplementedError
        yield

    def putpage(self, offset, length, flags: PutFlags):
        self.putpage_calls.append((offset, length, flags))
        page = self.cache.lookup(self, offset)
        if page is not None:
            page.dirty = False
            if flags.free and not page.locked and not page.free:
                self.cache.free(page)
        return
        yield


@pytest.fixture
def engine():
    from repro.sim import Engine

    return Engine()


@pytest.fixture
def cache(engine):
    from repro.units import KB
    from repro.vm import PageCache

    return PageCache(engine, memory_bytes=64 * 8 * KB, page_size=8 * KB)


@pytest.fixture
def vnode(cache):
    return FakeVnode(cache)
