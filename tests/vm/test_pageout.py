"""Tests for the two-handed-clock pageout daemon."""

import pytest

from repro.cpu import CostTable, Cpu
from repro.units import KB
from repro.vm import PageCache, PageoutDaemon, PageoutParams


def make_vm(engine, pages=32, lotsfree=8, handspread=16, free_cpu=True):
    from .conftest import FakeVnode

    cache = PageCache(engine, memory_bytes=pages * 8 * KB, page_size=8 * KB)
    costs = CostTable.free() if free_cpu else CostTable()
    cpu = Cpu(engine, costs)
    params = PageoutParams(lotsfree=lotsfree, handspread=handspread,
                           scan_batch=16, breath=0.001)
    daemon = PageoutDaemon(engine, cache, cpu, params)
    # The vnode must share the daemon's cache, or its putpage frees nothing.
    vnode = FakeVnode(cache)
    return cache, cpu, daemon, vnode


def consume(cache, vnode, count, start=0):
    pages = []
    for i in range(count):
        page = cache.allocate(vnode, (start + i) * 8192)
        assert page is not None, f"allocation {i} failed"
        page.valid = True
        page.unlock()
        pages.append(page)
    return pages


def test_daemon_idle_above_lotsfree(engine):
    cache, cpu, daemon, vnode = make_vm(engine)
    consume(cache, vnode, 4)
    engine.run(until=1.0)
    assert daemon.stats["wakeups"] == 0
    assert cache.freemem == 28


def test_daemon_frees_unreferenced_pages(engine):
    cache, cpu, daemon, vnode = make_vm(engine)
    pages = consume(cache, vnode, 30)  # freemem = 2 < lotsfree = 8
    for p in pages:
        p.referenced = False
    engine.run(until=1.0)
    assert daemon.stats["wakeups"] >= 1
    assert daemon.stats["freed"] > 0
    assert cache.freemem >= 8


def test_daemon_skips_referenced_until_second_pass(engine):
    cache, cpu, daemon, vnode = make_vm(engine, pages=32, lotsfree=8, handspread=16)
    pages = consume(cache, vnode, 30)
    for p in pages:
        p.referenced = True
    engine.run(until=2.0)
    # The clock eventually clears reference bits and frees anyway.
    assert cache.freemem >= 8
    # But referenced pages needed a clearing pass first: the daemon examined
    # many more pages than it freed.
    assert daemon.stats["examined"] > daemon.stats["freed"] * 2


def test_daemon_pushes_dirty_pages_via_putpage(engine):
    cache, cpu, daemon, vnode = make_vm(engine)
    pages = consume(cache, vnode, 30)
    for p in pages:
        p.dirty = True  # all dirty: freeing requires pushing writebacks
        p.referenced = False
    engine.run(until=2.0)
    assert daemon.stats["pushed_dirty"] > 0
    assert any(f.async_ and f.free for _, _, f in vnode.putpage_calls)
    assert cache.freemem >= 8


def test_daemon_never_touches_locked_pages(engine):
    cache, cpu, daemon, vnode = make_vm(engine, pages=16, lotsfree=8, handspread=8)
    pages = consume(cache, vnode, 14)
    for p in pages:
        p.lock()
    engine.run(until=0.5)
    # Nothing freeable: all locked. The daemon must stall, not crash or free.
    assert daemon.stats["freed"] == 0
    assert daemon.stats["stalls"] > 0
    for p in pages:
        assert not p.free


def test_daemon_charges_cpu(engine):
    cache, cpu, daemon, vnode = make_vm(engine, free_cpu=False)
    pages = consume(cache, vnode, 30)
    for p in pages:
        p.referenced = False
    engine.run(until=1.0)
    assert cpu.ledger["pagedaemon"] > 0


def test_handspread_validation(engine):
    from repro.sim import Engine

    eng = Engine()
    cache = PageCache(eng, memory_bytes=16 * 8 * KB, page_size=8 * KB)
    cpu = Cpu(eng, CostTable.free())
    with pytest.raises(ValueError):
        PageoutDaemon(eng, cache, cpu, PageoutParams(lotsfree=4, handspread=16))


def test_for_memory_defaults():
    params = PageoutParams.for_memory(1024)
    assert params.lotsfree == 64
    assert params.handspread == 256
