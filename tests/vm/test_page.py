"""Tests for the page frame."""

import pytest

from repro.sim import Engine
from repro.vm import Page


def test_new_frame_is_anonymous_and_free():
    eng = Engine()
    page = Page(eng, frame=0, size=8192)
    assert page.free and not page.named and not page.valid
    assert bytes(page.data) == bytes(8192)


def test_name_and_unname(engine, vnode):
    page = Page(engine, 0, 8192)
    page.name(vnode, 8192)
    assert page.named and page.offset == 8192
    with pytest.raises(RuntimeError):
        page.name(vnode, 0)
    page.unname()
    assert not page.named and page.offset == -1


def test_name_requires_alignment(engine, vnode):
    page = Page(engine, 0, 8192)
    with pytest.raises(ValueError):
        page.name(vnode, 100)
    with pytest.raises(ValueError):
        page.name(vnode, -8192)


def test_lock_unlock(engine):
    page = Page(engine, 0, 8192)
    page.lock()
    assert page.locked
    with pytest.raises(RuntimeError):
        page.lock()
    page.unlock()
    assert not page.locked
    with pytest.raises(RuntimeError):
        page.unlock()


def test_lock_wait_serializes(engine):
    page = Page(engine, 0, 8192)
    order = []

    def holder():
        page.lock()
        order.append(("hold", engine.now))
        yield engine.timeout(5)
        page.unlock()

    def waiter():
        yield engine.timeout(1)
        yield from page.lock_wait()
        order.append(("acquired", engine.now))
        page.unlock()

    engine.process(holder())
    engine.process(waiter())
    engine.run()
    assert order == [("hold", 0), ("acquired", 5)]


def test_lock_wait_contention_only_one_winner_at_a_time(engine):
    page = Page(engine, 0, 8192)
    page.lock()
    acquired = []

    def waiter(tag):
        yield from page.lock_wait()
        acquired.append((tag, engine.now))
        yield engine.timeout(2)
        page.unlock()

    engine.process(waiter("a"))
    engine.process(waiter("b"))

    def releaser():
        yield engine.timeout(1)
        page.unlock()

    engine.process(releaser())
    engine.run()
    assert acquired == [("a", 1), ("b", 3)]


def test_wait_unlocked_does_not_take_lock(engine):
    page = Page(engine, 0, 8192)
    page.lock()

    def waiter():
        yield from page.wait_unlocked()
        return page.locked

    def releaser():
        yield engine.timeout(1)
        page.unlock()

    proc = engine.process(waiter())
    engine.process(releaser())
    engine.run()
    assert proc.value is False


def test_fill_pads_and_validates(engine):
    page = Page(engine, 0, 8192)
    page.fill(b"abc")
    assert bytes(page.data[:3]) == b"abc"
    assert bytes(page.data[3:]) == bytes(8189)
    page.fill(b"x" * 8192)
    with pytest.raises(ValueError):
        page.fill(b"x" * 8193)
    page.zero()
    assert bytes(page.data) == bytes(8192)
