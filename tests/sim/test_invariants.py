"""Tests for the cross-layer invariant sanitizer ("simsan").

Each check gets two kinds of coverage: it passes on a healthy machine
running a real workload, and it *fires* when the corresponding invariant
is deliberately broken — a sanitizer that never fails is just overhead.
"""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.sim import Sanitizer, SanitizerError
from repro.sim.invariants import default_enabled
from repro.units import KB


def make_system(**overrides):
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32),
        **overrides)
    system = System.booted(cfg)
    system.sanitizer.enabled = True
    return system


def write_file(system, path="/f", nbytes=64 * KB):
    proc = Proc(system)

    def work():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, bytes(range(256)) * (nbytes // 256))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    return proc


# -- the harness itself ------------------------------------------------------

def test_env_switch_controls_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not default_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert default_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "off")
    assert not default_enabled()


def test_disabled_sanitizer_checks_nothing():
    system = make_system()
    system.sanitizer.enabled = False
    before = system.sanitizer.checks_run
    write_file(system)
    assert system.sanitizer.checks_run == before


def test_checkpoints_fire_at_quiesce_points():
    system = make_system()
    before = system.sanitizer.checkpoints
    write_file(system)  # fsync checkpoint + post-run idle checkpoints
    assert system.sanitizer.checkpoints > before
    assert system.sanitizer.checks_run > 0


def test_attach_every_runs_step_checkpoints():
    system = make_system()
    system.sanitizer.attach_every(10)
    before = system.sanitizer.checkpoints
    write_file(system)
    assert system.sanitizer.checkpoints - before > 5  # many engine steps


def test_healthy_workload_passes_deep_checkpoint():
    system = make_system()
    write_file(system)
    system.sync()
    system.sanitizer.checkpoint("test_deep", idle=True, deep=True)


def test_error_carries_check_name():
    err = SanitizerError("buf_balance", "boom")
    assert "[simsan:buf_balance]" in str(err)
    assert err.check == "buf_balance"
    assert err.span_tree is None


# -- check 1: engine liveness ------------------------------------------------

def test_liveness_check_catches_drifted_counter():
    system = make_system()
    system.engine._live += 1  # simulate a double-count bug
    with pytest.raises(SanitizerError, match="engine_liveness"):
        system.sanitizer.checkpoint("test", idle=False)
    system.engine._live -= 1
    system.sanitizer.checkpoint("test", idle=True)  # healthy again


def test_liveness_check_catches_nonzero_live_at_idle():
    system = make_system()
    # _live matches the heap (one pending entry) but "idle" was claimed.
    system.engine.schedule(1.0, lambda _: None)
    with pytest.raises(SanitizerError, match="idle with _live"):
        system.sanitizer.checkpoint("test", idle=True)


# -- check 2: buf balance ----------------------------------------------------

def test_buf_balance_catches_leaked_buf():
    from repro.disk import Buf, BufOp

    system = make_system()
    buf = Buf(system.engine, BufOp.READ, 8, 2, owner="leak-test")
    system.driver.outstanding[buf.id] = buf  # issued, never completed
    with pytest.raises(SanitizerError, match="never completed"):
        system.sanitizer.checkpoint("test", idle=True)


def test_buf_balance_catches_count_drift():
    system = make_system()
    system.driver.stats.incr("tracked_issued")  # issue with no completion
    with pytest.raises(SanitizerError, match="completions recorded"):
        system.sanitizer.checkpoint("test", idle=True)


def test_buf_double_complete_is_reported():
    from repro.disk import Buf, BufOp
    from repro.sim import SimulationError

    system = make_system()
    buf = Buf(system.engine, BufOp.READ, 8, 2, owner="dup-test")
    buf.complete()
    with pytest.raises(SimulationError, match="completed twice"):
        buf.complete()


# -- check 3: throttle conservation ------------------------------------------

def test_throttle_check_catches_leaked_slot():
    system = make_system()
    proc = write_file(system)

    def leak():
        vn = yield from system.mount.namei("/f")
        vn.inode.throttle.take(4096)  # charged, never credited

    system.engine.run_process(leak())  # bypass System.run's checkpoint
    with pytest.raises(SanitizerError, match="never credited them back"):
        system.sanitizer.checkpoint("test", idle=True)
    assert proc  # keep the workload's proc alive for namei


def test_throttle_check_skips_disabled_throttles():
    # Config D (the old system) runs with write_limit=0: take/credit are
    # no-ops, so no conservation claim exists to check.
    cfg = SystemConfig.config_d().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    system.sanitizer.enabled = True
    write_file(system)
    system.sanitizer.checkpoint("test", idle=True)


# -- check 4: request/span balance -------------------------------------------

def test_span_check_catches_recorded_leak():
    system = make_system()
    system.requests.span_leaks.append((7, "write", ("throttle_wait",)))
    with pytest.raises(SanitizerError, match="finished with open span"):
        system.sanitizer.checkpoint("test", idle=False)


def test_span_check_catches_open_request_at_idle():
    system = make_system()
    req = system.requests.start("write")
    with pytest.raises(SanitizerError, match="still open at idle"):
        system.sanitizer.checkpoint("test", idle=True)
    req.complete()


def test_request_leaking_span_is_ledgered():
    system = make_system()
    system.tracer.enabled = True
    req = system.requests.start("write")
    req.begin("getpage")  # never ended
    req.complete()
    system.tracer.enabled = False
    assert system.requests.span_leaks
    rid, kind, names = system.requests.span_leaks[0]
    assert kind == "write" and "getpage" in names


# -- check 5: page coherency -------------------------------------------------

def test_page_coherency_catches_corrupted_clean_page():
    system = make_system()
    write_file(system)

    def corrupt():
        vn = yield from system.mount.namei("/f")
        page = system.pagecache.vnode_pages(vn)[0]
        page.data[0] ^= 0xFF  # memory no longer matches disk, page "clean"

    system.engine.run_process(corrupt())
    with pytest.raises(SanitizerError, match="differs from disk"):
        system.sanitizer.checkpoint("test", idle=True)


# -- check 6: allocator ------------------------------------------------------

def test_allocator_catches_counter_drift():
    system = make_system()
    write_file(system)
    system.mount.cgs[0].nbfree += 1
    with pytest.raises(SanitizerError, match="bitmap shows"):
        system.sanitizer.checkpoint("test", idle=True)
    system.mount.cgs[0].nbfree -= 1


def test_allocator_catches_freed_but_claimed_fragment():
    system = make_system()
    write_file(system)

    def free_claimed():
        vn = yield from system.mount.namei("/f")
        ip = vn.inode
        sb = system.mount.sb
        addr = next(a for a in ip.direct if a)
        cgx = addr // sb.fpg
        cg = system.mount.cgs[cgx]
        rel = addr - sb.cgbase(cgx)
        for i in range(sb.frag):
            cg.set_frag(rel + i, free=True)
        # Keep the counters consistent with the bitmap so the *claims*
        # check (not the recount) is what fires.
        cg.nbfree += 1
        sb.cs_nbfree += 1

    system.engine.run_process(free_claimed())
    with pytest.raises(SanitizerError, match="marks it free"):
        system.sanitizer.checkpoint("test", idle=True)


def test_deep_allocator_runs_fsck():
    system = make_system()
    write_file(system)
    system.sync()
    before = system.sanitizer.checks_run
    system.sanitizer.checkpoint("test", idle=True, deep=True)
    assert system.sanitizer.checks_run > before


def test_nfs_throttles_via_throttle_sources():
    from repro.core import WriteThrottle

    system = make_system()
    throttle = WriteThrottle(system.engine, 8 * KB, owner="extra file")
    system.sanitizer.throttle_sources.append(
        lambda: [("extra file", throttle)])
    system.sanitizer.checkpoint("test", idle=True)  # drained: fine
    throttle.take(4 * KB)
    with pytest.raises(SanitizerError, match="extra file"):
        system.sanitizer.checkpoint("test", idle=True)


def test_sanitizer_constructor_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    system = make_system()  # re-enables explicitly
    assert system.sanitizer.enabled
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Sanitizer(system).enabled
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not Sanitizer(system).enabled
