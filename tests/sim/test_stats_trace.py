"""Tests for StatSet, TimeWeighted, and the Tracer."""

import pytest

from repro.sim import Engine, StatSet, TimeWeighted, Tracer


def test_statset_default_zero():
    s = StatSet()
    assert s["missing"] == 0
    assert "missing" not in s


def test_statset_incr_and_snapshot():
    s = StatSet("disk")
    s.incr("reads")
    s.incr("reads")
    s.incr("bytes", 4096)
    assert s["reads"] == 2
    assert s["bytes"] == 4096
    assert s.as_dict() == {"bytes": 4096, "reads": 2}
    assert list(s) == ["bytes", "reads"]
    s.reset()
    assert s["reads"] == 0


def test_time_weighted_average():
    eng = Engine()
    tw = TimeWeighted(eng, initial=0)

    def proc():
        yield eng.timeout(2)
        tw.set(10)
        yield eng.timeout(2)
        tw.set(0)
        yield eng.timeout(4)

    eng.run_process(proc())
    # 0 for 2s, 10 for 2s, 0 for 4s => 20 / 8 = 2.5
    assert tw.average() == pytest.approx(2.5)
    assert tw.maximum == 10
    assert tw.minimum == 0


def test_time_weighted_add():
    eng = Engine()
    tw = TimeWeighted(eng, initial=5)
    tw.add(3)
    assert tw.value == 8
    tw.add(-10)
    assert tw.value == -2
    assert tw.minimum == -2


def test_tracer_disabled_by_default():
    eng = Engine()
    tr = Tracer(eng)
    tr.emit("getpage", lbn=0)
    assert tr.records == []


def test_tracer_records_time_and_fields():
    eng = Engine()
    tr = Tracer(eng, enabled=True)

    def proc():
        tr.emit("getpage", lbn=0)
        yield eng.timeout(0.004)
        tr.emit("readahead", lbn=1, cluster=3)

    eng.run_process(proc())
    assert [r.tag for r in tr.records] == ["getpage", "readahead"]
    assert tr.records[0].time == 0
    assert tr.records[1].time == pytest.approx(0.004)
    assert tr.records[1].lbn == 1
    assert tr.records[1].cluster == 3


def test_tracer_tag_filter_and_select():
    eng = Engine()
    tr = Tracer(eng, enabled=True)
    tr.limit_to(["keep"])
    tr.emit("keep", n=1)
    tr.emit("drop", n=2)
    assert len(tr.records) == 1
    tr.limit_to(None)
    tr.emit("drop", n=3)
    assert [r.tag for r in tr.select("drop")] == ["drop"]
    assert tr.tags() == ["keep", "drop"]


def test_tracer_render_and_describe():
    eng = Engine()
    tr = Tracer(eng, enabled=True)
    tr.emit("io", kind="read", lbn=7)
    text = tr.render()
    assert "io" in text and "kind=read" in text and "lbn=7" in text
    tr.clear()
    assert tr.render() == ""


def test_trace_record_unknown_attr_raises():
    eng = Engine()
    tr = Tracer(eng, enabled=True)
    tr.emit("x", a=1)
    with pytest.raises(AttributeError):
        _ = tr.records[0].nope
