"""Tests for the discrete-event engine and process model."""

import pytest

from repro.sim import Engine, SimulationError


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_time():
    eng = Engine()

    def proc():
        yield eng.timeout(2.5)
        return eng.now

    result = eng.run_process(proc())
    assert result == 2.5
    assert eng.now == 2.5


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    for delay in (3.0, 1.0, 2.0):
        eng.schedule(delay, lambda d: order.append(d), delay)
    eng.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    order = []
    for i in range(5):
        eng.schedule(1.0, order.append, i)
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_early():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(5.0, fired.append, "b")
    eng.run(until=2.0)
    assert fired == ["a"]
    assert eng.now == 2.0
    eng.run()
    assert fired == ["a", "b"]


def test_run_until_advances_time_even_when_idle():
    eng = Engine()
    eng.run(until=7.0)
    assert eng.now == 7.0


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda _: None)


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1)
        return 42

    assert eng.run_process(proc()) == 42


def test_nested_processes_wait_on_each_other():
    eng = Engine()

    def child():
        yield eng.timeout(3)
        return "child-done"

    def parent():
        result = yield eng.process(child())
        return result, eng.now

    assert eng.run_process(parent()) == ("child-done", 3)


def test_orphan_process_crash_surfaces_in_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1)
        raise ValueError("boom")

    eng.process(bad())
    with pytest.raises(SimulationError) as excinfo:
        eng.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_waited_on_crash_propagates_to_waiter_not_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1)
        raise ValueError("boom")

    def parent():
        from repro.sim import EventFailed

        try:
            yield eng.process(bad())
        except EventFailed:
            return "caught"
        return "not-caught"

    assert eng.run_process(parent()) == "caught"


def test_yielding_non_event_is_an_error():
    eng = Engine()

    def bad():
        yield 42

    eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_deadlock_detected_by_run_process():
    eng = Engine()

    def stuck():
        yield eng.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        eng.run_process(stuck())


def test_interrupt_wakes_process_early():
    eng = Engine()
    from repro.sim import Interrupt

    def sleeper():
        try:
            yield eng.timeout(100)
        except Interrupt as intr:
            return ("interrupted", intr.cause, eng.now)
        return "slept"

    proc = eng.process(sleeper())

    def interrupter():
        yield eng.timeout(2)
        proc.interrupt(cause="wakeup")

    eng.process(interrupter())
    eng.run()
    assert proc.value == ("interrupted", "wakeup", 2)


def test_interrupt_after_completion_is_noop():
    eng = Engine()

    def quick():
        yield eng.timeout(1)
        return "ok"

    proc = eng.process(quick())
    eng.run()
    proc.interrupt()
    eng.run()
    assert proc.value == "ok"


def test_stale_wakeup_after_interrupt_ignored():
    """The abandoned timeout firing later must not resume the process twice."""
    eng = Engine()
    from repro.sim import Interrupt

    resumed = []

    def sleeper():
        try:
            yield eng.timeout(10)
        except Interrupt:
            pass
        resumed.append(eng.now)
        yield eng.timeout(50)
        resumed.append(eng.now)

    proc = eng.process(sleeper())

    def interrupter():
        yield eng.timeout(2)
        proc.interrupt()

    eng.process(interrupter())
    eng.run()
    assert resumed == [2, 52]


def test_event_value_delivered_to_process():
    eng = Engine()
    ev = eng.event()

    def waiter():
        value = yield ev
        return value

    proc = eng.process(waiter())
    eng.schedule(1.0, lambda _: ev.succeed("payload"))
    eng.run()
    assert proc.value == "payload"


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_callback_added_after_trigger_still_runs():
    eng = Engine()
    ev = eng.event()
    ev.succeed("late")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    eng.run()
    assert got == ["late"]


def test_anyof_returns_first_winner():
    eng = Engine()
    from repro.sim import AnyOf

    def proc():
        t_fast = eng.timeout(1, "fast")
        t_slow = eng.timeout(5, "slow")
        winner = yield AnyOf(eng, [t_fast, t_slow])
        return winner.value, eng.now

    assert eng.run_process(proc()) == ("fast", 1)


def test_allof_waits_for_all():
    eng = Engine()
    from repro.sim import AllOf

    def proc():
        events = [eng.timeout(d, d) for d in (3, 1, 2)]
        done = yield AllOf(eng, events)  # value is the list of events
        return [e.value for e in done], eng.now

    values, now = eng.run_process(proc())
    assert values == [3, 1, 2]
    assert now == 3


def test_allof_empty_triggers_immediately():
    eng = Engine()
    from repro.sim import AllOf

    def proc():
        result = yield AllOf(eng, [])
        return result

    assert eng.run_process(proc()) == []


def test_reentrant_run_rejected():
    eng = Engine()

    def meddler(_):
        eng.run()

    eng.schedule(1.0, meddler)
    with pytest.raises(SimulationError):
        eng.run()


# -- recurring timers (Engine.every) ------------------------------------------

def test_every_fires_at_interval_multiples():
    eng = Engine()
    ticks = []
    timer = eng.every(0.010, lambda: ticks.append(eng.now))

    def anchor():
        yield eng.timeout(0.035)

    eng.run_process(anchor())
    assert ticks == pytest.approx([0.010, 0.020, 0.030])
    assert timer.fires == 3


def test_every_daemon_never_keeps_run_alive():
    eng = Engine()
    eng.every(0.010, lambda: None)
    eng.run()
    assert eng.now == 0.0


def test_every_non_daemon_needs_cancel():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        if len(ticks) == 3:
            timer.cancel()

    timer = eng.every(0.010, tick, daemon=False)
    eng.run()
    assert len(ticks) == 3
    assert eng.now == pytest.approx(0.030)


def test_every_cancel_stops_future_fires():
    eng = Engine()
    ticks = []
    timer = eng.every(0.010, lambda: ticks.append(eng.now))

    def anchor():
        yield eng.timeout(0.025)
        timer.cancel()
        yield eng.timeout(0.050)

    eng.run_process(anchor())
    assert len(ticks) == 2
    timer.cancel()  # idempotent


def test_every_rejects_bad_interval():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.every(0.0, lambda: None)
