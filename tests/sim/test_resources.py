"""Tests for semaphores, resources, and signals."""

import pytest

from repro.sim import Engine, Resource, Semaphore, Signal


def test_semaphore_immediate_grant():
    eng = Engine()
    sem = Semaphore(eng, 2)

    def proc():
        yield sem.acquire()
        return eng.now

    assert eng.run_process(proc()) == 0
    assert sem.value == 1


def test_semaphore_blocks_until_release():
    eng = Engine()
    sem = Semaphore(eng, 0)
    log = []

    def waiter():
        yield sem.acquire()
        log.append(("granted", eng.now))

    def releaser():
        yield eng.timeout(5)
        sem.release()

    eng.process(waiter())
    eng.process(releaser())
    eng.run()
    assert log == [("granted", 5)]


def test_semaphore_fifo_order():
    eng = Engine()
    sem = Semaphore(eng, 0)
    order = []

    def waiter(tag):
        yield sem.acquire()
        order.append(tag)

    for tag in "abc":
        eng.process(waiter(tag))

    def releaser():
        for _ in range(3):
            yield eng.timeout(1)
            sem.release()

    eng.process(releaser())
    eng.run()
    assert order == ["a", "b", "c"]


def test_semaphore_counts_units_not_ops():
    """A large request at the head blocks smaller later requests (FIFO)."""
    eng = Engine()
    sem = Semaphore(eng, 3)
    order = []

    def big():
        yield sem.acquire(5)
        order.append("big")

    def small():
        yield eng.timeout(1)
        yield sem.acquire(1)
        order.append("small")

    eng.process(big())
    eng.process(small())

    def releaser():
        yield eng.timeout(2)
        sem.release(2)  # big (head of queue) gets its 5 first
        yield eng.timeout(1)
        sem.release(1)  # only now can small proceed

    eng.process(releaser())
    eng.run()
    assert order == ["big", "small"]


def test_semaphore_take_goes_negative():
    eng = Engine()
    sem = Semaphore(eng, 1)
    sem.take(5)
    assert sem.value == -4
    sem.release(4)
    assert sem.value == 0


def test_try_acquire():
    eng = Engine()
    sem = Semaphore(eng, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_argument_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Semaphore(eng, -1)
    sem = Semaphore(eng, 1)
    with pytest.raises(ValueError):
        sem.acquire(0)
    with pytest.raises(ValueError):
        sem.release(0)


def test_resource_serializes_users():
    eng = Engine()
    cpu = Resource(eng, capacity=1, name="cpu")
    spans = []

    def user(tag):
        start_wait = eng.now
        yield from cpu.use(2.0)
        spans.append((tag, start_wait, eng.now))

    for tag in "ab":
        eng.process(user(tag))
    eng.run()
    assert spans == [("a", 0, 2.0), ("b", 0, 4.0)]
    assert cpu.busy_time == 4.0
    assert cpu.service_count == 2


def test_resource_capacity_two_overlaps():
    eng = Engine()
    res = Resource(eng, capacity=2)
    done = []

    def user(tag):
        yield from res.use(2.0)
        done.append((tag, eng.now))

    for tag in "abc":
        eng.process(user(tag))
    eng.run()
    assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_resource_utilization():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        yield from res.use(3.0)
        yield eng.timeout(1.0)

    eng.run_process(user())
    assert res.utilization() == pytest.approx(0.75)


def test_resource_zero_duration_use():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        yield from res.use(0.0)
        return eng.now

    assert eng.run_process(user()) == 0
    assert res.in_use == 0


def test_signal_broadcast():
    eng = Engine()
    sig = Signal(eng)
    woken = []

    def waiter(tag):
        yield sig.wait()
        woken.append((tag, eng.now))

    for tag in "ab":
        eng.process(waiter(tag))

    def firer():
        yield eng.timeout(3)
        assert sig.fire() == 2

    eng.process(firer())
    eng.run()
    assert woken == [("a", 3), ("b", 3)]
    assert sig.waiting == 0


def test_signal_wait_after_fire_needs_new_fire():
    eng = Engine()
    sig = Signal(eng)
    sig.fire()
    woken = []

    def late_waiter():
        yield sig.wait()
        woken.append(eng.now)

    eng.process(late_waiter())

    def firer():
        yield eng.timeout(1)
        sig.fire()

    eng.process(firer())
    eng.run()
    assert woken == [1]
