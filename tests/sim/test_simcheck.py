"""Tests for the determinism differ (stable digests over trace JSONL)."""

import json

from repro.sim.simcheck import run_simcheck, stable_digest


def lines(*objs):
    return "\n".join(json.dumps(o) for o in objs)


def test_digest_ignores_global_id_offsets():
    # The same trace captured in two runs: every span/request/buf id is
    # shifted by the counters' progress, structure identical.
    a = lines(
        {"type": "span", "id": 5, "parent": None, "name": "write",
         "begin": 0.0, "end": 1.0, "request": 3},
        {"type": "span", "id": 6, "parent": 5, "name": "biowait",
         "begin": 0.2, "end": 0.9, "buf": 17},
    )
    b = lines(
        {"type": "span", "id": 905, "parent": None, "name": "write",
         "begin": 0.0, "end": 1.0, "request": 44},
        {"type": "span", "id": 906, "parent": 905, "name": "biowait",
         "begin": 0.2, "end": 0.9, "buf": 1017},
    )
    assert stable_digest(a) == stable_digest(b)


def test_digest_sees_structural_divergence():
    a = lines({"type": "span", "id": 1, "parent": None, "name": "write",
               "begin": 0.0, "end": 1.0})
    later = lines({"type": "span", "id": 1, "parent": None, "name": "write",
                   "begin": 0.0, "end": 1.5})
    renamed = lines({"type": "span", "id": 1, "parent": None, "name": "read",
                     "begin": 0.0, "end": 1.0})
    assert stable_digest(a) != stable_digest(later)
    assert stable_digest(a) != stable_digest(renamed)


def test_digest_sees_reparenting():
    a = lines(
        {"type": "span", "id": 1, "parent": None, "name": "w", "begin": 0.0},
        {"type": "span", "id": 2, "parent": 1, "name": "x", "begin": 0.1},
        {"type": "span", "id": 3, "parent": 1, "name": "x", "begin": 0.2},
    )
    b = lines(
        {"type": "span", "id": 1, "parent": None, "name": "w", "begin": 0.0},
        {"type": "span", "id": 2, "parent": 1, "name": "x", "begin": 0.1},
        {"type": "span", "id": 3, "parent": 2, "name": "x", "begin": 0.2},
    )
    assert stable_digest(a) != stable_digest(b)


def test_digest_insensitive_to_key_order_and_blank_lines():
    a = '{"type": "record", "time": 0.5, "tag": "getpage"}\n'
    b = '\n{"tag": "getpage", "type": "record", "time": 0.5}'
    assert stable_digest(a) == stable_digest(b)


def test_run_simcheck_small_workload_passes():
    out = []
    rc = run_simcheck(file_mb=1, random_ops=32, out=out.append)
    assert rc == 0
    assert any("simcheck OK" in line for line in out)
    assert any("all passed" in line for line in out)
