"""Tests for the tracer's span API: trees, rendering, JSONL export."""

import json

from repro.sim import Engine, Tracer


def make_tracer(enabled=True):
    eng = Engine()
    return eng, Tracer(eng, enabled=enabled)


def test_span_begin_end_records_times():
    eng, tr = make_tracer()

    def proc():
        span = tr.span_begin("read", offset=0)
        yield eng.timeout(1.5)
        tr.span_end(span, bytes=8192)

    eng.run_process(proc())
    (span,) = tr.spans
    assert span.name == "read"
    assert span.begin == 0.0
    assert span.end == 1.5
    assert span.duration == 1.5
    assert span.fields == {"offset": 0, "bytes": 8192}


def test_spans_disabled_return_none_and_record_nothing():
    _, tr = make_tracer(enabled=False)
    span = tr.span_begin("read")
    assert span is None
    tr.span_end(span)  # no-op, no crash
    assert tr.record_span("disk_io", 0.0, 1.0) is None
    assert tr.spans == []


def test_span_tree_structure():
    _, tr = make_tracer()
    root = tr.span_begin("read")
    child = tr.span_begin("getpage", parent=root)
    grandchild = tr.span_begin("disk_io", parent=child)
    other_root = tr.span_begin("write")
    for s in (grandchild, child, root, other_root):
        tr.span_end(s)

    assert tr.span_roots() == [root, other_root]
    assert tr.span_children(root) == [child]
    assert tr.span_children(child.id) == [grandchild]
    assert [(d, s.name) for d, s in tr.span_tree(root)] == [
        (0, "read"), (1, "getpage"), (2, "disk_io"),
    ]


def test_record_span_takes_explicit_times():
    _, tr = make_tracer()
    parent = tr.span_begin("read")
    span = tr.record_span("queue_wait", 1.0, 3.5, parent=parent, sector=40)
    assert span.begin == 1.0
    assert span.end == 3.5
    assert span.parent_id == parent.id
    assert span.fields == {"sector": 40}


def test_render_spans_indents_by_depth():
    _, tr = make_tracer()
    root = tr.span_begin("read")
    child = tr.span_begin("getpage", parent=root)
    tr.span_end(child)
    tr.span_end(root)
    text = tr.render_spans()
    lines = text.splitlines()
    assert lines[0].startswith("read ")
    assert lines[1].startswith("  getpage ")


def test_to_jsonl_contains_records_then_spans(tmp_path):
    eng, tr = make_tracer()
    tr.emit("getpage_sync", offset=0)
    span = tr.span_begin("read", fd=3)
    tr.span_end(span)
    lines = [json.loads(line) for line in tr.to_jsonl().splitlines()]
    assert lines[0]["type"] == "meta"
    assert lines[0]["schema"] == "repro-trace/v1"
    assert lines[0]["records"] == 1
    assert lines[0]["spans"] == 1
    assert lines[1]["type"] == "record"
    assert lines[1]["tag"] == "getpage_sync"
    assert lines[2]["type"] == "span"
    assert lines[2]["name"] == "read"
    assert lines[2]["fd"] == 3

    path = tmp_path / "out.jsonl"
    count = tr.export_jsonl(str(path))
    assert count == 3
    assert len(path.read_text().splitlines()) == 3


def test_export_jsonl_empty_tracer(tmp_path):
    _, tr = make_tracer()
    path = tmp_path / "empty.jsonl"
    # Even an empty trace carries its schema-versioned meta line.
    assert tr.export_jsonl(str(path)) == 1
    meta = json.loads(path.read_text())
    assert meta["type"] == "meta"
    assert meta["spans"] == 0


def test_limit_to_filters_records_not_spans():
    _, tr = make_tracer()
    tr.limit_to(["wanted"])
    tr.emit("wanted", n=1)
    tr.emit("unwanted", n=2)
    span = tr.span_begin("read")
    tr.span_end(span)
    assert [r.tag for r in tr.records] == ["wanted"]
    assert len(tr.spans) == 1
    tr.limit_to(None)
    tr.emit("unwanted", n=3)
    assert [r.tag for r in tr.records] == ["wanted", "unwanted"]


def test_select_and_render_records():
    _, tr = make_tracer()
    tr.emit("a", n=1)
    tr.emit("b", n=2)
    tr.emit("a", n=3)
    assert [r.n for r in tr.select("a")] == [1, 3]
    assert tr.tags() == ["a", "b"]
    rendered = tr.render(lambda r: r.tag == "b")
    assert "b n=2" in rendered
    assert "a n=1" not in rendered


def test_clear_drops_records_and_spans():
    _, tr = make_tracer()
    tr.emit("a")
    span = tr.span_begin("read")
    tr.span_end(span)
    tr.clear()
    assert tr.records == []
    assert tr.spans == []
