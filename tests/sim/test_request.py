"""Tests for IORequest and RequestRegistry: spans, accounting, lifecycle."""

from repro.disk import Buf, BufOp
from repro.sim import Engine, IORequest, RequestRegistry, Tracer


def make_registry(enabled=False):
    eng = Engine()
    tracer = Tracer(eng, enabled=enabled)
    return eng, tracer, RequestRegistry(eng, tracer)


def test_request_without_tracing_has_no_spans():
    eng, _, registry = make_registry(enabled=False)
    req = registry.start("read", origin="proc", fd=3)
    assert req.root is None
    span = req.begin("getpage")
    assert span is None
    req.end(span)
    req.complete()
    assert req.finished_at == eng.now


def test_request_span_stack_nests():
    _, tracer, registry = make_registry(enabled=True)
    req = registry.start("read")
    assert req.root is not None
    assert req.current_span is req.root
    outer = req.begin("getpage")
    inner = req.begin("cluster_read")
    assert req.current_span is inner
    assert inner.parent_id == outer.id
    req.end(inner)
    assert req.current_span is outer
    req.end(outer)
    req.complete()
    assert req.root.end is not None


def test_request_tolerates_out_of_order_end():
    _, _, registry = make_registry(enabled=True)
    req = registry.start("read")
    outer = req.begin("getpage")
    inner = req.begin("cluster_read")
    req.end(outer)  # closed before its child
    assert req.current_span is inner
    req.end(inner)
    req.complete()


def test_io_done_counts_and_records_disk_spans():
    eng, tracer, registry = make_registry(enabled=True)
    req = registry.start("read")
    buf = Buf(eng, BufOp.READ, sector=40, nsectors=16)
    buf.request = req
    buf.parent_span = req.current_span
    buf.issued_at = 1.0
    buf.started_at = 2.0
    buf.finished_at = 3.5

    req.io_done(buf)
    assert req.ios == 1
    assert req.bytes == 16 * 512

    names = {s.name for s in tracer.spans}
    assert {"read", "disk_io", "queue_wait", "service"} <= names
    disk_io = next(s for s in tracer.spans if s.name == "disk_io")
    assert disk_io.parent_id == req.root.id
    assert disk_io.begin == 1.0 and disk_io.end == 3.5
    queue_wait = next(s for s in tracer.spans if s.name == "queue_wait")
    assert queue_wait.parent_id == disk_io.id
    assert queue_wait.begin == 1.0 and queue_wait.end == 2.0
    service = next(s for s in tracer.spans if s.name == "service")
    assert service.begin == 2.0 and service.end == 3.5


def test_complete_is_idempotent():
    eng, _, registry = make_registry()

    def proc():
        req = registry.start("write")
        yield eng.timeout(2.0)
        req.complete()
        yield eng.timeout(1.0)
        req.complete()  # second call ignored
        return req

    req = eng.run_process(proc())
    assert req.finished_at == 2.0
    assert req.elapsed == 2.0
    assert registry.stats["completed"] == 1


def test_registry_latency_histograms_per_kind():
    eng, _, registry = make_registry()

    def proc():
        r1 = registry.start("read")
        yield eng.timeout(0.010)
        r1.complete()
        r2 = registry.start("write")
        yield eng.timeout(0.030)
        r2.complete()

    eng.run_process(proc())
    report = registry.report()
    assert report["counts"]["started"] == 2
    assert report["counts"]["read_started"] == 1
    assert set(report["latency"]) == {"read", "write"}
    assert report["latency"]["read"]["count"] == 1
    assert report["latency"]["read"]["mean"] > 0
    assert report["inflight_max"] == 1


def test_registry_counts_errors():
    _, _, registry = make_registry()
    req = registry.start("read")
    req.complete(error=IOError("boom"))
    assert registry.stats["errors"] == 1
    assert registry.stats["read_errors"] == 1
    assert req.error is not None


def test_standalone_request_needs_no_registry():
    eng = Engine()
    req = IORequest(eng, "read")
    req.complete()
    assert req.finished_at is not None
