"""Per-tracer span ids, the incremental tree index, and JSONL round trips."""

import pytest

from repro.sim.engine import Engine
from repro.sim.trace import TRACE_SCHEMA, Tracer, load_jsonl


def make_tracer():
    eng = Engine()
    return eng, Tracer(eng, enabled=True)


# -- per-tracer ids (regression: they used to be a module-global counter) -----

def test_span_ids_are_per_tracer():
    eng = Engine()
    t1 = Tracer(eng, enabled=True)
    t2 = Tracer(eng, enabled=True)
    a = t1.span_begin("read")
    b = t2.span_begin("read")
    # A second tracer in the same process starts from 1 again: exported
    # traces no longer depend on what other System instances did first.
    assert a.id == 1
    assert b.id == 1
    assert t1.span_begin("getpage").id == 2


def test_clear_restarts_span_ids():
    _, tr = make_tracer()
    tr.span_end(tr.span_begin("read"))
    tr.clear()
    assert tr.span_begin("read").id == 1


def test_two_fresh_tracers_export_identical_bytes():
    def build():
        _, tr = make_tracer()
        root = tr.record_span("read", 0.0, 0.010, request=1)
        tr.record_span("queue_wait", 0.001, 0.004, parent=root)
        tr.emit("getpage_sync", offset=0)
        return tr.to_jsonl()

    assert build() == build()


# -- incremental tree index (regression: span_children rescanned all spans) ---

class CountingSpanList(list):
    """A list proxy that counts full scans of the span list."""

    def __init__(self, items):
        super().__init__(items)
        self.scans = 0

    def __iter__(self):
        self.scans += 1
        return super().__iter__()


def build_wide_trace(n_roots=100, kids_per_root=99):
    _, tr = make_tracer()
    for r in range(n_roots):
        root = tr.record_span("read", 0.0, 1.0, request=r)
        for _ in range(kids_per_root):
            tr.record_span("getpage", 0.1, 0.9, parent=root)
    return tr


def test_tree_walks_never_rescan_the_span_list():
    tr = build_wide_trace()  # 10_000 spans
    proxy = CountingSpanList(tr.spans)
    tr.spans = proxy
    roots = tr.span_roots()
    assert len(roots) == 100
    for root in roots:
        assert len(tr.span_children(root)) == 99
        assert len(tr.span_tree(root)) == 100
    text = tr.render_spans()
    assert text.count("\n") + 1 == 10_000
    # The whole walk is served from the incrementally-maintained index:
    # not one O(n) rescan of the 10k-span list.
    assert proxy.scans == 0


def test_children_index_matches_span_children():
    tr = build_wide_trace(n_roots=3, kids_per_root=2)
    index = tr.children_index()
    for root in tr.span_roots():
        assert index[root.id] == tr.span_children(root)
        assert tr.span_by_id(root.id) is root


# -- open spans ---------------------------------------------------------------

def test_open_spans_and_trace_end():
    eng, tr = make_tracer()
    done = tr.record_span("read", 0.0, 0.010, request=1)
    leaked = tr.span_begin("queue_wait", parent=done)
    tr.emit("getpage_sync", offset=0)
    assert tr.open_spans() == [leaked]
    assert leaked.duration == 0.0  # the silent zero analyzers must not trust
    assert tr.trace_end() == pytest.approx(0.010)


# -- JSONL round trip ---------------------------------------------------------

def test_load_jsonl_round_trips_spans_and_records():
    _, tr = make_tracer()
    root = tr.record_span("read", 0.0, 0.010, request=7)
    tr.record_span("queue_wait", 0.001, 0.004, parent=root, buf=3)
    tr.emit("getpage_sync", offset=8192)
    loaded = load_jsonl(tr.to_jsonl())
    assert loaded.to_jsonl() == tr.to_jsonl()
    assert not loaded.enabled
    assert [r.name for r in loaded.span_roots()] == ["read"]
    assert loaded.span_children(loaded.span_roots()[0])[0].fields["buf"] == 3
    assert loaded.records[0].tag == "getpage_sync"
    # Ids keep counting past the loaded ones (were the tracer re-enabled).
    assert next(loaded._span_ids) == 3


def test_load_jsonl_rejects_bad_documents():
    with pytest.raises(ValueError):
        load_jsonl("")
    with pytest.raises(ValueError):
        load_jsonl('{"type": "record", "time": 0, "tag": "x"}')
    bad_schema = '{"type": "meta", "schema": "other/v9", "records": 0, "spans": 0}'
    with pytest.raises(ValueError):
        load_jsonl(bad_schema)
    orphan = "\n".join([
        '{"type": "meta", "schema": "%s", "records": 0, "spans": 1}'
        % TRACE_SCHEMA,
        '{"type": "span", "id": 2, "parent": 99, "name": "x",'
        ' "begin": 0.0, "end": 1.0}',
    ])
    with pytest.raises(ValueError):
        load_jsonl(orphan)
