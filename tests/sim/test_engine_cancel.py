"""Engine.cancel liveness accounting, pinned by the sanitizer's invariant.

The run-to-idle loop stops when ``_live`` (non-daemon, non-cancelled
entries) hits zero.  Every path below asserts the same invariant the
sanitizer's ``engine_liveness`` check enforces: ``_live`` equals
``live_pending()`` — a drifted counter either wedges ``run()`` or stops
it with work still pending.
"""

from repro.sim import Engine


def assert_consistent(eng):
    assert eng._live == eng.live_pending()


def test_cancel_pending_entry_decrements_once():
    eng = Engine()
    entry = eng.schedule(1.0, lambda _: None)
    assert eng._live == 1
    eng.cancel(entry)
    assert eng._live == 0
    assert_consistent(eng)


def test_double_cancel_is_a_noop():
    eng = Engine()
    entry = eng.schedule(1.0, lambda _: None)
    eng.cancel(entry)
    eng.cancel(entry)
    assert eng._live == 0
    assert_consistent(eng)


def test_cancel_after_fire_does_not_double_decrement():
    # The historical bug: cancelling an entry that already ran decremented
    # _live a second time, making run-to-idle stop with work pending.
    eng = Engine()
    fired = []
    entry = eng.schedule(1.0, fired.append, "a")
    eng.schedule(2.0, fired.append, "b")
    assert eng._live == 2
    eng.step()  # fires "a"
    assert fired == ["a"]
    assert eng._live == 1
    eng.cancel(entry)  # must be a no-op now
    assert eng._live == 1
    assert_consistent(eng)
    eng.run()
    assert fired == ["a", "b"]
    assert eng._live == 0


def test_cancel_after_fire_then_run_completes_remaining_work():
    # With the double-decrement, this run() would stop before "late".
    eng = Engine()
    out = []
    early = eng.schedule(1.0, out.append, "early")
    eng.schedule(5.0, out.append, "late")
    eng.step()
    eng.cancel(early)
    eng.run()
    assert out == ["early", "late"]


def test_cancelled_daemon_entry_never_counted():
    eng = Engine()
    entry = eng.schedule(1.0, lambda _: None, daemon=True)
    assert eng._live == 0
    eng.cancel(entry)
    eng.cancel(entry)
    assert eng._live == 0
    assert_consistent(eng)


def test_daemon_entries_do_not_hold_run_open():
    eng = Engine()
    ran = []
    eng.schedule(1.0, ran.append, "work")
    eng.schedule(50.0, ran.append, "daemon", daemon=True)
    eng.run()
    assert ran == ["work"]  # stopped at idle; daemon housekeeping skipped
    assert eng._live == 0
    assert_consistent(eng)


def test_cancel_flips_entry_to_daemon_exactly_once():
    # cancel() stops the entry counting toward liveness by flipping its
    # daemon flag; a second cancel (or a later fire) must not flip again.
    eng = Engine()
    entry = eng.schedule(1.0, lambda _: None)
    eng.cancel(entry)
    assert entry.daemon and entry.cancelled
    eng.cancel(entry)
    assert eng._live == 0
    eng.run()  # pops and discards the cancelled slot
    assert eng._live == 0
    assert_consistent(eng)


def test_fired_flag_set_by_step():
    eng = Engine()
    entry = eng.schedule(1.0, lambda _: None)
    assert not entry.fired
    eng.run()
    assert entry.fired
