"""Empty and degenerate histograms must report clean zeros.

Pins the fix for the empty-snapshot misbehaviour: a fresh histogram, an
empty ``since()`` delta, and a *mismatched* delta (snapshot from a
different or busier histogram, subtracting to negative counts) must all
report 0.0 percentiles and means instead of nonsense.
"""

from repro.sim.stats import Histogram


def test_fresh_histogram_reports_zeros():
    h = Histogram("fresh")
    assert h.count == 0
    assert h.mean == 0.0
    for p in (0, 50, 95, 99, 100):
        assert h.percentile(p) == 0.0
    assert h.summary() == {
        "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_empty_since_delta_reports_zeros():
    h = Histogram("busy")
    for value in (1.0, 2.0, 4.0):
        h.observe(value)
    snap = h.snapshot()
    # Nothing observed since the snapshot: the delta is genuinely empty.
    delta = h.since(snap)
    assert delta.count == 0
    assert delta.mean == 0.0
    assert delta.percentile(95) == 0.0
    assert delta.summary()["p99"] == 0.0


def test_mismatched_snapshot_normalizes_to_empty():
    """A snapshot from a busier histogram subtracts to negative counts;
    the delta must normalize to empty, not report negative means or index
    into phantom buckets."""
    busy = Histogram("busy")
    for value in (1.0, 2.0, 4.0, 8.0):
        busy.observe(value)
    quiet = Histogram("quiet")
    quiet.observe(1.0)

    delta = quiet.since(busy.snapshot())
    assert delta.count == 0
    assert delta.total == 0.0
    assert delta.mean == 0.0
    for p in (50, 95, 99):
        assert delta.percentile(p) == 0.0
    summary = delta.summary()
    assert summary["count"] == 0
    assert summary["mean"] == 0.0
    assert summary["min"] == 0.0 and summary["max"] == 0.0


def test_nonempty_delta_still_exact():
    h = Histogram("h")
    h.observe(1.0)
    snap = h.snapshot()
    h.observe(3.0)
    h.observe(5.0)
    delta = h.since(snap)
    assert delta.count == 2
    assert delta.total == 8.0
    assert delta.mean == 4.0
    assert delta.percentile(99) > 0.0


def test_zeros_only_delta():
    h = Histogram("zeros")
    h.observe(0.0)
    snap = h.snapshot()
    h.observe(0.0)
    delta = h.since(snap)
    assert delta.count == 1
    assert delta.mean == 0.0
    assert delta.percentile(99) == 0.0
