"""MetricsRegistry: registration rules, rendering, and system wiring."""

import json

import pytest

from repro.kernel import Proc, System, SystemConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim import Engine, StatSet


@pytest.fixture
def registry():
    return MetricsRegistry(Engine())


def test_register_rejects_empty_namespace(registry):
    with pytest.raises(ValueError):
        registry.register("", StatSet("x"))


def test_register_rejects_duplicates_unless_replace(registry):
    first = registry.register("disk", StatSet("disk"))
    with pytest.raises(ValueError):
        registry.register("disk", StatSet("disk2"))
    second = registry.register("disk", StatSet("disk2"), replace=True)
    assert registry.get("disk") is second is not first


def test_register_rejects_non_instruments(registry):
    with pytest.raises(TypeError):
        registry.register("bad", 42)


def test_factories_create_then_fetch(registry):
    c = registry.counters("a.counts")
    h = registry.histogram("a.hist")
    g = registry.gauge("a.gauge", initial=3.0)
    assert registry.counters("a.counts") is c
    assert registry.histogram("a.hist") is h
    assert registry.gauge("a.gauge") is g
    assert g.value == 3.0
    assert registry.namespaces() == ["a.counts", "a.gauge", "a.hist"]
    assert "a.counts" in registry and "missing" not in registry


def test_snapshot_renders_every_shape(registry):
    registry.counters("c").incr("reads", 2)
    registry.histogram("h").observe(4.0)
    registry.gauge("g").set(7.0)
    registry.register("dyn", lambda: {"k": 1})
    snap = registry.snapshot()
    assert snap["c"] == {"reads": 2}
    assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 4.0
    assert snap["g"]["value"] == 7.0
    assert snap["dyn"] == {"k": 1}
    assert list(snap) == sorted(snap)


def test_callable_source_must_return_dict(registry):
    registry.register("dyn", lambda: [1, 2])
    with pytest.raises(TypeError):
        registry.snapshot()


def test_to_json_is_sorted_and_parseable(registry):
    registry.counters("z").incr("late")
    registry.counters("a").incr("early")
    text = registry.to_json()
    parsed = json.loads(text)
    assert list(parsed) == ["a", "z"]
    assert text.index('"a"') < text.index('"z"')


def test_booted_system_registers_every_layer():
    system = System.booted(SystemConfig.config_a())
    namespaces = system.metrics.namespaces()
    for expected in ("cpu", "requests", "requests.latency", "disk.driver",
                     "disk.mech", "vm.pagecache", "vm.freemem", "ufs",
                     "ufs.metacache", "ufs.throttle"):
        assert expected in namespaces, expected
    # The snapshot reflects live counters: run I/O, watch them move.
    before = system.metrics.snapshot()["requests"].get("completed", 0)
    proc = Proc(system)

    def workload():
        fd = yield from proc.creat("/m")
        yield from proc.write(fd, b"z" * 8192)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(workload())
    assert system.metrics.snapshot()["requests"]["completed"] > before


def test_multi_member_volume_gets_per_member_namespaces():
    config = SystemConfig.config_a().with_(layout="stripe:2")
    system = System.booted(config)
    namespaces = system.metrics.namespaces()
    for expected in ("volume", "volume.queue_depth", "disk.m0.driver",
                     "disk.m0.mech", "disk.m1.driver", "disk.m1.mech"):
        assert expected in namespaces, expected


def test_remounted_system_has_a_fresh_registry():
    system = System.booted(SystemConfig.config_a())
    survivor = System.remounted(system.store, system.config)
    assert survivor.metrics is not system.metrics
    assert "ufs" in survivor.metrics
