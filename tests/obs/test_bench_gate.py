"""The bench orchestrator and the perf gate.

Pins the two acceptance properties: same-seed BENCH documents are
byte-identical (metrics snapshot and attribution included), and the gate
passes against an honest baseline while failing on an injected 20%
slowdown.
"""

import copy

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA, canonical_json, diff_documents, document_id, run_bench,
)
from repro.obs.gate import check_gate

_BENCH_KWARGS = dict(configs="A", file_mb=1, random_ops=32)


@pytest.fixture(scope="module")
def document():
    return run_bench(**_BENCH_KWARGS)


def test_document_shape(document):
    assert document["schema"] == BENCH_SCHEMA
    assert document["run"]["configs"] == "A"
    result = document["results"]["A"]
    assert set(result["rates"]) == {"FSR", "FSU", "FSW", "FRR", "FRU"}
    assert all(rate > 0 for rate in result["rates"].values())
    assert "requests" in result["metrics"]
    assert "disk.driver" in result["metrics"]
    assert "read" in result["attribution"]
    assert document["id"] == document_id(document)


def test_same_seed_runs_are_byte_identical(document):
    again = run_bench(**_BENCH_KWARGS)
    assert canonical_json(again) == canonical_json(document)
    # The acceptance criterion calls out these two sections by name.
    assert (canonical_json(again["results"]["A"]["metrics"])
            == canonical_json(document["results"]["A"]["metrics"]))
    assert (canonical_json(again["results"]["A"]["attribution"])
            == canonical_json(document["results"]["A"]["attribution"]))


def test_different_seed_changes_the_id(document):
    other = run_bench(configs="A", file_mb=1, random_ops=32, seed=7)
    assert other["id"] != document["id"]


def test_gate_passes_against_identical_baseline(document):
    result = check_gate(document, copy.deepcopy(document))
    assert result.ok
    assert result.violations == []
    assert "OK" in result.render()


def test_gate_fails_on_injected_20_percent_slowdown(document):
    # A baseline 25% faster everywhere == current run 20% slower than it.
    baseline = copy.deepcopy(document)
    for result in baseline["results"].values():
        for phase in result["rates"]:
            result["rates"][phase] *= 1.25
    baseline["id"] = document_id(baseline)
    gate = check_gate(document, baseline)
    assert not gate.ok
    kinds = {v.split(":")[0] for v in gate.violations}
    assert kinds == {"A/FSR", "A/FSW"}  # headline phases only
    assert "FAILED" in gate.render()


def test_gate_tolerates_small_regressions(document):
    baseline = copy.deepcopy(document)
    for result in baseline["results"].values():
        for phase in result["rates"]:
            result["rates"][phase] *= 1.05  # current only ~4.8% slower
    gate = check_gate(document, baseline)
    assert gate.ok


def test_gate_flags_attribution_share_blowup(document):
    baseline = copy.deepcopy(document)
    current = copy.deepcopy(document)
    # Current run: reads suddenly spend a big extra chunk queueing.
    row = current["results"]["A"]["attribution"]["read"]
    extra = sum(r["total"] for r
                in current["results"]["A"]["attribution"].values())
    row["categories"]["queue_wait"] += extra
    row["total"] += extra
    gate = check_gate(current, baseline)
    assert not gate.ok
    assert any("queue_wait" in v for v in gate.violations)


def test_gate_refuses_mismatched_run_parameters(document):
    baseline = copy.deepcopy(document)
    baseline["run"]["file_mb"] = 16
    gate = check_gate(document, baseline)
    assert not gate.ok
    assert any("run parameters" in v for v in gate.violations)


def test_gate_refuses_foreign_schema(document):
    baseline = copy.deepcopy(document)
    baseline["schema"] = "repro-bench/v0"
    gate = check_gate(document, baseline)
    assert not gate.ok


def test_diff_documents(document):
    assert diff_documents(document, copy.deepcopy(document)) == []
    slower = copy.deepcopy(document)
    slower["results"]["A"]["rates"]["FSR"] *= 0.5
    lines = diff_documents(document, slower)
    assert any("A/FSR" in line and "-50.0%" in line for line in lines)
    missing = copy.deepcopy(document)
    del missing["results"]["A"]
    assert any("present in only one" in line
               for line in diff_documents(document, missing))
