"""Layer time attribution: the sweep, its invariant, and the real stack.

The load-bearing property is *conservation*: for every traced request,
the per-category times sum exactly to the request's elapsed time — no
instant double-counted, none dropped.
"""

import pytest

from repro.bench.iobench import IObench
from repro.kernel import SystemConfig
from repro.obs.attrib import (
    ATTRIBUTION_CATEGORIES, attribution_table, render_attribution,
)
from repro.sim import Engine, Tracer
from repro.units import MB


def _tracer():
    return Tracer(Engine(), enabled=True)


def test_empty_tracer_gives_empty_table():
    table = attribution_table(_tracer())
    assert table == {}
    assert render_attribution(table) == "(no traced requests)"


def test_single_request_splits_and_conserves():
    tr = _tracer()
    root = tr.record_span("read", 0.0, 10.0)
    io = tr.record_span("disk_io", 1.0, 9.0, parent=root)
    tr.record_span("queue_wait", 1.0, 3.0, parent=io)
    service = tr.record_span("service", 3.0, 9.0, parent=io)
    tr.record_span("rotation_seek", 3.0, 5.0, parent=service)
    tr.record_span("transfer", 5.0, 7.0, parent=service)

    table = attribution_table(tr)
    row = table["read"]
    cats = row["categories"]
    assert row["requests"] == 1
    assert row["total"] == 10.0
    assert cats["queue_wait"] == 2.0
    assert cats["rotation_seek"] == 2.0
    assert cats["transfer"] == 2.0
    # service minus its explained children -> other_io; uncovered -> cpu.
    assert cats["other_io"] == 2.0
    assert cats["cpu"] == 2.0
    assert sum(cats.values()) == pytest.approx(row["total"])


def test_overlapping_waits_never_double_count():
    tr = _tracer()
    root = tr.record_span("write", 0.0, 4.0)
    # Two overlapping throttle waits plus a queue wait on top.
    tr.record_span("throttle_wait", 0.0, 2.0, parent=root)
    tr.record_span("throttle_wait", 1.0, 3.0, parent=root)
    tr.record_span("queue_wait", 1.5, 2.5, parent=root)

    cats = attribution_table(tr)["write"]["categories"]
    assert sum(cats.values()) == pytest.approx(4.0)
    # queue_wait wins its overlap (earlier category rank breaks the tie).
    assert cats["queue_wait"] == pytest.approx(1.0)
    assert cats["throttle_wait"] == pytest.approx(2.0)
    assert cats["cpu"] == pytest.approx(1.0)


def test_child_spans_clamped_to_root_lifetime():
    tr = _tracer()
    root = tr.record_span("fsync", 2.0, 6.0)
    # A child recorded wider than its root (interrupt-side completion
    # after the syscall returned) must not inflate the attribution.
    tr.record_span("queue_wait", 0.0, 10.0, parent=root)
    cats = attribution_table(tr)["fsync"]["categories"]
    assert cats["queue_wait"] == pytest.approx(4.0)
    assert sum(cats.values()) == pytest.approx(4.0)


def test_open_roots_are_skipped():
    tr = _tracer()
    open_root = tr.span_begin("read")
    assert open_root is not None and open_root.end is None
    tr.record_span("write", 0.0, 1.0)
    table = attribution_table(tr)
    assert list(table) == ["write"]


def test_mem_wait_maps_to_throttle_wait():
    tr = _tracer()
    root = tr.record_span("pageout", 0.0, 2.0)
    tr.record_span("mem_wait", 0.0, 1.0, parent=root)
    cats = attribution_table(tr)["pageout"]["categories"]
    assert cats["throttle_wait"] == pytest.approx(1.0)


def test_render_has_every_category_column():
    tr = _tracer()
    tr.record_span("read", 0.0, 1.0)
    text = render_attribution(attribution_table(tr))
    for category in ATTRIBUTION_CATEGORIES:
        assert category in text


def test_real_benchmark_attribution_conserves_time():
    """End to end: trace every IObench phase on the real stack and demand
    the invariant holds for every request kind."""
    bench = IObench(SystemConfig.by_name("A"), file_size=1 * MB,
                    random_ops=32, trace_phase="*")
    bench.run()
    system = bench.system
    table = attribution_table(system.tracer)
    assert {"read", "write", "fsync"} <= set(table)
    for kind, row in table.items():
        assert row["requests"] > 0, kind
        assert sum(row["categories"].values()) == pytest.approx(
            row["total"]), kind
    # Sequential reads on config A actually touch the disk: mechanical
    # time must show up, or the disk accounting came unwired.
    read_cats = table["read"]["categories"]
    assert read_cats["rotation_seek"] > 0
    assert read_cats["transfer"] > 0
