"""Tests for the Chrome-trace and folded-stack exporters (repro.obs.export)."""

import json

import pytest

from repro.bench.iobench import IObench
from repro.kernel.config import SystemConfig
from repro.obs.export import (
    CHROME_SCHEMA, chrome_trace, chrome_trace_json, folded_stacks,
)
from repro.sim.engine import Engine
from repro.sim.trace import Tracer, load_jsonl
from repro.units import MB


def make_tracer():
    eng = Engine()
    return eng, Tracer(eng, enabled=True)


def ms(n):
    return n * 1e-3


def x_events(doc):
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


# -- chrome trace structure ----------------------------------------------------

def test_chrome_trace_request_track_and_event_shape():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=42)
    tr.record_span("queue_wait", ms(1), ms(3), parent=root, buf=7)
    doc = chrome_trace(tr)
    assert doc["otherData"]["schema"] == CHROME_SCHEMA
    events = x_events(doc)
    assert len(events) == 2
    for event in events:
        assert event["pid"] == 1
        assert event["tid"] == 42  # tid = request id
        assert set(event) >= {"name", "cat", "ph", "ts", "dur", "args"}
    wait = next(e for e in events if e["name"] == "queue_wait")
    assert wait["cat"] == "queue_wait"
    assert wait["ts"] == pytest.approx(1000.0)  # microseconds
    assert wait["dur"] == pytest.approx(2000.0)
    assert wait["args"]["buf"] == 7
    assert wait["args"]["parent"] == root.id


def test_chrome_trace_member_io_moves_to_disk_track():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=1)
    mio = tr.record_span("disk_io[m2]", ms(1), ms(6), parent=root)
    tr.record_span("service", ms(2), ms(5), parent=mio)
    doc = chrome_trace(tr)
    events = {e["name"]: e for e in x_events(doc)}
    assert events["read"]["tid"] == 1
    # The member I/O and its whole subtree land on the disk[m2] track.
    assert events["disk_io[m2]"]["tid"] >= 1_000_000
    assert events["service"]["tid"] == events["disk_io[m2]"]["tid"]
    names = {e["args"]["name"]: e.get("tid")
             for e in doc["traceEvents"] if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert names["disk[m2]"] == events["disk_io[m2]"]["tid"]


def test_chrome_trace_rootless_spans_get_named_tracks():
    _, tr = make_tracer()
    tr.record_span("nfs_server", ms(0), ms(2), op="read")
    tr.record_span("nfs_server", ms(3), ms(4), op="write")
    doc = chrome_trace(tr)
    events = x_events(doc)
    tids = {e["tid"] for e in events}
    assert len(tids) == 1 and min(tids) >= 1_000_000
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert names == ["nfs_server"]


def test_chrome_trace_open_span_policy():
    _, tr = make_tracer()
    open_root = tr.record_span("read", ms(0), ms(1), request=1)
    open_root.end = None
    done = tr.record_span("write", ms(0), ms(5), request=2)
    leaked = tr.record_span("queue_wait", ms(1), ms(2), parent=done)
    leaked.end = None
    doc = chrome_trace(tr)
    assert doc["otherData"]["open_roots"] == 1
    assert doc["otherData"]["open_spans"] == 1
    events = {e["name"]: e for e in x_events(doc)}
    assert "read" not in events  # open root excluded
    # Leaked child clamped to its root's end: 1 ms .. 5 ms.
    assert events["queue_wait"]["dur"] == pytest.approx(4000.0)


# -- folded stacks -------------------------------------------------------------

def test_folded_stacks_lines_and_values():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=1)
    gp = tr.record_span("getpage", ms(2), ms(8), parent=root)
    io = tr.record_span("disk_io", ms(3), ms(7), parent=gp)
    tr.record_span("queue_wait", ms(3), ms(5), parent=io)
    text = folded_stacks(tr)
    lines = text.splitlines()
    assert lines == sorted(lines)
    table = {}
    for line in lines:
        stack, value = line.rsplit(" ", 1)
        table[stack] = int(value)  # integer microseconds
    assert table["read"] == 4000
    assert table["read;getpage"] == 2000
    assert table["read;getpage;disk_io"] == 2000
    assert table["read;getpage;disk_io;queue_wait"] == 2000
    assert sum(table.values()) == 10_000  # widths sum to total latency
    assert text.endswith("\n")


def test_folded_stacks_empty_trace():
    _, tr = make_tracer()
    assert folded_stacks(tr) == ""


# -- acceptance: byte-identical same-seed exports ------------------------------

def run_traced_fsr():
    bench = IObench(SystemConfig.by_name("C"), file_size=1 * MB,
                    random_ops=16, seed=1991, trace_phase="FSR")
    bench.run()
    return bench.system.tracer


@pytest.fixture(scope="module")
def two_runs():
    return run_traced_fsr(), run_traced_fsr()


def test_same_seed_chrome_export_byte_identical(two_runs):
    a, b = two_runs
    text_a, text_b = chrome_trace_json(a), chrome_trace_json(b)
    assert text_a == text_b
    doc = json.loads(text_a)  # and it is valid, loadable JSON
    assert doc["otherData"]["schema"] == CHROME_SCHEMA
    assert len(x_events(doc)) > 0


def test_same_seed_folded_export_byte_identical(two_runs):
    a, b = two_runs
    assert folded_stacks(a) == folded_stacks(b)
    assert "read;getpage" in folded_stacks(a)


def test_same_seed_jsonl_export_byte_identical(two_runs):
    a, b = two_runs
    assert a.to_jsonl() == b.to_jsonl()


def test_exports_survive_jsonl_round_trip(two_runs):
    live, _ = two_runs
    reloaded = load_jsonl(live.to_jsonl())
    assert chrome_trace_json(reloaded) == chrome_trace_json(live)
    assert folded_stacks(reloaded) == folded_stacks(live)
