"""Tests for critical-path extraction (repro.obs.critpath)."""

import pytest

from repro.bench.iobench import IObench
from repro.kernel.config import SystemConfig
from repro.obs.attrib import attribution_table
from repro.obs.critpath import (
    critical_path, critical_paths, span_category, verify_against_attribution,
    verify_conservation,
)
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.units import MB


def make_tracer():
    eng = Engine()
    return eng, Tracer(eng, enabled=True)


def ms(n):
    return n * 1e-3


# -- unit sweeps ---------------------------------------------------------------

def test_single_chain_blames_each_interval():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=1)
    svc = tr.record_span("service", ms(2), ms(8), parent=root)
    tr.record_span("rotation_seek", ms(2), ms(5), parent=svc)
    tr.record_span("transfer", ms(5), ms(8), parent=svc)

    path = critical_path(tr, root)
    assert path.latency == pytest.approx(ms(10))
    assert path.path_time == pytest.approx(path.latency)
    cats = path.categories()
    assert cats["cpu"] == pytest.approx(ms(4))  # 0-2 and 8-10 on the root
    assert cats["rotation_seek"] == pytest.approx(ms(3))
    assert cats["transfer"] == pytest.approx(ms(3))
    assert cats["other_io"] == 0.0  # service fully covered by its children
    assert path.dominant() == "cpu"
    assert [seg.span.name for seg in path.segments] == [
        "read", "rotation_seek", "transfer", "read"]


def test_service_own_time_is_other_io():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(6), request=1)
    tr.record_span("service", ms(1), ms(5), parent=root)
    cats = critical_path(tr, root).categories()
    assert cats["other_io"] == pytest.approx(ms(4))
    assert cats["cpu"] == pytest.approx(ms(2))


def test_overlapping_sibling_waits_agree_with_attrib():
    # Two concurrent member I/Os under one request (clustered readahead):
    # the wait spans overlap, and the sweep must still agree with attrib's
    # priority rules (queue_wait beats transfer on the category tiebreak).
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=1)
    io_a = tr.record_span("disk_io", ms(1), ms(4), parent=root)
    tr.record_span("queue_wait", ms(1), ms(4), parent=io_a)
    io_b = tr.record_span("disk_io", ms(2), ms(7), parent=root)
    svc = tr.record_span("service", ms(2), ms(7), parent=io_b)
    tr.record_span("transfer", ms(2), ms(6), parent=svc)

    report = critical_paths(tr)
    assert verify_conservation(report) == []
    assert verify_against_attribution(tr, report) == []
    cats = report.paths[0].categories()
    assert cats["queue_wait"] == pytest.approx(ms(3))
    assert cats["transfer"] == pytest.approx(ms(2))  # only 4..6 survives
    assert cats["other_io"] == pytest.approx(ms(1))  # service 6..7
    assert cats["cpu"] == pytest.approx(ms(4))


def test_deepest_structural_span_wins_cpu_stretches():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(6), request=1)
    gp = tr.record_span("getpage", ms(1), ms(5), parent=root)
    tr.record_span("cluster_read", ms(2), ms(3), parent=gp)
    names = [seg.span.name for seg in critical_path(tr, root).segments]
    assert names == ["read", "getpage", "cluster_read", "getpage", "read"]


# -- open spans ----------------------------------------------------------------

def test_open_root_raises_and_is_counted_by_report():
    _, tr = make_tracer()
    open_root = tr.record_span("read", ms(0), ms(1), request=1)
    open_root.end = None
    tr.record_span("write", ms(0), ms(2), request=2)
    with pytest.raises(ValueError):
        critical_path(tr, open_root)
    report = critical_paths(tr)
    assert report.open_roots == 1
    assert [p.root.name for p in report.paths] == ["write"]
    assert "1 request(s) still open" in report.render()


def test_open_descendant_clamped_to_root_end_and_counted():
    _, tr = make_tracer()
    root = tr.record_span("read", ms(0), ms(10), request=1)
    leaked = tr.record_span("queue_wait", ms(4), ms(5), parent=root)
    leaked.end = None
    path = critical_path(tr, root)
    assert path.open_spans == 1
    assert path.path_time == pytest.approx(path.latency)
    # The leaked wait is clamped to the root's end, never zeroed.
    assert path.categories()["queue_wait"] == pytest.approx(ms(6))
    report = critical_paths(tr)
    assert report.open_spans == 1
    assert "open child span(s)" in report.render()


# -- report shape --------------------------------------------------------------

def test_report_by_kind_and_top():
    _, tr = make_tracer()
    for i, latency in enumerate((ms(5), ms(20), ms(1))):
        tr.record_span("read", 0.0, latency, request=i + 1)
    tr.record_span("write", 0.0, ms(3), request=9)
    report = critical_paths(tr)
    table = report.by_kind()
    assert list(table) == ["read", "write"]
    assert table["read"]["requests"] == 3
    assert table["read"]["total"] == pytest.approx(ms(26))
    top = report.top(2)
    assert [p.latency for p in top] == [pytest.approx(ms(20)),
                                        pytest.approx(ms(5))]
    kinds_only = critical_paths(tr, kinds=["write"])
    assert [p.root.name for p in kinds_only.paths] == ["write"]
    doc = report.to_json()
    assert doc["requests"] == 4
    assert doc["slowest"][0]["latency"] == pytest.approx(ms(20))


def test_span_category_defaults():
    assert span_category("queue_wait") == "queue_wait"
    assert span_category("mem_wait") == "throttle_wait"
    assert span_category("service") == "other_io"
    assert span_category("read") == "cpu"
    assert span_category("disk_io[m2]") == "cpu"


# -- acceptance: seeded config-C iobench read phase ---------------------------

@pytest.fixture(scope="module")
def traced_fsr():
    bench = IObench(SystemConfig.by_name("C"), file_size=1 * MB,
                    random_ops=32, seed=1991, trace_phase="FSR")
    bench.run()
    return bench.system.tracer


def test_iobench_fsr_conservation(traced_fsr):
    report = critical_paths(traced_fsr)
    assert report.paths, "traced FSR phase produced no completed requests"
    assert report.open_roots == 0
    assert report.open_spans == 0
    assert verify_conservation(report) == []
    for path in report.paths:
        assert path.path_time == pytest.approx(path.latency, abs=1e-9)


def test_iobench_fsr_agrees_with_attribution(traced_fsr):
    report = critical_paths(traced_fsr)
    assert verify_against_attribution(traced_fsr, report) == []
    # And the cross-check is not vacuous: the trace has real disk time.
    table = attribution_table(traced_fsr)
    assert table["read"]["categories"]["rotation_seek"] > 0
