"""Tests for the simulated-time telemetry recorder (repro.obs.timeseries)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import SERIES_SCHEMA, TelemetryRecorder
from repro.sim.engine import Engine
from repro.sim.stats import Histogram, StatSet, TimeWeighted


class FakeSystem:
    """The recorder only touches ``engine`` and ``metrics``."""

    def __init__(self):
        self.engine = Engine()
        self.metrics = MetricsRegistry(self.engine)


def drive(engine, seconds):
    """Run the engine up to ``seconds`` with a non-daemon anchor, so the
    daemon sampler timer actually gets instants to fire at."""

    def anchor():
        yield engine.timeout(seconds)

    engine.run_process(anchor())


def test_counter_series_is_windowed_deltas():
    sys_ = FakeSystem()
    stats = StatSet()
    sys_.metrics.register("io", stats)
    recorder = TelemetryRecorder(sys_, interval=0.010).start()

    def workload():
        for _ in range(4):
            stats.incr("reads", 3)
            yield sys_.engine.timeout(0.010)

    sys_.engine.run_process(workload())
    series = recorder.series("io", "reads")
    assert len(series) == 4
    # Each tick reports the delta since the last tick, not the total.
    assert [v for _, v in series] == [3.0, 3.0, 3.0, 3.0]
    assert [t for t, _ in series] == pytest.approx([0.01, 0.02, 0.03, 0.04])
    assert recorder.keys("io") == ["reads"]


def test_gauge_series_window_average_beats_aliasing():
    sys_ = FakeSystem()
    gauge = sys_.metrics.gauge("disk.qd")
    recorder = TelemetryRecorder(sys_, interval=0.010).start()

    def workload():
        # Busy only *between* sample instants: up at 2 ms, down at 7 ms.
        yield sys_.engine.timeout(0.002)
        gauge.set(4.0)
        yield sys_.engine.timeout(0.005)
        gauge.set(0.0)
        yield sys_.engine.timeout(0.013)

    sys_.engine.run_process(workload())
    values = [v for _, v in recorder.series("disk.qd", "value")]
    avgs = [v for _, v in recorder.series("disk.qd", "avg")]
    # Instantaneous sampling aliases to zero at both ticks...
    assert values[0] == 0.0 and values[1] == 0.0
    # ...but the window average sees the 5 ms of depth 4: 4 * 5/10 = 2.
    assert avgs[0] == pytest.approx(2.0)
    assert avgs[1] == pytest.approx(0.0)


def test_histogram_series_reports_window_count_and_mean():
    sys_ = FakeSystem()
    hist = Histogram()
    sys_.metrics.register("lat", hist)
    recorder = TelemetryRecorder(sys_, interval=0.010).start()

    def workload():
        hist.observe(1.0)
        hist.observe(3.0)
        yield sys_.engine.timeout(0.010)
        hist.observe(10.0)
        yield sys_.engine.timeout(0.010)

    sys_.engine.run_process(workload())
    counts = [v for _, v in recorder.series("lat", "count")]
    means = [v for _, v in recorder.series("lat", "mean")]
    assert counts == [2.0, 1.0]
    assert means[0] == pytest.approx(2.0)
    assert means[1] == pytest.approx(10.0)


def test_callable_namespace_flattened():
    sys_ = FakeSystem()
    sys_.metrics.register(
        "vm", lambda: {"freemem": 128, "nested": {"hits": 3}, "name": "x"})
    recorder = TelemetryRecorder(sys_, interval=0.010).start()
    drive(sys_.engine, 0.010)
    assert recorder.series("vm", "freemem") == [(pytest.approx(0.01), 128.0)]
    assert recorder.series("vm", "nested.hits")[0][1] == 3.0
    assert recorder.keys("vm") == ["freemem", "nested.hits"]


def test_namespace_selection_and_typo_raises():
    sys_ = FakeSystem()
    sys_.metrics.register("a", StatSet())
    sys_.metrics.register("b", StatSet())
    recorder = TelemetryRecorder(sys_, namespaces=["a"]).start()
    drive(sys_.engine, 0.010)
    assert recorder.rows[0].keys() == {"a"}
    with pytest.raises(KeyError):
        TelemetryRecorder(sys_, namespaces=["a", "typo"]).start()
    with pytest.raises(ValueError):
        TelemetryRecorder(sys_, interval=0.0)


def test_stop_halts_sampling_but_keeps_series():
    sys_ = FakeSystem()
    sys_.metrics.register("io", StatSet())
    recorder = TelemetryRecorder(sys_, interval=0.010).start()
    drive(sys_.engine, 0.025)
    assert recorder.samples_taken == 2
    recorder.stop()
    drive(sys_.engine, 0.050)
    assert recorder.samples_taken == 2
    assert len(recorder.times) == 2
    recorder.stop()  # idempotent


def test_sampler_is_a_daemon_and_costs_no_simulated_time():
    sys_ = FakeSystem()
    sys_.metrics.register("io", StatSet())
    TelemetryRecorder(sys_, interval=0.010).start()
    drive(sys_.engine, 0.035)
    # The engine went idle at the anchor's end: the sampler never kept
    # the world alive past the last real work.
    assert sys_.engine.now == pytest.approx(0.035)


def test_to_json_document():
    sys_ = FakeSystem()
    sys_.metrics.register("io", StatSet())
    recorder = TelemetryRecorder(sys_, interval=0.010).start()
    drive(sys_.engine, 0.020)
    doc = recorder.to_json()
    assert doc["schema"] == SERIES_SCHEMA
    assert doc["interval"] == pytest.approx(0.010)
    assert doc["namespaces"] == ["io"]
    assert doc["samples"] == 2
    assert len(doc["times"]) == len(doc["rows"]) == 2


def test_render_sparkline():
    sys_ = FakeSystem()
    stats = StatSet()
    sys_.metrics.register("io", stats)
    recorder = TelemetryRecorder(sys_, interval=0.010).start()

    def workload():
        for i in range(5):
            stats.incr("reads", i)
            yield sys_.engine.timeout(0.010)

    sys_.engine.run_process(workload())
    text = recorder.render("io", "reads")
    assert text.startswith("io.reads [")
    assert "|" in text
    assert recorder.render("io", "nothing-sampled").count("|") == 2
