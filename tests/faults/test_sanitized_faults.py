"""Pinned regressions: the bugs the sanitizer sweep surfaced.

Each test drives an error path that used to leak — an open span on a
request that finished, a buf that vanished in split-retry accounting, a
throttle slot stuck after a failed write-behind — and then lets the
sanitizer's checks assert the books balance.  These are *pinned*: if the
try/finally or credit-on-error disciplines regress, the checkpoint (or
the span-leak ledger) fails here before any campaign does.
"""

import pytest

from repro.disk import Buf, BufOp, DiskDriver, DiskGeometry, RotationalDisk
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.kernel import Proc, System, SystemConfig
from repro.sim import Engine, SimulationError
from repro.units import KB


def small_config(**overrides):
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32), **overrides)


def make_faulty_system(plan):
    system = System(small_config(), fault_plan=plan)
    system.sanitizer.enabled = True
    system.mkfs()
    system.run(system.mount_fs())
    return system


# -- span leaks on EIO paths (ufs/io.py, vm/pagecache.py) --------------------

def test_failing_writes_leak_no_spans_or_slots():
    # Every write attempt fails (retries exhausted -> hard EIO at fsync).
    # The biowait and throttle_wait spans must still close, the iodone
    # must still credit the throttle, and every buf must settle.
    system = make_faulty_system(FaultPlan(write_transient_p=1.0))
    system.tracer.enabled = True
    proc = Proc(system)

    def work():
        fd = yield from proc.creat("/doomed")
        yield from proc.write(fd, bytes(32 * KB))
        yield from proc.fsync(fd)

    with pytest.raises((ReproError, SimulationError)):
        system.run(work(), name="doomed-write")
    system.engine.run()  # drain any async completions to idle
    system.tracer.enabled = False

    assert system.driver.stats["errors"] > 0  # the EIO path really ran
    assert system.requests.span_leaks == []
    assert not system.requests.open
    system.sanitizer.checkpoint("after_write_eio", idle=True)


def test_failing_reads_leak_no_spans():
    # Write durably first, then make every read attempt fail: the read
    # request must complete with the error and no open spans.
    plan = FaultPlan()
    system = make_faulty_system(plan)
    proc = Proc(system)

    def put():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(range(256)) * 64)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(put())
    system.run(system.mount.namei("/f"))  # warm the name cache
    for page in list(system.pagecache.frames):
        if page.named and not page.locked and not page.dirty:
            system.pagecache.destroy(page)  # cold cache: reads hit the disk
    system.tracer.enabled = True
    plan.read_transient_p = 1.0

    def get():
        fd = yield from proc.open("/f")
        yield from proc.read(fd, 8 * KB)

    with pytest.raises((ReproError, SimulationError)):
        system.run(get(), name="doomed-read")
    system.engine.run()
    system.tracer.enabled = False
    plan.read_transient_p = 0.0

    assert system.requests.span_leaks == []
    assert not system.requests.open
    system.sanitizer.checkpoint("after_read_eio", idle=True)


def test_memory_wait_span_closes_on_teardown():
    # The historical leak: wait_for_memory began a mem_wait span and the
    # generator was torn down (close/interrupt) before the wait returned.
    from repro.sim import Tracer
    from repro.sim.request import RequestRegistry
    from repro.vm.pagecache import PageCache

    eng = Engine()
    tracer = Tracer(eng, enabled=True)
    registry = RequestRegistry(eng, tracer)
    pc = PageCache(eng, 64 * KB, page_size=8 * KB)

    class VN:
        vnode_id = 1

    for i in range(8):
        pc.allocate(VN(), i * 8 * KB)  # exhaust memory
    req = registry.start("write")
    gen = pc.wait_for_memory(req=req)
    next(gen)  # parked on the memory_wanted wait, span open
    gen.close()  # teardown without the wait ever firing
    req.complete()
    assert registry.span_leaks == []


# -- buf balance through coalesce and split-retry ----------------------------

def driver_stack(engine, plan=None, **kw):
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom, fault_plan=plan)
    return disk, DiskDriver(engine, disk, **kw)


def test_split_retry_settles_every_issued_buf():
    eng = Engine()
    # The coalesced parent burns all retries and is split; both children
    # then succeed.  The parent was never *issued* (the driver built it),
    # so exactly the two strategy()'d bufs must settle.
    plan = FaultPlan(transient_at=[0.0] * 5)
    _, driver = driver_stack(eng, plan, coalesce=True)
    b1 = Buf(eng, BufOp.WRITE, 8, 2, data=b"\x11" * 1024, async_=True)
    b2 = Buf(eng, BufOp.WRITE, 10, 2, data=b"\x22" * 1024, async_=True)
    driver.strategy(b1)
    driver.strategy(b2)
    eng.run()
    assert driver.stats["split_retries"] == 1
    assert driver.outstanding == {}
    assert driver.stats["tracked_issued"] == 2
    assert driver.stats["tracked_completed"] == 2


def test_unrecoverable_split_still_settles_children():
    eng = Engine()
    plan = FaultPlan(read_transient_p=1.0)
    _, driver = driver_stack(eng, plan, coalesce=True, max_retries=2)
    r1 = Buf(eng, BufOp.READ, 8, 2, async_=True)
    r2 = Buf(eng, BufOp.READ, 10, 2, async_=True)
    driver.strategy(r1)
    driver.strategy(r2)
    eng.run()
    assert r1.error is not None and r2.error is not None
    assert driver.outstanding == {}
    assert driver.stats["tracked_issued"] == 2
    assert driver.stats["tracked_completed"] == 2


# -- NFS deferred-error path: the throttle slot comes back -------------------

def test_nfs_write_behind_error_returns_throttle_slot():
    from repro.faults.netplan import NetFaultPlan
    from repro.nfs.world import build_world

    # A long partition makes the async biod pushes on a soft mount fail;
    # the deferred error is remembered, but the throttle slot must come
    # back or the file wedges at the limit forever.
    plan = NetFaultPlan()
    client, server_sys, mount = build_world(fault_plan=plan, soft=True,
                                            timeo=0.1, retrans=2)
    client.sanitizer.enabled = True
    client.sanitizer.throttle_sources.append(
        lambda: ((f"nfs handle {h}", vn.throttle)
                 for h, vn in mount._vnodes.items()))
    proc = Proc(client, mount=mount)

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(16 * KB))

    plan.partitions = [(client.now, 1e9)]
    try:
        client.run(work(), name="nfs-doomed")
    except ReproError:
        pass
    client.engine.run()
    assert (mount.stats["write_behind_errors"] > 0
            or mount.stats["rpc_timeouts"] > 0)  # the error path really ran
    for _handle, vn in mount._vnodes.items():
        assert vn.throttle.in_flight == 0
    client.sanitizer.checkpoint("after_nfs_error", idle=True)
