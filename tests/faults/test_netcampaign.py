"""Tests for the network-fault campaign."""

import pytest

from repro.faults import NetCampaign, NetFaultPlan


def test_small_sweep_holds_every_invariant():
    campaign = NetCampaign(seeds=4)
    stats = campaign.run()
    assert stats.ok
    assert stats.runs == 4
    assert stats.acked_files > 0 and stats.acked_bytes > 0
    assert stats.removes > 0
    # The sweep must actually exercise the hardening, not idle through.
    assert stats.retransmits > 0
    assert stats.drops_injected > 0
    assert stats.drc_hits > 0
    # The statset mirror carries the same numbers.
    assert campaign.statset["retransmits"] == stats.retransmits
    assert campaign.statset["lost_acked_writes"] == 0


def test_same_base_seed_reproduces_the_sweep():
    a = NetCampaign(seeds=3).run()
    b = NetCampaign(seeds=3).run()
    assert a.as_dict() == b.as_dict()
    assert a.determinism_failures == 0  # the built-in replay check agreed


def test_plan_derivation_is_seed_stable():
    campaign = NetCampaign(seeds=1)
    campaign._window = (0.05, 0.5)
    p1, p2 = campaign._plan_for(9), campaign._plan_for(9)
    assert (p1.drop_p, p1.partitions, p1.server_crash_at) == \
        (p2.drop_p, p2.partitions, p2.server_crash_at)
    assert isinstance(p1, NetFaultPlan)


def test_validation():
    with pytest.raises(ValueError):
        NetCampaign(seeds=0)
    with pytest.raises(ValueError):
        NetCampaign(nfiles=1)
