"""The crash-point exploration engine: enumeration, verification,
determinism, and the pinning test for the relocation durability bug.
"""

import pytest

from repro.faults import CrashpointExplorer, PRESETS, run_crashpoints


def test_presets_are_wired():
    for name, preset in PRESETS.items():
        assert preset.name == name
        assert preset.description
    assert "smoke" in PRESETS and "relocate" in PRESETS


def test_explorer_rejects_bad_window():
    with pytest.raises(ValueError):
        CrashpointExplorer(PRESETS["smoke"], window=0)


@pytest.fixture(scope="module")
def smoke_report():
    return run_crashpoints(preset="smoke", seed=0, sanitize=True)


def test_smoke_meets_the_coverage_floor(smoke_report):
    """The acceptance bar: >= 200 distinct crash states, all held to
    their durability contracts after fsck repair."""
    r = smoke_report
    assert r.distinct_states >= 200
    assert not r.states_truncated
    assert r.violations == [] and r.ok
    # The enumeration actually exercised the interesting machinery:
    # volatile states, torn variants, and fsck repairs on crash images.
    assert r.raw_states > r.distinct_states
    assert r.fsck_repairs > 0
    assert r.durability_points > 0


def test_smoke_report_is_json_ready(smoke_report, tmp_path):
    import json

    d = smoke_report.to_json()
    text = json.dumps(d, sort_keys=True)
    assert json.loads(text)["distinct_states"] == smoke_report.distinct_states
    assert json.loads(text)["ok"] is True


def test_same_seed_same_digest():
    """Determinism: the full exploration (state hashes + verdicts) is a
    pure function of (preset, seed)."""
    a = run_crashpoints(preset="relocate", seed=7)
    b = run_crashpoints(preset="relocate", seed=7)
    assert a.digest == b.digest
    assert a.distinct_states == b.distinct_states
    assert (a.raw_states, a.crash_points) == (b.raw_states, b.crash_points)


def test_different_seed_different_payloads():
    a = run_crashpoints(preset="relocate", seed=0)
    b = run_crashpoints(preset="relocate", seed=1)
    # Payloads differ, so the crash-state images (and their digest) do too.
    assert a.digest != b.digest


def test_relocation_bug_stays_fixed():
    """Pinning test for the real bug this engine surfaced.

    Growing a fragment-tail relocates the run: the allocator frees the old
    fragments while the on-disk inode still points at them and the
    relocated copy sits in the volatile write cache.  If another file
    reuses the freed fragments and flushes, a crash leaves the durable
    inode pointing at foreign bytes — promised (fsynced) data replaced by
    another file's content.  The fix makes the relocated run and the new
    inode pointers durable (write + FLUSH + FUA inode + FLUSH) before the
    old fragments can be handed out again.
    """
    explorer = CrashpointExplorer(PRESETS["relocate"], seed=0, sanitize=True)
    report = explorer.run()
    # The workload really took the relocation path (else this test guards
    # nothing) ...
    assert explorer.recorded is not None
    assert explorer.recorded.mount.stats["relocation_barriers"] > 0
    # ... and with the barriers in place no crash state can lose promised
    # bytes to fragment reuse.
    assert report.violations == [] and report.ok
    assert report.distinct_states > 0


def test_ordered_metadata_preset_holds():
    """B_ORDER metadata mode: barriers (not FUA) order the metadata; the
    contract folding treats namespace ops as uncertain until a flush."""
    report = run_crashpoints(preset="ordered", seed=0)
    assert report.violations == [] and report.ok
    assert report.distinct_states > 0
