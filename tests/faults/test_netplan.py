"""Tests for the network fault plan (deterministic wire trouble)."""

import pytest

from repro.faults import NetDecision, NetFaultPlan
from repro.faults.netplan import ANY, DOWN, UP


def _history(plan, n=200, direction=UP):
    out = []
    for i in range(n):
        d = plan.decide(direction, now=i * 0.01)
        out.append((d.drop, d.duplicate, d.corrupt, d.delay)
                   if d is not None else None)
    return out


# -- determinism ---------------------------------------------------------------

def test_same_seed_same_history():
    kw = dict(drop_p=0.1, duplicate_p=0.05, corrupt_p=0.05, reorder_p=0.1,
              spike_p=0.02)
    a = _history(NetFaultPlan(seed=7, **kw))
    b = _history(NetFaultPlan(seed=7, **kw))
    assert a == b
    assert any(h is not None for h in a)  # the dice really roll


def test_different_seed_different_history():
    kw = dict(drop_p=0.2, corrupt_p=0.2)
    assert (_history(NetFaultPlan(seed=1, **kw))
            != _history(NetFaultPlan(seed=2, **kw)))


# -- per-message probabilities -------------------------------------------------

def test_fault_free_plan_decides_nothing():
    assert _history(NetFaultPlan()) == [None] * 200


def test_disabled_plan_decides_nothing():
    plan = NetFaultPlan(drop_p=1.0, partitions=[(0.0, 10.0)])
    plan.disabled = True
    assert _history(plan) == [None] * 200
    assert plan.stats.as_dict() == {}


def test_drop_probability_one_drops_everything():
    plan = NetFaultPlan(drop_p=1.0)
    assert all(h == (True, False, False, 0.0) for h in _history(plan))
    assert plan.stats["drops"] == 200


def test_stats_count_each_kind():
    plan = NetFaultPlan(seed=3, drop_p=0.2, duplicate_p=0.2, corrupt_p=0.2,
                        reorder_p=0.2, spike_p=0.2)
    _history(plan, n=500)
    for key in ("drops", "duplicates", "corrupts", "reorders", "spikes"):
        assert plan.stats[key] > 0


# -- scheduled one-shots -------------------------------------------------------

def test_scheduled_fault_fires_once_at_its_time():
    plan = NetFaultPlan(scheduled=[(0.5, UP, "drop")])
    assert plan.decide(UP, now=0.4) is None
    hit = plan.decide(UP, now=0.5)
    assert hit == NetDecision(drop=True)
    assert plan.decide(UP, now=0.6) is None  # consumed


def test_scheduled_fault_respects_direction():
    plan = NetFaultPlan(scheduled=[(0.0, DOWN, "corrupt")])
    assert plan.decide(UP, now=1.0) is None  # wrong direction: not consumed
    assert plan.decide(DOWN, now=1.0) == NetDecision(corrupt=True)


def test_scheduled_any_matches_either_direction():
    plan = NetFaultPlan(scheduled=[(0.0, ANY, "duplicate")])
    assert plan.decide(DOWN, now=0.1) == NetDecision(duplicate=True)


def test_scheduled_delays_use_configured_magnitudes():
    plan = NetFaultPlan(reorder_delay=0.007, spike_delay=0.9,
                        scheduled=[(0.0, ANY, "reorder"), (0.0, ANY, "spike")])
    assert plan.decide(UP, now=0.0).delay == 0.007
    assert plan.decide(UP, now=0.0).delay == 0.9


# -- partitions ----------------------------------------------------------------

def test_partition_window_drops_both_directions():
    plan = NetFaultPlan(partitions=[(1.0, 2.0)])
    assert plan.decide(UP, now=0.5) is None
    assert plan.decide(UP, now=1.5).drop
    assert plan.decide(DOWN, now=1.5).drop
    assert plan.decide(UP, now=2.0) is None  # end is exclusive
    assert plan.stats["partition_drops"] == 2


def test_link_down():
    plan = NetFaultPlan(partitions=[(1.0, 2.0), (5.0, 6.0)])
    assert not plan.link_down(0.9)
    assert plan.link_down(1.0)
    assert not plan.link_down(3.0)
    assert plan.link_down(5.5)


# -- server crash windows ------------------------------------------------------

def test_server_down_window():
    plan = NetFaultPlan(server_crash_at=[2.0], server_reboot_delay=0.5)
    assert not plan.server_down(1.9)
    assert plan.server_down(2.0)
    assert plan.server_down(2.49)
    assert not plan.server_down(2.5)  # rebooted


def test_server_crash_epoch_counts_past_crashes():
    plan = NetFaultPlan(server_crash_at=[1.0, 3.0])
    assert plan.server_crash_epoch(0.5) == 0
    assert plan.server_crash_epoch(1.0) == 1
    assert plan.server_crash_epoch(2.9) == 1
    assert plan.server_crash_epoch(3.1) == 2


# -- validation ----------------------------------------------------------------

def test_probabilities_validated():
    with pytest.raises(ValueError):
        NetFaultPlan(drop_p=1.5)
    with pytest.raises(ValueError):
        NetFaultPlan(drop_p=0.6, corrupt_p=0.6)  # sum > 1
    with pytest.raises(ValueError):
        NetFaultPlan(reorder_delay=-1)
    with pytest.raises(ValueError):
        NetFaultPlan(server_reboot_delay=-0.1)
    with pytest.raises(ValueError):
        NetFaultPlan(partitions=[(2.0, 1.0)])  # empty window
    with pytest.raises(ValueError):
        NetFaultPlan(scheduled=[(0.0, "sideways", "drop")])
    with pytest.raises(ValueError):
        NetFaultPlan(scheduled=[(0.0, UP, "teleport")])
