"""Degraded mirrors: member death, survivor service, resync, campaign.

A mirror's whole claim is that one dead member costs throughput, not
bytes.  These tests kill a member mid-workload (FaultPlan ``die_at``) and
hold the volume to that claim end to end: degraded reads and writes,
blame on the right member, zero acknowledged loss from the survivor
alone, and a resync that converges to byte-identical members.
"""

import pytest

from repro.faults import FaultPlan, MirrorKillCampaign
from repro.faults.memberkill import default_memberkill_config
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.ufs.fsck import fsck
from repro.units import KB


def _mirror_system(die_at=0.05, victim=1, **cfg_kw):
    cfg = SystemConfig(layout="mirror:2", write_cache=True, checksums=True,
                       **cfg_kw)
    plans = [None, None]
    plans[victim] = FaultPlan(seed=1, die_at=die_at)
    return System.booted(cfg, fault_plan=plans)


def _put(proc, path, payload):
    fd = yield from proc.creat(path)
    yield from proc.write(fd, payload)
    yield from proc.fsync(fd)
    yield from proc.close(fd)


def _get(proc, path):
    fd = yield from proc.open(path)
    data = b""
    while True:
        chunk = yield from proc.read(fd, 32 * KB)
        if not chunk:
            break
        data += chunk
    yield from proc.close(fd)
    return data


def test_mirror_survives_member_death():
    system = _mirror_system(die_at=0.05, victim=1)
    proc = Proc(system, name="t")
    victim = system.volume.members[1]
    survivor = system.volume.members[0]
    files = {}
    for i in range(16):
        payload = bytes([i + 1]) * (24 * KB)
        system.run(_put(proc, f"/f{i}", payload), name=f"put{i}")
        files[f"/f{i}"] = payload
        if victim.failed and i >= 8:
            break
    assert victim.failed, "the scheduled death never fired"
    assert survivor.live
    # Blame landed on the victim; the survivor's health is clean.
    assert victim.health.failures > 0
    assert survivor.health.failures == 0
    # Every acknowledged file reads back through the degraded mirror.
    for path, payload in files.items():
        assert system.run(_get(proc, path), name="get") == payload
    # Degraded writes were counted (post-death fsyncs succeeded on one leg).
    assert system.volume.stats["degraded_writes"] > 0


def test_survivor_alone_is_a_complete_image():
    system = _mirror_system(die_at=0.04, victim=0)
    proc = Proc(system, name="t")
    files = {}
    for i in range(12):
        payload = bytes([0x40 + i]) * (16 * KB)
        system.run(_put(proc, f"/s{i}", payload), name=f"put{i}")
        files[f"/s{i}"] = payload
    assert system.volume.members[0].failed
    system.sync()
    clone = system.volume.members[1].store.clone()
    assert fsck(clone).clean
    solo = System.remounted(
        clone, system.config.with_(layout="single", write_cache=False))
    sproc = Proc(solo, name="s")
    for path, payload in files.items():
        assert solo.run(_get(sproc, path), name="get") == payload


def test_resync_converges_to_identical_members():
    system = _mirror_system(die_at=0.05, victim=1)
    proc = Proc(system, name="t")
    for i in range(12):
        system.run(_put(proc, f"/r{i}", bytes([i + 1]) * (16 * KB)),
                   name=f"put{i}")
    volume = system.volume
    assert volume.members[1].failed
    system.sync()
    report = system.run(volume.resync(1), name="resync")
    assert report["identical"]
    assert report["verify_failures"] == []
    assert report["sectors_copied"] > 0
    assert volume.members[0].store.digest() == \
           volume.members[1].store.digest()
    assert volume.members[1].live
    # The repaired machine passes fsck and a deep sanitizer checkpoint.
    assert fsck(system.store).clean
    system.sanitizer.checkpoint("test_post_resync", idle=True, deep=True)
    # And the resynced member serves reads again.
    assert system.run(_get(proc, "/r3"), name="get") == bytes([4]) * (16 * KB)


def test_resync_requires_a_live_source():
    from repro.errors import InvalidArgumentError

    system = System.booted(SystemConfig(layout="mirror:2"))
    for member in system.volume.members:
        member.failed = True
    with pytest.raises(InvalidArgumentError):
        system.run(system.volume.resync(0), name="resync")


def test_campaign_single_seed():
    campaign = MirrorKillCampaign(seeds=1, base_seed=0, sanitize=True)
    stats = campaign.run()
    assert stats.ok, stats.as_dict()
    assert stats.kills == 1
    assert stats.acked_files > 0
    assert stats.degraded_files > 0
    record = campaign.records[0]
    assert record["killed"]
    assert record["resync"]["identical"]
    doc = campaign.to_json()
    assert doc["ok"] and len(doc["runs"]) == 1


def test_campaign_rejects_non_mirror_config():
    with pytest.raises(ValueError):
        MirrorKillCampaign(config=default_memberkill_config().with_(
            layout="stripe:2"))
