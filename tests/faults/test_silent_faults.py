"""Silent write faults: the interface says success, the media disagrees —
and only the integrity layer can tell."""

import random

import pytest

from repro.disk import Buf, BufOp
from repro.disk.store import DiskStore
from repro.errors import ChecksumError
from repro.faults import SILENT_KINDS, FaultPlan
from repro.kernel import System
from repro.sim import Engine
from repro.sim.events import EventFailed

from tests.integrity.conftest import checksum_config

SS = 512


def _wbuf(engine, sector, nsectors=1, fill=0xAB, **kw):
    return Buf(engine, BufOp.WRITE, sector, nsectors,
               data=bytes([fill]) * (nsectors * SS), **kw)


def test_plan_validates_silent_parameters():
    with pytest.raises(ValueError):
        FaultPlan(silent_write_p=1.5)
    with pytest.raises(ValueError):
        FaultPlan(misdirect_shift=0)
    with pytest.raises(ValueError):
        FaultPlan(silent_write_at=[(0.0, "gremlins")])


def test_scheduled_silent_faults_fire_in_order_on_writes_only():
    engine = Engine()
    plan = FaultPlan(silent_write_at=[(1.0, "lost"), (2.0, "torn_tail")])
    # Reads never fail silently, and they don't consume the schedule.
    rbuf = Buf(engine, BufOp.READ, 0, 1)
    assert plan.decide_silent(rbuf, 5.0) is None
    assert plan.decide_silent(_wbuf(engine, 0), 0.5) is None  # too early
    assert plan.decide_silent(_wbuf(engine, 0), 1.5) == "lost"
    assert plan.decide_silent(_wbuf(engine, 0), 5.0) == "torn_tail"
    assert plan.decide_silent(_wbuf(engine, 0), 9.0) is None  # exhausted
    assert plan.stats["silent_faults"] == 2
    assert plan.stats["silent_lost"] == 1
    assert plan.stats["silent_torn_tail"] == 1


def test_disabled_silent_faults_never_draw_the_rng():
    # Adding the silent machinery must not perturb existing plans' fault
    # sequences: with silent_write_p == 0 the rng state is untouched.
    engine = Engine()
    plan = FaultPlan(seed=42)
    before = plan._rng.getstate()
    for t in range(50):
        assert plan.decide_silent(_wbuf(engine, t), float(t)) is None
    assert plan._rng.getstate() == before


def test_probabilistic_silent_faults_are_seeded():
    engine = Engine()

    def kinds(seed):
        plan = FaultPlan(seed=seed, silent_write_p=0.5)
        return [plan.decide_silent(_wbuf(engine, t), float(t))
                for t in range(40)]

    run = kinds(7)
    assert run == kinds(7)  # deterministic
    fired = [k for k in run if k is not None]
    assert fired
    assert set(fired) <= set(SILENT_KINDS)


def test_apply_due_bitrot_flips_scheduled_bits():
    store = DiskStore(16, SS)
    store.write(3, bytes([0xFF]) * SS)
    plan = FaultPlan(bitrot_at=[(1.0, 3, 0), (2.0, 3, 9)])
    assert plan.apply_due_bitrot(store, 0.5) == []
    assert plan.apply_due_bitrot(store, 1.5) == [3]
    data = store.read(3, 1)
    assert data[0] == 0xFE  # bit 0 of byte 0 flipped
    assert plan.apply_due_bitrot(store, 9.0) == [3]
    assert store.read(3, 1)[1] == 0xFD  # bit 1 of byte 1
    assert plan.stats["bitrot_flips"] == 2


@pytest.mark.parametrize("kind", SILENT_KINDS)
def test_silent_write_faults_are_caught_by_checksums(kind):
    """End to end: a silently failed write completes 'successfully', yet
    the very next read of that range raises a checksum error, because the
    record table was stamped with what *should* have been written."""
    plan = FaultPlan(silent_write_at=[(0.0, kind)])
    system = System.booted(checksum_config(), fault_plan=plan)
    region = system.disk.integrity
    fs = region.frag_sectors
    # A free data fragment: mkfs/mount ran offline, so the first media
    # write the plan sees is ours.
    used = set(region.stamped_frags())
    frag = region.sb.cg_data_frag(0) + region.frags_per_block
    while frag in used:
        frag += 1
    sector = frag * fs

    payload = bytes(random.Random(kind).randrange(1, 256)
                    for _ in range(fs * SS))
    wbuf = Buf(system.engine, BufOp.WRITE, sector, fs, data=payload,
               fua=True, owner="test")

    def write():
        system.driver.strategy(wbuf)
        yield wbuf.done

    system.run(write())
    assert wbuf.error is None  # the silent fault reported success
    assert plan.stats["silent_faults"] == 1
    assert system.store.read(sector, fs) != payload  # ...but lied

    rbuf = Buf(system.engine, BufOp.READ, sector, fs, owner="test")

    def read():
        system.driver.strategy(rbuf)
        try:
            yield rbuf.done
        except EventFailed as failure:
            cause = failure.args[0] if failure.args else failure
            raise cause from None

    with pytest.raises(ChecksumError):
        system.run(read())
    assert system.disk.stats["checksum_failures"] > 0
