"""Tests for FaultPlan: determinism, the taxonomy, and the remap contract."""

import pytest

from repro.disk import Buf, BufOp
from repro.errors import (
    DiskTimeoutError, MediaError, PowerLossError, TransientDiskError,
)
from repro.faults import FaultKind, FaultPlan
from repro.sim import Engine


def rbuf(eng, sector=8, nsectors=2):
    return Buf(eng, BufOp.READ, sector, nsectors)


def wbuf(eng, sector=8, nsectors=2):
    return Buf(eng, BufOp.WRITE, sector, nsectors, data=bytes(nsectors * 512))


def test_probabilities_validated():
    with pytest.raises(ValueError):
        FaultPlan(read_transient_p=1.5)
    with pytest.raises(ValueError):
        FaultPlan(write_transient_p=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(timeout_hang=-1.0)


def test_same_seed_same_decisions():
    eng = Engine()

    def history(plan):
        out = []
        for i in range(200):
            d = plan.decide(rbuf(eng, sector=i * 2), now=i * 0.01)
            out.append(None if d is None else d.kind)
        return out

    a = history(FaultPlan(seed=7, read_transient_p=0.05))
    b = history(FaultPlan(seed=7, read_transient_p=0.05))
    c = history(FaultPlan(seed=8, read_transient_p=0.05))
    assert a == b
    assert FaultKind.TRANSIENT in a  # the dice really rolled
    assert a != c  # and a different seed rolls differently


def test_transient_probability_respects_direction():
    eng = Engine()
    plan = FaultPlan(read_transient_p=1.0, write_transient_p=0.0)
    read = plan.decide(rbuf(eng), now=0.0)
    assert read is not None and read.kind is FaultKind.TRANSIENT
    assert isinstance(read.error, TransientDiskError)
    assert plan.decide(wbuf(eng), now=0.0) is None


def test_scheduled_faults_fire_once_in_order():
    eng = Engine()
    plan = FaultPlan(transient_at=[0.5, 0.2])
    assert plan.decide(rbuf(eng), now=0.1) is None  # before both triggers
    d1 = plan.decide(rbuf(eng), now=0.3)
    d2 = plan.decide(rbuf(eng), now=0.3)  # second trigger not yet due
    d3 = plan.decide(rbuf(eng), now=0.6)
    d4 = plan.decide(rbuf(eng), now=9.9)  # schedule exhausted
    assert d1 is not None and d1.kind is FaultKind.TRANSIENT
    assert d2 is None
    assert d3 is not None and d3.kind is FaultKind.TRANSIENT
    assert d4 is None


def test_timeout_decision_carries_hang():
    eng = Engine()
    plan = FaultPlan(timeout_at=[0.0], timeout_hang=0.25)
    d = plan.decide(rbuf(eng), now=0.0)
    assert d is not None and d.kind is FaultKind.TIMEOUT
    assert isinstance(d.error, DiskTimeoutError)
    assert d.hang == 0.25


def test_bad_sector_faults_until_remapped():
    eng = Engine()
    plan = FaultPlan(bad_sectors=[9, 40])
    d = plan.decide(rbuf(eng, sector=8, nsectors=4), now=0.0)
    assert d is not None and d.kind is FaultKind.MEDIA
    assert isinstance(d.error, MediaError) and d.error.sector == 9
    # A request not touching a bad sector passes.
    assert plan.decide(rbuf(eng, sector=20, nsectors=4), now=0.0) is None
    # Remap revectors to successive spare slots and clears the defect.
    assert plan.remap(9) == 0
    assert plan.remap(40) == 1
    assert plan.remap(9) is None  # already revectored
    assert plan.remap(123) is None  # never was bad
    assert plan.remapped == {9: 0, 40: 1}
    assert plan.decide(rbuf(eng, sector=8, nsectors=4), now=0.0) is None


def test_power_cut_freezes_and_counts_once():
    eng = Engine()
    plan = FaultPlan(power_cut_time=1.0)
    assert plan.decide(rbuf(eng), now=0.5) is None
    for _ in range(3):
        d = plan.decide(rbuf(eng), now=1.5)
        assert d is not None and d.kind is FaultKind.POWER
        assert isinstance(d.error, PowerLossError)
    assert plan.powered_off
    assert plan.stats["power_faults"] == 1


def test_torn_prefix_is_a_sector_boundary_fraction():
    eng = Engine()
    plan = FaultPlan(power_cut_time=4.0)
    buf = wbuf(eng, sector=0, nsectors=8)
    # Cut halfway through an 8-sector transfer: 4 sectors made it.
    assert plan.torn_prefix_sectors(buf, started=0.0, now=8.0) == 4
    # Cut after the start instant but a zero-length transfer: nothing did.
    assert plan.torn_prefix_sectors(buf, started=4.0, now=4.0) == 0
    assert plan.cuts_power_during(0.0, 8.0)
    assert not plan.cuts_power_during(5.0, 8.0)


def test_error_codes_are_errno_style():
    assert TransientDiskError("x").code == "EIO"
    assert MediaError("x", sector=3).code == "EIO"
    assert DiskTimeoutError("x").code == "ETIMEDOUT"
    assert PowerLossError("x").code == "EIO"
