"""Suite-wide defaults.

The cross-layer invariant sanitizer (``repro.sim.invariants``) is on for
every test by default: each System built during a test checks the six
simsan invariants at its quiesce points.  Because the environment variable
is inherited by subprocesses, the CLI smoke tests' campaign runs are
sanitized too.  Individual tests that *need* it off (e.g. to construct a
deliberately broken machine) set ``system.sanitizer.enabled = False``.
"""

import os

os.environ.setdefault("REPRO_SANITIZE", "1")
