"""Tests for the update daemon and the lazy-writeback comparison mode."""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.kernel.update import UpdateDaemon
from repro.ufs import fsck
from repro.units import KB


def build(lazy=False):
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    if lazy:
        cfg = cfg.with_(tuning=cfg.tuning.with_(lazy_writeback=True))
    return System.booted(cfg)


def test_update_daemon_flushes_periodically():
    system = build()
    proc = Proc(system)
    daemon = UpdateDaemon(system.engine, system.mount, period=1.0)

    def driver():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(32 * KB))
        yield from proc.close(fd)
        yield system.engine.timeout(2.5)

    system.run(driver())
    assert daemon.syncs >= 2
    vn = system.run(system.mount.namei("/f"))
    assert system.pagecache.dirty_pages(vn) == []
    assert fsck(system.store).clean


def test_update_daemon_validates_period():
    system = build()
    with pytest.raises(ValueError):
        UpdateDaemon(system.engine, system.mount, period=0)


def test_lazy_writeback_accumulates_dirty_pages():
    system = build(lazy=True)
    proc = Proc(system)

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(256 * KB))
        yield from proc.close(fd)

    system.run(work())
    vn = system.run(system.mount.namei("/f"))
    # Nothing was pushed at cluster boundaries.
    assert len(system.pagecache.dirty_pages(vn)) == 32
    assert system.mount.stats["write_ios"] == 0


def test_lazy_writeback_fsync_still_works():
    system = build(lazy=True)
    proc = Proc(system)
    data = bytes(range(251)) * 300

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, data)
        yield from proc.fsync(fd)
        yield from proc.lseek(fd, 0)
        return (yield from proc.read(fd, len(data)))

    assert system.run(work()) == data
    system.sync()
    assert fsck(system.store).clean
