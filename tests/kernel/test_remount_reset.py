"""``System.remounted`` must boot a genuinely fresh machine.

The crash campaigns and the crash-point explorer remount hundreds of
images per run; any state bleeding from the dead machine into the
survivor (open requests, sanitizer accounting, write-cache contents,
journal hooks) would turn one crash's debris into the next state's
false verdict.
"""

from repro.faults.campaign import default_campaign_config
from repro.kernel.syscalls import Proc
from repro.kernel.system import System

from tests.integrity.conftest import checksum_config


def crashedlike_system():
    """A machine with plenty of used state: requests served, sanitizer
    checkpoints taken, a journalling write cache with entries pending."""
    config = default_campaign_config().with_(write_cache=True,
                                             write_cache_bytes=64 * 1024)
    system = System.booted(config)
    system.sanitizer.enabled = True
    system.tracer.enabled = True
    assert system.write_cache is not None
    system.write_cache.journal = []

    def workload(proc):
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"x" * 8192)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    proc = Proc(system)
    system.run(workload(proc), name="dirty-up")
    system.sync()
    return system, config


def test_remounted_machine_shares_nothing_but_the_store():
    crashed, config = crashedlike_system()
    assert crashed.requests.stats["started"] > 0
    assert crashed.sanitizer.checkpoints > 0
    assert crashed.write_cache.journal  # the recording hook was active

    survivor = System.remounted(crashed.store, config)

    assert survivor.store is crashed.store
    # Fresh identity everywhere else: engine, registry, sanitizer, cache.
    assert survivor.engine is not crashed.engine
    assert survivor.requests is not crashed.requests
    assert survivor.sanitizer is not crashed.sanitizer
    assert survivor.sanitizer.system is survivor
    assert survivor.write_cache is not crashed.write_cache


def test_remounted_registry_and_sanitizer_start_clean():
    crashed, config = crashedlike_system()
    served_by_crashed = crashed.requests.stats["started"]

    survivor = System.remounted(crashed.store, config)
    # No open requests or span leaks inherited; only the mount's own I/O
    # has been counted.
    assert survivor.requests.open == {}
    assert survivor.requests.span_leaks == []
    assert survivor.requests.stats["started"] < served_by_crashed
    # The write cache starts empty and un-journalled: the dead machine's
    # volatile entries and recording hook must not resurface.
    assert survivor.write_cache.entries == []
    assert survivor.write_cache.bytes == 0
    assert survivor.write_cache.journal is None
    # A full-depth checkpoint on the fresh machine passes: the survivor is
    # quiesced and its state is coherent from the first instant.
    survivor.sanitizer.enabled = True
    before = survivor.sanitizer.checkpoints
    survivor.sanitizer.checkpoint("remount_reset_test", idle=True, deep=True)
    assert survivor.sanitizer.checkpoints == before + 1


def test_remount_neutralizes_the_old_systems_scrub_daemon():
    """A ScrubDaemon started on the old machine must stand down once a
    new System owns the stores: its repair writes would otherwise race
    the survivor's I/O through a stale driver over the same bytes."""
    config = checksum_config()
    old = System.booted(config)
    proc = Proc(old)

    def workload(proc):
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"s" * 8192)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    old.run(workload(proc), name="seed-data")
    old.sync()
    daemon = old.start_scrub(interval=0.05, batch_frags=16)
    assert daemon in old.daemons
    assert not daemon.stale

    def tick_past(interval):
        yield old.engine.timeout(interval)

    # The daemon scrubs happily while it still owns the machine.
    old.run(tick_past(daemon.interval * 3), name="let-scrub-run")
    assert daemon.running
    assert daemon.stats["ticks"] > 0

    survivor = System.remounted(old.store, config)
    assert daemon.stale  # the store's attach epoch moved

    # Next tick on the OLD engine: the daemon stands down instead of
    # scrubbing a machine it no longer owns.
    ticks_before = daemon.stats["ticks"]
    old.run(tick_past(daemon.interval * 3), name="stale-tick")
    assert not daemon.running
    assert daemon.stats["stale_system_stops"] == 1
    assert daemon.stats["ticks"] == ticks_before
    # The survivor is untouched and can start its own daemon.
    fresh = survivor.start_scrub(interval=0.05)
    assert not fresh.stale
    assert "scrub" in survivor.metrics


def test_shutdown_daemons_stops_scrubbing():
    system = System.booted(checksum_config())
    daemon = system.start_scrub(interval=0.05)
    assert daemon.running
    system.shutdown_daemons()
    assert not daemon.running


def test_remounted_sees_the_crashed_machines_durable_bytes():
    crashed, config = crashedlike_system()
    survivor = System.remounted(crashed.store, config)
    proc = Proc(survivor)

    def read(proc):
        fd = yield from proc.open("/f")
        data = yield from proc.read(fd, 8192)
        yield from proc.close(fd)
        return data

    assert survivor.run(read(proc), name="verify") == b"x" * 8192
