"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_cli_requires_command():
    result = run_cli()
    assert result.returncode != 0


def test_cli_help():
    result = run_cli("--help")
    assert result.returncode == 0
    assert "iobench" in result.stdout


def test_cli_cpubench():
    result = run_cli("cpubench")
    assert result.returncode == 0
    assert "new:" in result.stdout and "old:" in result.stdout


def test_cli_musbus():
    result = run_cli("musbus", "--users", "2")
    assert result.returncode == 0
    assert "config A" in result.stdout


def test_cli_faultcampaign_smoke():
    result = run_cli("faultcampaign", "--cuts", "3")
    assert result.returncode == 0
    assert "clean_after_repair" in result.stdout
    assert "silent_corruptions" in result.stdout


@pytest.mark.slow
def test_cli_iobench_small():
    result = run_cli("iobench", "--configs", "A", "--file-mb", "2")
    assert result.returncode == 0
    assert "FSR" in result.stdout


def test_cli_faultcampaign_json_stdout_parses():
    """--json with no path writes the document to stdout and every human
    line to stderr, so ``python -m repro ... --json | jq .`` works."""
    result = run_cli("faultcampaign", "--cuts", "2", "--json")
    assert result.returncode == 0
    document = json.loads(result.stdout)  # the whole of stdout is JSON
    assert isinstance(document, dict) and document
    assert "power cuts" in result.stderr  # progress moved to stderr


def test_cli_scrubcampaign_json_stdout_parses():
    result = run_cli("scrubcampaign", "--json")
    assert result.returncode == 0
    document = json.loads(result.stdout)
    assert "digest" in document
    assert "scrubbing" in result.stderr


def test_cli_json_to_path_keeps_stdout_human(tmp_path):
    path = tmp_path / "out.json"
    result = run_cli("faultcampaign", "--cuts", "2", "--json", str(path))
    assert result.returncode == 0
    assert "power cuts" in result.stdout  # human mode unchanged
    json.loads(path.read_text())


def test_cli_bench_json_stdout_parses():
    result = run_cli("bench", "--configs", "A", "--file-mb", "1",
                     "--ops", "32", "--json")
    assert result.returncode == 0
    document = json.loads(result.stdout)
    assert document["schema"] == "repro-bench/v1"
    assert document["results"]["A"]["rates"]["FSR"] > 0
    assert "bench id" in result.stderr


def test_cli_bench_gate_against_self(tmp_path):
    baseline = tmp_path / "BENCH_baseline.json"
    first = run_cli("bench", "--configs", "A", "--file-mb", "1",
                    "--ops", "32", "--json", str(baseline))
    assert first.returncode == 0
    gated = run_cli("bench", "--configs", "A", "--file-mb", "1",
                    "--ops", "32", "--baseline", str(baseline), "--diff")
    assert gated.returncode == 0
    assert "perf gate OK" in gated.stdout
    # A mismatched baseline (different parameters) must fail the gate.
    mismatched = run_cli("bench", "--configs", "A", "--file-mb", "1",
                         "--ops", "16", "--baseline", str(baseline))
    assert mismatched.returncode == 1
    assert "perf gate FAILED" in mismatched.stdout


def test_cli_trace_analyze_verifies_and_exits_zero():
    result = run_cli("trace", "analyze", "--config", "C",
                     "--file-mb", "1", "--ops", "16")
    assert result.returncode == 0
    assert "critical paths:" in result.stdout
    assert "OK: every critical path conserves" in result.stdout


def test_cli_trace_chrome_and_flamegraph_round_trip(tmp_path):
    chrome = tmp_path / "trace.json"
    result = run_cli("trace", "chrome", "--config", "C", "--file-mb", "1",
                     "--ops", "16", "--out", str(chrome))
    assert result.returncode == 0
    document = json.loads(chrome.read_text())
    assert document["otherData"]["schema"] == "repro-chrome/v1"
    assert document["traceEvents"]

    folded = run_cli("trace", "flamegraph", "--config", "C", "--file-mb", "1",
                     "--ops", "16", "--out", "-")
    assert folded.returncode == 0
    assert any(";" in line and line.rsplit(" ", 1)[1].isdigit()
               for line in folded.stdout.splitlines())


def test_cli_trace_ingests_exported_jsonl(tmp_path):
    jsonl = tmp_path / "trace.jsonl"
    jsonl.write_text(
        '{"type": "meta", "schema": "repro-trace/v1", "records": 0,'
        ' "spans": 2}\n'
        '{"type": "span", "id": 1, "parent": null, "name": "read",'
        ' "begin": 0.0, "end": 0.01, "request": 1}\n'
        '{"type": "span", "id": 2, "parent": 1, "name": "queue_wait",'
        ' "begin": 0.001, "end": 0.004}\n')
    result = run_cli("trace", "analyze", "--trace-jsonl", str(jsonl))
    assert result.returncode == 0
    assert "queue_wait" in result.stdout
    # series needs a live run; an offline trace has no metrics registry.
    refused = run_cli("trace", "series", "--trace-jsonl", str(jsonl))
    assert refused.returncode == 2


def test_cli_trace_series_renders_sparklines():
    result = run_cli("trace", "series", "--config", "A", "--file-mb", "1",
                     "--ops", "16", "--namespaces", "vm.freemem",
                     "--interval-ms", "20")
    assert result.returncode == 0
    assert "vm.freemem" in result.stdout
    assert "|" in result.stdout
