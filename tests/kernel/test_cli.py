"""Smoke tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_cli_requires_command():
    result = run_cli()
    assert result.returncode != 0


def test_cli_help():
    result = run_cli("--help")
    assert result.returncode == 0
    assert "iobench" in result.stdout


def test_cli_cpubench():
    result = run_cli("cpubench")
    assert result.returncode == 0
    assert "new:" in result.stdout and "old:" in result.stdout


def test_cli_musbus():
    result = run_cli("musbus", "--users", "2")
    assert result.returncode == 0
    assert "config A" in result.stdout


def test_cli_faultcampaign_smoke():
    result = run_cli("faultcampaign", "--cuts", "3")
    assert result.returncode == 0
    assert "clean_after_repair" in result.stdout
    assert "silent_corruptions" in result.stdout


@pytest.mark.slow
def test_cli_iobench_small():
    result = run_cli("iobench", "--configs", "A", "--file-mb", "2")
    assert result.returncode == 0
    assert "FSR" in result.stdout
