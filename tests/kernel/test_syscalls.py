"""Tests for the syscall layer and system wiring."""

import pytest

from repro.disk import DiskGeometry
from repro.errors import BadFileError, FileNotFoundError_, InvalidArgumentError
from repro.kernel import Proc, SEEK_CUR, SEEK_END, SEEK_SET, System, SystemConfig
from repro.units import KB, MB


@pytest.fixture
def system():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    return System.booted(cfg)


@pytest.fixture
def proc(system):
    return Proc(system)


def test_open_missing_without_create(system, proc):
    with pytest.raises(FileNotFoundError_):
        system.run(proc.open("/nope"))


def test_open_create_then_reopen(system, proc):
    def work():
        fd = yield from proc.open("/f", create=True)
        yield from proc.close(fd)
        fd2 = yield from proc.open("/f")
        return fd, fd2

    fd, fd2 = system.run(work())
    assert fd != fd2


def test_fd_lifecycle(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.close(fd)
        yield from proc.read(fd, 10)

    with pytest.raises(BadFileError):
        system.run(work())


def test_sequential_offset_tracking(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"abc")
        yield from proc.write(fd, b"def")
        yield from proc.lseek(fd, 0)
        return (yield from proc.read(fd, 6))

    assert system.run(work()) == b"abcdef"


def test_lseek_whences(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(100))
        a = yield from proc.lseek(fd, 10, SEEK_SET)
        b = yield from proc.lseek(fd, 5, SEEK_CUR)
        c = yield from proc.lseek(fd, -20, SEEK_END)
        return a, b, c

    assert system.run(work()) == (10, 15, 80)


def test_lseek_validation(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.lseek(fd, -1, SEEK_SET)

    with pytest.raises(InvalidArgumentError):
        system.run(work())

    def work2():
        fd = yield from proc.creat("/g")
        yield from proc.lseek(fd, 0, 99)

    with pytest.raises(InvalidArgumentError):
        system.run(work2())


def test_mmap_read_touches_pages(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)
        touched = yield from proc.mmap_read(fd, 0, 64 * KB)
        return touched

    assert system.run(work()) == 8  # 64 KB / 8 KB pages


def test_mmap_read_requires_alignment(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(16 * KB))
        yield from proc.mmap_read(fd, 100, 8 * KB)

    with pytest.raises(InvalidArgumentError):
        system.run(work())


def test_syscalls_charge_cpu(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"x")
        yield from proc.close(fd)

    system.run(work())
    assert system.cpu.ledger["syscall"] > 0


def test_two_procs_share_the_filesystem(system):
    a, b = Proc(system, "a"), Proc(system, "b")

    def writer():
        fd = yield from a.creat("/shared")
        yield from a.write(fd, b"hello from a")
        yield from a.fsync(fd)
        yield from a.close(fd)

    system.run(writer())

    def reader():
        fd = yield from b.open("/shared")
        data = yield from b.read(fd, 100)
        yield from b.close(fd)
        return data

    assert system.run(reader()) == b"hello from a"


def test_system_config_presets():
    for name in "ABCD":
        cfg = SystemConfig.by_name(name)
        assert cfg.name == name
    with pytest.raises(ValueError):
        SystemConfig.by_name("Z")


def test_booted_system_has_everything():
    cfg = SystemConfig.config_b().with_(
        geometry=DiskGeometry.uniform(cylinders=100, heads=2,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    assert system.mount is not None
    assert system.mount.root.inode.is_dir
    assert system.pagecache.total_pages > 0
    assert system.raw_disk.size == cfg.geometry.capacity_bytes


def test_run_all_detects_deadlock(system):
    def stuck():
        yield system.engine.event()  # never fires

    with pytest.raises(RuntimeError, match="deadlock"):
        system.run_all([stuck()])


def test_stat_size(system, proc):
    def work():
        fd = yield from proc.creat("/sized")
        yield from proc.write(fd, bytes(12345))
        yield from proc.close(fd)
        return (yield from proc.stat_size("/sized"))

    assert system.run(work()) == 12345
