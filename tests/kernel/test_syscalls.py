"""Tests for the syscall layer and system wiring."""

import pytest

from repro.disk import DiskGeometry
from repro.errors import BadFileError, FileNotFoundError_, InvalidArgumentError
from repro.kernel import Proc, SEEK_CUR, SEEK_END, SEEK_SET, System, SystemConfig
from repro.units import KB


@pytest.fixture
def system():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    return System.booted(cfg)


@pytest.fixture
def proc(system):
    return Proc(system)


def test_open_missing_without_create(system, proc):
    with pytest.raises(FileNotFoundError_):
        system.run(proc.open("/nope"))


def test_open_create_then_reopen(system, proc):
    def work():
        fd = yield from proc.open("/f", create=True)
        yield from proc.close(fd)
        fd2 = yield from proc.open("/f")
        return fd, fd2

    fd, fd2 = system.run(work())
    assert fd != fd2


def test_fd_lifecycle(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.close(fd)
        yield from proc.read(fd, 10)

    with pytest.raises(BadFileError):
        system.run(work())


def test_sequential_offset_tracking(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"abc")
        yield from proc.write(fd, b"def")
        yield from proc.lseek(fd, 0)
        return (yield from proc.read(fd, 6))

    assert system.run(work()) == b"abcdef"


def test_lseek_whences(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(100))
        a = yield from proc.lseek(fd, 10, SEEK_SET)
        b = yield from proc.lseek(fd, 5, SEEK_CUR)
        c = yield from proc.lseek(fd, -20, SEEK_END)
        return a, b, c

    assert system.run(work()) == (10, 15, 80)


def test_lseek_validation(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.lseek(fd, -1, SEEK_SET)

    with pytest.raises(InvalidArgumentError):
        system.run(work())

    def work2():
        fd = yield from proc.creat("/g")
        yield from proc.lseek(fd, 0, 99)

    with pytest.raises(InvalidArgumentError):
        system.run(work2())


def test_mmap_read_touches_pages(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)
        touched = yield from proc.mmap_read(fd, 0, 64 * KB)
        return touched

    assert system.run(work()) == 8  # 64 KB / 8 KB pages


def test_mmap_read_requires_alignment(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(16 * KB))
        yield from proc.mmap_read(fd, 100, 8 * KB)

    with pytest.raises(InvalidArgumentError):
        system.run(work())


def test_syscalls_charge_cpu(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"x")
        yield from proc.close(fd)

    system.run(work())
    assert system.cpu.ledger["syscall"] > 0


def test_two_procs_share_the_filesystem(system):
    a, b = Proc(system, "a"), Proc(system, "b")

    def writer():
        fd = yield from a.creat("/shared")
        yield from a.write(fd, b"hello from a")
        yield from a.fsync(fd)
        yield from a.close(fd)

    system.run(writer())

    def reader():
        fd = yield from b.open("/shared")
        data = yield from b.read(fd, 100)
        yield from b.close(fd)
        return data

    assert system.run(reader()) == b"hello from a"


def test_system_config_presets():
    for name in "ABCD":
        cfg = SystemConfig.by_name(name)
        assert cfg.name == name
    with pytest.raises(ValueError):
        SystemConfig.by_name("Z")


def test_booted_system_has_everything():
    cfg = SystemConfig.config_b().with_(
        geometry=DiskGeometry.uniform(cylinders=100, heads=2,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    assert system.mount is not None
    assert system.mount.root.inode.is_dir
    assert system.pagecache.total_pages > 0
    assert system.raw_disk.size == cfg.geometry.capacity_bytes


def test_run_all_detects_deadlock(system):
    def stuck():
        yield system.engine.event()  # never fires

    with pytest.raises(RuntimeError, match="deadlock"):
        system.run_all([stuck()])


def test_stat_size(system, proc):
    def work():
        fd = yield from proc.creat("/sized")
        yield from proc.write(fd, bytes(12345))
        yield from proc.close(fd)
        return (yield from proc.stat_size("/sized"))

    assert system.run(work()) == 12345


def test_errno_mirrors_last_failure(system, proc):
    assert proc.errno is None
    with pytest.raises(FileNotFoundError_):
        system.run(proc.open("/nope"))
    assert proc.errno == "ENOENT"

    def closed_read():
        fd = yield from proc.creat("/f")
        yield from proc.close(fd)
        yield from proc.read(fd, 10)

    with pytest.raises(BadFileError):
        system.run(closed_read())
    assert proc.errno == "EBADF"
    # Like the C library: success does not clear errno.
    system.run(proc.stat_size("/f"))
    assert proc.errno == "EBADF"


def _write_then_evict(system, proc, path, nbytes):
    def work():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, b"\x5a" * nbytes)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    vn = system.run(system.mount.namei(path))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()


def test_disk_error_surfaces_as_eio(system, proc):
    from repro.errors import DiskError
    from repro.faults import FaultPlan

    _write_then_evict(system, proc, "/f", 8 * KB)
    # Every media access now fails; retries exhaust and EIO surfaces.
    system.disk.fault_plan = FaultPlan(read_transient_p=1.0)

    def work():
        fd = yield from proc.open("/f")
        yield from proc.read(fd, 8 * KB)

    with pytest.raises(DiskError):
        system.run(work())
    assert proc.errno == "EIO"


def test_read_returns_partial_data_before_an_error(system, proc):
    from repro.faults import FaultPlan

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"\x5a" * (16 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    # Page 0 stays cached; page 1 must come from the now-broken disk.
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if page.offset >= 8 * KB and not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()
    system.disk.fault_plan = FaultPlan(read_transient_p=1.0)

    def work():
        fd = yield from proc.open("/f")
        return (yield from proc.read(fd, 16 * KB))

    # POSIX short read: the bytes before the failure are returned; the
    # *next* read at the failed offset would raise.
    assert system.run(work()) == b"\x5a" * (8 * KB)
