"""End-to-end request pipeline: spans across layers, scheduler plumbing."""

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB

RECORD = 8 * KB
FILE_SIZE = 512 * KB


def small_config(**changes):
    geom = DiskGeometry.uniform(cylinders=200, heads=4, sectors_per_track=32)
    return SystemConfig.config_a().with_(geometry=geom, **changes)


def write_and_evict(system, proc, path="/f"):
    def work():
        fd = yield from proc.creat(path)
        for i in range(FILE_SIZE // RECORD):
            yield from proc.write(fd, bytes([i % 251]) * RECORD)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    vn = system.run(system.mount.namei(path))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()


def read_all(system, proc, path="/f"):
    chunks = []

    def work():
        fd = yield from proc.open(path)
        while True:
            data = yield from proc.read(fd, RECORD)
            if not data:
                break
            chunks.append(data)
        yield from proc.close(fd)

    system.run(work())
    return b"".join(chunks)


def test_traced_sequential_read_yields_cluster_sized_span_tree():
    system = System.booted(small_config())
    proc = Proc(system)
    write_and_evict(system, proc)

    system.tracer.enabled = True
    data = read_all(system, proc)
    system.tracer.enabled = False
    assert len(data) == FILE_SIZE

    tracer = system.tracer
    reads = [s for s in tracer.span_roots() if s.name == "read"]
    assert reads, "no read request opened a root span"
    # At least one syscall read's tree goes all the way to the disk, and
    # the transfer it reaches is cluster-sized (> the 8 KB record).
    cluster_hits = 0
    for root in reads:
        tree = tracer.span_tree(root)
        disk_ios = [s for _, s in tree if s.name == "disk_io"]
        if not disk_ios:
            continue  # a cache hit (read-ahead already brought it in)
        names = {s.name for _, s in tree}
        assert "getpage" in names
        assert "cluster_read" in names
        if max(s.fields["nsectors"] * 512 for s in disk_ios) > RECORD:
            cluster_hits += 1
    assert cluster_hits > 0
    # Most reads were cache hits: far fewer disk-reaching requests than
    # syscalls — the clustering effect, visible from the span trees alone.
    disk_reads = [s for s in reads if s.fields.get("ios")]
    assert len(disk_reads) < len(reads) / 2


def test_request_accounting_without_tracing():
    system = System.booted(small_config())
    proc = Proc(system)
    write_and_evict(system, proc)
    data = read_all(system, proc)
    assert len(data) == FILE_SIZE

    assert system.tracer.spans == []  # tracing stayed off
    report = system.requests.report()
    assert report["counts"]["read_started"] == FILE_SIZE // RECORD + 1
    assert report["counts"]["write_started"] == FILE_SIZE // RECORD
    assert report["latency"]["read"]["count"] == FILE_SIZE // RECORD + 1
    assert report["counts"]["bytes"] > 0
    # The driver kept per-layer histograms too.
    assert system.driver.wait_hist.summary()["count"] > 0
    assert system.driver.service_hist.summary()["count"] > 0


def test_schedulers_selectable_and_byte_identical():
    payloads = {}
    for name in ("elevator", "fifo", "deadline"):
        system = System.booted(small_config(scheduler=name))
        assert system.driver.scheduler_name == name
        proc = Proc(system)
        write_and_evict(system, proc)
        payloads[name] = read_all(system, proc)
    assert payloads["elevator"] == payloads["fifo"] == payloads["deadline"]


def test_use_disksort_false_downgrades_to_fifo():
    system = System.booted(small_config(use_disksort=False))
    assert system.driver.scheduler_name == "fifo"
