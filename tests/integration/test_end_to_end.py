"""Cross-layer integration: concurrency, pressure, persistence, recovery."""

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import fsck
from repro.ufs.mount import UfsMount
from repro.units import KB, MB


def build(config="A", **overrides):
    cfg = SystemConfig.by_name(config).with_(
        geometry=DiskGeometry.uniform(cylinders=300, heads=4,
                                      sectors_per_track=32),
        **overrides,
    )
    return System.booted(cfg)


def pattern(seed, nbytes):
    return bytes((i * seed + seed) % 251 for i in range(nbytes))


def test_concurrent_writers_do_not_corrupt():
    system = build()
    payloads = {i: pattern(i + 1, 200 * KB) for i in range(4)}

    def writer(i):
        proc = Proc(system, f"w{i}")
        fd = yield from proc.creat(f"/file{i}")
        data = payloads[i]
        for start in range(0, len(data), 8 * KB):
            yield from proc.write(fd, data[start:start + 8 * KB])
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run_all([writer(i) for i in range(4)])

    def reader(i):
        proc = Proc(system, f"r{i}")
        fd = yield from proc.open(f"/file{i}")
        parts = []
        while True:
            piece = yield from proc.read(fd, 32 * KB)
            if not piece:
                break
            parts.append(piece)
        return b"".join(parts)

    results = system.run_all([reader(i) for i in range(4)])
    for i, data in enumerate(results):
        assert data == payloads[i], f"file {i} corrupted"
    system.sync()
    assert fsck(system.store).clean


def test_reader_sees_writers_data_through_cache():
    system = build()
    a, b = Proc(system, "a"), Proc(system, "b")

    def writer():
        fd = yield from a.creat("/pipe")
        yield from a.write(fd, b"fresh data")
        yield from a.close(fd)

    def reader():
        yield system.engine.timeout(0.5)
        fd = yield from b.open("/pipe")
        data = yield from b.read(fd, 100)
        return data

    results = system.run_all([writer(), reader()])
    assert results[1] == b"fresh data"


def test_memory_pressure_with_concurrent_streams():
    """Two processes streaming more than memory concurrently: data stays
    correct, nothing deadlocks, pageout keeps the system alive."""
    system = build()
    sizes = {0: 5 * MB, 1: 4 * MB}

    def streamer(i):
        proc = Proc(system, f"s{i}")
        fd = yield from proc.creat(f"/stream{i}")
        chunk = pattern(i + 3, 64 * KB)
        for _ in range(sizes[i] // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)
        # Read it all back through the (overcommitted) cache.
        yield from proc.lseek(fd, 0)
        total = 0
        while True:
            piece = yield from proc.read(fd, 64 * KB)
            if not piece:
                break
            assert piece == chunk[:len(piece)]
            total += len(piece)
        return total

    results = system.run_all([streamer(0), streamer(1)])
    assert results == [sizes[0], sizes[1]]
    assert system.pageout.stats["wakeups"] > 0 or \
        system.mount.stats["freebehind"] > 0


def test_remount_after_sync_preserves_tree():
    system = build()
    proc = Proc(system)

    def populate():
        yield from proc.mkdir("/docs")
        yield from proc.mkdir("/docs/deep")
        fd = yield from proc.creat("/docs/deep/file.txt")
        yield from proc.write(fd, pattern(9, 100 * KB))
        yield from proc.close(fd)

    system.run(populate())
    system.sync()
    assert fsck(system.store).clean

    mount2 = UfsMount(system.engine, system.cpu, system.driver,
                      system.pagecache, tuning=system.config.tuning,
                      name="remount")

    def verify():
        yield from mount2.activate()
        vn = yield from mount2.namei("/docs/deep/file.txt")
        return vn.size

    assert system.run(verify()) == 100 * KB


def test_unlink_under_old_system_is_clean():
    system = build("D")
    proc = Proc(system)

    def churn():
        for i in range(20):
            fd = yield from proc.creat(f"/t{i}")
            yield from proc.write(fd, bytes((i + 1) * 3 * KB))
            yield from proc.fsync(fd)
            yield from proc.close(fd)
        for i in range(0, 20, 2):
            yield from proc.unlink(f"/t{i}")

    system.run(churn())
    system.sync()
    report = fsck(system.store)
    assert report.clean, str(report)


def test_mixed_configs_share_nothing():
    """Two independent systems do not interfere (no global state leaks)."""
    s1, s2 = build("A"), build("D")
    p1, p2 = Proc(s1), Proc(s2)

    def w(proc, data):
        fd = yield from proc.creat("/x")
        yield from proc.write(fd, data)
        yield from proc.fsync(fd)

    s1.run(w(p1, b"system one"))
    s2.run(w(p2, b"system two is different"))

    def r(proc):
        fd = yield from proc.open("/x")
        return (yield from proc.read(fd, 100))

    assert s1.run(r(p1)) == b"system one"
    assert s2.run(r(p2)) == b"system two is different"
