"""Integration tests for the fault subsystem: the acceptance criteria.

* A transient-fault plan (p=1e-3 per attempt) under a 10 MB sequential
  clustered read: every byte arrives correctly via driver retries, with no
  deadlock and no error surfacing to the application.
* The crash campaign: every seeded power cut is repaired by fsck (clean
  second pass), no fsynced byte is ever lost or changed, and the same seed
  produces byte-identical statistics.
"""

from repro.faults import CrashCampaign, FaultPlan
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB


def test_transient_plan_clustered_read_completes_correctly():
    file_size = 10 * MB
    plan = FaultPlan(seed=6, read_transient_p=1e-3)
    system = System.booted(SystemConfig.config_a(), fault_plan=plan)
    proc = Proc(system)
    chunk = bytes(range(256)) * 32  # 8 KB

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(file_size // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    system.run(write_phase())
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/f")
        total = bad = 0
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break
            total += len(data)
            bad += data != chunk[:len(data)]
        return total, bad

    total, bad = system.run(read_phase())  # completing at all = no deadlock
    assert total == file_size
    assert bad == 0
    assert system.driver.stats["retries"] >= 1  # a fault really fired
    assert system.driver.stats["retries_exhausted"] == 0
    assert system.driver.stats["errors"] == 0


def test_campaign_repairs_every_cut_and_loses_no_fsynced_byte():
    stats = CrashCampaign(cuts=8, seed=1).run()
    assert stats.cuts == 8
    assert stats.faults_injected == 8  # every run really lost power
    assert stats.cuts_with_damage > 0  # the sweep found interesting cuts
    assert stats.clean_after_repair == stats.cuts
    assert stats.silent_corruptions == 0


def test_campaign_is_deterministic_per_seed():
    a = CrashCampaign(cuts=5, seed=3).run()
    b = CrashCampaign(cuts=5, seed=3).run()
    c = CrashCampaign(cuts=5, seed=4).run()
    assert a.as_dict() == b.as_dict()  # byte-identical stats, same seed
    assert a.as_dict() != c.as_dict()  # and the seed genuinely matters


def test_campaign_statset_mirrors_stats():
    campaign = CrashCampaign(cuts=3, seed=0)
    stats = campaign.run()
    assert campaign.statset.as_dict() == stats.as_dict()
