"""Crash consistency: why UFS writes metadata synchronously.

"The file system uses synchronous writes to insure an absolute ordering
when necessary" — so that a crash at ANY instant leaves the disk in a
state fsck can repair mechanically.  A crash here is free to simulate: the
DiskStore holds exactly the writes that completed, so stopping the engine
mid-workload and running fsck on the store IS the post-crash disk.

The invariant tested: at any interruption point, fsck may find *benign*
damage (blocks or inodes marked allocated in bitmaps that nothing
references — the allocator's in-memory state died with the kernel; inode
link counts ahead of directory state for the same reason) but never
*dangerous* damage: no fragment claimed by two files, no directory entry
pointing at an unallocated inode, no corrupt structure.
"""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import fsck
from repro.units import KB

BENIGN_MARKERS = (
    "leak",                     # allocated in bitmap, unreferenced
    "allocated in bitmap but unclaimed",
    "free in bitmap but claimed",  # claims ahead of (in-memory) bitmaps
    "free in bitmap but allocated",  # same, for inodes
    "superblock",               # summary counters stale
    "nbfree", "nffree", "nifree", "ndir",  # per-group counters stale
    "nlink",                    # inode written before/after dirent
    "di_blocks",                # size/blocks written at different times
)

DANGEROUS_MARKERS = (
    "claimed by inodes",        # cross-linked files: data loss
    "unallocated inode",        # dangling directory entry
    "bad directory reclen",     # structural corruption
    "unknown mode",
    "out of range",
    "reached twice",
    "duplicate name",
)


def classify(finding: str) -> str:
    for marker in DANGEROUS_MARKERS:
        if marker in finding:
            return "dangerous"
    for marker in BENIGN_MARKERS:
        if marker in finding:
            return "benign"
    return "unknown"


def churn_workload(proc, nfiles=12):
    def work():
        yield from proc.mkdir("/work")
        for i in range(nfiles):
            fd = yield from proc.creat(f"/work/f{i}")
            yield from proc.write(fd, bytes((i % 5 + 1) * 6 * KB))
            yield from proc.fsync(fd)
            yield from proc.close(fd)
            if i % 3 == 2:
                yield from proc.unlink(f"/work/f{i - 1}")

    return work()


@pytest.mark.parametrize("crash_at", [0.05, 0.2, 0.5, 0.9, 1.4, 2.0])
def test_crash_leaves_only_benign_damage(crash_at):
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    proc = Proc(system)
    system.engine.process(churn_workload(proc), name="doomed")
    # CRASH: stop the world at an arbitrary instant; the store now holds
    # exactly the writes that had completed.
    system.engine.run(until=crash_at)

    report = fsck(system.store)
    dangerous = [f for f in report.findings if classify(f) == "dangerous"]
    unknown = [f for f in report.findings if classify(f) == "unknown"]
    assert not dangerous, f"crash at {crash_at}s: {dangerous}"
    assert not unknown, f"unclassified fsck finding: {unknown}"


def test_crash_free_run_is_fully_clean():
    """Control: the same workload run to completion plus sync is spotless."""
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    system = System.booted(cfg)
    proc = Proc(system)
    system.run(churn_workload(proc))
    system.sync()
    report = fsck(system.store)
    assert report.clean, str(report)


def test_crash_with_lazy_writeback_loses_more():
    """Peacock-style accumulation risks more data at a crash: dirty pages
    that the cluster-boundary policy would already have pushed."""
    results = {}
    for lazy in (False, True):
        cfg = SystemConfig.config_a().with_(
            geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                          sectors_per_track=32))
        cfg = cfg.with_(tuning=cfg.tuning.with_(lazy_writeback=lazy))
        system = System.booted(cfg)
        proc = Proc(system)

        def writer():
            fd = yield from proc.creat("/big")
            for _ in range(40):
                yield from proc.write(fd, bytes(8 * KB))
            # No fsync: crash happens before the application syncs.

        system.engine.process(writer(), name="doomed")
        system.engine.run(until=3.0)
        vn = system.run(system.mount.namei("/big"))
        dirty = len(system.pagecache.dirty_pages(vn))
        results[lazy] = dirty
    # Cluster-boundary flushing already persisted most pages; lazy lost all.
    assert results[True] >= 35
    assert results[False] <= 10
