"""Tests for the S5FS baseline: free list, buffer cache, I/O, aging."""

import pytest

from repro.cpu import CostTable, Cpu
from repro.disk import DiskDriver, DiskGeometry, RotationalDisk
from repro.errors import FileExistsError_, FileNotFoundError_, NoSpaceError
from repro.s5fs import S5FileSystem, s5_mkfs
from repro.s5fs.ondisk import S5Superblock
from repro.sim import Engine
from repro.units import KB


def make_fs(clustering=False, cylinders=60, free_cpu=True):
    engine = Engine()
    geom = DiskGeometry.uniform(cylinders=cylinders, heads=2,
                                sectors_per_track=16)
    disk = RotationalDisk(engine, geom)
    cpu = Cpu(engine, CostTable.free() if free_cpu else CostTable())
    driver = DiskDriver(engine, disk, cpu=cpu)
    s5_mkfs(disk.store)
    fs = S5FileSystem(engine, cpu, driver, clustering=clustering)
    return engine, fs


def test_mkfs_superblock_round_trip():
    engine, fs = make_fs()
    sb2 = S5Superblock.unpack(fs.driver.disk.store.read(2, 2))
    assert sb2.fsize == fs.sb.fsize
    assert sb2.tfree > 0


def test_fresh_free_list_is_ascending():
    engine, fs = make_fs()

    def work():
        blocks = []
        for _ in range(120):  # crosses at least two chain batches
            blocks.append((yield from fs.alloc_block()))
        return blocks

    blocks = engine.run_process(work())
    deltas = [b - a for a, b in zip(blocks, blocks[1:])]
    assert all(d == 1 for d in deltas), deltas


def test_free_then_alloc_is_lifo():
    engine, fs = make_fs()

    def work():
        a = yield from fs.alloc_block()
        b = yield from fs.alloc_block()
        yield from fs.free_block(a)
        yield from fs.free_block(b)
        return a, b, (yield from fs.alloc_block())

    a, b, again = engine.run_process(work())
    assert again == b  # last freed pops first


def test_create_write_read_round_trip():
    engine, fs = make_fs()
    payload = bytes(i % 251 for i in range(40 * KB))

    def work():
        ip = yield from fs.create("data")
        yield from fs.write(ip, 0, payload)
        return (yield from fs.read(ip, 0, len(payload)))

    assert engine.run_process(work()) == payload


def test_create_duplicate_rejected():
    engine, fs = make_fs()

    def work():
        yield from fs.create("x")
        yield from fs.create("x")

    with pytest.raises(FileExistsError_):
        engine.run_process(work())


def test_lookup_and_unlink():
    engine, fs = make_fs()

    def work():
        ip = yield from fs.create("gone")
        yield from fs.write(ip, 0, bytes(10 * KB))
        tfree_mid = fs.sb.tfree
        yield from fs.unlink("gone")
        found = yield from fs.lookup("gone")
        return tfree_mid, fs.sb.tfree, found

    tfree_mid, tfree_after, found = engine.run_process(work())
    assert found is None
    assert tfree_after > tfree_mid  # blocks returned


def test_unlink_missing():
    engine, fs = make_fs()
    with pytest.raises(FileNotFoundError_):
        engine.run_process(fs.unlink("ghost"))


def test_indirect_file():
    """Files beyond 10 direct 1 KB blocks use the indirect block."""
    engine, fs = make_fs()
    payload = bytes(i % 199 for i in range(30 * KB))

    def work():
        ip = yield from fs.create("big")
        yield from fs.write(ip, 0, payload)
        assert ip.addrs[10] != 0
        return (yield from fs.read(ip, 0, len(payload)))

    assert engine.run_process(work()) == payload


def test_out_of_space():
    engine, fs = make_fs(cylinders=20)

    def work():
        ip = yield from fs.create("hog")
        while True:
            yield from fs.write(ip, ip.size, bytes(16 * KB))

    with pytest.raises(NoSpaceError):
        engine.run_process(work())


def test_sync_persists_to_disk():
    engine, fs = make_fs()
    payload = b"\x42" * (5 * KB)

    def work():
        ip = yield from fs.create("durable")
        yield from fs.write(ip, 0, payload)
        yield from fs.sync()
        return ip

    ip = engine.run_process(work())
    # Re-mount from the same store and read through a fresh cache.
    fs2 = S5FileSystem(engine, fs.cpu, fs.driver)

    def verify():
        ino = yield from fs2.lookup("durable")
        ip2 = yield from fs2.iget(ino)
        return (yield from fs2.read(ip2, 0, len(payload)))

    assert engine.run_process(verify()) == payload


def test_aging_scrambles_free_list():
    """Create/delete churn destroys free-list ordering."""
    import random

    engine, fs = make_fs()
    rng = random.Random(42)

    def churn():
        live = []
        for i in range(60):
            ip = yield from fs.create(f"f{i}")
            yield from fs.write(ip, 0, bytes(rng.randrange(1, 8) * KB))
            live.append(f"f{i}")
            if len(live) > 10:
                victim = live.pop(rng.randrange(len(live)))
                yield from fs.unlink(victim)

    before = fs.free_list_contiguity()
    engine.run_process(churn())
    after = fs.free_list_contiguity()
    assert before == 1.0
    assert after < 0.5, f"free list should be scrambled, contiguity={after}"


def test_clustering_reduces_read_ios():
    engine, fs = make_fs(clustering=True)
    payload = bytes(56 * KB)

    def work():
        ip = yield from fs.create("seq")
        yield from fs.write(ip, 0, payload)
        yield from fs.sync()
        # Purge the cache by reading unrelated blocks.
        for blk in range(fs.sb.data_start + 500, fs.sb.data_start + 600):
            yield from fs.cache.bread(blk)
        fs.driver.disk.stats.reset()
        yield from fs.read(ip, 0, len(payload))
        return fs.driver.disk.stats["reads"]

    reads = engine.run_process(work())
    assert reads <= 3, f"mbread should cluster; saw {reads} read I/Os"


def test_no_clustering_reads_block_at_a_time():
    engine, fs = make_fs(clustering=False)
    payload = bytes(56 * KB)

    def work():
        ip = yield from fs.create("seq")
        yield from fs.write(ip, 0, payload)
        yield from fs.sync()
        for blk in range(fs.sb.data_start + 500, fs.sb.data_start + 600):
            yield from fs.cache.bread(blk)
        fs.driver.disk.stats.reset()
        yield from fs.read(ip, 0, len(payload))
        return fs.driver.disk.stats["reads"]

    reads = engine.run_process(work())
    assert reads >= 50


def test_clustering_useless_on_aged_fs():
    """After aging, mbread finds no contiguity to exploit."""
    import random

    engine, fs = make_fs(clustering=True)
    rng = random.Random(7)

    def churn_then_measure():
        live = []
        for i in range(80):
            ip = yield from fs.create(f"f{i}")
            yield from fs.write(ip, 0, bytes(rng.randrange(1, 6) * KB))
            live.append(f"f{i}")
            if len(live) > 8:
                yield from fs.unlink(live.pop(rng.randrange(len(live))))
        ip = yield from fs.create("victim")
        yield from fs.write(ip, 0, bytes(56 * KB))
        yield from fs.sync()
        for blk in range(fs.sb.data_start + 700, fs.sb.data_start + 780):
            yield from fs.cache.bread(blk)
        fs.driver.disk.stats.reset()
        yield from fs.read(ip, 0, 56 * KB)
        return fs.driver.disk.stats["reads"]

    reads = engine.run_process(churn_then_measure())
    # Fresh fs needs <= 3 I/Os for this read; scrambling forces many more.
    assert reads > 10, f"aged fs should defeat clustering; saw {reads} I/Os"


def test_s5check_clean_after_mkfs():
    from repro.s5fs import s5check

    engine, fs = make_fs()
    report = s5check(fs.driver.disk.store)
    assert report.clean, report.findings
    assert report.free_blocks == fs.sb.tfree


def test_s5check_clean_after_workload():
    from repro.s5fs import s5check

    engine, fs = make_fs()

    def work():
        for i in range(10):
            ip = yield from fs.create(f"f{i}")
            yield from fs.write(ip, 0, bytes((i + 1) * 3 * KB))
        yield from fs.unlink("f3")
        yield from fs.unlink("f7")
        yield from fs.sync()

    engine.run_process(work())
    report = s5check(fs.driver.disk.store)
    assert report.clean, report.findings


def test_s5check_detects_double_claim():
    from repro.s5fs import s5check
    from repro.s5fs.ondisk import S5Dinode
    from repro.ufs.ondisk import IFREG

    engine, fs = make_fs()

    def work():
        ip = yield from fs.create("victim")
        yield from fs.write(ip, 0, bytes(4 * KB))
        yield from fs.sync()
        return ip

    ip = engine.run_process(work())
    # Forge a second inode claiming the victim's first block.
    store = fs.driver.disk.store
    bogus = S5Dinode(mode=IFREG | 0o644, nlink=1,
                     addrs=(ip.addrs[0],) + (0,) * 11, size=1024)
    blk, off = fs.sb.inode_location(40)
    block = bytearray(store.read(blk * 2, 2))
    block[off:off + 64] = bogus.pack()
    store.write(blk * 2, bytes(block))
    report = s5check(store)
    assert any("claimed by inodes" in f for f in report.findings)


def test_s5check_detects_bad_tfree():
    from repro.s5fs import s5check

    engine, fs = make_fs()
    fs.sb.tfree += 3

    def work():
        yield from fs.sync()

    engine.run_process(work())
    report = s5check(fs.driver.disk.store)
    assert any("tfree" in f for f in report.findings)
