"""Scrubber and scrub-daemon tests: detection, the repair ladder, pacing."""

import random

import pytest

from repro.errors import ChecksumError, InvalidArgumentError
from repro.faults import corrupt_frag
from repro.integrity import Scrubber
from repro.kernel import Proc, System

from tests.integrity.conftest import checksum_config

KB = 1024


def _write_file(system, path, payload, sync=True):
    proc = Proc(system)

    def gen():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(gen())
    if sync:
        system.sync()
    return proc


def _file_frag(system, path, lbn=0, off=0):
    """The physical fragment of <path>'s block ``lbn`` (via a live proc)."""
    proc = Proc(system)

    def gen():
        fd = yield from proc.open(path)
        direct = list(proc._files[fd].vnode.inode.direct)
        yield from proc.close(fd)
        return direct

    direct = system.run(gen())
    return direct[lbn] + off


def test_scrubber_requires_a_region():
    plain = System.booted(checksum_config(checksums=False))
    with pytest.raises(InvalidArgumentError):
        Scrubber(plain)


def test_clean_fs_scrubs_clean(system):
    scrubber = Scrubber(system)
    report = system.run(scrubber.scrub_now())
    assert report.passes == 1
    assert report.frags_scanned == len(system.disk.integrity.stamped_frags())
    assert report.detected == 0
    assert report.repaired == 0
    assert report.unrepairable == 0


def test_metadata_repairs_from_replica(system):
    system.sync()
    region = system.disk.integrity
    frag = region.sb.cg_header_frag(1)
    corrupt_frag(system.store, region, frag, "bitrot", random.Random(1))

    scrubber = Scrubber(system)
    report = system.run(scrubber.scrub_now())
    assert report.detected == 1
    assert report.repaired_from_replica == 1
    fs = region.frag_sectors
    data = system.store.read(frag * fs, fs)
    assert region.verify_range(frag * fs, data) == []


def test_dirty_page_repairs_from_cache_without_clobbering(system):
    """Satellite: an unrepairable-on-disk fragment whose block is dirty in
    the page cache must be served and rewritten from the cache — and the
    cached page itself must never be touched."""
    v1 = b"\x11" * (8 * KB)
    v2 = b"\x22" * (8 * KB)
    proc = _write_file(system, "/f", v1)  # durable + stamped as v1

    def overwrite():
        fd = yield from proc.open("/f")
        yield from proc.write(fd, v2)  # dirty page, NOT synced
        yield from proc.close(fd)
        return proc._files

    system.run(overwrite())
    mount = system.mount
    vn = next(v for v in mount._vnodes.values() if v.inode.is_reg)
    page = mount.pagecache.lookup(vn, 0)
    assert page is not None and page.dirty

    region = system.disk.integrity
    frag = vn.inode.direct[0]  # v1 on disk; corrupt it
    corrupt_frag(system.store, region, frag, "zero", random.Random(2))

    scrubber = Scrubber(system)
    report = system.run(scrubber.scrub_now())
    assert report.detected == 1
    assert report.repaired_from_cache == 1
    assert report.unrepairable == 0
    # The page was the source, not the target: still dirty, still v2.
    assert page.dirty
    assert bytes(page.data[:8 * KB]) == v2
    # The disk now holds the cache's (newer) bytes, correctly stamped.
    fs = region.frag_sectors
    data = system.store.read(frag * fs, fs)
    assert data == v2[:region.fsize]
    assert region.verify_range(frag * fs, data) == []
    system.sync()
    system.sanitizer.checkpoint("test_end", idle=True, deep=True)


def test_uncached_corruption_is_unrepairable_then_rehabilitated(system):
    payload = bytes((j * 3) % 251 for j in range(16 * KB))
    _write_file(system, "/f", payload)
    survivor = System.remounted(system.store, system.config)
    region = survivor.disk.integrity
    frag = _file_frag(survivor, "/f", lbn=1, off=2)
    corrupt_frag(survivor.store, region, frag, "bitrot", random.Random(3))

    scrubber = Scrubber(survivor)
    report = survivor.run(scrubber.scrub_now())
    assert report.detected == 1
    assert report.unrepairable == 1
    assert region.record(frag).bad

    # A second pass skips the known-bad fragment: nothing new.
    second = Scrubber(survivor)
    report2 = survivor.run(second.scrub_now())
    assert report2.detected == 0
    assert second.stats["skipped_known_bad"] >= 1

    # Readers meanwhile get partial-read-then-EIO semantics: a whole-file
    # read returns the bytes before the bad block; touching the bad block
    # directly raises.
    proc = Proc(survivor)
    bsize = region.sb.bsize

    def read_all():
        fd = yield from proc.open("/f")
        data = yield from proc.read(fd, len(payload))
        yield from proc.close(fd)
        return data

    got = survivor.run(read_all())
    assert got == payload[:bsize]  # stopped short at the bad block

    def read_bad_block():
        fd = yield from proc.open("/f")
        yield from proc.lseek(fd, bsize, 0)
        yield from proc.read(fd, bsize)

    with pytest.raises(ChecksumError):
        survivor.run(read_bad_block())
    assert proc.errno == "EIO"

    # ... until a full rewrite rehabilitates the fragment.
    rehab = Proc(survivor)

    def rewrite():
        fd = yield from rehab.open("/f")
        yield from rehab.write(fd, payload)
        yield from rehab.fsync(fd)
        yield from rehab.close(fd)

    survivor.run(rewrite())
    assert not region.record(frag).bad
    third = Scrubber(survivor)
    report3 = survivor.run(third.scrub_now())
    assert report3.detected == 0
    survivor.sync()
    survivor.sanitizer.checkpoint("test_end", idle=True, deep=True)


def test_scrub_issues_real_requests(system):
    scrubber = Scrubber(system)
    before = system.requests.stats["scrub_started"]
    system.run(scrubber.scrub_now())
    assert system.requests.stats["scrub_started"] > before
    assert system.requests.stats["completed"] >= system.requests.stats["scrub_started"]
    assert not system.requests.open  # nothing leaked


def test_daemon_paces_and_checkpoints(system):
    daemon = system.start_scrub(interval=0.05, batch_frags=16)

    def idle_for(seconds):
        yield system.engine.timeout(seconds)

    system.run(idle_for(5.0))
    assert daemon.stats["ticks"] > 0
    assert daemon.report.passes >= 1
    assert daemon.report.detected == 0

    # Foreground pressure makes the daemon skip its tick.  The requests
    # are completed before idle so the sanitizer's span-balance check
    # stays happy.
    def busy_spell():
        reqs = [system.requests.start("fg") for _ in range(3)]
        yield system.engine.timeout(1.0)
        for r in reqs:
            r.complete()

    system.run(busy_spell())
    assert daemon.stats["ticks_throttled"] > 0

    daemon.stop()
    ticks = daemon.stats["ticks"]
    system.run(idle_for(1.0))
    assert daemon.stats["ticks"] == ticks  # stopped daemons stay stopped


def test_daemon_does_not_keep_engine_alive(system):
    system.start_scrub(interval=0.5)
    t0 = system.now

    def quick():
        yield system.engine.timeout(0.01)

    system.run(quick())
    # run() returned promptly: the daemon's pending tick did not hold it.
    assert system.now - t0 < 0.5
