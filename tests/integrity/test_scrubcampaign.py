"""The scrub campaign end-to-end: full detection, correct repairs,
seed-stable digests."""

from repro.integrity import ScrubCampaign


def test_campaign_detects_and_repairs_everything():
    campaign = ScrubCampaign(seed=3)
    campaign.run()
    stats = campaign.stats
    assert stats.injected == 10
    assert stats.detected == stats.injected
    assert stats.detect_misses == 0
    assert stats.outcome_mismatches == 0
    assert stats.verify_failures == 0
    assert stats.eio_misses == 0
    assert stats.residual_detected == 0
    assert stats.fsck_clean
    assert stats.ok
    # The ladder was actually exercised on every rung.
    assert stats.repaired_from_cache > 0
    assert stats.repaired_from_replica > 0
    assert stats.unrepairable > 0


def test_campaign_digest_is_seed_stable():
    first = ScrubCampaign(seed=3)
    first.run()
    second = ScrubCampaign(seed=3)
    second.run()
    assert first.stats.ok and second.stats.ok
    assert first.digest == second.digest

    other = ScrubCampaign(seed=11)
    other.run()
    assert other.stats.ok
    assert other.digest != first.digest


def test_campaign_json_document_is_complete():
    campaign = ScrubCampaign(seed=5)
    campaign.run()
    doc = campaign.to_json()
    assert doc["seed"] == 5
    assert doc["ok"] is True
    assert doc["digest"] == campaign.digest
    assert len(doc["injections"]) == doc["stats"]["injected"]
    for inj in doc["injections"]:
        assert inj["outcome"] in ("repaired:cache", "repaired:replica",
                                  "unrepairable")
