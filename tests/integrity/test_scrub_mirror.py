"""The mirror rung of the scrub repair ladder.

On a mirror, a corrupt fragment on one member has a second durable copy
on the other; the scrubber must climb past replica and cache to that
copy — accepting it only when its CRC matches the record — and restamp
the repaired bytes so both members converge.
"""

from repro.integrity.scrub import Scrubber
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB

from tests.integrity.conftest import checksum_config


def _mirror_system():
    return System.booted(checksum_config(layout="mirror:2"))


def _write_file(system, payload):
    proc = Proc(system, name="w")

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    system.sync()


def _drop_pages(system, path="/f"):
    vn = system.run(system.mount.namei(path), name="lookup")
    for page in list(system.pagecache.vnode_pages(vn)):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)


def _find_payload_frag(system, marker):
    region = system.disk.integrity
    fs = region.frag_sectors
    for frag in sorted(region._table):
        data = system.volume.members[0].disk.store.read(frag * fs, fs)
        if data[:len(marker)] == marker:
            return frag, fs
    raise AssertionError("payload fragment not found")


def test_scrub_repairs_from_the_other_member():
    system = _mirror_system()
    _write_file(system, b"\xab" * (64 * KB))
    _drop_pages(system)  # no cache source: the mirror rung must fire
    frag, fs = _find_payload_frag(system, b"\xab\xab\xab\xab")
    system.volume.members[0].disk.store.write(frag * fs,
                                              b"\x5a" * (fs * 512))
    report = system.run(Scrubber(system, batch_frags=4096).scrub_now(),
                        name="scrub")
    assert report.detected == 1
    assert report.repaired_from_mirror == 1
    assert report.unrepairable == 0
    assert report.as_dict()["details"][0]["source"] == "mirror"
    # Byte-exact repair: both members hold the original data again.
    for member in system.volume.members:
        assert member.disk.store.read(frag * fs, fs) == b"\xab" * (fs * 512)


def test_mirror_rung_rejects_a_corrupt_second_copy():
    """Both copies corrupt (differently): nothing matches the CRC, so the
    fragment is unrepairable — the rung must never 'repair' with wrong
    bytes just because another member had some."""
    system = _mirror_system()
    _write_file(system, b"\xcd" * (64 * KB))
    _drop_pages(system)
    frag, fs = _find_payload_frag(system, b"\xcd\xcd\xcd\xcd")
    system.volume.members[0].disk.store.write(frag * fs,
                                              b"\x11" * (fs * 512))
    system.volume.members[1].disk.store.write(frag * fs,
                                              b"\x22" * (fs * 512))
    report = system.run(Scrubber(system, batch_frags=4096).scrub_now(),
                        name="scrub")
    assert report.detected == 1
    assert report.repaired_from_mirror == 0
    assert report.unrepairable == 1


def test_single_layout_has_no_mirror_rung():
    system = System.booted(checksum_config())
    _write_file(system, b"\xee" * (32 * KB))
    _drop_pages(system)
    region = system.disk.integrity
    fs = region.frag_sectors
    for frag in sorted(region._table):
        if system.store.read(frag * fs, fs)[:4] == b"\xee\xee\xee\xee":
            break
    else:
        raise AssertionError("payload fragment not found")
    system.store.write(frag * fs, b"\x33" * (fs * 512))
    report = system.run(Scrubber(system, batch_frags=4096).scrub_now(),
                        name="scrub")
    assert report.repaired_from_mirror == 0
