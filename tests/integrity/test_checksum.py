"""Unit tests for the integrity region: layout, stamping, verification."""

import pytest

from repro.disk.store import DiskStore
from repro.errors import ChecksumError, InvalidArgumentError
from repro.integrity import INTEGRITY_MAGIC, IntegrityRegion
from repro.kernel import Proc, System
from repro.ufs.mkfs import mkfs
from repro.ufs.tunefs import tunefs

from tests.integrity.conftest import checksum_config

KB = 1024


def test_mkfs_reserves_a_tail_region(system):
    region = system.disk.integrity
    assert region is not None
    sb = region.sb
    # The data area ends before the region starts.
    data_end = sb.total_frags * region.frag_sectors
    assert data_end <= region.table_sector
    assert region.header_sector == system.store.total_sectors - 1
    # A fresh attach from the bytes alone agrees.
    found = IntegrityRegion.find(system.store)
    assert found is not None
    assert found.table_sector == region.table_sector
    assert found.sb.total_frags == sb.total_frags


def test_mkfs_without_checksums_leaves_no_region():
    cfg = checksum_config(checksums=False)
    system = System.booted(cfg)
    assert system.disk.integrity is None
    assert IntegrityRegion.find(system.store) is None


def test_reused_store_forgets_stale_region():
    cfg = checksum_config()
    system = System.booted(cfg)
    store = system.store
    assert IntegrityRegion.find(store) is not None
    # Re-mkfs the same store without checksums: the old table must not
    # survive to indict fresh writes.
    mkfs(store, cfg.geometry, cfg.fs_params)
    assert IntegrityRegion.find(store) is None


def test_everything_mkfs_wrote_is_stamped(system):
    region = system.disk.integrity
    fs = region.frag_sectors
    data_sectors = region.nfrags * fs
    written = {s // fs for s in system.store.nonzero_sectors()
               if s < data_sectors}
    stamped = set(region.stamped_frags())
    assert written <= stamped
    # ... and every stamp verifies against the media.
    for frag in sorted(stamped):
        data = system.store.read(frag * fs, fs)
        assert region.verify_range(frag * fs, data) == []


def test_file_writes_carry_owner_attribution(system, proc):
    payload = bytes((j * 7) % 251 for j in range(24 * KB))

    def workload():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        return proc._files  # noqa: SLF001 - test introspection

    system.run(workload())
    mount = system.mount
    ip = None
    for vn in mount._vnodes.values():
        if vn.inode.is_reg:
            ip = vn.inode
    assert ip is not None
    region = system.disk.integrity
    fpb = region.frags_per_block
    for lbn in range(3):
        for off in range(fpb):
            rec = region.record(ip.direct[lbn] + off)
            assert rec.gen > 0
            assert rec.owner_ino == ip.ino
            assert rec.owner_lbn == lbn
            assert rec.off == off


def test_verify_reports_crc_and_address_mismatches(system):
    region = system.disk.integrity
    fs = region.frag_sectors
    sb = region.sb
    frag = sb.cg_data_frag(0)  # the root directory block: stamped
    assert region.record(frag).gen > 0

    good = system.store.read(frag * fs, fs)
    assert region.verify_range(frag * fs, good) == []

    rotted = bytearray(good)
    rotted[100] ^= 0x40
    assert region.verify_range(frag * fs, bytes(rotted)) == [(frag, "crc")]

    region.forge_misdirect(frag, good)
    assert region.verify_range(frag * fs, good) == [(frag, "address")]


def test_corrupt_read_fails_with_eio(system, proc):
    payload = b"\x5a" * (8 * KB)

    def build():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(build())
    # Remount so the page cache holds nothing and the read goes to disk.
    survivor = System.remounted(system.store, system.config)
    region = survivor.disk.integrity
    fs = region.frag_sectors
    # Find the file's fragment by owner attribution.
    frags = [f for f in region.stamped_frags()
             if region.record(f).owner_ino not in (0, 2)]
    assert frags
    data = bytearray(survivor.store.read(frags[0] * fs, fs))
    data[17] ^= 0x01
    survivor.store.write(frags[0] * fs, bytes(data))

    sproc = Proc(survivor)

    def read():
        fd = yield from sproc.open("/f")
        yield from sproc.read(fd, len(payload))

    with pytest.raises(ChecksumError):
        survivor.run(read())
    assert sproc.errno == "EIO"
    assert survivor.driver.stats["checksum_errors"] > 0
    assert survivor.disk.stats["checksum_failures"] > 0


def test_tunefs_retrofits_and_forgets(system):
    # Build a plain (no-checksum) file system on the same geometry.
    cfg = checksum_config(checksums=False)
    plain = System.booted(cfg)
    store = plain.store
    assert IntegrityRegion.find(store) is None

    tunefs(store, checksums=True)
    region = IntegrityRegion.find(store)
    assert region is not None
    fs = region.frag_sectors
    for frag in region.stamped_frags():
        data = store.read(frag * fs, fs)
        assert region.verify_range(frag * fs, data) == []

    tunefs(store, checksums=False)
    assert IntegrityRegion.find(store) is None


def test_create_requires_slack():
    # A store exactly as big as the data area leaves no room.
    cfg = checksum_config(checksums=False)
    system = System.booted(cfg)
    sb = tunefs(system.store)  # no-op tune, returns the superblock
    tight = DiskStore(sb.total_frags * (sb.fsize // 512), 512)
    with pytest.raises(InvalidArgumentError):
        IntegrityRegion.create(tight, sb)


def test_sb_replica_tracks_superblock_rewrites(system, proc):
    def touch():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"x" * 1024)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(touch())
    system.sync()
    region = system.disk.integrity
    sb_now = system.store.read(16, region.block_sectors)
    assert region.sb_replica() == sb_now
    assert region.stats["replica_refreshes"] > 0


def test_header_magic_is_distinct():
    assert INTEGRITY_MAGIC != 0x011954  # the superblock's
