"""Shared fixtures: a small checksummed system (the scrub campaign's
geometry, so integrity-region layout is exercised the same way)."""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig


def checksum_config(**overrides):
    overrides.setdefault("checksums", True)
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32),
        **overrides)


@pytest.fixture
def system():
    return System.booted(checksum_config())


@pytest.fixture
def proc(system):
    return Proc(system)
