"""Property tests on the core policy state machines and queue structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReadAheadState, WriteClusterState
from repro.disk import Buf, BufOp, DiskQueue
from repro.sim import Engine

PAGE = 8192


# -- write clustering: delayed + flushed tiles the written pages exactly ----

@settings(max_examples=60, deadline=None)
@given(
    offsets=st.lists(st.integers(0, 63), min_size=1, max_size=40),
    cluster_pages=st.integers(1, 15),
)
def test_writecluster_never_loses_or_duplicates_pages(offsets, cluster_pages):
    state = WriteClusterState()
    flushed: list[int] = []
    offered: list[int] = []
    for page in offsets:
        offset = page * PAGE
        offered.append(offset)
        action = state.offer(offset, PAGE, cluster_pages * PAGE)
        if action.should_flush:
            start = action.flush_offset
            for i in range(action.flush_len // PAGE):
                flushed.append(start + i * PAGE)
    # Drain whatever is still delayed.
    if state.pending:
        start, span = state.delayoff, state.delaylen
        for i in range(span // PAGE):
            flushed.append(start + i * PAGE)
    # Every page offered is flushed exactly once, in total.
    assert sorted(flushed) == sorted(offered)


@settings(max_examples=60, deadline=None)
@given(offsets=st.lists(st.integers(0, 63), min_size=1, max_size=40))
def test_writecluster_pending_is_always_contiguous(offsets):
    state = WriteClusterState()
    for page in offsets:
        state.offer(page * PAGE, PAGE, 5 * PAGE)
        assert 0 <= state.delaylen <= 5 * PAGE
        assert state.delayoff % PAGE == 0


# -- read-ahead: never prefetch the same cluster twice, never go backwards --

@settings(max_examples=60, deadline=None)
@given(
    jumps=st.lists(st.integers(0, 40), min_size=2, max_size=30),
    cluster=st.integers(1, 8),
)
def test_readahead_never_reissues_a_cluster(jumps, cluster):
    state = ReadAheadState()
    issued: list[int] = []
    for page in jumps:
        offset = page * PAGE
        action = state.observe(offset, PAGE, cached=True)
        if action.ra_offset is not None:
            assert action.ra_offset not in issued
            issued.append(action.ra_offset)
            state.issued(action.ra_offset, cluster * PAGE)
    assert issued == sorted(issued)  # read-ahead only moves forward


# -- disksort: everything queued is eventually served, barriers hold --------

@settings(max_examples=60, deadline=None)
@given(
    sectors=st.lists(st.integers(0, 5000), min_size=1, max_size=40),
    barrier_at=st.integers(0, 39),
)
def test_disksort_serves_everything_once(sectors, barrier_at):
    eng = Engine()
    queue = DiskQueue(use_disksort=True)
    bufs = []
    for i, sector in enumerate(sectors):
        buf = Buf(eng, BufOp.WRITE, sector, 2, data=bytes(1024),
                  ordered=(i == barrier_at))
        bufs.append(buf)
        queue.insert(buf)
    served = []
    last = 0
    while True:
        buf = queue.pop(last)
        if buf is None:
            break
        served.append(buf)
        last = buf.end_sector
    assert len(served) == len(bufs)
    assert {b.id for b in served} == {b.id for b in bufs}
    # Barrier property: everything inserted before the barrier is served
    # before it; everything after, after it.
    if barrier_at < len(bufs):
        barrier = bufs[barrier_at]
        pos = served.index(barrier)
        before_ids = {b.id for b in bufs[:barrier_at]}
        assert before_ids == {b.id for b in served[:pos]}


@settings(max_examples=40, deadline=None)
@given(sectors=st.lists(st.integers(0, 5000), min_size=2, max_size=40))
def test_disksort_is_mostly_ascending(sectors):
    """C-LOOK serves in ascending runs: the number of descending steps is
    bounded by the number of sweeps (wraps) plus anti-starvation picks."""
    eng = Engine()
    queue = DiskQueue(use_disksort=True)
    for sector in sectors:
        queue.insert(Buf(eng, BufOp.WRITE, sector, 2, data=bytes(1024)))
    order = []
    last = 0
    while True:
        buf = queue.pop(last)
        if buf is None:
            break
        order.append(buf.sector)
        last = buf.end_sector
    descents = sum(1 for a, b in zip(order, order[1:]) if b < a)
    assert descents <= max(1, len(order) // 2)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_disksort_starvation_bounded(data):
    """A request behind the head is served within max_passes pops even if
    forward traffic keeps arriving."""
    eng = Engine()
    queue = DiskQueue(use_disksort=True, max_passes=5)
    victim = Buf(eng, BufOp.READ, 10, 2)
    queue.insert(victim)
    last = 1000  # head is already past the victim
    pops = 0
    next_sector = 1100
    while True:
        # Keep feeding forward traffic, as a streaming writer would.
        queue.insert(Buf(eng, BufOp.WRITE, next_sector, 2, data=bytes(1024)))
        next_sector += data.draw(st.integers(2, 50))
        buf = queue.pop(last)
        pops += 1
        last = buf.end_sector
        if buf is victim:
            break
        assert pops < 20, "victim starved"
