"""Property tests: allocator bookkeeping never drifts from the bitmaps."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk import DiskGeometry
from repro.kernel import System, SystemConfig
from repro.ufs.inode import Inode
from repro.ufs.ondisk import Dinode, IFREG


def build():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32))
    return System.booted(cfg)


def counters_match_bitmaps(mount):
    sb = mount.sb
    total_nbfree = total_nffree = 0
    for cgx, cg in enumerate(mount.cgs):
        base = sb.cgbase(cgx)
        data_start = sb.cg_data_frag(cgx) - base
        end = sb.cg_end_frag(cgx) - base
        nbfree = nffree = 0
        for block_rel in range(data_start, end - sb.frag + 1, sb.frag):
            free = sum(1 for i in range(sb.frag)
                       if cg.frag_is_free(block_rel + i))
            if free == sb.frag:
                nbfree += 1
            else:
                nffree += free
        if (nbfree, nffree) != (cg.nbfree, cg.nffree):
            return False
        total_nbfree += nbfree
        total_nffree += nffree
    return (total_nbfree, total_nffree) == (sb.cs_nbfree, sb.cs_nffree)


op_strategy = st.one_of(
    st.tuples(st.just("block"), st.integers(0, 10_000)),
    st.tuples(st.just("frags"), st.integers(0, 10_000), st.integers(1, 7)),
    st.tuples(st.just("free"), st.integers(0, 100)),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=30))
def test_alloc_free_keeps_counters_consistent(ops):
    system = build()
    mount = system.mount
    ip = Inode(mount, 10, Dinode(mode=IFREG, nlink=1))
    held: list[tuple[int, int]] = []  # (addr, nfrags)

    def apply_all():
        from repro.errors import NoSpaceError

        for op in ops:
            try:
                if op[0] == "block":
                    addr = yield from mount.allocator.alloc_block(ip, op[1])
                    held.append((addr, mount.sb.frag))
                elif op[0] == "frags":
                    addr = yield from mount.allocator.alloc_frags(
                        ip, op[1], op[2])
                    held.append((addr, op[2]))
                elif op[0] == "free" and held:
                    addr, n = held.pop(op[1] % len(held))
                    mount.allocator.free_frags(ip, addr, n)
            except NoSpaceError:
                pass

    system.run(apply_all())
    # No two held runs overlap.
    claimed: set[int] = set()
    for addr, n in held:
        for f in range(addr, addr + n):
            assert f not in claimed, "overlapping allocation"
            claimed.add(f)
    assert counters_match_bitmaps(mount)
    # Freeing everything restores the bitmaps to agreement too.
    for addr, n in held:
        mount.allocator.free_frags(ip, addr, n)
    assert counters_match_bitmaps(mount)
    assert ip.blocks == 0
