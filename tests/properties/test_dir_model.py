"""Property: directories behave like a dict of names."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk import DiskGeometry
from repro.kernel import System, SystemConfig
from repro.ufs import dir as dirops

names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=12,
)

op_strategy = st.one_of(
    st.tuples(st.just("enter"), names),
    st.tuples(st.just("remove"), names),
)


def build():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=150, heads=2,
                                      sectors_per_track=32))
    return System.booted(cfg)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=40))
def test_directory_matches_dict(ops):
    system = build()
    mount = system.mount
    root = mount.root.inode
    model: dict[str, int] = {}
    next_ino = [10]

    def apply_all():
        for kind, name in ops:
            if kind == "enter":
                if name in model:
                    continue
                ino = next_ino[0]
                next_ino[0] += 1
                yield from dirops.enter(mount, root, name, ino)
                model[name] = ino
            else:
                if name not in model:
                    continue
                ino = yield from dirops.remove(mount, root, name)
                assert ino == model.pop(name)
        # Lookups agree with the model.
        for name, ino in model.items():
            found = yield from dirops.lookup(mount, root, name)
            assert found == ino
        listing = yield from dirops.entries(mount, root)
        real = {n: i for n, i in listing if n not in (".", "..")}
        assert real == model

    system.run(apply_all())
