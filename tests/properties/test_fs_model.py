"""Property: the file system behaves like a dict of byte strings.

A random sequence of file operations (create, write at random offsets,
read back, truncate, unlink) is applied both to UFS and to a trivial
in-memory model; contents must agree at every read, and the on-disk state
must be fsck-clean at the end.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import fsck
from repro.units import KB


def small_system():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    return System.booted(cfg)


FILES = ["/a", "/b", "/c"]

op_strategy = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(FILES),
              st.integers(0, 40 * KB), st.integers(1, 24 * KB),
              st.integers(0, 255)),
    st.tuples(st.just("read"), st.sampled_from(FILES),
              st.integers(0, 48 * KB), st.integers(1, 24 * KB)),
    st.tuples(st.just("truncate"), st.sampled_from(FILES)),
    st.tuples(st.just("unlink"), st.sampled_from(FILES)),
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_ufs_matches_dict_model(ops):
    system = small_system()
    proc = Proc(system)
    model: dict[str, bytearray] = {}

    def apply_all():
        for op in ops:
            kind = op[0]
            path = op[1]
            if kind == "write":
                _, _, offset, length, fill = op
                data = bytes([fill]) * length
                if path not in model:
                    fd = yield from proc.creat(path)
                    model[path] = bytearray()
                else:
                    fd = yield from proc.open(path)
                yield from proc.pwrite(fd, data, offset)
                yield from proc.close(fd)
                m = model[path]
                if len(m) < offset:
                    m.extend(bytes(offset - len(m)))
                m[offset:offset + length] = data
            elif kind == "read":
                if path not in model:
                    continue
                _, _, offset, length = op
                fd = yield from proc.open(path)
                got = yield from proc.pread(fd, length, offset)
                yield from proc.close(fd)
                expect = bytes(model[path][offset:offset + length])
                assert got == expect, (
                    f"mismatch at {path}:{offset}+{length}"
                )
            elif kind == "truncate":
                if path not in model:
                    continue
                yield from system.mount.truncate(path)
                model[path] = bytearray()
            elif kind == "unlink":
                if path not in model:
                    continue
                yield from proc.unlink(path)
                del model[path]
        # Final full read-back of every surviving file.
        for path, content in model.items():
            fd = yield from proc.open(path)
            got = yield from proc.pread(fd, len(content) + 1, 0)
            yield from proc.close(fd)
            assert got == bytes(content)

    system.run(apply_all())
    system.sync()
    report = fsck(system.store)
    assert report.clean, str(report)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1))
def test_sizes_and_blocks_consistent(seed):
    """After random single-file growth, size/di_blocks/extent accounting
    all agree (and fsck cross-checks them on disk)."""
    import random

    rng = random.Random(seed)
    system = small_system()
    proc = Proc(system)
    total = 0

    def work():
        nonlocal total
        fd = yield from proc.creat("/grow")
        for _ in range(rng.randrange(1, 12)):
            chunk = rng.randrange(1, 20 * KB)
            yield from proc.write(fd, bytes(chunk))
            total += chunk
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    vn = system.run(system.mount.namei("/grow"))
    assert vn.size == total
    sb = system.mount.sb
    expected_frags = 0
    last = (total - 1) // sb.bsize if total else 0
    for lbn in range(last + 1):
        expected_frags += vn.inode.blksize(lbn) // sb.fsize
    # di_blocks also counts metadata (indirect) blocks, as on real UFS.
    if vn.inode.indirect:
        expected_frags += sb.frag
    if vn.inode.dindirect:
        expected_frags += sb.frag
    assert vn.inode.blocks == expected_frags
    system.sync()
    assert fsck(system.store).clean
