"""Property tests on the page cache and the metadata buffer cache."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.units import KB
from repro.vm import PageCache


class _StubVnode:
    _next = [1000]

    def __init__(self):
        self.vnode_id = self._next[0]
        self._next[0] += 1


vm_op = st.one_of(
    st.tuples(st.just("alloc"), st.integers(0, 15)),
    st.tuples(st.just("lookup"), st.integers(0, 15)),
    st.tuples(st.just("free"), st.integers(0, 15)),
    st.tuples(st.just("free_front"), st.integers(0, 15)),
    st.tuples(st.just("destroy"), st.integers(0, 15)),
)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(vm_op, min_size=1, max_size=60))
def test_pagecache_frame_conservation(ops):
    """Frames are conserved: every frame is exactly once either free or in
    use; named frames appear in the hash exactly once; lookup never lies."""
    engine = Engine()
    cache = PageCache(engine, memory_bytes=8 * 8 * KB, page_size=8 * KB)
    vnode = _StubVnode()
    live: dict[int, object] = {}  # offset -> page (in use)

    for op, slot in ops:
        offset = slot * 8 * KB
        if op == "alloc":
            if offset in live or cache.lookup(vnode, offset) is not None:
                # Already cached: reclaim through lookup instead.
                page = cache.lookup(vnode, offset)
                if page is not None and offset not in live:
                    live[offset] = page
                continue
            page = cache.allocate(vnode, offset)
            if page is not None:
                page.valid = True
                page.unlock()
                live[offset] = page
        elif op == "lookup":
            page = cache.lookup(vnode, offset)
            if page is not None:
                assert page.vnode is vnode and page.offset == offset
                live.setdefault(offset, page)
        elif op in ("free", "free_front"):
            page = live.pop(offset, None)
            if page is not None and not page.free:
                cache.free(page, front=(op == "free_front"))
        elif op == "destroy":
            page = live.pop(offset, None)
            if page is None:
                page = cache.lookup(vnode, offset)
                if page is None:
                    continue
            cache.destroy(page)

        # Invariants after every step:
        in_use = sum(1 for p in cache.frames if not p.free)
        assert in_use + cache.freemem == cache.total_pages
        named = [p for p in cache.frames if p.named]
        keys = {(p.vnode.vnode_id, p.offset) for p in named}
        assert len(keys) == len(named), "duplicate page identity"
        assert cache.named_pages == len(named)


meta_op = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 11)),
    st.tuples(st.just("dirty"), st.integers(0, 11)),
    st.tuples(st.just("sync_one"), st.integers(0, 11)),
    st.tuples(st.just("flush")),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(meta_op, min_size=1, max_size=30), data=st.data())
def test_metacache_matches_disk_model(ops, data):
    """The metadata cache behaves like a write-back dict over the disk:
    after a flush, the disk holds the latest content for every block."""
    from repro.cpu import CostTable, Cpu
    from repro.disk import DiskDriver, DiskGeometry, RotationalDisk
    from repro.ufs.metacache import MetaCache

    engine = Engine()
    geom = DiskGeometry.uniform(cylinders=40, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom)
    cpu = Cpu(engine, CostTable.free())
    cache = MetaCache(engine, DiskDriver(engine, disk, cpu=cpu), cpu,
                      bsize=8192, frag_sectors=2, capacity=4)
    model: dict[int, bytes] = {}  # block addr -> latest content
    counter = [0]

    def run_ops():
        for op in ops:
            if op[0] == "read":
                addr = 8 + op[1] * 8
                meta = yield from cache.bread(addr)
                expect = model.get(addr, bytes(8192))
                assert bytes(meta.data) == expect, f"stale read at {addr}"
            elif op[0] == "dirty":
                addr = 8 + op[1] * 8
                meta = yield from cache.bread(addr)
                counter[0] += 1
                content = bytes([counter[0] % 256]) * 8192
                meta.data[:] = content
                cache.bdwrite(meta)
                model[addr] = content
            elif op[0] == "sync_one":
                addr = 8 + op[1] * 8
                meta = yield from cache.bread(addr)
                yield from cache.bwrite(meta)
            else:
                yield from cache.flush()

        yield from cache.flush()

    engine.run_process(run_ops())
    # After the final flush the disk agrees with the model everywhere.
    for addr, content in model.items():
        assert disk.store.read(addr * 2, 16) == content
