"""Tests for the hardened NFS RPC layer: retransmission, adaptive
timeouts, the duplicate-request cache, corruption rejection, mount
semantics, and write-behind failure propagation."""

import pytest

from repro.disk import DiskGeometry
from repro.errors import FileNotFoundError_, RpcTimeoutError
from repro.faults import NetFaultPlan
from repro.faults.netplan import DOWN, UP
from repro.kernel import Proc, SystemConfig
from repro.nfs import RttEstimator, build_world
from repro.units import KB


def small_world(**kwargs):
    server_cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    return build_world(server_config=server_cfg, **kwargs)


CHUNK = bytes(range(256)) * 32  # 8 KB


def _settle(engine, until=1.0):
    """Sleep until just past ``until`` (where tests schedule their faults),
    so boot/setup traffic never consumes a scheduled one-shot."""
    if engine.now < until:
        yield engine.timeout(until - engine.now + 0.001)


def _prepare_file(client, mount, path="/f"):
    """Create an 8 KB file and make it durable, all before t=1.0."""
    proc = Proc(client, mount=mount)

    def setup():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, CHUNK)
        yield from proc.fsync(fd)
        return fd

    fd = client.run(setup())
    return proc, fd


# -- the adaptive timer -------------------------------------------------------

def test_rtt_estimator_initial_and_first_sample():
    est = RttEstimator(initial_rto=1.1)
    assert est.rto() == 1.1  # no samples: the configured initial
    est.observe(0.2)
    assert est.srtt == pytest.approx(0.2)
    assert est.rttvar == pytest.approx(0.1)
    assert est.rto() == pytest.approx(0.2 + 4 * 0.1)


def test_rtt_estimator_converges_on_steady_rtt():
    est = RttEstimator(initial_rto=1.1)
    for _ in range(100):
        est.observe(0.01)
    assert est.srtt == pytest.approx(0.01)
    # Variance decays toward zero; the floor keeps the timer sane.
    assert est.rto() == pytest.approx(est.min_rto)


def test_rtt_estimator_clamps_to_max():
    est = RttEstimator(initial_rto=1.0, max_rto=2.0)
    est.observe(10.0)
    assert est.rto() == 2.0


def test_rtt_estimator_validation():
    with pytest.raises(ValueError):
        RttEstimator(min_rto=0)
    with pytest.raises(ValueError):
        RttEstimator(min_rto=5, max_rto=1)
    with pytest.raises(ValueError):
        RttEstimator(initial_rto=0)
    with pytest.raises(ValueError):
        RttEstimator().observe(-1)


# -- retransmission -----------------------------------------------------------

def test_dropped_request_is_retransmitted():
    plan = NetFaultPlan(scheduled=[(1.0, UP, "drop")])
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_after_fault():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    assert client.run(read_after_fault()) == CHUNK
    assert mount.stats["rpc_timeouts"] >= 1
    assert mount.stats["retransmits"] >= 1
    assert plan.stats["drops"] == 1


def test_karns_rule_skips_retransmitted_samples():
    plan = NetFaultPlan(scheduled=[(1.0, UP, "drop")])
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))
    samples_before = mount.stats["rtt_samples"]

    def read_after_fault():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    client.run(read_after_fault())
    # The READ needed a retransmission, so its ambiguous reply must not
    # have fed the estimator.
    assert mount.stats["retransmits"] >= 1
    assert mount.stats["rtt_samples"] == samples_before


def test_clean_calls_feed_the_estimator():
    client, _server, mount = small_world()
    _prepare_file(client, mount)
    assert mount.stats["rtt_samples"] > 0
    assert mount.stats["retransmits"] == 0
    est = mount._estimator("WRITE")
    assert est.samples > 0 and est.srtt is not None


# -- the duplicate-request cache ----------------------------------------------

def test_duplicated_mutation_executes_once():
    plan = NetFaultPlan(scheduled=[(1.0, UP, "duplicate")])
    client, _server, mount = small_world(fault_plan=plan)
    _prepare_file(client, mount)
    server = mount.server

    def remove_after_fault():
        yield from _settle(client.engine, 1.0)
        yield from mount.unlink("/f")

    client.run(remove_after_fault())
    assert plan.stats["duplicates"] == 1
    # The copy was answered from cache or dropped mid-execution — never
    # re-executed (which would have manufactured a spurious ENOENT).
    assert (server.stats["drc_hits"] + server.stats["drc_in_progress_drops"]
            >= 1)
    assert server.stats["duplicate_executions"] == 0
    assert mount.stats["remove_enoent_swallowed"] == 0


def test_lost_remove_reply_answered_from_drc():
    plan = NetFaultPlan(scheduled=[(1.0, DOWN, "drop")])
    client, _server, mount = small_world(fault_plan=plan)
    proc, _fd = _prepare_file(client, mount)
    server = mount.server

    def remove_after_fault():
        yield from _settle(client.engine, 1.0)
        yield from proc.unlink("/f")

    client.run(remove_after_fault())  # no spurious ENOENT
    assert server.stats["drc_hits"] >= 1
    assert server.stats["duplicate_executions"] == 0
    assert mount.stats["remove_enoent_swallowed"] == 0
    with pytest.raises(FileNotFoundError_):
        client.run(mount.namei("/f"))


def test_lost_remove_reply_without_drc_hits_the_heuristic():
    """drc_size=0 shows the bug the DRC exists for: the retransmitted
    REMOVE re-executes and answers ENOENT; the client-side heuristic
    (ENOENT on a retransmitted REMOVE is success) papers over it."""
    plan = NetFaultPlan(scheduled=[(1.0, DOWN, "drop")])
    client, _server, mount = small_world(fault_plan=plan, drc_size=0)
    proc, _fd = _prepare_file(client, mount)
    server = mount.server

    def remove_after_fault():
        yield from _settle(client.engine, 1.0)
        yield from proc.unlink("/f")

    client.run(remove_after_fault())  # heuristic swallows the ENOENT
    assert server.stats["duplicate_executions"] >= 1
    assert mount.stats["remove_enoent_swallowed"] == 1
    with pytest.raises(FileNotFoundError_):
        client.run(mount.namei("/f"))


def test_genuine_enoent_still_raises():
    client, _server, mount = small_world()
    with pytest.raises(FileNotFoundError_):
        client.run(mount.unlink("/never-existed"))


# -- corruption ---------------------------------------------------------------

def test_corrupted_request_rejected_then_retransmitted():
    plan = NetFaultPlan(scheduled=[(1.0, UP, "corrupt")])
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_after_fault():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    assert client.run(read_after_fault()) == CHUNK
    assert mount.server.stats["corrupt_requests_rejected"] == 1
    assert mount.stats["retransmits"] >= 1


def test_corrupted_reply_never_reaches_the_page_cache():
    plan = NetFaultPlan(scheduled=[(1.0, DOWN, "corrupt")])
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_after_fault():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    # The damaged reply is discarded at the checksum; the retransmission
    # fetches clean bytes, so the content is still perfect.
    assert client.run(read_after_fault()) == CHUNK
    assert mount.stats["corrupt_replies_dropped"] == 1
    assert mount.stats["retransmits"] >= 1


def test_duplicated_reply_is_ignored():
    plan = NetFaultPlan(scheduled=[(1.0, DOWN, "duplicate")])
    client, _server, mount = small_world(fault_plan=plan)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_after_fault():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    assert client.run(read_after_fault()) == CHUNK
    assert mount.stats["duplicate_replies_ignored"] == 1


# -- mount semantics ----------------------------------------------------------

def test_soft_mount_times_out_with_etimedout_errno():
    plan = NetFaultPlan(partitions=[(1.0, 1e9)])
    client, _server, mount = small_world(fault_plan=plan, soft=True,
                                         timeo=0.2, retrans=3)
    proc = Proc(client, mount=mount)

    def doomed():
        yield from _settle(client.engine, 1.0)
        yield from proc.creat("/x")

    with pytest.raises(RpcTimeoutError):
        client.run(doomed())
    assert proc.errno == "ETIMEDOUT"
    assert mount.stats["major_timeouts"] == 1
    assert mount.stats["retransmits"] == 2  # retrans=3 transmissions total


def test_hard_mount_survives_a_finite_partition():
    plan = NetFaultPlan(partitions=[(1.0, 1.6)])
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_through_partition():
        yield from _settle(client.engine, 1.0)
        return (yield from proc.pread(fd, 8 * KB, 0))

    assert client.run(read_through_partition()) == CHUNK
    assert client.now > 1.6  # it really waited the partition out
    assert mount.stats["retransmits"] >= 1
    assert plan.stats["partition_drops"] >= 1


def test_server_crash_reboot_drops_calls_and_cold_starts_drc():
    plan = NetFaultPlan(server_crash_at=[1.0], server_reboot_delay=0.2)
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc, fd = _prepare_file(client, mount)
    server = mount.server
    assert len(server._drc) > 0  # setup traffic populated the cache
    client.pagecache.vnode_invalidate(client.run(mount.namei("/f")))

    def read_into_outage():
        yield from _settle(client.engine, 1.05)
        return (yield from proc.pread(fd, 8 * KB, 0))

    assert client.run(read_into_outage()) == CHUNK
    assert server.stats["dropped_while_down"] >= 1
    assert server.stats["reboots"] == 1
    assert mount.stats["retransmits"] >= 1
    # The DRC cold-started: only post-reboot entries remain.
    assert len(server._drc) <= 2


# -- write-behind failure propagation (satellite: deferred errors) ------------

def test_write_behind_failure_raised_by_next_write():
    plan = NetFaultPlan(partitions=[(1.0, 1e9)])
    client, _server, mount = small_world(fault_plan=plan, soft=True,
                                         timeo=0.2, retrans=2)
    proc, fd = _prepare_file(client, mount)
    vn = client.run(mount.namei("/f"))

    def fail_then_write_again():
        yield from _settle(client.engine, 1.0)
        yield from proc.pwrite(fd, CHUNK, 0)  # queues doomed write-behind
        yield client.engine.timeout(5)  # let the push time out
        yield from proc.pwrite(fd, CHUNK, 0)  # the deferred error lands here

    with pytest.raises(RpcTimeoutError):
        client.run(fail_then_write_again())
    assert proc.errno == "ETIMEDOUT"
    assert mount.stats["write_behind_errors"] >= 1
    assert mount.stats["deferred_errors_raised"] == 1
    assert vn.error is None  # raised once, then cleared
    # Satellite: the failed push released its throttle slot.
    assert vn.throttle.in_flight == 0


def test_write_behind_failure_raised_by_fsync_after_drain():
    plan = NetFaultPlan(partitions=[(1.0, 1e9)])
    client, _server, mount = small_world(fault_plan=plan, soft=True,
                                         timeo=0.2, retrans=2)
    proc, fd = _prepare_file(client, mount)
    vn = client.run(mount.namei("/f"))

    def fail_then_fsync():
        yield from _settle(client.engine, 1.0)
        yield from proc.pwrite(fd, CHUNK, 0)
        yield from proc.fsync(fd)  # drains, then surfaces the failure

    with pytest.raises(RpcTimeoutError):
        client.run(fail_then_fsync())
    assert proc.errno == "ETIMEDOUT"
    assert mount.stats["write_behind_errors"] >= 1
    assert mount.stats["deferred_errors_raised"] == 1
    assert vn.throttle.in_flight == 0  # drained despite the failure


# -- attribute handling (satellite: stale size) --------------------------------

def test_vnode_for_trusts_latest_attributes_when_idle():
    client, _server, mount = small_world()
    _prepare_file(client, mount)
    vn = client.run(mount.namei("/f"))
    assert vn.remote_size == 8 * KB
    # A remote truncation: the next reply reports a smaller size, and with
    # nothing in flight the client must believe it (the old max() would
    # have pinned the stale larger size forever).
    assert mount._vnode_for(vn.handle, 1 * KB) is vn
    assert vn.remote_size == 1 * KB


def test_vnode_for_keeps_local_size_while_writes_in_flight():
    client, _server, mount = small_world()
    _prepare_file(client, mount)
    vn = client.run(mount.namei("/f"))
    vn.throttle.take(1)  # a write-behind the server hasn't seen yet
    try:
        mount._vnode_for(vn.handle, 1 * KB)
        assert vn.remote_size == 8 * KB  # local view is more current
    finally:
        vn.throttle.credit(1)


# -- end to end over a persistently lossy wire ---------------------------------

def test_write_fsync_read_back_over_lossy_wire():
    plan = NetFaultPlan(seed=7, drop_p=0.1, duplicate_p=0.05, corrupt_p=0.05,
                        reorder_p=0.05)
    client, _server, mount = small_world(fault_plan=plan, timeo=0.3)
    proc = Proc(client, mount=mount)
    payload = bytes((j * 13) % 251 for j in range(64 * KB))

    def workload():
        fd = yield from proc.creat("/big")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)

    client.run(workload())
    vn = client.run(mount.namei("/big"))
    client.pagecache.vnode_invalidate(vn)

    def read_back():
        fd = yield from proc.open("/big")
        return (yield from proc.read(fd, len(payload)))

    assert client.run(read_back()) == payload
    assert mount.stats["retransmits"] > 0  # the wire really was lossy
    assert mount.server.stats["duplicate_executions"] == 0
