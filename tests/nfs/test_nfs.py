"""Tests for the NFS client/server/network stack."""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, SystemConfig
from repro.nfs import Network, build_world
from repro.nfs.net import ETHERNET_10MBIT
from repro.sim import Engine
from repro.units import KB, MB, MS
from repro.vfs import RW


def small_world(**kwargs):
    server_cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    return build_world(server_config=server_cfg, **kwargs)


# -- network -------------------------------------------------------------------

def test_network_transfer_time():
    eng = Engine()
    net = Network(eng, bandwidth=1_000_000, latency=2 * MS)

    def proc():
        yield from net.send_to_server(10_000)
        return eng.now

    # 10 KB at 1 MB/s = 10 ms, plus 2 ms latency.
    assert eng.run_process(proc()) == pytest.approx(0.012)
    assert net.stats["messages"] == 1


def test_network_serializes_each_direction():
    eng = Engine()
    net = Network(eng, bandwidth=1_000_000, latency=0)
    done = []

    def sender(tag):
        yield from net.send_to_server(500_000)  # 0.5 s each
        done.append((tag, eng.now))

    eng.process(sender("a"))
    eng.process(sender("b"))
    eng.run()
    assert done == [("a", 0.5), ("b", 1.0)]


def test_network_directions_are_independent():
    eng = Engine()
    net = Network(eng, bandwidth=1_000_000, latency=0)
    done = []

    def up():
        yield from net.send_to_server(500_000)
        done.append(("up", eng.now))

    def down():
        yield from net.send_to_client(500_000)
        done.append(("down", eng.now))

    eng.process(up())
    eng.process(down())
    eng.run()
    assert sorted(t for _, t in done) == [0.5, 0.5]


def test_network_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Network(eng, bandwidth=0)
    with pytest.raises(ValueError):
        Network(eng, latency=-1)


# -- end to end ---------------------------------------------------------------------

def test_remote_write_read_round_trip():
    client, server, mount = small_world()
    payload = bytes(i % 241 for i in range(100 * KB))

    def work():
        vn = yield from mount.open("/data", create=True)
        yield from vn.rdwr(RW.WRITE, 0, payload)
        yield from vn.fsync()
        return (yield from vn.rdwr(RW.READ, 0, len(payload)))

    assert client.run(work()) == payload
    # The data is durably on the SERVER's disk.
    from repro.ufs import fsck

    server.sync()
    assert fsck(server.store).clean


def test_remote_data_really_lives_on_server():
    client, server, mount = small_world()

    def write_remote():
        vn = yield from mount.open("/shared", create=True)
        yield from vn.rdwr(RW.WRITE, 0, b"visible to local procs")
        yield from vn.fsync()

    client.run(write_remote())

    # A process ON THE SERVER sees the file through local UFS.
    server_proc = Proc(server, "local")

    def read_local():
        fd = yield from server_proc.open("/shared")
        return (yield from server_proc.read(fd, 100))

    assert server.run(read_local()) == b"visible to local procs"


def test_client_cache_avoids_repeat_rpcs():
    client, server, mount = small_world()
    payload = bytes(32 * KB)

    def setup():
        vn = yield from mount.open("/cached", create=True)
        yield from vn.rdwr(RW.WRITE, 0, payload)
        yield from vn.fsync()
        yield from vn.rdwr(RW.READ, 0, len(payload))  # populate
        return vn

    vn = client.run(setup())
    before = mount.stats["rpc_read"]

    def reread():
        return (yield from vn.rdwr(RW.READ, 0, len(payload)))

    assert client.run(reread()) == payload
    assert mount.stats["rpc_read"] == before  # served from client cache


def test_lookup_missing_remote_file():
    from repro.errors import FileNotFoundError_

    client, server, mount = small_world()
    with pytest.raises(FileNotFoundError_):
        client.run(mount.open("/nope"))


def test_sequential_read_triggers_biod_readahead():
    client, server, mount = small_world()
    payload = bytes(64 * KB)

    def setup():
        vn = yield from mount.open("/seq", create=True)
        yield from vn.rdwr(RW.WRITE, 0, payload)
        yield from vn.fsync()
        return vn

    vn = client.run(setup())
    for page in client.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            client.pagecache.destroy(page)
    vn.readahead.reset()
    mount.stats.reset()

    def read_all():
        yield from vn.rdwr(RW.READ, 0, len(payload))

    client.run(read_all())
    # 8 pages: roughly one extra read-ahead RPC per page consumed.
    assert mount.stats["rpc_read"] >= 8


def test_write_behind_is_throttled():
    client, server, mount = small_world()
    payload = bytes(512 * KB)

    def work():
        vn = yield from mount.open("/big", create=True)
        yield from vn.rdwr(RW.WRITE, 0, payload)
        yield from vn.fsync()
        return vn

    vn = client.run(work())
    assert vn.throttle.sleeps > 0  # the 64 KB biod window filled
    assert mount.stats["remote_writes"] >= 60


def test_slow_network_bounds_throughput():
    """On a 10 Mbit wire the remote sequential read tops out near the wire
    rate, regardless of server-side clustering."""
    client, server, mount = small_world()
    payload = bytes(1 * MB)

    def setup():
        vn = yield from mount.open("/stream", create=True)
        yield from vn.rdwr(RW.WRITE, 0, payload)
        yield from vn.fsync()
        return vn

    vn = client.run(setup())
    for page in client.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            client.pagecache.destroy(page)
    vn.readahead.reset()

    t0 = client.now

    def read_all():
        yield from vn.rdwr(RW.READ, 0, len(payload))

    client.run(read_all())
    rate = len(payload) / (client.now - t0)
    assert rate < ETHERNET_10MBIT  # can't beat the wire
    assert rate > 0.3 * ETHERNET_10MBIT  # but gets a decent fraction
