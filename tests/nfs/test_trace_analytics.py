"""End-to-end trace analytics over NFS: rpc attribution and server tracks."""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, SystemConfig
from repro.nfs import build_world
from repro.obs.attrib import attribution_table
from repro.obs.critpath import critical_paths, verify_against_attribution, \
    verify_conservation
from repro.obs.export import chrome_trace
from repro.units import KB


@pytest.fixture(scope="module")
def traced_world():
    server_cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    client, server, mount = build_world(server_config=server_cfg)
    client.tracer.enabled = True
    server.tracer.enabled = True
    proc = Proc(client, mount=mount)

    def write_phase():
        fd = yield from proc.open("/f", create=True)
        for _ in range(4):
            yield from proc.write(fd, bytes(8 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    def read_phase():
        fd = yield from proc.open("/f")
        while (yield from proc.read(fd, 8 * KB)):
            pass
        yield from proc.close(fd)

    client.run(write_phase(), name="nfs-write")
    # Drop the client's cached pages so the reads actually hit the wire.
    vn = client.run(mount.namei("/f"), name="lookup")
    for page in client.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            client.pagecache.destroy(page)
    client.run(read_phase(), name="nfs-read")
    client.tracer.enabled = False
    server.tracer.enabled = False
    return client, server


def test_rpc_lands_in_attribution_table(traced_world):
    client, _ = traced_world
    table = attribution_table(client.tracer)
    assert "read" in table and "write" in table
    rpc_time = sum(row["categories"]["rpc"] for row in table.values())
    assert rpc_time > 0.0


def test_rpc_lands_on_the_critical_path(traced_world):
    client, _ = traced_world
    report = critical_paths(client.tracer)
    assert report.paths
    assert verify_conservation(report) == []
    assert verify_against_attribution(client.tracer, report) == []
    rpc_segments = [seg for path in report.paths
                    for seg in path.segments if seg.category == "rpc"]
    assert rpc_segments, "no critical-path segment blamed the wire"
    kinds = {path.root.name for path in report.paths
             for seg in path.segments if seg.category == "rpc"}
    # Uncached reads block on READ RPCs; the async writes ride the fsync's
    # COMMIT/WRITE RPCs — both wait chains must show on the paths.
    assert "read" in kinds
    assert "fsync" in kinds or "write" in kinds


def test_nfs_server_spans_get_their_own_chrome_track(traced_world):
    _, server = traced_world
    doc = chrome_trace(server.tracer)
    tracks = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "nfs_server" in tracks
    server_events = [e for e in doc["traceEvents"]
                     if e.get("ph") == "X" and e["name"] == "nfs_server"]
    assert server_events
    assert all(e["tid"] == tracks["nfs_server"] for e in server_events)
    assert {e["args"]["op"] for e in server_events} >= {"read", "write"}
