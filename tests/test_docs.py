"""Documentation consistency: the docs reference things that exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.parametrize("name", [
    "README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "pyproject.toml",
])
def test_top_level_files_exist(name):
    assert (ROOT / name).is_file(), f"missing {name}"


def test_design_references_real_benchmarks():
    text = (ROOT / "DESIGN.md").read_text()
    for match in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
        assert (ROOT / "benchmarks" / match).is_file(), (
            f"DESIGN.md references missing benchmark {match}"
        )


def test_experiments_references_real_benchmarks():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for match in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
        assert (ROOT / "benchmarks" / match).is_file(), (
            f"EXPERIMENTS.md references missing benchmark {match}"
        )


def test_readme_references_real_examples():
    text = (ROOT / "README.md").read_text()
    for match in set(re.findall(r"examples/([a-z0-9_]+\.py)", text)):
        assert (ROOT / "examples" / match).is_file(), (
            f"README.md references missing example {match}"
        )


def test_every_benchmark_is_indexed_in_design():
    design = (ROOT / "DESIGN.md").read_text()
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in design or bench.name in experiments, (
            f"{bench.name} is not indexed in DESIGN.md or EXPERIMENTS.md"
        )


def test_every_example_is_listed_in_readme():
    readme = (ROOT / "README.md").read_text()
    for example in sorted((ROOT / "examples").glob("*.py")):
        assert example.name in readme, (
            f"{example.name} is not listed in README.md"
        )


def test_paper_config_presets_match_figure9_table():
    """The figure 9 values quoted in EXPERIMENTS.md match the code."""
    from repro.kernel import SystemConfig

    a = SystemConfig.config_a()
    assert a.fs_params.maxcontig * a.fs_params.bsize == 120 * 1024
    assert a.fs_params.rotdelay_ms == 0
    assert a.tuning.freebehind and a.tuning.write_limit == 240 * 1024
    d = SystemConfig.config_d()
    assert d.fs_params.rotdelay_ms == 4.0
    assert not d.tuning.freebehind and d.tuning.write_limit == 0
