"""Over-crediting a write throttle must be reported through the sanitizer.

Before, ``credit()`` raised a bare ``RuntimeError("write throttle
over-credited")`` from interrupt context — no file, no request, no trail.
Now it raises :class:`~repro.sim.invariants.SanitizerError` naming the
owning file, the completion that over-credited, and (when tracing was on)
the offending request's span tree.
"""

import pytest

from repro.core import WriteThrottle
from repro.sim import Engine, SanitizerError, Tracer
from repro.sim.request import RequestRegistry


def test_over_credit_raises_sanitizer_error():
    eng = Engine()
    throttle = WriteThrottle(eng, 8192, owner="inode 42")
    throttle.take(4096)
    throttle.credit(4096)
    with pytest.raises(SanitizerError) as exc:
        throttle.credit(1)
    assert exc.value.check == "throttle_conservation"
    assert "inode 42" in str(exc.value)
    assert "over-credited" in str(exc.value)


def test_over_credit_names_the_source():
    eng = Engine()
    throttle = WriteThrottle(eng, 8192, owner="inode 7")

    class FakeBuf:
        request = None

        def __repr__(self):
            return "<Buf#99 write sec=8+16>"

    with pytest.raises(SanitizerError, match="Buf#99"):
        throttle.credit(64, source=FakeBuf())


def test_over_credit_attaches_request_span_tree():
    eng = Engine()
    tracer = Tracer(eng, enabled=True)
    registry = RequestRegistry(eng, tracer)
    req = registry.start("write", fd=3)

    class FakeBuf:
        def __init__(self, request):
            self.request = request

        def __repr__(self):
            return "<Buf#100>"

    throttle = WriteThrottle(eng, 8192, owner="inode 9")
    with pytest.raises(SanitizerError) as exc:
        throttle.credit(64, source=FakeBuf(req))
    assert exc.value.span_tree is not None
    assert "write" in exc.value.span_tree
    assert "request span tree" in str(exc.value)
    req.complete()


def test_disabled_throttle_cannot_over_credit():
    eng = Engine()
    throttle = WriteThrottle(eng, 0)
    throttle.credit(1 << 20)  # no limit, no claim, no error


def test_balanced_take_credit_round_trip():
    eng = Engine()
    throttle = WriteThrottle(eng, 8192, owner="inode 1")
    throttle.take(8192)
    assert throttle.in_flight == 8192
    throttle.credit(8192)
    assert throttle.in_flight == 0
    assert throttle.value == throttle.limit
