"""Tests for ClusterHealth: degrade on repeated errors, re-grow on success."""

import pytest

from repro.core.health import ClusterHealth
from repro.core.readahead import ReadAheadState
from repro.core.writecluster import WriteClusterState
from repro.units import KB


def test_threshold_validated():
    with pytest.raises(ValueError):
        ClusterHealth(threshold=0)


def test_degrades_after_threshold_consecutive_failures():
    h = ClusterHealth(threshold=2)
    assert not h.degraded
    h.record_failure()
    assert not h.degraded  # one failure is forgiven
    h.record_failure()
    assert h.degraded
    assert h.degradations == 1


def test_clamp_only_while_degraded():
    h = ClusterHealth(threshold=1)
    assert h.clamp(56 * KB, 8 * KB) == 56 * KB
    h.record_failure()
    assert h.clamp(56 * KB, 8 * KB) == 8 * KB
    # A transfer already at or below one block passes through unchanged.
    assert h.clamp(4 * KB, 8 * KB) == 4 * KB


def test_success_pays_off_failures_linearly():
    h = ClusterHealth(threshold=2)
    h.record_failure()
    h.record_failure()
    h.record_failure()
    assert h.degraded
    h.record_success()
    assert h.degraded  # still one failure above threshold - 1
    h.record_success()
    assert not h.degraded  # paid back below the threshold
    h.record_success()
    h.record_success()  # extra successes do not go negative
    assert h.failures == 0


def test_reentering_degraded_counts_again():
    h = ClusterHealth(threshold=1)
    h.record_failure()
    h.record_success()
    h.record_failure()
    assert h.degradations == 2


def test_readahead_state_carries_health_and_resets_it():
    state = ReadAheadState()
    state.health.record_failure()
    state.health.record_failure()
    assert state.health.degraded
    state.reset()
    assert not state.health.degraded


def test_writecluster_offer_clamps_when_degraded():
    page_size = 8 * KB
    state = WriteClusterState()
    for _ in range(state.health.threshold):
        state.health.record_failure()
    flushes = []
    for i in range(7):
        action = state.offer(offset=i * page_size, page_size=page_size,
                             max_bytes=56 * KB)
        if action.should_flush:
            flushes.append(action.flush_len)
    # Degraded: every page pushes immediately as a single block, so the
    # delayed-write machine never builds (and never loses) a 56 KB cluster.
    assert flushes == [page_size] * 7
