"""Tests for the delayed-write cluster state machine (figs 7 and 8)."""

import pytest

from repro.core import WriteClusterState

PAGE = 8192


def test_figure7_trace():
    """maxcontig = 3: lie, lie, push 0-2; lie, lie, push 3-5."""
    state = WriteClusterState()
    cluster = 3 * PAGE

    a0 = state.offer(0, PAGE, cluster)
    a1 = state.offer(PAGE, PAGE, cluster)
    assert not a0.should_flush and not a1.should_flush
    a2 = state.offer(2 * PAGE, PAGE, cluster)
    assert a2.should_flush
    assert (a2.flush_offset, a2.flush_len) == (0, cluster)
    assert not a2.restarted  # the offered page is inside the flush

    a3 = state.offer(3 * PAGE, PAGE, cluster)
    a4 = state.offer(4 * PAGE, PAGE, cluster)
    assert not a3.should_flush and not a4.should_flush
    a5 = state.offer(5 * PAGE, PAGE, cluster)
    assert (a5.flush_offset, a5.flush_len) == (3 * PAGE, cluster)


def test_random_write_flushes_old_range_and_restarts():
    state = WriteClusterState()
    cluster = 4 * PAGE
    state.offer(0, PAGE, cluster)
    state.offer(PAGE, PAGE, cluster)
    action = state.offer(10 * PAGE, PAGE, cluster)
    assert action.should_flush and action.restarted
    assert (action.flush_offset, action.flush_len) == (0, 2 * PAGE)
    # The random page itself is now the delayed range.
    assert state.delayoff == 10 * PAGE and state.delaylen == PAGE


def test_first_offer_never_flushes():
    state = WriteClusterState()
    action = state.offer(7 * PAGE, PAGE, 3 * PAGE)
    assert not action.should_flush
    assert state.pending == PAGE


def test_cluster_of_one_flushes_every_page():
    """maxcontig = 1 behaves like the old per-block write path."""
    state = WriteClusterState()
    a0 = state.offer(0, PAGE, PAGE)
    assert a0.should_flush and (a0.flush_offset, a0.flush_len) == (0, PAGE)
    a1 = state.offer(PAGE, PAGE, PAGE)
    assert a1.should_flush and (a1.flush_offset, a1.flush_len) == (PAGE, PAGE)


def test_backward_write_restarts():
    state = WriteClusterState()
    cluster = 4 * PAGE
    state.offer(5 * PAGE, PAGE, cluster)
    action = state.offer(4 * PAGE, PAGE, cluster)
    assert action.restarted
    assert (action.flush_offset, action.flush_len) == (5 * PAGE, PAGE)


def test_steal_overlapping_range():
    state = WriteClusterState()
    cluster = 4 * PAGE
    state.offer(0, PAGE, cluster)
    state.offer(PAGE, PAGE, cluster)
    start, span = state.steal(PAGE, PAGE)
    assert (start, span) == (0, 2 * PAGE)
    assert state.pending == 0


def test_steal_disjoint_range_keeps_state():
    state = WriteClusterState()
    cluster = 4 * PAGE
    state.offer(0, PAGE, cluster)
    start, span = state.steal(100 * PAGE, PAGE)
    assert (start, span) == (0, 0)
    assert state.pending == PAGE


def test_steal_empty_state():
    state = WriteClusterState()
    assert state.steal(0, 10 * PAGE) == (0, 0)


def test_validation():
    state = WriteClusterState()
    with pytest.raises(ValueError):
        state.offer(-PAGE, PAGE, 3 * PAGE)
    with pytest.raises(ValueError):
        state.offer(0, 0, 3 * PAGE)
    with pytest.raises(ValueError):
        state.offer(0, PAGE, PAGE // 2)  # cluster smaller than a page
    with pytest.raises(ValueError):
        state.steal(0, -1)


def test_reset():
    state = WriteClusterState()
    state.offer(0, PAGE, 4 * PAGE)
    state.reset()
    assert state.pending == 0
