"""Tests for sequential detection and read-ahead scheduling (figs 3 and 6)."""

import pytest

from repro.core import ReadAheadState

PAGE = 8192


def test_first_read_at_zero_is_sequential():
    """nextr starts at 0: reading the start of the file enables read-ahead."""
    state = ReadAheadState()
    action = state.observe(0, PAGE, cached=False)
    assert action.sequential
    assert action.sync_needed
    assert action.ra_after_sync


def test_non_sequential_read_disables_readahead():
    state = ReadAheadState()
    action = state.observe(5 * PAGE, PAGE, cached=False)
    assert not action.sequential
    assert action.sync_needed
    assert not action.ra_after_sync and action.ra_offset is None


def test_pattern_reacquired_after_random_jump():
    state = ReadAheadState()
    state.observe(5 * PAGE, PAGE, cached=False)  # random
    action = state.observe(6 * PAGE, PAGE, cached=False)  # 5 then 6: sequential
    assert action.sequential
    assert action.ra_after_sync


def test_figure6_clustered_trace():
    """maxcontig = 3 pages: fault 0 reads 0-2 sync and 3-5 ahead; fault 3
    prefetches 6-8; fault 6 prefetches 9-11."""
    state = ReadAheadState()
    cluster = 3 * PAGE

    a0 = state.observe(0, PAGE, cached=False)
    assert a0.sync_needed and a0.ra_after_sync
    state.issued(cluster, cluster)  # read-ahead covered [3P, 6P)

    for page in (1, 2):
        a = state.observe(page * PAGE, PAGE, cached=True)
        assert a.sequential and not a.sync_needed
        assert a.ra_offset is None and not a.ra_after_sync

    a3 = state.observe(3 * PAGE, PAGE, cached=True)
    assert a3.ra_offset == 6 * PAGE
    state.issued(6 * PAGE, cluster)

    for page in (4, 5):
        assert state.observe(page * PAGE, PAGE, cached=True).ra_offset is None

    a6 = state.observe(6 * PAGE, PAGE, cached=True)
    assert a6.ra_offset == 9 * PAGE


def test_figure3_block_trace_is_cluster_of_one():
    """maxcontig = 1: every sequential fault prefetches the next block."""
    state = ReadAheadState()
    a0 = state.observe(0, PAGE, cached=False)
    assert a0.ra_after_sync
    state.issued(PAGE, PAGE)  # read ahead page 1
    a1 = state.observe(PAGE, PAGE, cached=True)
    assert a1.ra_offset == 2 * PAGE
    state.issued(2 * PAGE, PAGE)
    a2 = state.observe(2 * PAGE, PAGE, cached=True)
    assert a2.ra_offset == 3 * PAGE


def test_variable_cluster_lengths_from_bmap():
    """The trigger adapts to whatever length bmap actually granted."""
    state = ReadAheadState()
    state.observe(0, PAGE, cached=False)
    state.issued(2 * PAGE, 5 * PAGE)  # fragmented: sync got 2, RA got 5
    assert state.observe(1 * PAGE, PAGE, cached=True).ra_offset is None
    a = state.observe(2 * PAGE, PAGE, cached=True)
    assert a.ra_offset == 7 * PAGE


def test_readahead_disabled_flag():
    state = ReadAheadState()
    action = state.observe(0, PAGE, cached=False, readahead_enabled=False)
    assert action.sequential and action.sync_needed
    assert not action.ra_after_sync and action.ra_offset is None


def test_random_jump_disarms_trigger():
    state = ReadAheadState()
    state.observe(0, PAGE, cached=False)
    state.issued(PAGE, PAGE)
    state.observe(10 * PAGE, PAGE, cached=True)  # random
    # Returning to the old trigger offset no longer fires: pattern was lost.
    action = state.observe(PAGE, PAGE, cached=True)
    assert action.ra_offset is None


def test_validation():
    state = ReadAheadState()
    with pytest.raises(ValueError):
        state.observe(-1, PAGE, cached=False)
    with pytest.raises(ValueError):
        state.observe(0, 0, cached=False)
    with pytest.raises(ValueError):
        state.issued(0, 0)
    with pytest.raises(ValueError):
        state.issued(-PAGE, PAGE)


def test_reset():
    state = ReadAheadState()
    state.observe(3 * PAGE, PAGE, cached=False)
    state.reset()
    assert state.observe(0, PAGE, cached=False).sequential
