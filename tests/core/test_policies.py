"""Tests for free-behind, the write throttle, tuning, and the bmap cache."""

import pytest

from repro.core import BmapCache, ClusterTuning, FreeBehindPolicy, WriteThrottle
from repro.sim import Engine
from repro.units import KB


# -- free-behind ------------------------------------------------------------

def test_free_behind_requires_all_conditions():
    policy = FreeBehindPolicy(min_offset=256 * KB, headroom=2.0)
    # sequential, deep into the file, memory low: free it.
    assert policy.should_free(True, 512 * KB, freemem=10, lotsfree=8)
    # not sequential
    assert not policy.should_free(False, 512 * KB, 10, 8)
    # too early in the file
    assert not policy.should_free(True, 128 * KB, 10, 8)
    # plenty of memory
    assert not policy.should_free(True, 512 * KB, 100, 8)


def test_free_behind_disabled():
    policy = FreeBehindPolicy.disabled()
    assert not policy.should_free(True, 10**9, 0, 1000)


# -- write throttle -----------------------------------------------------------

def test_throttle_charges_and_blocks():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=16 * KB)
    log = []

    def writer():
        yield from throttle.charge(8 * KB)
        log.append(("first", eng.now))
        yield from throttle.charge(8 * KB)
        log.append(("second", eng.now))
        yield from throttle.charge(8 * KB)  # exceeds the limit: sleeps
        log.append(("third", eng.now))

    def completer():
        yield eng.timeout(5)
        throttle.credit(8 * KB)

    eng.process(writer())
    eng.process(completer())
    eng.run()
    assert log == [("first", 0), ("second", 0), ("third", 5)]
    assert throttle.sleeps == 1


def test_throttle_single_large_write_overshoots_then_blocks():
    """A write bigger than the limit proceeds; the writer sleeps after."""
    eng = Engine()
    throttle = WriteThrottle(eng, limit=8 * KB)
    reached = []

    def writer():
        yield from throttle.charge(32 * KB)
        reached.append(eng.now)

    def completer():
        yield eng.timeout(1)
        throttle.credit(32 * KB)

    eng.process(writer())
    eng.process(completer())
    eng.run()
    assert reached == [1]
    assert throttle.value == throttle.limit


def test_throttle_disabled_is_free():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=0)

    def writer():
        yield from throttle.charge(10**9)
        return eng.now

    assert eng.run_process(writer()) == 0
    assert throttle.in_flight == 0
    throttle.credit(10**9)  # no-op


def test_throttle_drain_waits_for_all_in_flight():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=16 * KB)
    done = []

    def barrier():
        throttle.take(8 * KB)
        throttle.take(8 * KB)
        yield from throttle.drain()
        done.append(eng.now)

    def completer():
        yield eng.timeout(3)
        throttle.credit(8 * KB)  # one back: drain must keep waiting
        yield eng.timeout(3)
        throttle.credit(8 * KB)

    eng.process(barrier())
    eng.process(completer())
    eng.run()
    assert done == [6]
    assert throttle.in_flight == 0


def test_throttle_drain_returns_immediately_when_idle():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=16 * KB)

    def barrier():
        yield from throttle.drain()
        return eng.now

    assert eng.run_process(barrier()) == 0

    # Disabled throttles never hold anything to drain.
    free = WriteThrottle(eng, limit=0)

    def barrier_free():
        yield from free.drain()
        return eng.now

    assert eng.run_process(barrier_free()) == 0


def test_throttle_error_path_credit_unblocks_drain():
    """Failed write-behind must credit too, or drain would wedge forever —
    the release-on-error contract the NFS client's _push_one relies on."""
    eng = Engine()
    throttle = WriteThrottle(eng, limit=8 * KB)
    done = []

    def failing_write():
        throttle.take(8 * KB)
        yield eng.timeout(1)
        try:
            raise RuntimeError("wire trouble")
        except RuntimeError:
            pass  # the error is recorded elsewhere...
        finally:
            throttle.credit(8 * KB)  # ...but the slot always comes back

    def barrier():
        yield eng.timeout(0.5)
        yield from throttle.drain()
        done.append(eng.now)

    eng.process(failing_write())
    eng.process(barrier())
    eng.run()
    assert done == [1]
    assert throttle.in_flight == 0


def test_throttle_overcredit_detected():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=8 * KB)
    with pytest.raises(RuntimeError):
        throttle.credit(1)


def test_throttle_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        WriteThrottle(eng, limit=-1)
    throttle = WriteThrottle(eng, limit=KB)
    with pytest.raises(ValueError):
        list(throttle.charge(-1))
    with pytest.raises(ValueError):
        throttle.credit(-1)


def test_throttle_in_flight_accounting():
    eng = Engine()
    throttle = WriteThrottle(eng, limit=240 * KB)

    def writer():
        yield from throttle.charge(100 * KB)

    eng.run_process(writer())
    assert throttle.in_flight == 100 * KB
    throttle.credit(100 * KB)
    assert throttle.in_flight == 0


# -- tuning ---------------------------------------------------------------------

def test_tuning_presets_match_figure9_semantics():
    a = ClusterTuning.new_system()
    assert a.read_clustering and a.write_clustering
    assert a.freebehind and a.write_limit == 240 * KB

    d = ClusterTuning.old_system()
    assert not d.read_clustering and not d.write_clustering
    assert not d.freebehind and d.write_limit == 0

    b = ClusterTuning.old_system(freebehind=True, write_limit=240 * KB)
    assert b.freebehind and b.write_limit == 240 * KB


def test_tuning_with_modification():
    t = ClusterTuning.new_system().with_(bmap_cache=True)
    assert t.bmap_cache and t.read_clustering


def test_tuning_validation():
    with pytest.raises(ValueError):
        ClusterTuning(write_limit=-1)
    with pytest.raises(ValueError):
        ClusterTuning(freebehind_min_offset=-1)


# -- bmap cache ---------------------------------------------------------------------

def test_bmap_cache_extent_hit_by_offset():
    cache = BmapCache(capacity=4)
    cache.insert(first_lbn=10, phys=800, length_blocks=5)
    assert cache.lookup(10, frags_per_block=8) == (800, 5)
    assert cache.lookup(12, frags_per_block=8) == (816, 3)
    assert cache.lookup(14, frags_per_block=8) == (832, 1)
    assert cache.lookup(15, frags_per_block=8) is None
    assert cache.hits == 3 and cache.misses == 1


def test_bmap_cache_lru_eviction():
    cache = BmapCache(capacity=2)
    cache.insert(0, 100, 1)
    cache.insert(10, 200, 1)
    cache.lookup(0, 8)  # refresh entry 0
    cache.insert(20, 300, 1)  # evicts entry 10
    assert cache.lookup(10, 8) is None
    assert cache.lookup(0, 8) is not None
    assert cache.lookup(20, 8) is not None


def test_bmap_cache_invalidate():
    cache = BmapCache()
    cache.insert(0, 100, 4)
    cache.invalidate()
    assert len(cache) == 0
    assert cache.lookup(0, 8) is None


def test_bmap_cache_validation():
    with pytest.raises(ValueError):
        BmapCache(capacity=0)
    cache = BmapCache()
    with pytest.raises(ValueError):
        cache.insert(0, 100, 0)
