"""Tests for the CPU model and cost table."""

import pytest

from repro.cpu import CostTable, Cpu
from repro.sim import Engine
from repro.units import MB, US


def test_work_advances_time_and_ledger():
    eng = Engine()
    cpu = Cpu(eng)

    def proc():
        yield from cpu.work("getpage", 300 * US)
        yield from cpu.work("getpage", 200 * US)
        yield from cpu.work("bmap", 100 * US)

    eng.run_process(proc())
    assert eng.now == pytest.approx(600 * US)
    assert cpu.ledger["getpage"] == pytest.approx(500 * US)
    assert cpu.ledger["bmap"] == pytest.approx(100 * US)
    assert cpu.system_time == pytest.approx(600 * US)


def test_zero_work_is_free_and_nonblocking():
    eng = Engine()
    cpu = Cpu(eng)

    def proc():
        yield from cpu.work("noop", 0.0)
        return eng.now

    assert eng.run_process(proc()) == 0
    assert cpu.system_time == 0


def test_negative_work_rejected():
    eng = Engine()
    cpu = Cpu(eng)
    with pytest.raises(ValueError):
        list(cpu.work("bad", -1.0))


def test_cpu_contention_serializes():
    eng = Engine()
    cpu = Cpu(eng)
    finish = {}

    def user(tag):
        yield from cpu.work(tag, 1.0)
        finish[tag] = eng.now

    eng.process(user("a"))
    eng.process(user("b"))
    eng.run()
    assert finish == {"a": 1.0, "b": 2.0}
    assert cpu.utilization() == pytest.approx(1.0)


def test_copy_uses_bandwidth():
    eng = Engine()
    costs = CostTable(copy_bandwidth=8 * MB)
    cpu = Cpu(eng, costs)

    def proc():
        yield from cpu.copy("copyout", 8 * MB)

    eng.run_process(proc())
    assert eng.now == pytest.approx(1.0)
    assert cpu.ledger["copyout"] == pytest.approx(1.0)


def test_interrupt_charge_accounts_without_blocking():
    eng = Engine()
    cpu = Cpu(eng)
    delay = cpu.interrupt_charge("intr", 180 * US)
    assert delay == pytest.approx(180 * US)
    assert cpu.ledger["intr"] == pytest.approx(180 * US)
    assert eng.now == 0  # no time elapsed in the caller's frame


def test_cost_table_scaled():
    base = CostTable()
    double = base.scaled(2.0)
    assert double.fault == pytest.approx(base.fault * 2)
    assert double.copy_bandwidth == pytest.approx(base.copy_bandwidth / 2)
    with pytest.raises(ValueError):
        base.scaled(0)


def test_cost_table_free_is_zero():
    free = CostTable.free()
    assert free.fault == 0
    assert free.copy_cost(10 * MB) == 0
    eng = Engine()
    cpu = Cpu(eng, free)

    def proc():
        yield from cpu.work("fault", free.fault)
        yield from cpu.copy("copy", 1 * MB)
        return eng.now

    assert eng.run_process(proc()) == 0


def test_copy_cost_validation():
    with pytest.raises(ValueError):
        CostTable().copy_cost(-1)


def test_breakdown_and_reset():
    eng = Engine()
    cpu = Cpu(eng)

    def proc():
        yield from cpu.work("a", 1.0)
        yield from cpu.work("b", 2.0)

    eng.run_process(proc())
    assert cpu.breakdown() == {"a": 1.0, "b": 2.0}
    cpu.reset_ledger()
    assert cpu.system_time == 0
    assert cpu.resource.busy_time == 0


def test_two_cpus_overlap():
    eng = Engine()
    cpu = Cpu(eng, ncpus=2)
    finish = {}

    def user(tag):
        yield from cpu.work(tag, 1.0)
        finish[tag] = eng.now

    for tag in "abc":
        eng.process(user(tag))
    eng.run()
    assert finish == {"a": 1.0, "b": 1.0, "c": 2.0}
