"""Tests for the raw-disk vnode (specfs)."""

import pytest

from repro.cpu import CostTable, Cpu
from repro.disk import DiskDriver, DiskGeometry, RotationalDisk
from repro.sim import Engine
from repro.vfs import PutFlags, RW, RawDiskVnode


@pytest.fixture
def raw():
    engine = Engine()
    geom = DiskGeometry.uniform(cylinders=40, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom)
    cpu = Cpu(engine, CostTable.free())
    driver = DiskDriver(engine, disk, cpu=cpu)
    return engine, disk, RawDiskVnode(engine, driver, cpu)


def test_write_read_round_trip(raw):
    engine, disk, vnode = raw
    payload = bytes(range(256)) * 8  # 2 KB = 4 sectors

    def work():
        n = yield from vnode.rdwr(RW.WRITE, 8192, payload)
        data = yield from vnode.rdwr(RW.READ, 8192, len(payload))
        return n, data

    n, data = engine.run_process(work())
    assert n == len(payload)
    assert data == payload
    assert disk.store.read(16, 4) == payload


def test_size_is_device_capacity(raw):
    _, disk, vnode = raw
    assert vnode.size == disk.geometry.capacity_bytes


def test_unaligned_io_rejected(raw):
    engine, _, vnode = raw

    def bad_offset():
        yield from vnode.rdwr(RW.READ, 100, 512)

    with pytest.raises(ValueError):
        engine.run_process(bad_offset())

    def bad_length():
        yield from vnode.rdwr(RW.READ, 512, 100)

    with pytest.raises(ValueError):
        engine.run_process(bad_length())


def test_io_past_device_end_rejected(raw):
    engine, _, vnode = raw

    def work():
        yield from vnode.rdwr(RW.READ, vnode.size, 512)

    with pytest.raises(ValueError):
        engine.run_process(work())


def test_no_paging_interfaces(raw):
    _, _, vnode = raw
    with pytest.raises(NotImplementedError):
        next(iter(vnode.getpage(0)))
    with pytest.raises(NotImplementedError):
        next(iter(vnode.putpage(0, 512, PutFlags())))


def test_raw_io_takes_real_time(raw):
    engine, _, vnode = raw

    def work():
        yield from vnode.rdwr(RW.WRITE, 0, bytes(512))

    engine.run_process(work())
    assert engine.now > 0
