"""Write-cache + integrity interaction: stamping happens at destage
(when bytes reach the media), and overlay-served reads are never checked
against on-media records they do not reflect."""

import pytest

from repro.disk import Buf, BufOp
from repro.disk.geometry import DiskGeometry
from repro.errors import ChecksumError
from repro.kernel import System, SystemConfig
from repro.sim.events import EventFailed


def _config():
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32),
        checksums=True, write_cache=True)


@pytest.fixture
def system():
    return System.booted(_config())


def _free_frag(system):
    """A data fragment nothing has written (gen 0, zero on media)."""
    region = system.disk.integrity
    fs = region.frag_sectors
    used = set(region.stamped_frags())
    frag = region.sb.cg_data_frag(0) + region.frags_per_block
    while frag in used:
        frag += 1
    assert system.store.read(frag * fs, fs) == bytes(region.fsize)
    return frag


def _io(system, buf):
    def gen():
        system.driver.strategy(buf)
        yield buf.done

    system.run(gen())
    return buf


def test_fua_write_stamps_immediately(system):
    region = system.disk.integrity
    fs = region.frag_sectors
    frag = _free_frag(system)
    a = bytes([0xA1]) * region.fsize
    _io(system, Buf(system.engine, BufOp.WRITE, frag * fs, fs, data=a,
                    fua=True, owner="test"))
    rec = region.record(frag)
    assert rec.gen > 0
    assert system.store.read(frag * fs, fs) == a
    assert region.verify_range(frag * fs, a) == []


def test_cached_write_stamps_at_destage_not_before(system):
    region = system.disk.integrity
    cache = system.write_cache
    assert cache is not None
    fs = region.frag_sectors
    frag = _free_frag(system)
    sector = frag * fs

    a = bytes([0xA1]) * region.fsize
    b = bytes([0xB2]) * region.fsize
    _io(system, Buf(system.engine, BufOp.WRITE, sector, fs, data=a,
                    fua=True, owner="test"))
    gen_a = region.record(frag).gen

    # A cached (non-FUA) write: acknowledged, but volatile.  The media and
    # the record table still describe A.
    _io(system, Buf(system.engine, BufOp.WRITE, sector, fs, data=b,
                    owner="test"))
    assert cache.covers(sector, fs)
    assert system.store.read(sector, fs) == a
    assert region.record(frag).gen == gen_a

    # Rot the stale media copy underneath the cache.
    rotted = bytearray(a)
    rotted[7] ^= 0x10
    system.store.write(sector, bytes(rotted))

    # A read is served from the overlay: the caller sees B, and the
    # verifier must NOT compare the overlay bytes against A's record.
    rbuf = _io(system, Buf(system.engine, BufOp.READ, sector, fs,
                           owner="test"))
    assert rbuf.error is None
    assert rbuf.data == b

    # FLUSH destages: B reaches the media and is stamped then and there.
    _io(system, Buf.flush(system.engine, owner="test"))
    assert not cache.covers(sector, fs)
    assert region.record(frag).gen > gen_a
    assert system.store.read(sector, fs) == b
    assert region.verify_range(sector, system.store.read(sector, fs)) == []
    rbuf2 = _io(system, Buf(system.engine, BufOp.READ, sector, fs,
                            owner="test"))
    assert rbuf2.data == b


def test_destaged_rot_is_caught_after_flush(system):
    """Once the cache no longer covers a sector, media rot is detected
    again — the overlay exemption is strictly scoped to cached spans."""
    region = system.disk.integrity
    fs = region.frag_sectors
    frag = _free_frag(system)
    sector = frag * fs
    b = bytes([0xB2]) * region.fsize
    _io(system, Buf(system.engine, BufOp.WRITE, sector, fs, data=b,
                    owner="test"))
    _io(system, Buf.flush(system.engine, owner="test"))

    rotted = bytearray(b)
    rotted[0] ^= 0x01
    system.store.write(sector, bytes(rotted))

    rbuf = Buf(system.engine, BufOp.READ, sector, fs, owner="test")

    def gen():
        system.driver.strategy(rbuf)
        try:
            yield rbuf.done
        except EventFailed as failure:
            cause = failure.args[0] if failure.args else failure
            raise cause from None

    with pytest.raises(ChecksumError):
        system.run(gen())
