"""Tests for the disk driver: queueing, disksort, coalescing, B_ORDER."""

import pytest

from repro.disk import Buf, BufOp, DiskDriver, DiskGeometry, DiskQueue, RotationalDisk
from repro.sim import Engine
from repro.units import KB


def make_stack(engine, **driver_kwargs):
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom)
    driver = DiskDriver(engine, disk, **driver_kwargs)
    return disk, driver


def wbuf(engine, sector, nsectors=2, **kw):
    return Buf(engine, BufOp.WRITE, sector, nsectors, data=bytes(nsectors * 512), **kw)


def test_sync_read_completes_with_data():
    eng = Engine()
    disk, driver = make_stack(eng)
    payload = b"\x5a" * 1024
    disk.store.write(10, payload)

    def proc():
        buf = Buf(eng, BufOp.READ, sector=10, nsectors=2)
        driver.strategy(buf)
        yield buf.done
        return buf.data

    assert eng.run_process(proc()) == payload


def test_async_write_persists():
    eng = Engine()
    disk, driver = make_stack(eng)
    buf = wbuf(eng, 4, async_=True)
    driver.strategy(buf)
    eng.run()
    assert disk.store.read(4, 2) == bytes(1024)
    assert buf.finished_at is not None


def test_driver_services_fifo_when_disksort_off():
    eng = Engine()
    _, driver = make_stack(eng, use_disksort=False)
    order = []
    for sector in (40, 8, 24):
        buf = wbuf(eng, sector, async_=True)
        buf.iodone.append(lambda b: order.append(b.sector))
        driver.strategy(buf)
    eng.run()
    assert order == [40, 8, 24]


def test_disksort_orders_by_elevator():
    eng = Engine()
    _, driver = make_stack(eng, use_disksort=True)
    order = []
    # Insert in scrambled order while the disk is busy with the first.
    first = wbuf(eng, 0)
    first.iodone.append(lambda b: order.append(b.sector))
    driver.strategy(first)
    for sector in (600, 100, 900, 300):
        buf = wbuf(eng, sector, async_=True)
        buf.iodone.append(lambda b: order.append(b.sector))
        driver.strategy(buf)
    eng.run()
    assert order == [0, 100, 300, 600, 900]


def test_disksort_wraps_around():
    """C-LOOK: requests behind the head are served on the next sweep."""
    queue = DiskQueue(use_disksort=True)
    eng = Engine()
    for sector in (10, 50, 90):
        queue.insert(wbuf(eng, sector))
    assert queue.pop(last_sector=60).sector == 90
    assert queue.pop(last_sector=92).sector == 10
    assert queue.pop(last_sector=12).sector == 50
    assert queue.pop(last_sector=0) is None


def test_ordered_buf_is_a_barrier():
    queue = DiskQueue(use_disksort=True)
    eng = Engine()
    queue.insert(wbuf(eng, 100))
    barrier = wbuf(eng, 500, ordered=True)
    queue.insert(barrier)
    queue.insert(wbuf(eng, 10))  # later request with a lower sector
    assert queue.pop(0).sector == 100
    assert queue.pop(102) is barrier
    assert queue.pop(502).sector == 10


def test_queue_len_and_peek():
    queue = DiskQueue()
    eng = Engine()
    bufs = [wbuf(eng, s) for s in (30, 10, 20)]
    for b in bufs:
        queue.insert(b)
    assert len(queue) == 3
    assert [b.sector for b in queue.peek_all()] == [10, 20, 30]
    queue.pop(0)
    assert len(queue) == 2


def test_coalescing_merges_adjacent_writes():
    eng = Engine()
    disk, driver = make_stack(eng, coalesce=True)
    # Keep the disk busy so later requests sit in the queue and can merge.
    driver.strategy(wbuf(eng, 700, async_=True))
    done = []
    for sector in (8, 10, 12):
        buf = Buf(eng, BufOp.WRITE, sector, 2, data=bytes([sector]) * 1024, async_=True)
        buf.iodone.append(lambda b: done.append(b.sector))
        driver.strategy(buf)
    eng.run()
    assert driver.stats["coalesced"] == 2
    assert sorted(done) == [8, 10, 12]
    # All three writes landed correctly via the merged request.
    for sector in (8, 10, 12):
        assert disk.store.read(sector, 2) == bytes([sector]) * 1024
    # Only two media requests: the decoy and the merged triple.
    assert disk.stats["requests"] == 2


def test_coalescing_respects_size_limit():
    eng = Engine()
    _, driver = make_stack(eng, coalesce=True, coalesce_limit=2 * KB)
    driver.strategy(wbuf(eng, 700, async_=True))  # busy decoy
    driver.strategy(wbuf(eng, 8, nsectors=2, async_=True))
    driver.strategy(wbuf(eng, 10, nsectors=4, async_=True))  # would exceed 2 KB
    eng.run()
    assert driver.stats["coalesced"] == 0


def test_coalesced_read_distributes_data():
    eng = Engine()
    disk, driver = make_stack(eng, coalesce=True)
    disk.store.write(8, b"\x11" * 1024 + b"\x22" * 1024)
    driver.strategy(wbuf(eng, 700, async_=True))  # busy decoy
    r1 = Buf(eng, BufOp.READ, 8, 2, async_=True)
    r2 = Buf(eng, BufOp.READ, 10, 2, async_=True)
    driver.strategy(r1)
    driver.strategy(r2)
    eng.run()
    assert driver.stats["coalesced"] == 1
    assert r1.data == b"\x11" * 1024
    assert r2.data == b"\x22" * 1024


def test_no_coalescing_of_read_with_write():
    eng = Engine()
    _, driver = make_stack(eng, coalesce=True)
    driver.strategy(wbuf(eng, 700, async_=True))  # busy decoy
    driver.strategy(wbuf(eng, 8, async_=True))
    driver.strategy(Buf(eng, BufOp.READ, 10, 2, async_=True))
    eng.run()
    assert driver.stats["coalesced"] == 0


def test_drain_event():
    eng = Engine()
    _, driver = make_stack(eng)
    for sector in (8, 40):
        driver.strategy(wbuf(eng, sector, async_=True))

    def waiter():
        yield driver.drain()
        return eng.now

    t = eng.run_process(waiter())
    assert t > 0
    assert driver.idle


def test_drain_when_already_idle():
    eng = Engine()
    _, driver = make_stack(eng)

    def waiter():
        yield driver.drain()
        return eng.now

    assert eng.run_process(waiter()) == 0


def test_interrupt_charged_on_completion():
    from repro.cpu import Cpu

    eng = Engine()
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(eng, geom)
    cpu = Cpu(eng)
    driver = DiskDriver(eng, disk, cpu=cpu)
    driver.strategy(wbuf(eng, 8, async_=True))
    eng.run()
    assert cpu.ledger["interrupt"] == pytest.approx(cpu.costs.interrupt)


def test_queue_depth_statistic():
    eng = Engine()
    _, driver = make_stack(eng)
    for sector in (8, 40, 80):
        driver.strategy(wbuf(eng, sector, async_=True))
    assert driver.queue_depth.value == 3
    eng.run()
    assert driver.queue_depth.value == 0
    assert driver.queue_depth.maximum == 3
