"""Tests for the rotational disk timing model and track buffer."""

import pytest

from repro.disk import Buf, BufOp, DiskGeometry, RotationalDisk
from repro.sim import Engine
from repro.units import MB


def make_disk(engine, track_buffer=True, **kwargs):
    geom = DiskGeometry.uniform(
        cylinders=20, heads=2, sectors_per_track=16,
        track_skew=2, cyl_skew=4,
    )
    return RotationalDisk(engine, geom, track_buffer=track_buffer, **kwargs)


def service(engine, disk, buf):
    return engine.run_process(disk.service(buf))


def test_write_then_read_round_trip_data():
    eng = Engine()
    disk = make_disk(eng)
    payload = bytes([i % 251 for i in range(4 * 512)])
    wbuf = Buf(eng, BufOp.WRITE, sector=8, nsectors=4, data=payload)
    service(eng, disk, wbuf)
    rbuf = Buf(eng, BufOp.READ, sector=8, nsectors=4)
    service(eng, disk, rbuf)
    assert rbuf.data == payload


def test_read_timing_includes_rotation_and_transfer():
    eng = Engine()
    disk = make_disk(eng, track_buffer=False)
    geom = disk.geometry
    buf = Buf(eng, BufOp.READ, sector=4, nsectors=4)
    service(eng, disk, buf)
    # overhead + rotational wait to sector 4 + 4 sector transfer
    expected_wait = geom.rotational_wait(disk.controller_overhead, 0, 0, 4)
    expected = disk.controller_overhead + expected_wait + 4 * geom.sector_time(0)
    assert eng.now == pytest.approx(expected)


def test_sequential_reads_hit_track_buffer():
    eng = Engine()
    disk = make_disk(eng)
    b1 = Buf(eng, BufOp.READ, sector=0, nsectors=4)
    service(eng, disk, b1)
    assert disk.stats["buffer_hits"] == 0
    b2 = Buf(eng, BufOp.READ, sector=4, nsectors=4)
    service(eng, disk, b2)
    assert disk.stats["buffer_hits"] == 1
    assert disk.stats["media_accesses"] == 1


def test_track_buffer_does_not_cover_earlier_sectors():
    """Look-ahead fills forward only; sectors before the fill start miss."""
    eng = Engine()
    disk = make_disk(eng)
    service(eng, disk, Buf(eng, BufOp.READ, sector=8, nsectors=4))
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=4))
    assert disk.stats["buffer_hits"] == 0
    assert disk.stats["media_accesses"] == 2


def test_write_invalidates_track_buffer():
    eng = Engine()
    disk = make_disk(eng)
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=4))
    service(eng, disk, Buf(eng, BufOp.WRITE, sector=100, nsectors=2, data=bytes(1024)))
    service(eng, disk, Buf(eng, BufOp.READ, sector=4, nsectors=4))
    assert disk.stats["buffer_hits"] == 0


def test_writes_never_use_buffer():
    """The track buffer is write-through: writes always access media."""
    eng = Engine()
    disk = make_disk(eng)
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=16))
    before = disk.stats["media_accesses"]
    service(eng, disk, Buf(eng, BufOp.WRITE, sector=4, nsectors=2, data=bytes(1024)))
    assert disk.stats["media_accesses"] == before + 1


def test_buffer_hit_waits_for_fill_availability():
    """A hit on sectors that have not rotated into the buffer yet waits."""
    eng = Engine()
    disk = make_disk(eng, bus_rate=1000 * MB)  # make bus time negligible
    geom = disk.geometry
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=1))
    t_after_first = eng.now
    # Sector 15 is 15 sector-times after sector 0 finished filling.
    service(eng, disk, Buf(eng, BufOp.READ, sector=15, nsectors=1))
    availability = (t_after_first - geom.sector_time(0)) + 16 * geom.sector_time(0)
    assert eng.now == pytest.approx(availability)


def test_multi_track_transfer_crosses_head_and_cylinder():
    eng = Engine()
    disk = make_disk(eng, track_buffer=False)
    # 40 sectors starting at 0: track0 (16) + track1/head1 (16) + cyl1 (8)
    buf = Buf(eng, BufOp.READ, sector=0, nsectors=40)
    service(eng, disk, buf)
    assert disk.stats["head_switches"] == 1
    assert disk.stats["seeks"] == 1
    assert len(buf.data) == 40 * 512


def test_skew_keeps_multi_track_transfer_efficient():
    eng = Engine()
    disk = make_disk(eng, track_buffer=False)
    geom = disk.geometry
    buf = Buf(eng, BufOp.READ, sector=0, nsectors=32)  # exactly 2 tracks
    service(eng, disk, buf)
    # Pure transfer time is 32 sector times.  Allow the unavoidable initial
    # rotational positioning (up to one rotation) plus a *small* boundary
    # cost; skew must prevent losing another rotation at the head switch.
    pure = 32 * geom.sector_time(0)
    budget = (
        disk.controller_overhead + geom.rotation_time  # initial positioning
        + pure
        + geom.head_switch_time + 4 * geom.sector_time(0)  # skewed switch
    )
    assert eng.now < budget


def test_missed_rotation_costs_nearly_full_turn():
    """Re-reading the sector that just passed costs ~a full rotation
    (without the track buffer) — the paper's core argument for rotdelay."""
    eng = Engine()
    disk = make_disk(eng, track_buffer=False)
    geom = disk.geometry
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=1))
    t0 = eng.now
    service(eng, disk, Buf(eng, BufOp.READ, sector=1, nsectors=1))
    elapsed = eng.now - t0
    # controller overhead pushes us past sector 1, so we wait ~a rotation.
    assert elapsed > 0.8 * geom.rotation_time


def test_track_buffer_rescues_back_to_back_reads():
    eng = Engine()
    disk = make_disk(eng, track_buffer=True)
    geom = disk.geometry
    service(eng, disk, Buf(eng, BufOp.READ, sector=0, nsectors=1))
    t0 = eng.now
    service(eng, disk, Buf(eng, BufOp.READ, sector=1, nsectors=1))
    elapsed = eng.now - t0
    assert elapsed < 0.2 * geom.rotation_time


def test_request_beyond_disk_rejected():
    eng = Engine()
    disk = make_disk(eng)
    buf = Buf(eng, BufOp.READ, sector=disk.geometry.total_sectors - 1, nsectors=2)
    with pytest.raises(ValueError):
        eng.run_process(disk.service(buf))


def test_write_data_length_validated():
    eng = Engine()
    disk = make_disk(eng)
    buf = Buf(eng, BufOp.WRITE, sector=0, nsectors=4, data=bytes(512))
    with pytest.raises(ValueError):
        eng.run_process(disk.service(buf))


def test_sequential_streaming_approaches_media_rate():
    """Large contiguous reads with read-ahead requests issued back-to-back
    should sustain close to the media rate (the clustering win)."""
    eng = Engine()
    geom = DiskGeometry.ibm_400mb()
    disk = RotationalDisk(eng, geom)
    total_sectors = 240 * 8  # 8 clusters of 120 KB

    def workload():
        sector = 0
        for _ in range(8):
            buf = Buf(eng, BufOp.READ, sector=sector, nsectors=240)
            yield from disk.service(buf)
            sector += 240

    eng.run_process(workload())
    nbytes = total_sectors * 512
    rate = nbytes / eng.now
    assert rate > 0.85 * geom.media_rate(0)


def test_buf_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Buf(eng, BufOp.READ, sector=0, nsectors=0)
    with pytest.raises(ValueError):
        Buf(eng, BufOp.READ, sector=-1, nsectors=1)
    with pytest.raises(ValueError):
        Buf(eng, BufOp.WRITE, sector=0, nsectors=1)  # no data


def test_buf_helpers():
    eng = Engine()
    a = Buf(eng, BufOp.READ, sector=0, nsectors=4)
    b = Buf(eng, BufOp.READ, sector=4, nsectors=4)
    c = Buf(eng, BufOp.READ, sector=9, nsectors=4)
    assert a.adjacent_to(b) and b.adjacent_to(a)
    assert not b.adjacent_to(c)
    assert a.end_sector == 4
    assert a.nbytes == 2048
    assert a.is_read and not a.is_write
