"""The DiskStore fast paths: correctness against a naive model, and a
generous wall-clock guard so the hot read/write loops stay hot.

The store sits under every timed transfer of every member of every
volume; a multi-member benchmark moves hundreds of megabytes through it,
so ``read``/``write`` must not regress to per-sector allocation storms.
"""

import random
import time

from repro.disk import DiskStore


class NaiveStore:
    """The obviously-correct reference: one bytes object per sector."""

    def __init__(self, total_sectors, sector_size=512):
        self.total_sectors = total_sectors
        self.sector_size = sector_size
        self.sectors = {}

    def read(self, sector, count):
        return b"".join(
            self.sectors.get(s, bytes(self.sector_size))
            for s in range(sector, sector + count))

    def write(self, sector, data):
        for i in range(len(data) // self.sector_size):
            chunk = data[i * self.sector_size:(i + 1) * self.sector_size]
            if chunk == bytes(self.sector_size):
                self.sectors.pop(sector + i, None)
            else:
                self.sectors[sector + i] = chunk


def test_fast_paths_match_naive_model():
    store = DiskStore(total_sectors=4096)
    model = NaiveStore(4096)
    rng = random.Random(42)
    for _ in range(400):
        count = rng.randrange(1, 32)
        sector = rng.randrange(4096 - count)
        if rng.random() < 0.55:
            # Mix zero runs in so the sparse-reclaim path is exercised.
            fill = 0 if rng.random() < 0.25 else rng.randrange(1, 256)
            data = bytes([fill]) * (count * 512)
            store.write(sector, data)
            model.write(sector, data)
        else:
            assert store.read(sector, count) == model.read(sector, count)
    assert store.nonzero_sectors() == sorted(model.sectors)


def test_empty_store_read_is_zeros():
    store = DiskStore(total_sectors=64)
    assert store.read(0, 64) == bytes(64 * 512)
    assert store.read(5, 1) == bytes(512)


def test_single_sector_paths():
    store = DiskStore(total_sectors=8)
    store.write(3, b"\x7e" * 512)
    assert store.read(3, 1) == b"\x7e" * 512
    store.write(3, bytes(512))  # zero write reclaims the entry
    assert store.written_sectors == 0


def test_zero_runs_in_large_writes_are_reclaimed():
    store = DiskStore(total_sectors=64)
    store.write(0, b"\xff" * (32 * 512))
    assert store.written_sectors == 32
    # Overwrite the middle with zeros inside one large write.
    data = b"\xff" * (8 * 512) + bytes(16 * 512) + b"\xff" * (8 * 512)
    store.write(0, data)
    assert store.written_sectors == 16
    assert store.read(0, 32) == data


def test_differing_sectors():
    a = DiskStore(total_sectors=64)
    b = DiskStore(total_sectors=64)
    assert a.differing_sectors(b) == []
    a.write(3, b"\x01" * 512)          # only in a
    b.write(9, b"\x02" * 512)          # only in b
    a.write(20, b"\x03" * 512)         # same in both
    b.write(20, b"\x03" * 512)
    a.write(30, b"\x04" * 512)         # different bytes
    b.write(30, b"\x05" * 512)
    assert a.differing_sectors(b) == [3, 9, 30]
    assert b.differing_sectors(a) == [3, 9, 30]


def test_differing_sectors_rejects_size_mismatch():
    import pytest

    a = DiskStore(total_sectors=64)
    b = DiskStore(total_sectors=32)
    with pytest.raises(ValueError):
        a.differing_sectors(b)


def test_large_contiguous_io_wall_clock_guard():
    """64 MB of contiguous 64 KB transfers must finish far inside a second
    per direction — a regression to per-sector allocation blows this by an
    order of magnitude.  The bound is deliberately generous (CI machines
    vary); it guards against algorithmic regressions, not percent drift."""
    total = 256 * 1024  # sectors = 128 MB device
    store = DiskStore(total_sectors=total)
    chunk = 128  # sectors = 64 KB
    payload = bytes(range(256)) * 256  # 64 KB, non-zero
    t0 = time.perf_counter()
    for sector in range(0, 128 * 1024, chunk):
        store.write(sector, payload)
    write_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for sector in range(0, 128 * 1024, chunk):
        assert len(store.read(sector, chunk)) == 64 * 1024
    read_s = time.perf_counter() - t0
    assert write_s < 2.0, f"store writes took {write_s:.2f}s for 64 MB"
    assert read_s < 2.0, f"store reads took {read_s:.2f}s for 64 MB"
