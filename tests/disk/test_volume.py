"""Tests for the volume layer: specs, address translation, fan-out/join.

The default layout must be the classic single-disk stack (same objects,
same behaviour); the multi-member layouts must translate addresses
losslessly, overlap member I/O in simulated time, and fan barriers/flushes
to every member that needs them.
"""

import random

import pytest

from repro.disk import DiskStore
from repro.disk.volume import (
    ConcatVolume, MirrorVolume, SingleVolume, StripeVolume, VolumeSpec,
    build_volume, concat_geometry,
)
from repro.errors import InvalidArgumentError
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim.engine import Engine
from repro.units import KB


# -- spec parsing ----------------------------------------------------------

def test_spec_parse_defaults():
    assert VolumeSpec.parse(None) == VolumeSpec()
    assert VolumeSpec.parse("single").kind == "single"
    assert VolumeSpec.parse("single").nmembers == 1


@pytest.mark.parametrize("text,kind,n", [
    ("concat:2", "concat", 2),
    ("stripe:4", "stripe", 4),
    ("mirror:2", "mirror", 2),
    ("STRIPE:3", "stripe", 3),
])
def test_spec_parse_kinds(text, kind, n):
    spec = VolumeSpec.parse(text)
    assert (spec.kind, spec.nmembers) == (kind, n)


def test_spec_parse_options():
    spec = VolumeSpec.parse("stripe:2:chunk=16k")
    assert spec.chunk_bytes == 16 * KB
    assert spec.describe() == "stripe:2:chunk=16k"
    spec = VolumeSpec.parse("mirror:3:read=shortest")
    assert spec.read_policy == "shortest"
    assert spec.describe() == "mirror:3:read=shortest"


@pytest.mark.parametrize("text", [
    "raid5:3",              # unknown kind
    "stripe",               # missing member count
    "stripe:x",             # bad member count
    "stripe:1",             # too few members
    "single:2",             # single has one member
    "stripe:2:chunk=0",     # chunk must be positive
    "stripe:2:chunk=100",   # chunk must be sector multiple
    "stripe:2:foo=1",       # unknown option
    "mirror:2:read=fastest",  # unknown read policy
])
def test_spec_parse_rejects(text):
    with pytest.raises(InvalidArgumentError):
        VolumeSpec.parse(text)


# -- address translation ---------------------------------------------------

def _volume(layout, **cfg_kw):
    cfg = SystemConfig(layout=layout, **cfg_kw)
    return build_volume(Engine(), cfg)


@pytest.mark.parametrize("layout", [
    "concat:2", "stripe:2", "stripe:3:chunk=16k", "mirror:2",
])
def test_translation_round_trip(layout):
    vol = _volume(layout)
    rng = random.Random(7)
    for _ in range(200):
        lsec = rng.randrange(vol.logical_sectors)
        pieces = vol.data_read_pieces(lsec, 1)
        mi, msec, cnt = pieces[0]
        assert cnt == 1
        assert vol.logical_of(mi, msec) == lsec
        assert vol.member_sector_of(mi, lsec) == msec
        # member_to_logical is the inverse of the piece mapping.
        assert vol.member_to_logical(mi, msec, 1)[0][0] == lsec


@pytest.mark.parametrize("layout", ["concat:2", "stripe:4", "stripe:2:chunk=16k"])
def test_pieces_cover_range_exactly(layout):
    vol = _volume(layout)
    rng = random.Random(11)
    for _ in range(100):
        count = rng.randrange(1, 300)
        sector = rng.randrange(vol.logical_sectors - count)
        covered = []
        for mi, msec, cnt in vol.data_read_pieces(sector, count):
            for lsec, off, n in vol.member_to_logical(mi, msec, cnt):
                covered.extend(range(lsec, lsec + n))
        assert sorted(covered) == list(range(sector, sector + count))


def test_stripe_extents_merge_adjacent_chunks():
    vol = _volume("stripe:2:chunk=16k")
    chunk = vol.chunk_sectors
    # Four chunks = two per member; each member's two chunks are adjacent
    # on the member, so the timed path issues one transfer per member.
    extents = vol.extents(0, 4 * chunk, write=False)
    assert len(extents) == 2
    assert sorted(mi for mi, _, _ in extents) == [0, 1]
    assert all(cnt == 2 * chunk for _, _, cnt in extents)


def test_concat_geometry_tiles_zones():
    geom = SystemConfig().geometry
    logical = concat_geometry(geom, 3)
    assert logical.total_sectors == 3 * geom.total_sectors
    assert len(logical.zones) == 3 * len(geom.zones)


# -- the logical store vs a reference model --------------------------------

@pytest.mark.parametrize("layout", ["concat:2", "stripe:2", "stripe:3:chunk=16k",
                                    "mirror:2"])
def test_volume_store_matches_reference_model(layout):
    vol = _volume(layout)
    store = vol.store
    model = DiskStore(store.total_sectors, store.sector_size)
    rng = random.Random(layout)
    for i in range(150):
        count = rng.randrange(1, 64)
        sector = rng.randrange(store.total_sectors - count)
        if rng.random() < 0.6:
            data = bytes([rng.randrange(256)]) * (count * store.sector_size)
            store.write(sector, data)
            model.write(sector, data)
        else:
            assert store.read(sector, count) == model.read(sector, count)
    assert store.digest() == model.digest()
    assert store.nonzero_sectors() == model.nonzero_sectors()
    # clone() flattens the logical bytes into one plain store.
    assert store.clone().digest() == model.digest()


def test_mirror_store_writes_all_members():
    vol = _volume("mirror:2")
    vol.store.write(10, b"\xaa" * 512)
    assert vol.members[0].store.read(10, 1) == b"\xaa" * 512
    assert vol.members[1].store.read(10, 1) == b"\xaa" * 512


# -- construction ----------------------------------------------------------

def test_default_layout_is_the_classic_stack():
    system = System.booted(SystemConfig())
    assert isinstance(system.volume, SingleVolume)
    # The kernel-facing objects ARE the member's objects (no wrappers):
    member = system.volume.members[0]
    assert system.store is member.store
    assert system.disk is member.disk
    assert system.driver is member.driver
    assert isinstance(system.store, DiskStore)


def test_build_volume_kinds():
    assert isinstance(_volume("concat:2"), ConcatVolume)
    assert isinstance(_volume("stripe:2"), StripeVolume)
    assert isinstance(_volume("mirror:2"), MirrorVolume)


def test_members_have_independent_stacks():
    vol = _volume("stripe:4")
    drivers = {id(m.driver) for m in vol.members}
    disks = {id(m.disk) for m in vol.members}
    scheds = {id(m.driver.queue.scheduler) for m in vol.members}
    assert len(drivers) == len(disks) == len(scheds) == 4


# -- end to end through the file system ------------------------------------

@pytest.mark.parametrize("layout", ["concat:2", "stripe:4", "mirror:2"])
def test_file_round_trip(layout):
    system = System.booted(SystemConfig(layout=layout))
    proc = Proc(system, name="t")
    payload = bytes(range(256)) * 512  # 128 KB

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        fd = yield from proc.open("/f")
        data = b""
        while True:
            chunk = yield from proc.read(fd, 32 * KB)
            if not chunk:
                break
            data += chunk
        yield from proc.close(fd)
        return data

    assert system.run(work()) == payload


def test_stripe_spreads_data_over_members():
    system = System.booted(SystemConfig(layout="stripe:4"))
    proc = Proc(system, name="t")

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"\x5a" * (256 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    populated = [m.store.written_sectors for m in system.volume.members]
    assert all(n > 0 for n in populated)


def test_flush_fans_out_to_every_member_cache():
    system = System.booted(SystemConfig(layout="stripe:2", write_cache=True))
    proc = Proc(system, name="t")

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"\xc3" * (128 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    for member in system.volume.members:
        assert member.write_cache is not None
        assert member.write_cache.entries == []
    assert system.volume.stats["flushes"] >= 1


def test_traced_read_issues_concurrent_member_io():
    """One 64 KB read over stripe:4:chunk=16k becomes four member
    transfers whose spans overlap in simulated time."""
    system = System.booted(SystemConfig(layout="stripe:4:chunk=16k"))
    proc = Proc(system, name="t")
    payload = bytes([7]) * (64 * KB)

    def put():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(put())
    # Cold cache, then trace exactly the read.
    vn = system.run(system.mount.namei("/f"), name="lookup")
    for page in list(system.pagecache.vnode_pages(vn)):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()
    system.tracer.enabled = True

    def get():
        fd = yield from proc.open("/f")
        data = yield from proc.read(fd, 64 * KB)
        yield from proc.close(fd)
        return data

    assert system.run(get()) == payload
    system.tracer.enabled = False
    member_spans = [s for s in system.tracer.spans
                    if s.name.startswith("disk_io[m")]
    names = {s.name for s in member_spans}
    assert len(names) >= 2, f"expected multi-member I/O, saw {names}"
    # Concurrency: at least two member transfers overlap in simulated time.
    overlapping = any(
        a.begin < b.end and b.begin < a.end
        for i, a in enumerate(member_spans)
        for b in member_spans[i + 1:]
        if a.name != b.name and a.end is not None and b.end is not None)
    assert overlapping, "member I/Os never overlapped"


def test_single_layout_has_no_member_span_labels():
    system = System.booted(SystemConfig())
    proc = Proc(system, name="t")
    system.tracer.enabled = True

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"\x11" * (16 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    system.tracer.enabled = False
    assert not any(s.name.startswith("disk_io[")
                   for s in system.tracer.spans)
