"""Tests for the sparse sector store."""

import pytest

from repro.disk import DiskStore


def test_unwritten_reads_zero():
    store = DiskStore(total_sectors=16)
    assert store.read(0, 2) == bytes(1024)


def test_write_read_round_trip():
    store = DiskStore(total_sectors=16)
    payload = bytes(range(256)) * 4  # 1024 bytes = 2 sectors
    store.write(3, payload)
    assert store.read(3, 2) == payload
    # Neighbours untouched.
    assert store.read(2, 1) == bytes(512)
    assert store.read(5, 1) == bytes(512)


def test_overwrite():
    store = DiskStore(total_sectors=4)
    store.write(0, b"\xaa" * 512)
    store.write(0, b"\xbb" * 512)
    assert store.read(0, 1) == b"\xbb" * 512


def test_zero_write_reclaims_sparse_entry():
    store = DiskStore(total_sectors=4)
    store.write(1, b"\xaa" * 512)
    assert store.written_sectors == 1
    store.write(1, bytes(512))
    assert store.written_sectors == 0
    assert store.read(1, 1) == bytes(512)


def test_bounds_checking():
    store = DiskStore(total_sectors=4)
    with pytest.raises(ValueError):
        store.read(3, 2)
    with pytest.raises(ValueError):
        store.read(-1, 1)
    with pytest.raises(ValueError):
        store.write(4, b"\x00" * 512)
    with pytest.raises(ValueError):
        store.read(0, 0)


def test_partial_sector_write_rejected():
    store = DiskStore(total_sectors=4)
    with pytest.raises(ValueError):
        store.write(0, b"abc")


def test_constructor_validation():
    with pytest.raises(ValueError):
        DiskStore(total_sectors=0)
    with pytest.raises(ValueError):
        DiskStore(total_sectors=4, sector_size=0)
