"""Unit tests for the volatile write cache (data plane + journal)."""

import pytest

from repro.disk import Buf, BufOp
from repro.disk.store import DiskStore
from repro.disk.wcache import VolatileWriteCache
from repro.sim import Engine


SS = 512


def wbuf(engine, sector, nsectors=1, fill=0xAA, **kw):
    return Buf(engine, BufOp.WRITE, sector, nsectors,
               data=bytes([fill]) * (nsectors * SS), **kw)


def make_cache(limit_bytes=4 * SS, sectors=64):
    engine = Engine()
    store = DiskStore(sectors, SS)
    return engine, store, VolatileWriteCache(store, limit_bytes)


def test_limit_must_be_positive():
    store = DiskStore(8, SS)
    with pytest.raises(ValueError):
        VolatileWriteCache(store, 0)


def test_write_is_volatile_until_destaged():
    engine, store, cache = make_cache()
    cache.write(wbuf(engine, 3, fill=0x11))
    # The store still holds zeroes: completed != durable.
    assert store.read(3, 1) == bytes(SS)
    assert cache.bytes == SS
    entry = cache.destage_head()
    assert entry.sector == 3
    assert store.read(3, 1) == bytes([0x11]) * SS
    assert cache.bytes == 0


def test_accounting_and_over_limit():
    engine, store, cache = make_cache(limit_bytes=2 * SS)
    cache.write(wbuf(engine, 0))
    assert not cache.over_limit
    cache.write(wbuf(engine, 1))
    assert not cache.over_limit  # at the limit, not over it
    cache.write(wbuf(engine, 2))
    assert cache.over_limit
    cache.destage_head()
    assert not cache.over_limit
    assert cache.bytes == 2 * SS


def test_destage_is_fifo():
    engine, store, cache = make_cache()
    for sector, fill in ((5, 0x01), (2, 0x02), (9, 0x03)):
        cache.write(wbuf(engine, sector, fill=fill))
    assert [cache.destage_head().sector for _ in range(3)] == [5, 2, 9]
    assert store.read(2, 1) == bytes([0x02]) * SS


def test_overlay_returns_cached_bytes():
    engine, store, cache = make_cache()
    store.write(4, bytes([0xEE]) * (2 * SS))
    cache.write(wbuf(engine, 5, fill=0x22))
    # A read spanning sectors 4..5 sees durable 4 and cached 5.
    got = cache.overlay(4, 2, store.read(4, 2))
    assert got[:SS] == bytes([0xEE]) * SS
    assert got[SS:] == bytes([0x22]) * SS
    # Disjoint reads are returned untouched (no copy, no stat).
    raw = store.read(0, 2)
    assert cache.overlay(0, 2, raw) is raw


def test_overlay_applies_entries_in_cache_order():
    engine, store, cache = make_cache()
    cache.write(wbuf(engine, 7, fill=0x01))
    cache.write(wbuf(engine, 7, fill=0x02))
    got = cache.overlay(7, 1, store.read(7, 1))
    assert got == bytes([0x02]) * SS  # the newer write wins


def test_drop_all_loses_everything():
    engine, store, cache = make_cache()
    cache.write(wbuf(engine, 1, fill=0x55))
    cache.write(wbuf(engine, 2, fill=0x66))
    lost = cache.drop_all()
    assert lost == 2 * SS
    assert cache.bytes == 0 and not cache.entries
    assert store.read(1, 2) == bytes(2 * SS)  # nothing reached the media


def test_journal_records_every_event_kind():
    engine, store, cache = make_cache()
    cache.journal = []
    cache.write(wbuf(engine, 1, ordered=True))
    cache.destage_head()
    cache.note_fua(wbuf(engine, 2, fill=0x77, fua=True))
    cache.note_flush()
    cache.write(wbuf(engine, 3))
    cache.drop_all()
    kinds = [ev.kind for ev in cache.journal]
    assert kinds == ["write", "destage", "fua", "flush", "write", "drop"]
    write, destage, fua = cache.journal[0], cache.journal[1], cache.journal[2]
    assert write.ordered and write.sector == 1
    assert destage.seq == write.seq
    assert fua.data == bytes([0x77]) * SS
    # Seq numbers are unique and monotone across writes and FUAs (a
    # destage reuses the seq of the write it makes durable).
    seqs = [ev.seq for ev in cache.journal
            if ev.kind in ("write", "fua")]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_note_flush_requires_drained_cache():
    engine, store, cache = make_cache()
    cache.write(wbuf(engine, 1))
    with pytest.raises(AssertionError):
        cache.note_flush()
