"""Tests for disk geometry: addressing, zones, angles, seeks."""

import pytest

from repro.disk import DiskGeometry, Zone
from repro.units import MB


@pytest.fixture
def geom():
    return DiskGeometry.uniform(cylinders=10, heads=2, sectors_per_track=8)


def test_total_sectors_and_capacity(geom):
    assert geom.total_sectors == 10 * 2 * 8
    assert geom.capacity_bytes == 160 * 512


def test_chs_round_trip(geom):
    for sector in range(geom.total_sectors):
        cyl, head, idx = geom.to_chs(sector)
        assert geom.from_chs(cyl, head, idx) == sector


def test_chs_layout_order(geom):
    # Sectors fill a track, then the next head, then the next cylinder.
    assert geom.to_chs(0) == (0, 0, 0)
    assert geom.to_chs(7) == (0, 0, 7)
    assert geom.to_chs(8) == (0, 1, 0)
    assert geom.to_chs(16) == (1, 0, 0)


def test_sector_out_of_range(geom):
    with pytest.raises(ValueError):
        geom.to_chs(geom.total_sectors)
    with pytest.raises(ValueError):
        geom.to_chs(-1)
    with pytest.raises(ValueError):
        geom.from_chs(0, 2, 0)
    with pytest.raises(ValueError):
        geom.from_chs(0, 0, 8)


def test_track_first_sector(geom):
    assert geom.track_first_sector(13) == 8
    assert geom.track_first_sector(8) == 8


def test_rotation_and_media_rate():
    geom = DiskGeometry.ibm_400mb()
    assert geom.rotation_time == pytest.approx(1 / 60)
    # 56 sectors * 512 B per 16.67 ms = 1.72e6 B/s
    assert geom.media_rate(0) == pytest.approx(1_720_320)
    assert geom.capacity_bytes == pytest.approx(394 * MB, rel=0.01)


def test_zoned_geometry_addressing():
    geom = DiskGeometry(
        heads=2,
        zones=(Zone(0, 1, 8), Zone(2, 3, 4)),
    )
    assert geom.total_sectors == 2 * 2 * 8 + 2 * 2 * 4
    # First sector of the inner zone:
    assert geom.to_chs(32) == (2, 0, 0)
    assert geom.from_chs(2, 0, 0) == 32
    assert geom.sectors_per_track_at(0) == 8
    assert geom.sectors_per_track_at(3) == 4
    assert geom.media_rate(0) == 2 * geom.media_rate(3)


def test_zones_must_tile():
    with pytest.raises(ValueError):
        DiskGeometry(heads=2, zones=(Zone(0, 1, 8), Zone(3, 4, 4)))


def test_rotational_wait_basics(geom):
    # No skew for cylinder 0, head 0: sector 0 starts at angle 0.
    rot = geom.rotation_time
    assert geom.rotational_wait(0.0, 0, 0, 0) == pytest.approx(0.0)
    # Half a revolution after t=0, sector 0 is half a revolution away.
    assert geom.rotational_wait(rot / 2, 0, 0, 0) == pytest.approx(rot / 2)
    # Sector 4 of 8 starts half a revolution in.
    assert geom.rotational_wait(0.0, 0, 0, 4) == pytest.approx(rot / 2)


def test_skew_offsets_next_track():
    geom = DiskGeometry.uniform(
        cylinders=4, heads=2, sectors_per_track=8, track_skew=2, cyl_skew=3
    )
    assert geom.skew_sectors(0, 0) == 0
    assert geom.skew_sectors(0, 1) == 2  # +track_skew
    assert geom.skew_sectors(1, 0) == 5  # +cyl_skew past the last head
    assert geom.skew_sectors(1, 1) == 7
    # Sector 0 on head 1 starts 2 sector-times later than on head 0.
    delta = geom.sector_angle(0, 1, 0) - geom.sector_angle(0, 0, 0)
    assert delta == pytest.approx(2 / 8)


def test_seek_time_monotone():
    geom = DiskGeometry.ibm_400mb()
    assert geom.seek_time(5, 5) == 0.0
    one = geom.seek_time(0, 1)
    mid = geom.seek_time(0, geom.cylinders // 3)
    full = geom.seek_time(0, geom.cylinders - 1)
    assert 0 < one < mid < full
    # Calibration: average seek in the 10-20 ms range of late-80s drives.
    assert 0.010 < geom.average_seek_time() < 0.020


def test_validation_errors():
    with pytest.raises(ValueError):
        DiskGeometry.uniform(cylinders=1, heads=0, sectors_per_track=8)
    with pytest.raises(ValueError):
        Zone(0, -1, 8)
    with pytest.raises(ValueError):
        Zone(0, 1, 0)
    with pytest.raises(ValueError):
        DiskGeometry(heads=2, zones=())
