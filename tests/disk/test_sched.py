"""Tests for the pluggable disk schedulers and their DiskQueue contract."""

import pytest

from repro.disk import (
    Buf, BufOp, DeadlineScheduler, DiskQueue, ElevatorScheduler,
    FifoScheduler, make_scheduler,
)
from repro.sim import Engine
from repro.units import MS


def rbuf(engine, sector, nsectors=2, issued_at=0.0, **kw):
    buf = Buf(engine, BufOp.READ, sector, nsectors, **kw)
    buf.issued_at = issued_at
    return buf


def wbuf(engine, sector, nsectors=2, issued_at=0.0):
    buf = Buf(engine, BufOp.WRITE, sector, nsectors,
              data=bytes(nsectors * 512))
    buf.issued_at = issued_at
    return buf


def drain(queue, last_sector=0, now=0.0):
    """Pop everything, advancing the head like the driver does."""
    order = []
    while True:
        buf = queue.pop(last_sector, now=now)
        if buf is None:
            return order
        order.append(buf)
        last_sector = buf.end_sector


def test_make_scheduler_by_name():
    assert isinstance(make_scheduler("elevator"), ElevatorScheduler)
    assert isinstance(make_scheduler("fifo"), FifoScheduler)
    assert isinstance(make_scheduler("deadline"), DeadlineScheduler)
    assert make_scheduler("elevator", max_passes=3).max_passes == 3
    # Unknown kwargs are dropped per-policy, not an error.
    assert isinstance(make_scheduler("fifo", max_passes=3), FifoScheduler)
    with pytest.raises(ValueError):
        make_scheduler("cfq")


def test_deadline_validates_deadlines():
    with pytest.raises(ValueError):
        DeadlineScheduler(read_deadline=0)


def test_same_bufs_different_orders():
    """The point of the interface: identical queue, policy-specific order."""
    eng = Engine()
    sectors = [40, 10, 30, 20]
    orders = {}
    for name in ("elevator", "fifo", "deadline"):
        queue = DiskQueue(scheduler=name)
        for i, sector in enumerate(sectors):
            queue.insert(rbuf(eng, sector, issued_at=float(i)))
        orders[name] = [b.sector for b in drain(queue, last_sector=0)]
    assert orders["fifo"] == [40, 10, 30, 20]
    assert orders["elevator"] == [10, 20, 30, 40]
    assert orders["deadline"] == [10, 20, 30, 40]  # nothing late: elevator


def test_elevator_one_way_sweep_with_wrap():
    eng = Engine()
    queue = DiskQueue(scheduler="elevator")
    for sector in (10, 50, 30):
        queue.insert(rbuf(eng, sector))
    # Head at 25: serve 30, 50 on the way up, then wrap to 10.
    assert [b.sector for b in drain(queue, last_sector=25)] == [30, 50, 10]


def test_deadline_promotes_expired_read():
    eng = Engine()
    sched = DeadlineScheduler(read_deadline=60 * MS, write_deadline=400 * MS)
    queue = DiskQueue(scheduler=sched)
    # A read parked at a low sector behind a stream of forward writes.
    starving = rbuf(eng, 5, issued_at=0.0)
    queue.insert(starving)
    for i, sector in enumerate((100, 200, 300)):
        queue.insert(wbuf(eng, sector, issued_at=0.01 * i))
    # Before its deadline the elevator order wins (head at 90 goes up).
    assert queue.peek_all(last_sector=90, now=0.050)[0].sector == 100
    # Past the read deadline the read is served first despite its position.
    assert queue.pop(90, now=0.100) is starving


def test_deadline_expired_writes_by_earliest_deadline():
    eng = Engine()
    sched = DeadlineScheduler(read_deadline=60 * MS, write_deadline=400 * MS)
    queue = DiskQueue(scheduler=sched)
    first = wbuf(eng, 300, issued_at=0.0)
    second = wbuf(eng, 100, issued_at=0.1)
    queue.insert(first)
    queue.insert(second)
    # Both expired: earliest deadline (oldest write) wins, not sector order.
    assert queue.pop(0, now=1.0) is first


def test_peek_all_matches_pop_sequence_for_every_scheduler():
    eng = Engine()
    for name in ("elevator", "fifo", "deadline"):
        queue = DiskQueue(scheduler=name)
        for i, sector in enumerate((40, 10, 999, 30, 20)):
            buf = rbuf(eng, sector, issued_at=float(i))
            if sector == 999:
                buf.ordered = True  # a barrier in the middle
            queue.insert(buf)
        predicted = queue.peek_all(last_sector=15, now=0.0)
        assert len(queue) == 5  # peeking does not consume
        popped = drain(queue, last_sector=15)
        assert predicted == popped, name


def test_peek_all_leaves_elevator_pass_counts_alone():
    eng = Engine()
    queue = DiskQueue(scheduler="elevator")
    queue.insert(rbuf(eng, 10))
    queue.insert(rbuf(eng, 30))
    queue.pop(20)  # head at 20 passes over sector 10, bumping its count
    before = dict(queue._passes)
    assert before  # the pass really was counted
    queue.peek_all(last_sector=20)
    assert queue._passes == before


def test_fifo_queue_via_use_disksort_false():
    eng = Engine()
    queue = DiskQueue(use_disksort=False)
    assert queue.scheduler.name == "fifo"
    assert not queue.use_disksort
    for sector in (40, 10, 30):
        queue.insert(rbuf(eng, sector))
    assert [b.sector for b in drain(queue)] == [40, 10, 30]


def test_remove_forgets_scheduler_state():
    eng = Engine()
    queue = DiskQueue(scheduler="elevator")
    parked = rbuf(eng, 10)
    queue.insert(parked)
    queue.insert(rbuf(eng, 30))
    queue.pop(20)  # bump parked's pass count
    assert queue._passes
    queue.remove(parked)
    assert not queue._passes
    assert len(queue) == 0
