"""Several DiskQueues coexisting — the volume layer's member queues.

Every member of a multi-member volume owns its own DiskQueue and scheduler
object.  These tests pin the properties the volume fan-out relies on:
snapshot/restore and the elevator's pass accounting must stay per-queue
(no shared state bleeding between members), barriers must hold per member,
and ``peek_all`` must keep predicting each member's pops independently.
"""

import pytest

from repro.disk import Buf, BufOp, DiskQueue
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim import Engine
from repro.units import KB


def wbuf(engine, sector, nsectors=2, ordered=False):
    buf = Buf(engine, BufOp.WRITE, sector, nsectors,
              data=bytes(nsectors * 512), ordered=ordered)
    buf.issued_at = 0.0
    return buf


def drain(queue, last_sector=0):
    order = []
    while True:
        buf = queue.pop(last_sector, now=0.0)
        if buf is None:
            return order
        order.append(buf)
        last_sector = buf.end_sector


@pytest.mark.parametrize("name", ["elevator", "fifo", "deadline"])
def test_snapshot_restore_is_per_queue(name):
    engine = Engine()
    queues = [DiskQueue(scheduler=name) for _ in range(3)]
    for i, queue in enumerate(queues):
        for sector in (40 + i, 10 + i, 30 + i):
            queue.insert(wbuf(engine, sector))
    snaps = [q.snapshot() for q in queues]
    # Draining one queue must not disturb the others or their snapshots.
    drained = drain(queues[0])
    assert len(drained) == 3
    assert len(queues[0]) == 0
    assert [len(q) for q in queues[1:]] == [3, 3]
    queues[0].restore(snaps[0])
    assert len(queues[0]) == 3
    assert [b.sector for b in drain(queues[0])] == \
           [b.sector for b in drained]


@pytest.mark.parametrize("name", ["elevator", "fifo", "deadline"])
def test_peek_all_predicts_pop_per_member(name):
    engine = Engine()
    queues = [DiskQueue(scheduler=name) for _ in range(2)]
    # Interleaved inserts, as the volume fan-out produces them.
    for sector in (40, 10, 90, 30, 5, 70):
        queues[sector % 2].insert(wbuf(engine, sector))
    queues[0].insert(wbuf(engine, 60, ordered=True))
    queues[0].insert(wbuf(engine, 1))
    predictions = [q.peek_all(0, 0.0) for q in queues]
    # Predicting one member must not perturb another member's prediction.
    assert queues[1].peek_all(0, 0.0) == predictions[1]
    for queue, predicted in zip(queues, predictions):
        assert drain(queue) == predicted


def test_barriers_hold_per_member_queue():
    engine = Engine()
    queues = [DiskQueue(scheduler="elevator") for _ in range(2)]
    pre = [wbuf(engine, s) for s in (40, 10)]
    barrier = wbuf(engine, 90, ordered=True)
    post = [wbuf(engine, s) for s in (5, 50)]
    for buf in pre + [barrier] + post:
        queues[0].insert(buf)
    # The sibling queue holds sort-happy traffic but no barrier.
    for sector in (80, 20, 60):
        queues[1].insert(wbuf(engine, sector))
    order = drain(queues[0])
    assert set(order[:2]) == set(pre)
    assert order[2] is barrier
    assert set(order[3:]) == set(post)
    # The barrier in queue 0 never leaked into queue 1's ordering.
    assert [b.sector for b in drain(queues[1])] == [20, 60, 80]


def test_elevator_pass_accounting_is_per_queue():
    engine = Engine()
    queues = [DiskQueue(scheduler="elevator") for _ in range(2)]
    for queue in queues:
        for sector in (100, 50, 10):
            queue.insert(wbuf(engine, sector))
    # A pop with the head past sectors 10 and 50 passes both over in
    # queue 0; queue 1's elevator must not see those passes.
    served = queues[0].pop(60, now=0.0)
    assert served.sector == 100
    assert len(queues[0]._passes) == 2
    assert len(queues[1]._passes) == 0
    queues[1].pop(60, now=0.0)
    assert len(queues[1]._passes) == 2
    assert queues[0]._passes is not queues[1]._passes


def test_volume_member_queues_are_distinct_objects():
    system = System.booted(SystemConfig(layout="stripe:4"))
    queues = [m.driver.queue for m in system.volume.members]
    assert len({id(q) for q in queues}) == 4
    assert len({id(q.scheduler) for q in queues}) == 4


def test_member_queues_fill_and_drain_under_load():
    """A striped write burst exercises all member queues concurrently, and
    the volume's queue view sums them."""
    system = System.booted(SystemConfig(layout="stripe:2"))
    proc = Proc(system, name="t")

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"\x99" * (512 * KB))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    assert len(system.volume.queue) == 0
    for member in system.volume.members:
        assert member.driver.idle
        assert member.driver.stats["requests"] > 0
