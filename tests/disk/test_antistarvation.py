"""Tests for the elevator anti-starvation bound and queue-bytes tracking."""

from repro.disk import Buf, BufOp, DiskDriver, DiskGeometry, DiskQueue, RotationalDisk
from repro.sim import Engine


def wbuf(engine, sector, nsectors=2):
    return Buf(engine, BufOp.WRITE, sector, nsectors,
               data=bytes(nsectors * 512), async_=True)


def test_pass_limit_rescues_starved_request():
    eng = Engine()
    queue = DiskQueue(use_disksort=True, max_passes=3)
    victim = Buf(eng, BufOp.READ, 5, 2)
    queue.insert(victim)
    last = 500
    served = []
    next_sector = 600
    for _ in range(10):
        queue.insert(wbuf(eng, next_sector))
        next_sector += 10
        buf = queue.pop(last)
        served.append(buf)
        last = buf.end_sector
        if buf is victim:
            break
    assert victim in served
    # It was passed over exactly max_passes times before being forced.
    assert served.index(victim) == 3


def test_forced_request_counts_as_pass_for_others():
    """Several starved requests are served oldest-first."""
    eng = Engine()
    queue = DiskQueue(use_disksort=True, max_passes=2)
    old = Buf(eng, BufOp.READ, 5, 2)
    queue.insert(old)
    newer = Buf(eng, BufOp.READ, 10, 2)
    queue.insert(newer)
    last = 500
    order = []
    next_sector = 600
    for _ in range(8):
        queue.insert(wbuf(eng, next_sector))
        next_sector += 10
        buf = queue.pop(last)
        last = buf.end_sector
        order.append(buf)
        if old in order and newer in order:
            break
    assert order.index(old) < order.index(newer)


def test_no_passes_without_skipping():
    """Pure ascending traffic never triggers the starvation path."""
    eng = Engine()
    queue = DiskQueue(use_disksort=True, max_passes=1)
    for sector in (10, 20, 30):
        queue.insert(wbuf(eng, sector))
    order = []
    last = 0
    while True:
        buf = queue.pop(last)
        if buf is None:
            break
        order.append(buf.sector)
        last = buf.end_sector
    assert order == [10, 20, 30]


def test_queue_bytes_tracks_pinned_memory():
    eng = Engine()
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(eng, geom)
    driver = DiskDriver(eng, disk)
    for sector in (8, 40, 100):
        driver.strategy(wbuf(eng, sector, nsectors=4))
    assert driver.queue_bytes.value == 3 * 4 * 512
    eng.run()
    assert driver.queue_bytes.value == 0
    assert driver.queue_bytes.maximum == 3 * 4 * 512
