"""B_ORDER barrier semantics across schedulers, and the DiskQueue
snapshot/restore contract (segment boundaries must round-trip).

The round-trip matters because ``peek_all`` simulates service order by
popping the real queue and restoring it: if restore loses a barrier
segment boundary — or aliases the snapshot's lists so a later restore
replays mutations — the elevator would happily predict (and after a
restore, perform) a reorder across a write barrier.
"""

import pytest

from repro.disk import Buf, BufOp, DiskQueue
from repro.sim import Engine


def wbuf(engine, sector, nsectors=2, ordered=False, issued_at=0.0):
    buf = Buf(engine, BufOp.WRITE, sector, nsectors,
              data=bytes(nsectors * 512), ordered=ordered)
    buf.issued_at = issued_at
    return buf


def drain(queue, last_sector=0, now=0.0):
    order = []
    while True:
        buf = queue.pop(last_sector, now=now)
        if buf is None:
            return order
        order.append(buf)
        last_sector = buf.end_sector
    return order


def fill(queue, engine):
    """Sweep / barrier / sweep, with sectors chosen so a sort-happy
    scheduler would love to reorder across the barrier."""
    pre = [wbuf(engine, s) for s in (40, 10, 30)]
    barrier = wbuf(engine, 90, ordered=True)
    post = [wbuf(engine, s) for s in (5, 50, 20)]
    for buf in pre + [barrier] + post:
        queue.insert(buf)
    return pre, barrier, post


@pytest.mark.parametrize("name", ["elevator", "fifo", "deadline"])
def test_barrier_never_reordered_across(name):
    engine = Engine()
    queue = DiskQueue(scheduler=name)
    pre, barrier, post = fill(queue, engine)
    order = drain(queue)
    assert len(order) == 7
    cut = order.index(barrier)
    assert set(order[:cut]) == set(pre)
    assert set(order[cut + 1:]) == set(post)


@pytest.mark.parametrize("name", ["elevator", "fifo", "deadline"])
def test_snapshot_restore_round_trips_segments(name):
    engine = Engine()
    queue = DiskQueue(scheduler=name)
    fill(queue, engine)
    state = queue.snapshot()
    baseline = drain(queue)
    assert len(queue) == 0
    # Restore after draining everything: the full order must come back,
    # barrier boundaries included.
    queue.restore(state)
    assert len(queue) == len(baseline)
    assert drain(queue) == baseline


@pytest.mark.parametrize("name", ["elevator", "fifo", "deadline"])
def test_snapshot_survives_partial_pop_and_reinsert(name):
    engine = Engine()
    queue = DiskQueue(scheduler=name)
    fill(queue, engine)
    state = queue.snapshot()
    baseline = drain(queue)
    # Mutate hard after the snapshot: new inserts, including a new barrier.
    queue.insert(wbuf(engine, 70))
    queue.insert(wbuf(engine, 80, ordered=True))
    queue.pop(0)
    queue.restore(state)
    assert drain(queue) == baseline
    # The same snapshot restores a second time to the identical state
    # (no aliasing between the snapshot and the live queue/scheduler).
    queue.restore(state)
    assert drain(queue) == baseline


def test_peek_all_predicts_pop_order_with_barriers():
    engine = Engine()
    queue = DiskQueue(scheduler="elevator")
    fill(queue, engine)
    predicted = queue.peek_all(last_sector=0)
    assert len(queue) == 7  # peeking leaves the queue intact
    assert drain(queue) == predicted


def test_peek_all_does_not_disturb_elevator_accounting():
    engine = Engine()
    queue = DiskQueue(scheduler="elevator")
    for s in (40, 10, 30):
        queue.insert(wbuf(engine, s))
    before = dict(queue.scheduler._passes)
    predicted = queue.peek_all(last_sector=35)  # skips 10 and 30 internally
    assert dict(queue.scheduler._passes) == before
    # And the real pops agree with the undisturbed prediction.
    assert drain(queue, last_sector=35) == predicted


def test_elevator_double_restore_is_not_aliased():
    """Restoring the same scheduler snapshot twice yields the same state
    even when selects mutate pass counts in between."""
    engine = Engine()
    queue = DiskQueue(scheduler="elevator")
    bufs = [wbuf(engine, s) for s in (40, 10, 30)]
    for buf in bufs:
        queue.insert(buf)
    sched = queue.scheduler
    state = sched.snapshot()
    seg = [b for b in sorted(bufs, key=lambda b: b.sector)]
    sched.select(seg, last_sector=35, now=0.0)  # passes over 10 and 30
    first = dict(sched._passes)
    sched.restore(state)
    assert sched._passes == {}
    sched.select(seg, last_sector=35, now=0.0)
    assert dict(sched._passes) == first
    sched.restore(state)
    # The aliasing bug: the first restore adopted the snapshot dict, so
    # the select above mutated the snapshot itself and this second
    # restore would see pass counts that were never snapshotted.
    assert sched._passes == {}


def test_consecutive_barriers_stay_ordered():
    engine = Engine()
    queue = DiskQueue(scheduler="elevator")
    b1 = wbuf(engine, 60, ordered=True)
    b2 = wbuf(engine, 4, ordered=True)
    tail = wbuf(engine, 2)
    for buf in (b1, b2, tail):
        queue.insert(buf)
    assert drain(queue) == [b1, b2, tail]
