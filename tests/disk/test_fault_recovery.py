"""Driver-level fault recovery: retries, remapping, split-retry, propagation."""

from repro.disk import Buf, BufOp, DiskDriver, DiskGeometry, DiskQueue, RotationalDisk
from repro.errors import PowerLossError, TransientDiskError
from repro.faults import FaultPlan
from repro.sim import Engine
from repro.sim.events import EventFailed


def make_stack(engine, plan=None, **driver_kwargs):
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom, fault_plan=plan)
    driver = DiskDriver(engine, disk, **driver_kwargs)
    return disk, driver


def wbuf(engine, sector, nsectors=2, **kw):
    return Buf(engine, BufOp.WRITE, sector, nsectors,
               data=bytes(nsectors * 512), **kw)


def test_transient_error_retried_to_success():
    eng = Engine()
    plan = FaultPlan(transient_at=[0.0])
    disk, driver = make_stack(eng, plan)
    payload = b"\xab" * 1024
    disk.store.write(10, payload)

    def proc():
        buf = Buf(eng, BufOp.READ, 10, 2)
        driver.strategy(buf)
        yield buf.done
        return buf

    buf = eng.run_process(proc())
    assert buf.data == payload
    assert buf.error is None
    assert driver.stats["transient_errors"] == 1
    assert driver.stats["retries"] == 1
    assert driver.stats["retries_exhausted"] == 0
    assert driver.stats["errors"] == 0


def test_retry_backoff_is_exponential():
    def elapsed(nfaults):
        eng = Engine()
        _, driver = make_stack(eng, FaultPlan(transient_at=[0.0] * nfaults))
        driver.strategy(wbuf(eng, 8, async_=True))
        eng.run()
        return eng.now

    # Backoffs double: 2ms, then 4ms, then 8ms.  A single short backoff can
    # hide inside the rotational wait (the spindle position is a function of
    # absolute time), but three failures add >= 12ms more backoff than one
    # failure does, which no rotational slack at this geometry can absorb.
    assert elapsed(3) > elapsed(1) + 0.012


def test_retries_exhausted_fails_the_buf():
    eng = Engine()
    plan = FaultPlan(read_transient_p=1.0)
    _, driver = make_stack(eng, plan, max_retries=3)
    buf = Buf(eng, BufOp.READ, 10, 2, async_=True)
    driver.strategy(buf)
    eng.run()
    assert isinstance(buf.error, TransientDiskError)
    assert buf.data is None
    assert driver.stats["retries"] == 3
    assert driver.stats["retries_exhausted"] == 1
    assert driver.stats["errors"] == 1


def test_sync_waiter_sees_the_failure():
    eng = Engine()
    plan = FaultPlan(read_transient_p=1.0)
    _, driver = make_stack(eng, plan, max_retries=1)

    def proc():
        buf = Buf(eng, BufOp.READ, 10, 2)
        driver.strategy(buf)
        try:
            yield buf.done
        except EventFailed as failure:
            return failure.args[0]
        return None

    err = eng.run_process(proc())
    assert isinstance(err, TransientDiskError)


def test_media_error_remapped_to_spare():
    eng = Engine()
    plan = FaultPlan(bad_sectors=[11])
    disk, driver = make_stack(eng, plan)
    payload = bytes(range(256)) * 4
    disk.store.write(10, payload)

    def proc():
        buf = Buf(eng, BufOp.READ, 10, 2)
        driver.strategy(buf)
        yield buf.done
        return buf.data

    assert eng.run_process(proc()) == payload
    assert driver.remap_table == {11: 0}
    assert driver.stats["media_errors"] == 1
    assert driver.stats["remaps"] == 1
    assert plan.bad_sectors == set()  # defect revectored, no longer bad


def test_timeout_detected_and_recovered():
    eng = Engine()
    plan = FaultPlan(timeout_at=[0.0], timeout_hang=0.25)
    _, driver = make_stack(eng, plan)

    def proc():
        buf = Buf(eng, BufOp.READ, 10, 2)
        driver.strategy(buf)
        yield buf.done
        return eng.now

    t = eng.run_process(proc())
    assert t >= 0.25  # the hang really happened before detection
    assert driver.stats["timeouts_detected"] == 1
    assert driver.stats["retries"] == 1
    assert driver.stats["errors"] == 0


def test_power_loss_is_not_retried():
    eng = Engine()
    plan = FaultPlan(power_cut_time=0.0)
    _, driver = make_stack(eng, plan)
    buf = wbuf(eng, 8, async_=True)
    driver.strategy(buf)
    eng.run()
    assert isinstance(buf.error, PowerLossError)
    assert driver.stats["retries"] == 0  # dead electronics: no point
    assert driver.stats["errors"] == 1


def test_failed_cluster_splits_and_children_succeed():
    eng = Engine()
    # Five scheduled transients: the 2-child coalesced parent burns all of
    # them (4 retries + the final attempt), fails, and is split; the
    # children then service cleanly on their own.
    plan = FaultPlan(transient_at=[0.0] * 5)
    disk, driver = make_stack(eng, plan, coalesce=True)
    b1 = Buf(eng, BufOp.WRITE, 8, 2, data=b"\x11" * 1024, async_=True)
    b2 = Buf(eng, BufOp.WRITE, 10, 2, data=b"\x22" * 1024, async_=True)
    driver.strategy(b1)
    driver.strategy(b2)
    eng.run()
    assert driver.stats["coalesced"] == 1
    assert driver.stats["split_retries"] == 1
    assert driver.stats["retries_exhausted"] == 1
    assert b1.error is None and b2.error is None
    assert disk.store.read(8, 2) == b"\x11" * 1024
    assert disk.store.read(10, 2) == b"\x22" * 1024


def test_unrecoverable_cluster_failure_reaches_every_child():
    eng = Engine()
    plan = FaultPlan(read_transient_p=1.0)
    _, driver = make_stack(eng, plan, coalesce=True, max_retries=2)
    r1 = Buf(eng, BufOp.READ, 8, 2, async_=True)
    r2 = Buf(eng, BufOp.READ, 10, 2, async_=True)
    driver.strategy(r1)
    driver.strategy(r2)
    eng.run()
    assert driver.stats["coalesced"] == 1
    assert driver.stats["split_retries"] == 1
    assert isinstance(r1.error, TransientDiskError)
    assert isinstance(r2.error, TransientDiskError)


def test_complete_children_propagates_error_without_slicing():
    eng = Engine()
    _, driver = make_stack(eng)
    parent = Buf(eng, BufOp.READ, 8, 4, async_=True)
    c1 = Buf(eng, BufOp.READ, 8, 2, async_=True)
    c2 = Buf(eng, BufOp.READ, 10, 2, async_=True)
    parent.children.extend([c1, c2])
    boom = TransientDiskError("boom")
    driver._complete(parent, boom)
    assert c1.error is boom and c2.error is boom
    assert c1.data is None and c2.data is None  # no stale slice on failure


def test_queue_remove_drops_starvation_counter():
    eng = Engine()
    queue = DiskQueue(use_disksort=True)
    behind = wbuf(eng, 10)
    ahead = wbuf(eng, 50)
    queue.insert(behind)
    queue.insert(ahead)
    assert queue.pop(last_sector=20) is ahead  # passes over `behind`
    assert queue._passes  # the pass was counted
    queue.remove(behind)  # e.g. absorbed into a coalesced parent
    assert not queue._passes  # and the counter did not leak
