"""Tests for the units helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import KB, MB, MS, US, fmt_bytes, fmt_time, kb_per_sec


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB


def test_kb_per_sec():
    assert kb_per_sec(1024 * 1024, 1.0) == 1024
    assert kb_per_sec(512 * 1024, 0.5) == 1024
    with pytest.raises(ValueError):
        kb_per_sec(100, 0)


def test_fmt_bytes():
    assert fmt_bytes(100) == "100B"
    assert fmt_bytes(56 * KB) == "56KB"
    assert fmt_bytes(1.5 * MB) == "1.5MB"


def test_fmt_time():
    assert fmt_time(2.5) == "2.50s"
    assert fmt_time(4 * MS) == "4.00ms"
    assert fmt_time(150 * US) == "150.0us"


def test_error_hierarchy():
    assert issubclass(errors.NoSpaceError, errors.FilesystemError)
    assert issubclass(errors.FilesystemError, errors.ReproError)
    assert issubclass(errors.DiskError, errors.ReproError)
    assert issubclass(errors.CorruptionError, errors.FilesystemError)
    for name in ("FileNotFoundError_", "FileExistsError_",
                 "NotADirectoryError_", "IsADirectoryError_",
                 "DirectoryNotEmptyError"):
        assert issubclass(getattr(errors, name), errors.FilesystemError)
    assert issubclass(errors.InvalidArgumentError, errors.ReproError)
    assert issubclass(errors.BadFileError, errors.ReproError)


def test_public_api_imports():
    import repro

    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None or name == "__version__"
