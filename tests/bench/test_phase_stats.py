"""Per-phase pipeline stats: each phase reports only its own samples.

The contamination bug: IObench's phase tables were drawn from the
registry's cumulative histograms, so FSU's "write latency" silently
included every FSW sample, FSR's table included both write phases, and so
on down the run.  The snapshot/delta API pins the fix: per-phase counts
must partition the whole-run counts, and read requests must not appear in
write-only phases.
"""

import pytest

from repro.bench.iobench import PHASES, IObench
from repro.disk import DiskGeometry
from repro.kernel import SystemConfig
from repro.units import KB, MB


@pytest.fixture(scope="module")
def result():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))
    bench = IObench(cfg, file_size=1 * MB, random_ops=64)
    return bench.run()


def test_every_phase_reported(result):
    assert set(result.pipeline["phases"]) == set(PHASES)


def test_phase_counts_partition_the_run(result):
    # The sum of per-phase deltas equals the whole-run counter for every
    # request kind — nothing double-counted, nothing dropped.
    whole = result.pipeline["requests"]["counts"]
    for key in ("write_started", "read_started", "fsync_started"):
        total = sum(p["counts"].get(key, 0)
                    for p in result.pipeline["phases"].values())
        assert total == whole.get(key, 0), key


def test_write_phases_report_no_reads(result):
    # FSW runs before any read phase; with cumulative histograms it could
    # never have shown reads — but FSU/FRU ran *after* read phases, and
    # the contamination bug leaked the read samples into their tables.
    for phase in ("FSW", "FSU", "FRU"):
        latency = result.pipeline["phases"][phase]["latency"]
        assert "read" not in latency, phase


def test_read_phases_report_reads_and_only_their_own(result):
    fsr = result.pipeline["phases"]["FSR"]["latency"]
    frr = result.pipeline["phases"]["FRR"]["latency"]
    assert fsr["read"]["count"] > 0
    assert frr["read"]["count"] > 0
    whole = result.pipeline["requests"]["latency"]["read"]["count"]
    assert fsr["read"]["count"] + frr["read"]["count"] == whole


def test_phase_latency_counts_match_counts_table(result):
    for phase, report in result.pipeline["phases"].items():
        for kind, summary in report["latency"].items():
            assert summary["count"] == report["counts"].get(
                f"{kind}_started", 0), (phase, kind)


def test_phase_histogram_bounds_are_local(result):
    # A delta histogram's max cannot exceed the cumulative max, and its
    # mean must be consistent with its own count/total.
    whole = result.pipeline["requests"]["latency"]
    for phase, report in result.pipeline["phases"].items():
        for kind, summary in report["latency"].items():
            assert summary["max"] <= whole[kind]["max"] * (1 + 1e-9)
            assert summary["mean"] >= 0
