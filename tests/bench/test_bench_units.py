"""Unit tests for the benchmark package itself (harness correctness)."""

import pytest

from repro.bench import IObench, Table, ratio_table, run_musbus
from repro.bench.agefs import ExtentReport, age_filesystem, measure_extents
from repro.bench.iobench import PHASES
from repro.bench.report import PAPER_FIGURE_10, compare_to_paper
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB


def small_config(name="A"):
    return SystemConfig.by_name(name).with_(
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32))


# -- tables -------------------------------------------------------------------

def test_table_rendering():
    table = Table(title="T", columns=["x", "y"])
    table.add_row("row1", [1.5, 100])
    text = table.render()
    assert "T" in text and "row1" in text and "1.50" in text


def test_table_row_validation():
    table = Table(title="T", columns=["x", "y"])
    with pytest.raises(ValueError):
        table.add_row("bad", [1])


def test_ratio_table_structure():
    rates = {
        "A": {p: 200.0 for p in PHASES},
        "D": {p: 100.0 for p in PHASES},
    }
    table = ratio_table(rates)
    assert any("A/D" in label for label, _ in table.rows)
    label, values = table.rows[0]
    assert all(v == pytest.approx(2.0) for v in values)


def test_compare_to_paper_includes_both():
    measured = {"A": dict(PAPER_FIGURE_10["A"])}
    table = compare_to_paper(measured, PAPER_FIGURE_10, "fig10")
    labels = [label for label, _ in table.rows]
    assert "A (ours)" in labels and "A (paper)" in labels


# -- iobench -------------------------------------------------------------------

def test_iobench_validates_sizes():
    with pytest.raises(ValueError):
        IObench(small_config(), file_size=1000, record_size=8 * KB)


def test_iobench_small_run_produces_all_phases():
    bench = IObench(small_config(), file_size=1 * MB, random_ops=16)
    result = bench.run()
    assert set(result.rates) == set(PHASES)
    assert all(v > 0 for v in result.rates.values())
    assert result["FSR"] == result.rates["FSR"]
    assert 0 < result.cpu_util["FSR"] <= 1.0


def test_iobench_deterministic():
    r1 = IObench(small_config(), file_size=1 * MB, random_ops=16).run()
    r2 = IObench(small_config(), file_size=1 * MB, random_ops=16).run()
    assert r1.rates == r2.rates


# -- agefs ------------------------------------------------------------------------

def test_extent_report_properties():
    report = ExtentReport(file_size=100, extents=[10, 20, 30])
    assert report.count == 3
    assert report.average == 20
    assert report.largest == 30
    empty = ExtentReport(file_size=0)
    assert empty.average == 0.0 and empty.largest == 0


def test_measure_extents_on_contiguous_file():
    system = System.booted(small_config())
    proc = Proc(system)

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)

    system.run(work())
    report = measure_extents(system, "/f")
    assert report.file_size == 64 * KB
    assert report.count == 1
    assert report.largest == 64 * KB


def test_age_filesystem_reaches_target():
    system = System.booted(small_config())
    survivors = age_filesystem(system, target_utilization=0.5, seed=3,
                               mean_file_kb=16, churn_factor=1.2)
    assert survivors > 0
    sb = system.mount.sb
    free = sb.cs_nbfree * sb.frag + sb.cs_nffree
    usable = sb.total_frags * (100 - sb.minfree) // 100
    used_fraction = 1 - (free - (sb.total_frags - usable)) / usable
    assert used_fraction >= 0.45


def test_age_filesystem_validates():
    system = System.booted(small_config())
    with pytest.raises(ValueError):
        age_filesystem(system, target_utilization=1.5)


# -- musbus ------------------------------------------------------------------------

def test_musbus_small_run():
    result = run_musbus(small_config(), users=2, iterations=2)
    assert result.elapsed > 0
    assert result.throughput > 0
    assert 0 < result.cpu_util < 1


# -- results collection -----------------------------------------------------------

def test_collect_results_small():
    from repro.bench import collect_results

    results = collect_results(configs=["A"], file_size=1 * MB)
    assert "A" in results.figure10
    assert set(results.figure10["A"]) == set(PHASES)
    assert results.figure12["new"] > 0 and results.figure12["old"] > 0
    text = results.to_markdown()
    assert "Figure 10" in text and "Figure 12" in text and "MusBus" in text
