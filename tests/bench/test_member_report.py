"""Per-member pipeline report: idle members must not divide by zero.

Pins the fix: a volume member that served no I/O (a concat tail the
workload never reached, a mirror member the read policy skipped) has an
undefined average I/O size — the report carries None and the renderer
shows ``-`` instead of raising ZeroDivisionError.
"""

from repro.bench.iobench import IObench, format_member_table
from repro.kernel import System, SystemConfig


def test_idle_member_reports_none_not_zero_division():
    config = SystemConfig.config_a().with_(layout="concat:2")
    system = System.booted(config)
    bench = IObench(config)
    report = bench._pipeline_report(system)

    members = report["members"]
    assert len(members) == 2
    # Boot I/O (root inode) lands entirely on the first member; the
    # concat tail is untouched — exactly the zero-count case.
    assert members[1]["requests"] == 0
    assert members[1]["avg_io_bytes"] is None
    assert members[0]["requests"] > 0
    assert members[0]["avg_io_bytes"] == (
        members[0]["bytes"] / members[0]["requests"])


def test_format_member_table_renders_dash_for_idle_member():
    config = SystemConfig.config_a().with_(layout="concat:2")
    system = System.booted(config)
    report = IObench(config)._pipeline_report(system)

    text = format_member_table(report["members"])
    lines = text.splitlines()
    assert len(lines) == 3  # header + two members
    idle_line = next(line for line in lines
                     if line.strip().startswith(report["members"][1]["name"]))
    assert " - " in idle_line or idle_line.rstrip().split()[-2] == "-"


def test_busy_members_still_report_averages():
    config = SystemConfig.config_a().with_(layout="mirror:2")
    bench = IObench(config, file_size=256 * 1024, random_ops=16)
    result = bench.run()
    members = result.pipeline["members"]
    # Mirror writes hit both members: averages defined on each.
    for member in members:
        assert member["requests"] > 0
        assert member["avg_io_bytes"] > 0
    text = format_member_table(members)
    for member, line in zip(members, text.splitlines()[1:]):
        assert f"{member['avg_io_bytes'] / 1024:.1f}K" in line
