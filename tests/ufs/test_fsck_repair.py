"""Tests for fsck repair mode: detect, repair, and come back clean.

Each test injects a specific corruption into the raw bytes of a populated
file system, runs ``fsck(store, repair=True)``, and asserts both that the
damage was detected and that a second, independent ``fsck`` pass is clean.
"""

import pytest

from repro.ufs.fsck import fsck
from repro.ufs.ondisk import (
    DINODE_SIZE, DIRBLKSIZ, Dinode, IFREG, ROOT_INO, Superblock, iter_dirents,
    pack_dirent,
)


@pytest.fixture
def populated(system, proc):
    """A synced file system with a file, a subdirectory, and a file in it."""

    def work():
        yield from proc.mkdir("/d")
        for name in ("/a", "/d/b"):
            fd = yield from proc.creat(name)
            yield from proc.write(fd, b"\x5a" * 12000)
            yield from proc.fsync(fd)
            yield from proc.close(fd)

    system.run(work())
    system.sync()
    store = system.store
    sb = Superblock.unpack(store.read(16, 16))
    assert fsck(store).clean  # sanity: we corrupt from a known-good state
    return store, sb


def frag_sectors(sb):
    return sb.fsize // 512


def read_dinode(store, sb, ino):
    frag, off = sb.inode_location(ino)
    block = store.read(frag * frag_sectors(sb), sb.bsize // 512)
    return Dinode.unpack(block[off:off + DINODE_SIZE])


def write_dinode(store, sb, ino, din):
    frag, off = sb.inode_location(ino)
    block = bytearray(store.read(frag * frag_sectors(sb), sb.bsize // 512))
    block[off:off + DINODE_SIZE] = din.pack()
    store.write(frag * frag_sectors(sb), bytes(block))


def child_ino(store, sb, dir_din, name):
    block = store.read(dir_din.direct[0] * frag_sectors(sb), sb.bsize // 512)
    for _, ino, nm in iter_dirents(block):
        if nm == name:
            return ino
    raise AssertionError(f"no entry {name!r}")


def repair_and_verify(store):
    report = fsck(store, repair=True)
    assert not report.clean  # the injected damage was detected
    assert report.repairs  # and something was actually repaired
    assert fsck(store).clean  # second, independent pass: clean
    return report


def test_repairs_wrong_nlink(populated):
    store, sb = populated
    root = read_dinode(store, sb, ROOT_INO)
    correct = root.nlink
    root.nlink = 7
    write_dinode(store, sb, ROOT_INO, root)
    report = repair_and_verify(store)
    assert any("nlink" in f for f in report.findings)
    assert read_dinode(store, sb, ROOT_INO).nlink == correct


def test_clears_orphan_inode(populated):
    store, sb = populated
    # An allocated inode no directory references: the crash left its dinode
    # durable but its creating dirent never made it out.
    orphan = Dinode(mode=IFREG | 0o644, nlink=1, size=0,
                    direct=(0,) * 12, blocks=0)
    ino = sb.ipg - 2  # a free slot in group 0
    assert not read_dinode(store, sb, ino).is_allocated
    write_dinode(store, sb, ino, orphan)
    report = repair_and_verify(store)
    assert any("references" in f for f in report.findings)
    assert not read_dinode(store, sb, ino).is_allocated


def test_zeroes_dangling_dirent(populated):
    store, sb = populated
    root = read_dinode(store, sb, ROOT_INO)
    addr = root.direct[0] * frag_sectors(sb)
    block = bytearray(store.read(addr, sb.bsize // 512))
    # Overwrite the tail of the first directory chunk with an entry that
    # points at an inode that was never written.
    block[12:DIRBLKSIZ] = pack_dirent(sb.ipg - 3, "ghost", DIRBLKSIZ - 12)
    store.write(addr, bytes(block))
    report = repair_and_verify(store)
    assert any("unallocated" in f for f in report.findings)
    dirblock = store.read(addr, sb.bsize // 512)
    assert all(nm != "ghost" for _, _, nm in iter_dirents(dirblock))


def test_rebuilds_stale_bitmaps_and_counters(populated):
    store, sb = populated
    from repro.ufs.ondisk import CylinderGroup

    header = sb.cg_header_frag(0)
    cg = CylinderGroup.unpack(
        store.read(header * frag_sectors(sb), sb.bsize // 512), sb)
    rel = sb.cg_data_frag(0) - sb.cgbase(0)  # the root directory's block
    for i in range(sb.frag):
        cg.set_frag(rel + i, True)  # lie: mark it free while claimed
    cg.nbfree += 3  # and break the counters for good measure
    store.write(header * frag_sectors(sb), cg.pack(sb))
    sb.cs_nffree += 11
    store.write(16, sb.pack())
    report = repair_and_verify(store)
    assert any("free in bitmap but claimed" in f for f in report.findings)
    assert any("rebuilt bitmaps" in r for r in report.repairs)


def test_repairs_di_blocks_mismatch(populated):
    store, sb = populated
    root = read_dinode(store, sb, ROOT_INO)
    ino = child_ino(store, sb, root, "a")
    din = read_dinode(store, sb, ino)
    correct = din.blocks
    din.blocks = 99
    write_dinode(store, sb, ino, din)
    report = repair_and_verify(store)
    assert any("di_blocks" in f for f in report.findings)
    assert read_dinode(store, sb, ino).blocks == correct


def test_garbage_directory_block_converges(populated):
    """A subdirectory whose data block is torn into garbage: fsck resets
    the block, which orphans the directory and its child; the iterative
    repair loop must chase the cascade down to a clean file system."""
    store, sb = populated
    root = read_dinode(store, sb, ROOT_INO)
    d_ino = child_ino(store, sb, root, "d")
    d = read_dinode(store, sb, d_ino)
    addr = d.direct[0] * frag_sectors(sb)
    store.write(addr, b"\xff" * 512)  # one torn sector of nonsense
    report = repair_and_verify(store)
    assert len(report.repairs) > 1  # the cascade took several repairs
    # The surviving tree no longer references the destroyed directory.
    rootblock = store.read(root.direct[0] * frag_sectors(sb),
                           sb.bsize // 512)
    names = [nm for _, _, nm in iter_dirents(rootblock)]
    assert "a" in names


def test_compound_damage_is_repaired_in_one_call(populated):
    store, sb = populated
    root = read_dinode(store, sb, ROOT_INO)
    # Wrong nlink on the root...
    correct = root.nlink
    root.nlink = 5
    write_dinode(store, sb, ROOT_INO, root)
    # ...plus an orphan...
    write_dinode(store, sb, sb.ipg - 2,
                 Dinode(mode=IFREG | 0o644, nlink=1, size=0,
                        direct=(0,) * 12, blocks=0))
    # ...plus stale superblock totals.
    sb.cs_nifree -= 4
    store.write(16, sb.pack())
    report = repair_and_verify(store)
    assert len(report.findings) >= 3
    assert read_dinode(store, sb, ROOT_INO).nlink == correct
