"""Tests for fsck: it must find the corruptions it claims to find."""

import pytest

from repro.disk import DiskGeometry, DiskStore
from repro.ufs import FsParams, fsck, mkfs
from repro.ufs.ondisk import DINODE_SIZE, Dinode, IFREG, ROOT_INO


@pytest.fixture
def fresh():
    geom = DiskGeometry.uniform(cylinders=100, heads=4, sectors_per_track=32)
    store = DiskStore(geom.total_sectors)
    sb = mkfs(store, geom, FsParams(cpg=16))
    return store, sb


def read_dinode(store, sb, ino):
    frag, off = sb.inode_location(ino)
    block = store.read(frag * 2, 16)
    return Dinode.unpack(block[off:off + DINODE_SIZE]), frag, off


def write_dinode(store, sb, ino, din):
    frag, off = sb.inode_location(ino)
    block = bytearray(store.read(frag * 2, 16))
    block[off:off + DINODE_SIZE] = din.pack()
    store.write(frag * 2, bytes(block))


def test_fresh_fs_is_clean(fresh):
    store, _ = fresh
    assert fsck(store).clean


def test_detects_wrong_nlink(fresh):
    store, sb = fresh
    root, _, _ = read_dinode(store, sb, ROOT_INO)
    root.nlink = 7
    write_dinode(store, sb, ROOT_INO, root)
    report = fsck(store)
    assert any("nlink" in f for f in report.findings)


def test_detects_double_claimed_fragment(fresh):
    store, sb = fresh
    root, _, _ = read_dinode(store, sb, ROOT_INO)
    # Create a bogus file inode claiming the root directory's block.
    bogus = Dinode(mode=IFREG | 0o644, nlink=0, size=sb.bsize,
                   direct=(root.direct[0],) + (0,) * 11, blocks=sb.frag)
    write_dinode(store, sb, 5, bogus)
    report = fsck(store)
    assert any("claimed by inodes" in f for f in report.findings)


def test_detects_block_leak(fresh):
    store, sb = fresh
    # Mark a data fragment allocated in the bitmap without any claimant.
    from repro.ufs.ondisk import CylinderGroup

    header = sb.cg_header_frag(0)
    cg = CylinderGroup.unpack(store.read(header * 2, 16), sb)
    victim = sb.cg_data_frag(0) - sb.cgbase(0) + sb.frag  # after root block
    for i in range(sb.frag):
        cg.set_frag(victim + i, False)
    cg.nbfree -= 1
    store.write(header * 2, cg.pack(sb))
    report = fsck(store)
    assert any("leak" in f for f in report.findings)


def test_detects_bitmap_free_but_claimed(fresh):
    store, sb = fresh
    from repro.ufs.ondisk import CylinderGroup

    header = sb.cg_header_frag(0)
    cg = CylinderGroup.unpack(store.read(header * 2, 16), sb)
    rel = sb.cg_data_frag(0) - sb.cgbase(0)  # the root block
    for i in range(sb.frag):
        cg.set_frag(rel + i, True)
    cg.nbfree += 1
    store.write(header * 2, cg.pack(sb))
    report = fsck(store)
    assert any("free in bitmap but claimed" in f for f in report.findings)


def test_detects_bad_counter_totals(fresh):
    store, sb = fresh
    sb.cs_nbfree += 5
    store.write(16, sb.pack())
    report = fsck(store)
    assert any("superblock nbfree" in f for f in report.findings)


def test_detects_entry_to_unallocated_inode(fresh):
    store, sb = fresh
    root, _, _ = read_dinode(store, sb, ROOT_INO)
    dirblock = bytearray(store.read(root.direct[0] * 2, 16))
    # Point '..' slot area at a new bogus entry: overwrite '..' name area
    # with an entry for an unallocated inode by editing the second dirent.
    from repro.ufs.ondisk import pack_dirent, DIRBLKSIZ

    dirblock[12:DIRBLKSIZ] = pack_dirent(99, "ghost", DIRBLKSIZ - 12)
    store.write(root.direct[0] * 2, bytes(dirblock))
    report = fsck(store)
    assert any("unallocated" in f for f in report.findings)


def test_detects_blocks_count_mismatch(fresh):
    store, sb = fresh
    root, _, _ = read_dinode(store, sb, ROOT_INO)
    root.blocks = 99
    write_dinode(store, sb, ROOT_INO, root)
    report = fsck(store)
    assert any("di_blocks" in f for f in report.findings)


def test_detects_out_of_range_pointer(fresh):
    store, sb = fresh
    bogus = Dinode(mode=IFREG | 0o644, nlink=0, size=sb.bsize,
                   direct=(sb.total_frags + 100,) + (0,) * 11,
                   blocks=sb.frag)
    write_dinode(store, sb, 5, bogus)
    report = fsck(store)
    assert any("out of range" in f for f in report.findings)


def test_report_str_format(fresh):
    store, _ = fresh
    text = str(fsck(store))
    assert "CLEAN" in text
