"""Tests for on-disk structure packing."""

import pytest

from repro.errors import CorruptionError
from repro.ufs.ondisk import (
    CG_MAGIC, DINODE_SIZE, DIRBLKSIZ, SUPERBLOCK_MAGIC, CylinderGroup, Dinode,
    Dirent, Superblock, empty_dirblock, iter_dirents, pack_dirent,
)


def make_sb(**overrides):
    values = dict(
        magic=SUPERBLOCK_MAGIC, bsize=8192, fsize=1024, nsect=32, ntrak=4,
        ncyl=200, cpg=16, fpg=1024, ipg=256, ncg=6, minfree=10, maxcontig=7,
        rotdelay_ms=0.0, rps=60, total_frags=6144,
        cs_ndir=1, cs_nbfree=700, cs_nifree=1500, cs_nffree=5,
    )
    values.update(overrides)
    return Superblock(**values)


def test_superblock_round_trip():
    sb = make_sb(rotdelay_ms=4.0)
    data = sb.pack()
    assert len(data) == sb.bsize
    sb2 = Superblock.unpack(data)
    assert sb2 == sb


def test_superblock_bad_magic_rejected():
    data = make_sb().pack()
    with pytest.raises(CorruptionError):
        Superblock.unpack(b"\x00" * len(data))


def test_superblock_short_data_rejected():
    with pytest.raises(CorruptionError):
        Superblock.unpack(b"\x12\x34")


def test_superblock_layout_is_consistent():
    sb = make_sb()
    assert sb.cgbase(0) == 0
    assert sb.cg_header_frag(0) == 16  # past boot + superblock
    assert sb.cg_header_frag(1) == sb.fpg
    # inode area: ipg * 128 bytes = 4 blocks of 8 KB
    assert sb.inode_blocks_per_group == 4
    assert sb.cg_data_frag(1) == sb.fpg + 8 + 4 * 8
    assert sb.cg_of_frag(sb.fpg + 5) == 1
    with pytest.raises(ValueError):
        sb.cgbase(6)


def test_inode_location():
    sb = make_sb()
    frag, off = sb.inode_location(0)
    assert frag == sb.cg_inode_frag(0) and off == 0
    frag2, off2 = sb.inode_location(63)
    assert frag2 == frag and off2 == 63 * DINODE_SIZE
    frag3, off3 = sb.inode_location(64)  # next inode block
    assert frag3 == frag + 8 and off3 == 0
    frag4, _ = sb.inode_location(sb.ipg)  # first inode of group 1
    assert frag4 == sb.cg_inode_frag(1)
    with pytest.raises(ValueError):
        sb.inode_location(sb.ncg * sb.ipg)


def test_dinode_round_trip():
    din = Dinode(mode=0o100644, nlink=1, size=123456,
                 direct=tuple(range(100, 112)), indirect=500, dindirect=600,
                 blocks=128, gen=7)
    packed = din.pack()
    assert len(packed) == DINODE_SIZE
    assert Dinode.unpack(packed) == din


def test_dinode_direct_count_enforced():
    with pytest.raises(ValueError):
        Dinode(direct=(1, 2, 3))


def test_cylinder_group_round_trip():
    sb = make_sb()
    cg = CylinderGroup(
        magic=CG_MAGIC, cgx=2, ndblk=1024, nbfree=100, nffree=3, nifree=200,
        ndir=5, frag_rotor=64, inode_rotor=10,
        frag_bitmap=bytearray(128), inode_bitmap=bytearray(32),
    )
    cg.set_frag(100, True)
    cg.set_inode(7, True)
    data = cg.pack(sb)
    assert len(data) == sb.bsize
    cg2 = CylinderGroup.unpack(data, sb)
    assert cg2.frag_is_free(100) and not cg2.frag_is_free(99)
    assert cg2.inode_is_free(7) and not cg2.inode_is_free(8)
    assert cg2.nbfree == 100 and cg2.ndir == 5


def test_cg_bad_magic():
    sb = make_sb()
    with pytest.raises(CorruptionError):
        CylinderGroup.unpack(bytes(sb.bsize), sb)


def test_block_is_free_requires_all_frags():
    cg = CylinderGroup(
        magic=CG_MAGIC, cgx=0, ndblk=64, nbfree=0, nffree=0, nifree=0,
        ndir=0, frag_rotor=0, inode_rotor=0,
        frag_bitmap=bytearray(8), inode_bitmap=bytearray(1),
    )
    for i in range(8):
        cg.set_frag(i, True)
    assert cg.block_is_free(0, 8)
    cg.set_frag(3, False)
    assert not cg.block_is_free(0, 8)


def test_dirent_validation():
    with pytest.raises(ValueError):
        Dirent(1, "")
    with pytest.raises(ValueError):
        Dirent(1, "a" * 60)
    with pytest.raises(ValueError):
        Dirent(1, "a/b")
    with pytest.raises(ValueError):
        Dirent(1, "a\x00b")
    assert Dirent(1, "name").reclen_needed == 12  # 8 header + 4 + pad


def test_pack_and_iter_dirents():
    block = bytearray(empty_dirblock(8192))
    block[0:16] = pack_dirent(7, "hello", 16)
    block[16:DIRBLKSIZ] = pack_dirent(9, "world", DIRBLKSIZ - 16)
    entries = iter_dirents(bytes(block))
    assert entries == [(0, 7, "hello"), (16, 9, "world")]


def test_iter_dirents_rejects_bad_reclen():
    block = bytearray(empty_dirblock(8192))
    block[4:6] = (3).to_bytes(2, "little")  # reclen 3: too small, unaligned
    with pytest.raises(CorruptionError):
        iter_dirents(bytes(block))


def test_pack_dirent_too_small_reclen():
    with pytest.raises(ValueError):
        pack_dirent(1, "longname", 8)


def test_empty_dirblock_parses_as_no_entries():
    assert iter_dirents(empty_dirblock(8192)) == []
