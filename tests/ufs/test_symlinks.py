"""Tests for symbolic links, including the fast-symlink optimization the
paper cites as prior art for data-in-the-inode."""

import pytest

from repro.errors import FilesystemError, InvalidArgumentError
from repro.ufs import fsck, ufsdump, restore
from repro.kernel import Proc


def test_fast_symlink_stored_in_inode(system, proc):
    def work():
        fd = yield from proc.creat("/real")
        yield from proc.write(fd, b"payload")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.symlink("/real", "/alias")
        return (yield from proc.readlink("/alias"))

    assert system.run(work()) == "/real"
    vn = system.run(system.mount.namei("/alias", follow=False))
    assert vn.inode.is_symlink
    assert vn.inode.blocks == 0  # no data blocks: target is in the dinode
    assert system.mount.stats["fast_symlinks"] == 1
    system.sync()
    assert fsck(system.store).clean


def test_namei_follows_symlink(system, proc):
    def work():
        fd = yield from proc.creat("/target")
        yield from proc.write(fd, b"followed!")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.symlink("/target", "/link")
        fd = yield from proc.open("/link")
        return (yield from proc.read(fd, 100))

    assert system.run(work()) == b"followed!"


def test_symlink_through_directories(system, proc):
    def work():
        yield from proc.mkdir("/real_dir")
        fd = yield from proc.creat("/real_dir/file")
        yield from proc.write(fd, b"deep")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.symlink("/real_dir", "/shortcut")
        fd = yield from proc.open("/shortcut/file")
        return (yield from proc.read(fd, 10))

    assert system.run(work()) == b"deep"


def test_slow_symlink_uses_data_block(system, proc):
    # Longer than the 55-byte fast capacity (multiple short components).
    target = "/" + "/".join(["dir%02d" % i for i in range(20)])

    def work():
        yield from proc.symlink(target, "/long")
        return (yield from proc.readlink("/long"))

    assert system.run(work()) == target
    vn = system.run(system.mount.namei("/long", follow=False))
    assert vn.inode.blocks > 0
    assert system.mount.stats["slow_symlinks"] == 1
    system.sync()
    assert fsck(system.store).clean


def test_symlink_loop_detected(system, proc):
    def work():
        yield from proc.symlink("/b", "/a")
        yield from proc.symlink("/a", "/b")
        yield from proc.open("/a")

    with pytest.raises(FilesystemError, match="symbolic links"):
        system.run(work())


def test_unlink_symlink_leaves_target(system, proc):
    def work():
        fd = yield from proc.creat("/kept")
        yield from proc.write(fd, b"still here")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.symlink("/kept", "/gone")
        yield from proc.unlink("/gone")
        fd = yield from proc.open("/kept")
        return (yield from proc.read(fd, 100))

    assert system.run(work()) == b"still here"
    system.sync()
    assert fsck(system.store).clean


def test_unlink_slow_symlink_frees_block(system, proc):
    sb = system.mount.sb
    target = "/" + "/".join(["sub%02d" % i for i in range(18)])

    def work():
        free0 = (sb.cs_nbfree, sb.cs_nffree)
        yield from proc.symlink(target, "/long")
        yield from proc.unlink("/long")
        return free0

    free0 = system.run(work())
    assert (sb.cs_nbfree, sb.cs_nffree) == free0
    system.sync()
    assert fsck(system.store).clean


def test_symlink_validation(system, proc):
    with pytest.raises(InvalidArgumentError):
        system.run(proc.symlink("relative/target", "/l"))
    with pytest.raises(InvalidArgumentError):
        system.run(proc.symlink("", "/l"))


def test_dump_restore_preserves_symlinks(system, proc):
    from .conftest import make_system

    def work():
        fd = yield from proc.creat("/data")
        yield from proc.write(fd, b"bytes")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.symlink("/data", "/ln")

    system.run(work())
    system.sync()
    archive = ufsdump(system.store)
    assert archive.find("/ln").kind == "symlink"

    target_system = make_system("D")
    tproc = Proc(target_system)
    target_system.run(restore(tproc, archive))

    def verify():
        fd = yield from tproc.open("/ln")  # follows the restored link
        return (yield from tproc.read(fd, 10))

    assert target_system.run(verify()) == b"bytes"
