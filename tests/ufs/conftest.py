"""Shared UFS test fixtures: a small, fast system."""

import pytest

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig


def small_geometry():
    # ~13 MB: 200 cyl x 4 heads x 32 spt x 512 B
    return DiskGeometry.uniform(cylinders=200, heads=4, sectors_per_track=32)


def make_system(config_name="A", **overrides):
    cfg = SystemConfig.by_name(config_name).with_(
        geometry=small_geometry(), **overrides
    )
    return System.booted(cfg)


@pytest.fixture
def system():
    return make_system("A")


@pytest.fixture
def proc(system):
    return Proc(system)


@pytest.fixture
def old_system():
    return make_system("D")
