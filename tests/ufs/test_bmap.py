"""Tests for bmap: translation, the contiguous-length extension, holes,
indirect blocks, truncation."""

import pytest

from repro.errors import InvalidArgumentError
from repro.ufs import bmap
from repro.ufs.inode import Inode
from repro.ufs.ondisk import Dinode, IFREG, NDADDR


@pytest.fixture
def mount(system):
    return system.mount


@pytest.fixture
def ip(mount):
    inode = Inode(mount, 10, Dinode(mode=IFREG, nlink=1))
    mount._icache[10] = inode
    return inode


def alloc_lbns(system, mount, ip, lbns, frags=None):
    frags = frags if frags is not None else mount.sb.frag
    addrs = {}
    for lbn in lbns:
        addrs[lbn] = system.run(bmap.bmap_alloc(mount, ip, lbn, frags))
    return addrs


def test_hole_translates_to_zero(system, mount, ip):
    addr, length = system.run(bmap.bmap_read(mount, ip, 0, 4))
    assert addr == bmap.HOLE
    assert length == 1


def test_alloc_then_read_back(system, mount, ip):
    ip.size = 3 * mount.sb.bsize
    addrs = alloc_lbns(system, mount, ip, [0, 1, 2])
    for lbn in (0, 1, 2):
        addr, _ = system.run(bmap.bmap_read(mount, ip, lbn, 1))
        assert addr == addrs[lbn]


def test_contiguous_length_returned(system, mount, ip):
    """The paper's modification: bmap returns how far the file continues
    contiguously, capped at maxcontig."""
    ip.size = 8 * mount.sb.bsize
    alloc_lbns(system, mount, ip, range(8))
    addr, length = system.run(bmap.bmap_read(mount, ip, 0, 15))
    assert length == 8
    addr, length = system.run(bmap.bmap_read(mount, ip, 0, 4))
    assert length == 4  # capped at maxcontig
    addr, length = system.run(bmap.bmap_read(mount, ip, 5, 15))
    assert length == 3  # bounded by EOF


def test_contig_broken_by_gap(system, mount, ip):
    """A fragmented file reports shorter runs — clustering adapts."""
    sb = mount.sb
    ip.size = 4 * sb.bsize
    a0 = system.run(bmap.bmap_alloc(mount, ip, 0, sb.frag))
    a1 = system.run(bmap.bmap_alloc(mount, ip, 1, sb.frag))
    # Force a discontiguity: free lbn 1's block, burn it, reallocate.
    mount.allocator.free_frags(ip, a1, sb.frag)
    decoy = Inode(mount, 11, Dinode(mode=IFREG, nlink=1))
    system.run(mount.allocator.alloc_block(decoy, a1))
    yielded = system.run(bmap.set_pointer(mount, ip, 1, 0))
    a1b = system.run(bmap.bmap_alloc(mount, ip, 1, sb.frag))
    assert a1b != a0 + sb.frag
    addr, length = system.run(bmap.bmap_read(mount, ip, 0, 15))
    assert (addr, length) == (a0, 1)


def test_indirect_blocks(system, mount, ip):
    sb = mount.sb
    lbn = NDADDR + 3
    ip.size = (lbn + 1) * sb.bsize
    addr = system.run(bmap.bmap_alloc(mount, ip, lbn, sb.frag))
    assert ip.indirect != bmap.HOLE
    got, _ = system.run(bmap.bmap_read(mount, ip, lbn, 1))
    assert got == addr
    # Neighbouring indirect lbns are still holes.
    got2, _ = system.run(bmap.bmap_read(mount, ip, NDADDR, 1))
    assert got2 == bmap.HOLE


def test_double_indirect_blocks(system, mount, ip):
    sb = mount.sb
    n = bmap.nindir(sb.bsize)
    lbn = NDADDR + n + 5
    ip.size = (lbn + 1) * sb.bsize
    addr = system.run(bmap.bmap_alloc(mount, ip, lbn, sb.frag))
    assert ip.dindirect != bmap.HOLE
    got, _ = system.run(bmap.bmap_read(mount, ip, lbn, 1))
    assert got == addr


def test_bmap_cache_speeds_repeat_translations(system, mount, ip):
    from repro.core import BmapCache

    ip.bmap_cache = BmapCache()
    ip.size = 4 * mount.sb.bsize
    alloc_lbns(system, mount, ip, range(4))
    system.run(bmap.bmap_read(mount, ip, 0, 4))
    assert ip.bmap_cache.misses >= 1
    addr1, _ = system.run(bmap.bmap_read(mount, ip, 2, 2))
    assert ip.bmap_cache.hits >= 1
    addr0, _ = system.run(bmap.bmap_read(mount, ip, 0, 1))
    assert addr1 == addr0 + 2 * mount.sb.frag


def test_bmap_cache_invalidated_on_pointer_change(system, mount, ip):
    from repro.core import BmapCache

    ip.bmap_cache = BmapCache()
    ip.size = 2 * mount.sb.bsize
    alloc_lbns(system, mount, ip, [0])
    system.run(bmap.bmap_read(mount, ip, 0, 1))
    assert len(ip.bmap_cache) == 1
    system.run(bmap.bmap_alloc(mount, ip, 1, mount.sb.frag))
    assert len(ip.bmap_cache) == 0


def test_frag_tail_growth_in_place(system, mount, ip):
    """A small file's tail grows fragment by fragment."""
    sb = mount.sb
    # Contract: bmap_alloc is called before ip.size is raised (as rdwr
    # does), so blksize() still reflects the old tail length.
    addr = system.run(bmap.bmap_alloc(mount, ip, 0, 2))
    ip.size = 2 * sb.fsize  # 2 KB
    assert ip.blocks == 2
    addr2 = system.run(bmap.bmap_alloc(mount, ip, 0, 5))
    ip.size = 5 * sb.fsize
    assert ip.blocks == 5
    assert addr2 == addr  # extended in place on a fresh fs


def test_frags_rejected_beyond_direct_blocks(system, mount, ip):
    """Indirect blocks always hold full blocks."""
    sb = mount.sb
    lbn = NDADDR + 1
    ip.size = (lbn + 1) * sb.bsize
    system.run(bmap.bmap_alloc(mount, ip, lbn, 2))  # silently full block
    got, _ = system.run(bmap.bmap_read(mount, ip, lbn, 1))
    assert got % sb.frag == 0
    assert ip.blocks >= sb.frag


def test_truncate_frees_everything(system, mount, ip):
    sb = mount.sb
    free_before = (sb.cs_nbfree, sb.cs_nffree)
    lbns = list(range(3)) + [NDADDR + 1, NDADDR + bmap.nindir(sb.bsize) + 1]
    ip.size = (max(lbns) + 1) * sb.bsize
    alloc_lbns(system, mount, ip, lbns)
    assert ip.blocks > 0
    system.run(bmap.truncate_blocks(mount, ip))
    assert ip.blocks == 0
    assert ip.size == 0
    assert ip.indirect == bmap.HOLE and ip.dindirect == bmap.HOLE
    assert (sb.cs_nbfree, sb.cs_nffree) == free_before


def test_validation(system, mount, ip):
    with pytest.raises(InvalidArgumentError):
        system.run(bmap.bmap_read(mount, ip, -1, 1))
    with pytest.raises(InvalidArgumentError):
        system.run(bmap.bmap_read(mount, ip, 0, 0))
    with pytest.raises(InvalidArgumentError):
        system.run(bmap.bmap_alloc(mount, ip, 0, 0))
    huge = bmap.max_lbn(mount.sb.bsize)
    with pytest.raises(InvalidArgumentError):
        system.run(bmap.bmap_read(mount, ip, huge, 1))
