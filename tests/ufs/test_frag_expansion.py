"""Regression tests for fragment-tail expansion.

Growing a file past a fragment-tail block must expand that block to a full
block first (possibly moving it), preserving its contents — the bug class
hypothesis found: stale 1-fragment tails overlapping later allocations.
"""

from repro.ufs import fsck
from repro.units import KB


def test_grow_past_frag_tail_preserves_data(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"A" * 100)  # 1-fragment tail
        yield from proc.pwrite(fd, b"B" * 100, 8192)  # extends past block 0
        yield from proc.fsync(fd)
        yield from proc.lseek(fd, 0)
        return (yield from proc.read(fd, 9000))

    data = system.run(work())
    assert data[:100] == b"A" * 100
    assert data[100:8192] == bytes(8092)
    assert data[8192:8292] == b"B" * 100
    # Block 0 is now a full block: 8 + 1 frags + no stale overlap.
    vn = system.run(system.mount.namei("/f"))
    assert vn.inode.blocks == 9
    assert system.mount.stats["tail_expansions"] == 1
    system.sync()
    assert fsck(system.store).clean


def test_grow_tail_that_must_move(system, proc):
    """Force the in-place extension to fail so the run is relocated."""
    from repro.ufs.inode import Inode
    from repro.ufs.ondisk import Dinode, IFREG

    mount = system.mount
    decoy = Inode(mount, 99, Dinode(mode=IFREG, nlink=1))

    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"A" * 1500)  # 2-fragment tail
        # Occupy the fragments right after the tail run.
        from repro.ufs import bmap

        vn = yield from mount.namei("/f")
        addr = yield from bmap.get_pointer(mount, vn.inode, 0)
        yield from mount.allocator.alloc_frags(decoy, addr + 2, 2)
        # Now grow past block 0: the tail must move to a new full block.
        yield from proc.pwrite(fd, b"B" * 10, 20000)
        yield from proc.fsync(fd)
        yield from proc.lseek(fd, 0)
        data = yield from proc.read(fd, 20010)
        new_addr = yield from bmap.get_pointer(mount, vn.inode, 0)
        return data, addr, new_addr

    data, old_addr, new_addr = system.run(work())
    assert new_addr != old_addr  # the run moved
    assert data[:1500] == b"A" * 1500
    assert data[20000:] == b"B" * 10


def test_sparse_growth_leaves_holes_alone(system, proc):
    """A hole at the old tail block must not be materialised by growth."""
    def work():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"x", 0)
        yield from proc.pwrite(fd, b"y", 50 * KB)   # block 6, holes between
        yield from proc.pwrite(fd, b"z", 100 * KB)  # grows past block 6
        yield from proc.fsync(fd)
        return fd

    system.run(work())
    vn = system.run(system.mount.namei("/sparse"))
    # Blocks 1-5 and 7-11 are holes; only 0, 6, 12 are allocated.  Block 0
    # and 6 were expanded to full blocks when the file grew past them.
    from repro.ufs import bmap

    def pointers():
        out = []
        for lbn in range(13):
            out.append((yield from bmap.get_pointer(system.mount, vn.inode, lbn)))
        return out

    ptrs = system.run(pointers())
    allocated = [lbn for lbn, p in enumerate(ptrs) if p != 0]
    assert allocated == [0, 6, 12]
    system.sync()
    assert fsck(system.store).clean


def test_many_small_appends_round_trip(system, proc):
    """Append in odd sizes across several block boundaries."""
    pieces = [b"%d-" % i * (i + 1) for i in range(40)]

    def work():
        fd = yield from proc.creat("/appends")
        for piece in pieces:
            yield from proc.write(fd, piece)
        yield from proc.fsync(fd)
        yield from proc.lseek(fd, 0)
        return (yield from proc.read(fd, 1 << 20))

    data = system.run(work())
    assert data == b"".join(pieces)
    system.sync()
    assert fsck(system.store).clean, str(fsck(system.store))
