"""Tests for FsParams and mkfs."""

import pytest

from repro.disk import DiskGeometry, DiskStore
from repro.errors import InvalidArgumentError
from repro.ufs import FsParams, fsck, mkfs
from repro.ufs.ondisk import Dinode, ROOT_INO, Superblock, iter_dirents
from repro.units import KB


def test_params_validation():
    with pytest.raises(ValueError):
        FsParams(bsize=8192, fsize=512)  # ratio 16
    with pytest.raises(ValueError):
        FsParams(fsize=700)
    with pytest.raises(ValueError):
        FsParams(cpg=0)
    with pytest.raises(ValueError):
        FsParams(minfree_pct=60)
    with pytest.raises(ValueError):
        FsParams(rotdelay_ms=-1)
    with pytest.raises(ValueError):
        FsParams(maxcontig=0)


def test_params_defaults_match_classic_tuning():
    params = FsParams()
    assert params.bsize == 8 * KB
    assert params.frag == 8
    assert params.rotdelay_ms == 4.0
    assert params.maxcontig == 1


def test_clustered_params():
    params = FsParams.clustered(120 * KB)
    assert params.rotdelay_ms == 0.0
    assert params.maxcontig == 15
    with pytest.raises(ValueError):
        FsParams.clustered(100)  # not a block multiple


def test_fsb_sector_conversion():
    params = FsParams()
    assert params.fsb_to_sector(10) == 20
    assert params.sector_to_fsb(21) == 10


@pytest.fixture
def small_disk():
    geom = DiskGeometry.uniform(cylinders=100, heads=4, sectors_per_track=32)
    return geom, DiskStore(geom.total_sectors)


def test_mkfs_writes_valid_superblock(small_disk):
    geom, store = small_disk
    sb = mkfs(store, geom)
    reread = Superblock.unpack(store.read(16, 16))
    assert reread == sb
    assert sb.ncg >= 1
    assert sb.total_frags <= geom.total_sectors // 2


def test_mkfs_root_directory(small_disk):
    geom, store = small_disk
    sb = mkfs(store, geom)
    frag, off = sb.inode_location(ROOT_INO)
    block = store.read(frag * 2, 16)
    root = Dinode.unpack(block[off:off + 128])
    assert root.is_dir
    assert root.nlink == 2
    assert root.size == sb.bsize
    dirblock = store.read(root.direct[0] * 2, 16)
    names = [name for _, _, name in iter_dirents(dirblock)]
    assert names == [".", ".."]


def test_mkfs_is_fsck_clean(small_disk):
    geom, store = small_disk
    mkfs(store, geom)
    report = fsck(store)
    assert report.clean, str(report)


def test_mkfs_fsck_clean_with_clustered_params(small_disk):
    geom, store = small_disk
    mkfs(store, geom, FsParams.clustered(56 * KB))
    assert fsck(store).clean


def test_mkfs_counters_account_for_metadata(small_disk):
    geom, store = small_disk
    sb = mkfs(store, geom)
    # All free space is in the data areas; group 0 lost the root block.
    per_group_data = (sb.cg_end_frag(1) - sb.cg_data_frag(1)) // sb.frag
    expected = per_group_data * sb.ncg - 1
    # Group 0 has two fewer metadata-free blocks (boot + superblock).
    expected -= 2
    assert sb.cs_nbfree == expected


def test_mkfs_too_small_disk_rejected():
    geom = DiskGeometry.uniform(cylinders=2, heads=1, sectors_per_track=16)
    store = DiskStore(geom.total_sectors)
    with pytest.raises(InvalidArgumentError):
        mkfs(store, geom)


def test_mkfs_zoned_geometry():
    geom = DiskGeometry.zoned_520mb()
    store = DiskStore(geom.total_sectors)
    sb = mkfs(store, geom, FsParams(cpg=32))
    assert fsck(store).clean
    assert sb.ncg > 1
