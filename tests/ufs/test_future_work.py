"""Tests for the future-work extensions wired through the UFS paths:
UFS_HOLE bmap bypass, data-in-the-inode, random clustering, B_ORDER."""

from repro.kernel import Proc
from repro.units import KB

from .conftest import make_system


def tuned_system(**tuning_changes):
    system = make_system("A")
    # Rebuild with modified tuning.
    from repro.kernel import SystemConfig, System
    from .conftest import small_geometry

    cfg = SystemConfig.config_a().with_(geometry=small_geometry())
    cfg = cfg.with_(tuning=cfg.tuning.with_(**tuning_changes))
    return System.booted(cfg)


def write_file(system, proc, path, data):
    def work():
        fd = yield from proc.creat(path)
        yield from proc.write(fd, data)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())


def read_file(system, proc, path, count=1 << 20, offset=0):
    def work():
        fd = yield from proc.open(path)
        data = yield from proc.pread(fd, count, offset)
        yield from proc.close(fd)
        return data

    return system.run(work())


# -- UFS_HOLE bypass ----------------------------------------------------------

def test_hole_bypass_skips_bmap_on_cached_reads():
    system = tuned_system(hole_check_bypass=True)
    proc = Proc(system)
    data = bytes(64 * KB)
    write_file(system, proc, "/dense", data)
    read_file(system, proc, "/dense")  # populate the cache
    system.mount.stats.reset()
    read_file(system, proc, "/dense")  # fully cached now
    assert system.mount.stats["bmap_bypassed"] >= 7


def test_hole_bypass_disabled_for_sparse_files():
    system = tuned_system(hole_check_bypass=True)
    proc = Proc(system)

    def work():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"end", 64 * KB)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    vn = system.run(system.mount.namei("/sparse"))
    assert vn.inode.maybe_holes
    read_file(system, proc, "/sparse")
    system.mount.stats.reset()
    data = read_file(system, proc, "/sparse")
    assert system.mount.stats["bmap_bypassed"] == 0
    assert data == bytes(64 * KB) + b"end"


def test_holes_flag_recomputed_from_di_blocks_on_load():
    """A remount proves the no-holes check uses only on-disk facts."""
    system = tuned_system(hole_check_bypass=True)
    proc = Proc(system)
    write_file(system, proc, "/dense", bytes(40 * KB))

    def sparse():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"x", 64 * KB)
        yield from proc.fsync(fd)

    system.run(sparse())
    system.sync()

    from repro.ufs.mount import UfsMount

    mount2 = UfsMount(system.engine, system.cpu, system.driver,
                      system.pagecache, tuning=system.config.tuning,
                      name="fresh")

    def reload():
        yield from mount2.activate()
        dense = yield from mount2.namei("/dense")
        sparse_vn = yield from mount2.namei("/sparse")
        return dense.inode.maybe_holes, sparse_vn.inode.maybe_holes

    dense_holes, sparse_holes = system.run(reload())
    assert dense_holes is False
    assert sparse_holes is True


# -- data in the inode -----------------------------------------------------------

def test_inline_cache_serves_small_file_reads():
    system = tuned_system(inode_data_cache=True)
    proc = Proc(system)
    data = b"config file contents\n" * 30  # 630 bytes
    write_file(system, proc, "/etc.conf", data)
    assert read_file(system, proc, "/etc.conf") == data  # populates
    system.mount.stats.reset()
    for _ in range(5):
        assert read_file(system, proc, "/etc.conf") == data
    assert system.mount.stats["inline_reads"] == 5


def test_inline_cache_partial_reads_served(offset=100):
    system = tuned_system(inode_data_cache=True)
    proc = Proc(system)
    data = bytes(range(250)) * 8  # 2000 bytes
    write_file(system, proc, "/f", data)
    read_file(system, proc, "/f")  # populate
    got = read_file(system, proc, "/f", count=50, offset=offset)
    assert got == data[offset:offset + 50]


def test_inline_cache_invalidated_by_write():
    system = tuned_system(inode_data_cache=True)
    proc = Proc(system)
    write_file(system, proc, "/f", b"old contents")
    read_file(system, proc, "/f")  # populate

    def overwrite():
        fd = yield from proc.open("/f")
        yield from proc.pwrite(fd, b"NEW", 0)
        yield from proc.close(fd)

    system.run(overwrite())
    vn = system.run(system.mount.namei("/f"))
    assert vn.inode.inline_data is None
    assert read_file(system, proc, "/f") == b"NEW contents"


def test_inline_cache_skips_big_files():
    system = tuned_system(inode_data_cache=True)
    proc = Proc(system)
    data = bytes(5 * KB)  # over the 2 KB inline limit
    write_file(system, proc, "/big", data)
    read_file(system, proc, "/big")
    vn = system.run(system.mount.namei("/big"))
    assert vn.inode.inline_data is None
    system.mount.stats.reset()
    read_file(system, proc, "/big")
    assert system.mount.stats["inline_reads"] == 0


def test_inline_cache_off_by_default(system):
    proc = Proc(system)
    write_file(system, proc, "/f", b"tiny")
    read_file(system, proc, "/f")
    vn = system.run(system.mount.namei("/f"))
    assert vn.inode.inline_data is None
