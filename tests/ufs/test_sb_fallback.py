"""Metadata replica fallback: a rotted primary superblock or cylinder-group
header must not make the file system unmountable."""

import random

import pytest

from repro.errors import CorruptionError
from repro.faults import corrupt_frag
from repro.kernel import Proc, System
from repro.ufs.fsck import fsck

from tests.integrity.conftest import checksum_config

KB = 1024


def _built_store(payload=b"\x42" * (8 * KB)):
    system = System.booted(checksum_config())
    proc = Proc(system)

    def gen():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, payload)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(gen())
    system.sync()
    return system.store, system.config, payload


def _corrupt_sb(store):
    from repro.integrity import IntegrityRegion

    region = IntegrityRegion.find(store)
    sb_frag = region.frags_per_block  # the superblock's first fragment
    corrupt_frag(store, region, sb_frag, "bitrot", random.Random(0))
    return region


def test_mount_falls_back_to_sb_replica():
    store, cfg, payload = _built_store()
    _corrupt_sb(store)

    survivor = System.remounted(store, cfg)
    mount = survivor.mount
    assert mount.sb_recovered
    assert mount.stats["sb_replica_mounts"] == 1

    # The recovered system serves files normally.
    proc = Proc(survivor)

    def read():
        fd = yield from proc.open("/f")
        data = yield from proc.read(fd, len(payload))
        yield from proc.close(fd)
        return data

    assert survivor.run(read()) == payload

    # ... and the first sync self-heals the primary copy.
    survivor.sync()
    region = survivor.disk.integrity
    raw = store.read(16, region.block_sectors)
    assert region.verify_range(16, raw) == []
    resurvivor = System.remounted(store, cfg)
    assert not resurvivor.mount.sb_recovered


def test_fsck_repairs_the_primary_superblock():
    store, cfg, _ = _built_store()
    _corrupt_sb(store)

    report = fsck(store)
    assert not report.clean
    assert any("superblock" in f for f in report.findings)

    repaired = fsck(store, repair=True)
    assert any("superblock" in r for r in repaired.repairs)
    assert fsck(store).clean
    # The repaired primary mounts without touching the replica.
    survivor = System.remounted(store, cfg)
    assert not survivor.mount.sb_recovered


def test_mount_falls_back_to_cg_replica_and_self_heals():
    store, cfg, payload = _built_store()
    from repro.integrity import IntegrityRegion

    region = IntegrityRegion.find(store)
    frag = region.sb.cg_header_frag(1)
    corrupt_frag(store, region, frag, "zero", random.Random(1))

    survivor = System.remounted(store, cfg)
    mount = survivor.mount
    assert not mount.sb_recovered
    assert mount.stats["cg_replica_mounts"] == 1
    assert 1 in mount._dirty_cgs  # queued for the self-healing rewrite

    survivor.sync()
    region2 = survivor.disk.integrity
    fs = region2.frag_sectors
    raw = store.read(frag * fs, region2.block_sectors)
    assert region2.verify_range(frag * fs, raw) == []
    assert fsck(store).clean


def test_unrecoverable_without_region():
    # Without checksums there is no replica: a mangled superblock is fatal.
    store, cfg, _ = _built_store()
    cfg_plain = checksum_config(checksums=False)
    plain = System.booted(cfg_plain)
    raw = bytearray(plain.store.read(16, 16))
    raw[4] ^= 0xFF  # mangle a field the unpacker validates
    plain.store.write(16, bytes(raw))
    with pytest.raises(CorruptionError):
        System.remounted(plain.store, cfg_plain)
