"""Tests for the metadata buffer cache."""

import pytest

from repro.cpu import CostTable, Cpu
from repro.disk import DiskDriver, DiskGeometry, RotationalDisk
from repro.sim import Engine
from repro.ufs.metacache import MetaCache


@pytest.fixture
def stack():
    engine = Engine()
    geom = DiskGeometry.uniform(cylinders=50, heads=2, sectors_per_track=16)
    disk = RotationalDisk(engine, geom)
    cpu = Cpu(engine, CostTable.free())
    driver = DiskDriver(engine, disk, cpu=cpu)
    cache = MetaCache(engine, driver, cpu, bsize=8192, frag_sectors=2,
                      capacity=4)
    return engine, disk, cache


def test_bread_miss_then_hit(stack):
    engine, disk, cache = stack
    disk.store.write(16, b"\xab" * 8192)  # frag addr 8 -> sector 16

    def work():
        meta = yield from cache.bread(8)
        assert bytes(meta.data) == b"\xab" * 8192
        again = yield from cache.bread(8)
        return meta is again

    assert engine.run_process(work())
    assert cache.stats["misses"] == 1
    assert cache.stats["hits"] == 1


def test_delayed_write_flushes_on_flush(stack):
    engine, disk, cache = stack

    def work():
        meta = yield from cache.bread(8)
        meta.data[:3] = b"xyz"
        cache.bdwrite(meta)
        assert cache.dirty_count == 1
        flushed = yield from cache.flush()
        return flushed

    assert engine.run_process(work()) == 1
    assert disk.store.read(16, 1)[:3] == b"xyz"
    assert cache.dirty_count == 0


def test_sync_write_is_on_disk_immediately(stack):
    engine, disk, cache = stack

    def work():
        meta = yield from cache.bread(8)
        meta.data[:3] = b"abc"
        yield from cache.bwrite(meta)

    engine.run_process(work())
    assert disk.store.read(16, 1)[:3] == b"abc"


def test_eviction_writes_back_dirty_victim(stack):
    engine, disk, cache = stack

    def work():
        meta = yield from cache.bread(8)
        meta.data[:3] = b"old"
        cache.bdwrite(meta)
        # Capacity 4: read four more blocks to evict frag 8.
        for addr in (16, 24, 32, 40):
            yield from cache.bread(addr)

    engine.run_process(work())
    assert cache.stats["eviction_writebacks"] == 1
    assert disk.store.read(16, 1)[:3] == b"old"


def test_install_new_skips_read(stack):
    engine, disk, cache = stack

    def work():
        meta = yield from cache.install_new(8, b"\x01" * 8192)
        cache.bdwrite(meta)
        yield from cache.flush()

    engine.run_process(work())
    assert disk.stats["reads"] == 0
    assert disk.store.read(16, 1) == b"\x01" * 512


def test_install_new_validation(stack):
    engine, _, cache = stack

    def work():
        yield from cache.install_new(8, b"short")

    with pytest.raises(ValueError):
        engine.run_process(work())

    def work2():
        yield from cache.bread(8)
        yield from cache.install_new(8)

    with pytest.raises(ValueError):
        engine.run_process(work2())


def test_drop_discards_dirty_data(stack):
    engine, disk, cache = stack

    def work():
        meta = yield from cache.bread(8)
        meta.data[:3] = b"bad"
        cache.bdwrite(meta)
        cache.drop(8)
        yield from cache.flush()

    engine.run_process(work())
    assert disk.store.read(16, 1)[:3] == b"\x00\x00\x00"


def test_concurrent_bread_single_io(stack):
    engine, disk, cache = stack
    results = []

    def reader(tag):
        meta = yield from cache.bread(8)
        results.append((tag, meta))

    engine.process(reader("a"))
    engine.process(reader("b"))
    engine.run()
    assert len(results) == 2
    assert results[0][1] is results[1][1]
    assert disk.stats["reads"] == 1
    assert cache.stats["inflight_waits"] >= 1


def test_bdwrite_requires_cached_buffer(stack):
    engine, _, cache = stack
    from repro.ufs.metacache import MetaBuf

    stray = MetaBuf(99, bytearray(8192))
    with pytest.raises(ValueError):
        cache.bdwrite(stray)


def test_capacity_validation(stack):
    engine, disk, cache = stack
    with pytest.raises(ValueError):
        MetaCache(engine, None, None, 8192, 2, capacity=0)
