"""Tests for ufs_getpage/ufs_putpage/ufs_rdwr: clustering behaviour,
read-ahead, write clustering, free-behind, throttling, holes."""

import pytest

from repro.units import KB
from repro.vfs import PutFlags

from .conftest import make_system


def write_file(system, proc, path, data, chunk=8 * KB, fsync=True):
    def work():
        fd = yield from proc.creat(path)
        for start in range(0, len(data), chunk):
            yield from proc.write(fd, data[start:start + chunk])
        if fsync:
            yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())


def read_file(system, proc, path, chunk=8 * KB):
    def work():
        fd = yield from proc.open(path)
        parts = []
        while True:
            piece = yield from proc.read(fd, chunk)
            if not piece:
                break
            parts.append(piece)
        yield from proc.close(fd)
        return b"".join(parts)

    return system.run(work())


def patterned(nbytes, seed=1):
    return bytes((i * seed + i // 8192) % 251 for i in range(nbytes))


# -- data integrity -----------------------------------------------------------

def test_write_read_round_trip(system, proc):
    data = patterned(200 * KB)
    write_file(system, proc, "/f", data)
    assert read_file(system, proc, "/f") == data


def test_round_trip_survives_cache_eviction(system, proc):
    """Read back through real disk I/O: drop every cached page first."""
    data = patterned(120 * KB)
    write_file(system, proc, "/f", data)
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    assert read_file(system, proc, "/f") == data
    assert system.mount.stats["read_ios"] > 0


def test_old_system_round_trip(old_system):
    from repro.kernel import Proc

    proc = Proc(old_system)
    data = patterned(100 * KB)
    write_file(old_system, proc, "/f", data)
    assert read_file(old_system, proc, "/f") == data


def test_partial_and_unaligned_writes(system, proc):
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.write(fd, b"A" * 100)
        yield from proc.pwrite(fd, b"B" * 50, 75)
        yield from proc.pwrite(fd, b"C" * 10, 8190)  # straddles page 0/1
        yield from proc.close(fd)

    system.run(work())
    data = read_file(system, proc, "/f")
    assert len(data) == 8200
    assert data[:75] == b"A" * 75
    assert data[75:125] == b"B" * 50
    assert data[8190:8200] == b"C" * 10
    assert data[125:8190] == bytes(8190 - 125)


def test_read_past_eof_is_short(system, proc):
    write_file(system, proc, "/f", b"hello")

    def work():
        fd = yield from proc.open("/f")
        data = yield from proc.read(fd, 100)
        more = yield from proc.read(fd, 100)
        return data, more

    data, more = system.run(work())
    assert data == b"hello" and more == b""


def test_holes_read_as_zeros(system, proc):
    def work():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"end", 100 * KB)
        yield from proc.close(fd)

    system.run(work())
    data = read_file(system, proc, "/sparse")
    assert len(data) == 100 * KB + 3
    assert data[:100 * KB] == bytes(100 * KB)
    assert data[-3:] == b"end"
    # Holes consume no blocks beyond the tail.
    vn = system.run(system.mount.namei("/sparse"))
    assert vn.inode.blocks <= 2 * system.mount.sb.frag


def test_small_file_uses_fragments(system, proc):
    write_file(system, proc, "/tiny", b"x" * 3000)
    vn = system.run(system.mount.namei("/tiny"))
    # 3000 bytes -> 3 fragments, not a full 8-frag block.
    assert vn.inode.blocks == 3
    assert read_file(system, proc, "/tiny") == b"x" * 3000


# -- clustering behaviour ----------------------------------------------------------

def test_sequential_write_clusters_into_few_ios(system, proc):
    """120 KB cluster: a 480 KB file should go out in ~4 write I/Os."""
    data = patterned(480 * KB)
    write_file(system, proc, "/f", data)
    ios = system.mount.stats["write_ios"]
    assert ios <= 6, f"expected ~4 clustered writes, got {ios}"


def test_old_system_writes_one_io_per_block(old_system):
    from repro.kernel import Proc

    proc = Proc(old_system)
    data = patterned(128 * KB)  # 16 blocks
    write_file(old_system, proc, "/f", data)
    assert old_system.mount.stats["write_ios"] >= 16


def test_sequential_read_clusters(system, proc):
    data = patterned(480 * KB)
    write_file(system, proc, "/f", data)
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    system.mount.stats.reset()
    read_file(system, proc, "/f")
    ios = system.mount.stats["read_ios"]
    # 480 KB in 120 KB clusters: 4 sync+RA I/Os, allow some slack.
    assert ios <= 8, f"expected clustered reads, got {ios} I/Os"


def test_old_system_reads_one_io_per_block(old_system):
    from repro.kernel import Proc

    proc = Proc(old_system)
    data = patterned(128 * KB)
    write_file(old_system, proc, "/f", data)
    vn = old_system.run(old_system.mount.namei("/f"))
    for page in old_system.pagecache.vnode_pages(vn):
        old_system.pagecache.destroy(page)
    old_system.mount.stats.reset()
    read_file(old_system, proc, "/f")
    assert old_system.mount.stats["read_ios"] >= 15


def test_readahead_happens_on_sequential_reads(system, proc):
    data = patterned(480 * KB)
    write_file(system, proc, "/f", data)
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    system.mount.stats.reset()
    read_file(system, proc, "/f")
    assert system.mount.stats["readaheads"] >= 2


def test_random_reads_do_not_readahead(system, proc):
    data = patterned(480 * KB)
    write_file(system, proc, "/f", data)
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    system.mount.stats.reset()

    def work():
        fd = yield from proc.open("/f")
        # Stride backwards: never sequential.
        for off in range(52, -1, -4):
            yield from proc.pread(fd, 8 * KB, off * 8 * KB)
        yield from proc.close(fd)

    system.run(work())
    assert system.mount.stats["readaheads"] == 0


def test_random_writes_flush_previous_range(system, proc):
    """Random writes break the delayed-write pattern (restart path)."""
    def work():
        fd = yield from proc.creat("/f")
        yield from proc.pwrite(fd, bytes(8 * KB), 0)
        yield from proc.pwrite(fd, bytes(8 * KB), 8 * KB)
        yield from proc.pwrite(fd, bytes(8 * KB), 400 * KB)  # jump
        yield from proc.pwrite(fd, bytes(8 * KB), 16 * KB)  # jump back
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(work())
    assert system.mount.stats["write_ios"] >= 3


def test_fsync_flushes_everything(system, proc):
    data = patterned(100 * KB)
    write_file(system, proc, "/f", data, fsync=True)
    vn = system.run(system.mount.namei("/f"))
    assert system.pagecache.dirty_pages(vn) == []
    # And the data really is on the disk platters.
    stored = system.store.read(0, system.store.total_sectors // 2)
    del stored  # (read above just proves no crash; spot check below)
    from repro.ufs import bmap

    addr, _ = system.run(bmap.bmap_read(system.mount, vn.inode, 0, 1))
    on_disk = system.store.read(system.mount.sb.fsb_to_sector(addr), 16)
    assert on_disk == data[:8 * KB]


def test_write_throttle_limits_queue(system, proc):
    """With a 240 KB limit, a 1 MB burst write sleeps on the throttle."""
    data = patterned(1024 * KB)
    write_file(system, proc, "/f", data, fsync=False)
    vn = system.run(system.mount.namei("/f"))
    assert vn.inode.throttle.sleeps > 0


def test_no_throttle_when_unlimited(old_system):
    from repro.kernel import Proc

    proc = Proc(old_system)
    data = patterned(512 * KB)
    write_file(old_system, proc, "/f", data, fsync=False)
    vn = old_system.run(old_system.mount.namei("/f"))
    assert vn.inode.throttle.sleeps == 0
    assert not vn.inode.throttle.enabled


def test_putpage_delay_requires_page_length(system, proc):
    from repro.errors import InvalidArgumentError

    write_file(system, proc, "/f", b"x" * 100)
    vn = system.run(system.mount.namei("/f"))
    with pytest.raises(InvalidArgumentError):
        system.run(vn.putpage(0, 16 * KB, PutFlags(delay=True)))


def test_getpage_unaligned_offset_rejected(system, proc):
    from repro.errors import InvalidArgumentError

    write_file(system, proc, "/f", b"x" * 100)
    vn = system.run(system.mount.namei("/f"))
    with pytest.raises(InvalidArgumentError):
        system.run(vn.getpage(100))


# -- free-behind --------------------------------------------------------------------

def test_free_behind_frees_pages_under_pressure(proc_b=None):
    """Config B (free-behind on): a large sequential read leaves few of its
    own pages cached; config C (off) fills memory with them."""
    from repro.kernel import Proc

    results = {}
    for name in ("B", "C"):
        system = make_system(name)
        proc = Proc(system)
        # Bigger than the ~6 MB page pool, so the reader runs under real
        # memory pressure deep into the file.
        data = patterned(7 * 1024 * KB)
        write_file(system, proc, "/f", data)
        read_file(system, proc, "/f")
        results[name] = (system.mount.stats["freebehind"],
                         system.pageout.stats["wakeups"])
    freebehind_b, _ = results["B"]
    freebehind_c, wakeups_c = results["C"]
    assert freebehind_b > 0
    assert freebehind_c == 0
    # Without free-behind the pageout daemon has to do the work instead.
    assert wakeups_c > 0
