"""Tests for the FFS allocator: contiguity, rotdelay layout, fragments,
minfree, inode placement."""

import pytest

from repro.errors import NoSpaceError
from repro.ufs.inode import Inode
from repro.ufs.ondisk import Dinode, IFDIR, IFREG



@pytest.fixture
def mount(system):
    return system.mount


@pytest.fixture
def ip(mount):
    return Inode(mount, 10, Dinode(mode=IFREG, nlink=1))


def run(system, gen):
    return system.run(gen)


def test_contiguous_preference_honoured(system, mount, ip):
    """With rotdelay=0 (config A), asking blkpref for successive blocks
    yields physically consecutive addresses."""
    alloc = mount.allocator
    assert alloc.rotdelay_gap_frags() == 0
    prev = 0
    addrs = []
    for lbn in range(10):
        pref = alloc.blkpref(ip, lbn, prev)
        addr = run(system, alloc.alloc_block(ip, pref))
        addrs.append(addr)
        prev = addr
    deltas = [b - a for a, b in zip(addrs, addrs[1:])]
    assert deltas == [mount.sb.frag] * 9


def test_rotdelay_layout_interleaves(old_system):
    """With rotdelay=4ms (config D), successive blocks are separated by a
    gap — figure 4's interleaved placement."""
    mount = old_system.mount
    alloc = mount.allocator
    gap = alloc.rotdelay_gap_frags()
    assert gap > 0
    ip = Inode(mount, 10, Dinode(mode=IFREG, nlink=1))
    prev = 0
    addrs = []
    for lbn in range(6):
        pref = alloc.blkpref(ip, lbn, prev)
        addr = run(old_system, alloc.alloc_block(ip, pref))
        addrs.append(addr)
        prev = addr
    deltas = [b - a for a, b in zip(addrs, addrs[1:])]
    assert deltas == [mount.sb.frag + gap] * 5


def test_taken_block_falls_forward(system, mount, ip):
    """If the preferred block is taken, the allocator picks the next free
    one in the same group."""
    alloc = mount.allocator
    first = run(system, alloc.alloc_block(ip, mount.sb.cg_data_frag(0)))
    second = run(system, alloc.alloc_block(ip, first))  # pref already taken
    assert second == first + mount.sb.frag


def test_double_alloc_detected(system, mount, ip):
    alloc = mount.allocator
    addr = run(system, alloc.alloc_block(ip, 0))
    cgx = mount.sb.cg_of_frag(addr)
    with pytest.raises(RuntimeError, match="double allocation"):
        alloc._take_frags(cgx, addr - mount.sb.cgbase(cgx), mount.sb.frag)


def test_free_and_refuse_double_free(system, mount, ip):
    alloc = mount.allocator
    before = mount.sb.cs_nbfree
    addr = run(system, alloc.alloc_block(ip, 0))
    assert mount.sb.cs_nbfree == before - 1
    alloc.free_block(ip, addr)
    assert mount.sb.cs_nbfree == before
    with pytest.raises(RuntimeError, match="double free"):
        alloc.free_block(ip, addr)


def test_minfree_reserve_enforced(system, mount, ip):
    """Block allocation fails when free space dips under the 10% reserve."""
    alloc = mount.allocator
    sb = mount.sb
    reserve_frags = sb.total_frags * sb.minfree // 100
    with pytest.raises(NoSpaceError):
        while True:
            run(system, alloc.alloc_block(ip, 0))
    free_frags = sb.cs_nbfree * sb.frag + sb.cs_nffree
    assert free_frags <= reserve_frags + sb.frag


def test_frag_allocation_prefers_partial_blocks(system, mount, ip):
    alloc = mount.allocator
    sb = mount.sb
    nbfree_before = sb.cs_nbfree
    a = run(system, alloc.alloc_frags(ip, 0, 3))
    # Breaking a block: one fewer free block, 5 spare frags.
    assert sb.cs_nbfree == nbfree_before - 1
    assert sb.cs_nffree == 5
    b = run(system, alloc.alloc_frags(ip, 0, 2))
    # Second run fits in the same broken block: no new block broken.
    assert sb.cs_nbfree == nbfree_before - 1
    assert sb.cs_nffree == 3
    assert b // sb.frag == a // sb.frag


def test_frag_free_reassembles_block(system, mount, ip):
    alloc = mount.allocator
    sb = mount.sb
    nbfree_before = sb.cs_nbfree
    addr = run(system, alloc.alloc_frags(ip, 0, 3))
    alloc.free_frags(ip, addr, 3)
    assert sb.cs_nbfree == nbfree_before
    assert sb.cs_nffree == 0


def test_realloc_frags_extends_in_place(system, mount, ip):
    alloc = mount.allocator
    addr = run(system, alloc.alloc_frags(ip, 0, 2))
    new = run(system, alloc.realloc_frags(ip, addr, 2, 5, 0))
    assert new == addr  # the following frags were free
    assert ip.blocks == 5


def test_realloc_frags_moves_when_blocked(system, mount, ip):
    alloc = mount.allocator
    sb = mount.sb
    addr = run(system, alloc.alloc_frags(ip, 0, 2))
    # Occupy the frag right after the run so in-place extension fails.
    blocker = run(system, alloc.alloc_frags(ip, addr + 2, 1))
    assert blocker == addr + 2
    new = run(system, alloc.realloc_frags(ip, addr, 2, 4, 0))
    assert new != addr
    # The old run was returned.
    cgx = sb.cg_of_frag(addr)
    cg = mount.cgs[cgx]
    rel = addr - sb.cgbase(cgx)
    assert cg.frag_is_free(rel) and cg.frag_is_free(rel + 1)


def test_frag_validation(system, mount, ip):
    alloc = mount.allocator
    with pytest.raises(ValueError):
        run(system, alloc.alloc_frags(ip, 0, 0))
    with pytest.raises(ValueError):
        run(system, alloc.alloc_frags(ip, 0, 9))
    with pytest.raises(ValueError):
        alloc.free_frags(ip, 100, 0)


def test_full_frag_request_becomes_block(system, mount, ip):
    alloc = mount.allocator
    addr = run(system, alloc.alloc_frags(ip, 0, mount.sb.frag))
    assert addr % mount.sb.frag == 0


def test_maxbpg_spills_to_next_group(system, mount, ip):
    alloc = mount.allocator
    sb = mount.sb
    quota = alloc.maxbpg()
    prev = 0
    spilled = False
    for lbn in range(quota + 2):
        pref = alloc.blkpref(ip, lbn, prev)
        addr = run(system, alloc.alloc_block(ip, pref))
        if prev and sb.cg_of_frag(addr) != sb.cg_of_frag(prev):
            spilled = True
        prev = addr
    assert spilled


def test_inode_allocation_and_free(system, mount):
    alloc = mount.allocator
    before = mount.sb.cs_nifree
    ino = run(system, alloc.alloc_inode(0, IFREG))
    assert mount.sb.cs_nifree == before - 1
    alloc.free_inode(ino, was_dir=False)
    assert mount.sb.cs_nifree == before
    with pytest.raises(RuntimeError, match="double free"):
        alloc.free_inode(ino, was_dir=False)


def test_directories_spread_files_cluster(system, mount):
    alloc = mount.allocator
    sb = mount.sb
    dir_inos = [run(system, alloc.alloc_inode(0, IFDIR)) for _ in range(4)]
    dir_groups = {sb.cg_of_inode(i) for i in dir_inos}
    assert len(dir_groups) > 1  # directories spread across groups
    file_inos = [run(system, alloc.alloc_inode(2, IFREG)) for _ in range(4)]
    file_groups = {sb.cg_of_inode(i) for i in file_inos}
    assert file_groups == {2}  # files stay near their directory


def test_ndir_counters_updated(system, mount):
    alloc = mount.allocator
    before = mount.sb.cs_ndir
    ino = run(system, alloc.alloc_inode(0, IFDIR))
    assert mount.sb.cs_ndir == before + 1
    alloc.free_inode(ino, was_dir=True)
    assert mount.sb.cs_ndir == before
