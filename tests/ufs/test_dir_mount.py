"""Tests for directories, namei, and mount-level file operations."""

import pytest

from repro.errors import (
    DirectoryNotEmptyError, FileExistsError_, FileNotFoundError_,
    IsADirectoryError_, NotADirectoryError_,
)
from repro.ufs import fsck


def test_create_and_lookup(system, proc):
    def work():
        fd = yield from proc.creat("/hello.txt")
        yield from proc.close(fd)
        return (yield from proc.stat_size("/hello.txt"))

    assert system.run(work()) == 0


def test_create_existing_rejected(system):
    def work():
        yield from system.mount.create("/f")
        yield from system.mount.create("/f")

    with pytest.raises(FileExistsError_):
        system.run(work())


def test_namei_missing_raises(system):
    with pytest.raises(FileNotFoundError_):
        system.run(system.mount.namei("/nope"))


def test_namei_through_subdirectories(system, proc):
    def work():
        yield from proc.mkdir("/a")
        yield from proc.mkdir("/a/b")
        fd = yield from proc.creat("/a/b/c.txt")
        yield from proc.write(fd, b"data")
        yield from proc.close(fd)
        return (yield from proc.stat_size("/a/b/c.txt"))

    assert system.run(work()) == 4


def test_lookup_through_file_rejected(system, proc):
    def work():
        fd = yield from proc.creat("/plain")
        yield from proc.close(fd)
        yield from proc.stat_size("/plain/sub")

    with pytest.raises(NotADirectoryError_):
        system.run(work())


def test_readdir_lists_entries(system, proc):
    def work():
        for name in ("x", "y", "z"):
            fd = yield from proc.creat(f"/{name}")
            yield from proc.close(fd)
        return (yield from proc.readdir("/"))

    entries = dict(system.run(work()))
    assert {"x", "y", "z", ".", ".."} <= set(entries)
    assert entries["."] == entries[".."] == 2


def test_unlink_removes_and_frees(system, proc):
    sb = system.mount.sb
    free_before = (sb.cs_nbfree, sb.cs_nffree, sb.cs_nifree)

    def work():
        fd = yield from proc.creat("/victim")
        yield from proc.write(fd, bytes(64 * 1024))
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.unlink("/victim")

    system.run(work())
    assert (sb.cs_nbfree, sb.cs_nffree, sb.cs_nifree) == free_before
    with pytest.raises(FileNotFoundError_):
        system.run(system.mount.namei("/victim"))


def test_unlink_missing(system, proc):
    with pytest.raises(FileNotFoundError_):
        system.run(proc.unlink("/ghost"))


def test_unlink_directory_rejected(system, proc):
    def work():
        yield from proc.mkdir("/d")
        yield from proc.unlink("/d")

    with pytest.raises(IsADirectoryError_):
        system.run(work())


def test_mkdir_rmdir_link_counts(system, proc):
    root = system.mount.root.inode

    def work():
        yield from proc.mkdir("/sub")

    system.run(work())
    assert root.nlink == 3  # '.', '..', and /sub's '..'
    sub = system.run(system.mount.namei("/sub"))
    assert sub.inode.nlink == 2

    system.run(proc.rmdir("/sub"))
    assert root.nlink == 2


def test_rmdir_nonempty_rejected(system, proc):
    def work():
        yield from proc.mkdir("/d")
        fd = yield from proc.creat("/d/file")
        yield from proc.close(fd)
        yield from proc.rmdir("/d")

    with pytest.raises(DirectoryNotEmptyError):
        system.run(work())


def test_many_entries_grow_directory(system, proc):
    """Enough entries to overflow the first block."""
    n = 600  # ~16 bytes each -> > 8 KB with DIRBLKSIZ slack

    def work():
        for i in range(n):
            fd = yield from proc.creat(f"/f{i:04d}")
            yield from proc.close(fd)
        return (yield from proc.readdir("/"))

    entries = system.run(work())
    assert len(entries) == n + 2
    root = system.mount.root.inode
    assert root.size > system.mount.sb.bsize


def test_deleted_slot_is_reused(system, proc):
    def work():
        for name in ("/a", "/b", "/c"):
            fd = yield from proc.creat(name)
            yield from proc.close(fd)
        yield from proc.unlink("/b")
        fd = yield from proc.creat("/b2")
        yield from proc.close(fd)
        return (yield from proc.readdir("/"))

    entries = [name for name, _ in system.run(work())]
    assert "b" not in entries and "b2" in entries
    # The directory did not grow past one block.
    assert system.mount.root.inode.size == system.mount.sb.bsize


def test_everything_fsck_clean_after_tree_building(system, proc):
    def work():
        yield from proc.mkdir("/dir1")
        yield from proc.mkdir("/dir1/nested")
        for i in range(10):
            fd = yield from proc.creat(f"/dir1/f{i}")
            yield from proc.write(fd, bytes((i + 1) * 3000))
            yield from proc.fsync(fd)
            yield from proc.close(fd)
        yield from proc.unlink("/dir1/f3")
        yield from proc.rmdir("/dir1/nested")

    system.run(work())
    system.sync()
    report = fsck(system.store)
    assert report.clean, str(report)


def test_sync_persists_across_remount(system, proc):
    """A second mount of the same store sees everything."""
    def work():
        fd = yield from proc.creat("/persist")
        yield from proc.write(fd, b"x" * 30000)
        yield from proc.close(fd)

    system.run(work())
    system.sync()

    from repro.ufs.mount import UfsMount

    mount2 = UfsMount(system.engine, system.cpu, system.driver,
                      system.pagecache, tuning=system.config.tuning,
                      name="ufs-again")

    def verify():
        yield from mount2.activate()
        vn = yield from mount2.namei("/persist")
        return vn.size

    # Invalidate page cache identity clash: same vnode ids differ, fine.
    assert system.run(verify()) == 30000


def test_hard_links(system, proc):
    def work():
        fd = yield from proc.creat("/orig")
        yield from proc.write(fd, b"shared bytes")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.link("/orig", "/alias")
        fd = yield from proc.open("/alias")
        data = yield from proc.read(fd, 100)
        yield from proc.close(fd)
        return data

    assert system.run(work()) == b"shared bytes"
    orig = system.run(system.mount.namei("/orig"))
    alias = system.run(system.mount.namei("/alias"))
    assert orig.inode is alias.inode
    assert orig.inode.nlink == 2
    system.sync()
    assert fsck(system.store).clean


def test_unlink_one_of_two_links_keeps_data(system, proc):
    def work():
        fd = yield from proc.creat("/orig")
        yield from proc.write(fd, b"survives")
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        yield from proc.link("/orig", "/alias")
        yield from proc.unlink("/orig")
        fd = yield from proc.open("/alias")
        return (yield from proc.read(fd, 100))

    assert system.run(work()) == b"survives"
    alias = system.run(system.mount.namei("/alias"))
    assert alias.inode.nlink == 1
    system.sync()
    assert fsck(system.store).clean


def test_link_validation(system, proc):
    from repro.errors import IsADirectoryError_

    def dirlink():
        yield from proc.mkdir("/d")
        yield from proc.link("/d", "/d2")

    with pytest.raises(IsADirectoryError_):
        system.run(dirlink())

    def clash():
        fd = yield from proc.creat("/a")
        yield from proc.close(fd)
        fd = yield from proc.creat("/b")
        yield from proc.close(fd)
        yield from proc.link("/a", "/b")

    from repro.errors import FileExistsError_

    with pytest.raises(FileExistsError_):
        system.run(clash())
