"""Tests for tunefs and dump/restore — the on-disk-contract utilities."""

import pytest

from repro.errors import InvalidArgumentError
from repro.kernel import Proc
from repro.ufs import fsck
from repro.ufs.dump import DumpArchive, DumpEntry, restore, ufsdump
from repro.ufs.mount import UfsMount
from repro.ufs.ondisk import Superblock
from repro.ufs.tunefs import tunefs
from repro.units import KB

from .conftest import make_system


def populate(system, proc):
    tree = {
        "/readme.txt": b"hello world",
        "/docs": None,
        "/docs/a.dat": bytes(range(256)) * 64,  # 16 KB
        "/docs/sub": None,
        "/docs/sub/deep.bin": b"\xde\xad" * 5000,
        "/empty": b"",
    }

    def work():
        for path, content in tree.items():
            if content is None:
                yield from proc.mkdir(path)
            else:
                fd = yield from proc.creat(path)
                if content:
                    yield from proc.write(fd, content)
                yield from proc.fsync(fd)
                yield from proc.close(fd)

    system.run(work())
    system.sync()
    return tree


# -- tunefs ----------------------------------------------------------------

def test_tunefs_upgrades_old_fs_to_clustered():
    """The paper's deployment story: same disk, new tuning, new kernel."""
    system = make_system("D")  # rotdelay 4ms, maxcontig 1
    proc = Proc(system)
    tree = populate(system, proc)

    # "Upgrade": re-tune the (unmounted) disk and remount with the new code.
    sb = tunefs(system.store, rotdelay_ms=0.0, maxcontig=7)
    assert sb.rotdelay_ms == 0.0 and sb.maxcontig == 7

    from repro.core import ClusterTuning

    mount2 = UfsMount(system.engine, system.cpu, system.driver,
                      system.pagecache, tuning=ClusterTuning.new_system(),
                      name="upgraded")
    proc2 = Proc(system)
    system.run(mount2.activate())
    system.mount = mount2

    def verify_and_extend():
        # Old data is intact...
        vn = yield from mount2.namei("/docs/a.dat")
        assert vn.size == len(tree["/docs/a.dat"])
        fd = yield from proc2.open("/docs/a.dat")
        data = yield from proc2.read(fd, vn.size)
        assert data == tree["/docs/a.dat"]
        # ...and new writes cluster.
        fd = yield from proc2.creat("/new.dat")
        yield from proc2.write(fd, bytes(112 * KB))
        yield from proc2.fsync(fd)

    system.run(verify_and_extend())
    # 112 KB at maxcontig 7 (56 KB clusters) -> 2 write I/Os.
    assert mount2.stats["write_ios"] <= 3
    system.run(mount2.sync())
    assert fsck(system.store).clean


def test_tunefs_validation(system):
    with pytest.raises(InvalidArgumentError):
        tunefs(system.store, rotdelay_ms=-1)
    with pytest.raises(InvalidArgumentError):
        tunefs(system.store, maxcontig=0)
    with pytest.raises(InvalidArgumentError):
        tunefs(system.store, minfree_pct=90)


def test_tunefs_only_touches_requested_fields(system):
    before = Superblock.unpack(system.store.read(16, 16))
    tunefs(system.store, minfree_pct=5)
    after = Superblock.unpack(system.store.read(16, 16))
    assert after.minfree == 5
    assert after.maxcontig == before.maxcontig
    assert after.rotdelay_ms == before.rotdelay_ms
    assert after.cs_nbfree == before.cs_nbfree


# -- dump / restore -----------------------------------------------------------

def test_dump_captures_tree(system, proc):
    tree = populate(system, proc)
    archive = ufsdump(system.store)
    assert set(archive.paths()) == set(tree)
    assert archive.find("/readme.txt").content == b"hello world"
    assert archive.find("/docs").kind == "dir"
    assert archive.find("/docs/sub/deep.bin").content == tree["/docs/sub/deep.bin"]
    assert archive.find("/empty").content == b""


def test_dump_sees_holes_as_zeros(system, proc):
    def work():
        fd = yield from proc.creat("/sparse")
        yield from proc.pwrite(fd, b"end", 40 * KB)
        yield from proc.fsync(fd)

    system.run(work())
    system.sync()
    archive = ufsdump(system.store)
    content = archive.find("/sparse").content
    assert content == bytes(40 * KB) + b"end"


def test_dump_restore_round_trip(system, proc):
    populate(system, proc)
    archive = ufsdump(system.store)

    # Restore onto a fresh disk with *different* tuning (the contract:
    # one on-disk format, any tuning).
    target = make_system("A")
    tproc = Proc(target)
    restored = target.run(restore(tproc, archive))
    assert restored == len(archive.entries)
    target.sync()
    assert fsck(target.store).clean
    # Dumping the restored fs yields an identical archive.
    archive2 = ufsdump(target.store)
    assert archive2 == archive


def test_archive_equality_and_validation():
    a = DumpArchive([DumpEntry("/x", "file", b"1")])
    b = DumpArchive([DumpEntry("/x", "file", b"1")])
    c = DumpArchive([DumpEntry("/x", "file", b"2")])
    assert a == b and a != c
    with pytest.raises(ValueError):
        DumpEntry("/x", "socket")
    with pytest.raises(KeyError):
        a.find("/missing")
