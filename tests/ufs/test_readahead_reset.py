"""Read-ahead prediction state must die with the file's contents.

Pins the stale-state fix: ``nextr``/``trigger``/``nextrio`` survived
truncate and inode destruction, so a recycled inode started life
predicting reads for a file that no longer existed — read-ahead fired
past the new EOF and the first read of the new contents was misclassified
as non-sequential.
"""

from repro.kernel import Proc, System, SystemConfig
from repro.units import KB


def _booted():
    system = System.booted(SystemConfig.config_a())
    return system, Proc(system)


def _write(proc, path, nbytes, create=True):
    def gen():
        fd = yield from proc.open(path, create=create)
        yield from proc.write(fd, b"r" * nbytes)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    return gen()


def _read_all(proc, path, record=8 * KB):
    def gen():
        fd = yield from proc.open(path)
        while True:
            data = yield from proc.read(fd, record)
            if not data:
                break
        yield from proc.close(fd)

    return gen()


def _inode(system, path):
    vn = system.run(system.mount.namei(path), name="lookup")
    return vn.inode


def _armed_inode(system, proc, path="/ra", nbytes=256 * KB):
    system.run(_write(proc, path, nbytes))
    system.run(_read_all(proc, path))
    ip = _inode(system, path)
    # The sequential read armed the predictor: next offset is EOF, and
    # (on a read-ahead config) the trigger points into the file.
    assert ip.readahead.nextr == nbytes
    assert ip.readahead.last_was_sequential
    return ip


def test_truncate_resets_readahead_state():
    system, proc = _booted()
    ip = _armed_inode(system, proc)
    system.run(system.mount.truncate("/ra"), name="truncate")
    assert ip.readahead.nextr == 0
    assert ip.readahead.trigger is None
    assert ip.readahead.nextrio == 0
    assert not ip.readahead.last_was_sequential


def test_unlink_resets_readahead_state():
    system, proc = _booted()
    ip = _armed_inode(system, proc)

    def unlink():
        yield from proc.unlink("/ra")

    system.run(unlink())
    assert ip.readahead.nextr == 0
    assert ip.readahead.trigger is None
    assert ip.readahead.nextrio == 0


def test_reread_after_truncate_is_sequential_from_offset_zero():
    """The behavioural half: after truncate + rewrite, the very first
    read must classify as sequential (nextr back at 0), re-enabling
    read-ahead for the new contents instead of chasing the old ones."""
    system, proc = _booted()
    ip = _armed_inode(system, proc, nbytes=256 * KB)
    system.run(system.mount.truncate("/ra"), name="truncate")
    system.run(_write(proc, "/ra", 64 * KB, create=False))
    # Writing moved nextr only via reads, not writes — still reset here.
    page = system.pagecache.page_size
    action = ip.readahead.observe(0, page, cached=True)
    assert action.sequential
    assert ip.readahead.nextr == page


def test_readahead_never_reads_past_new_eof():
    """After shrinking the file, a cold re-read issues no I/O beyond the
    new EOF: stale predictions would have prefetched old block offsets."""
    system, proc = _booted()
    _armed_inode(system, proc, nbytes=256 * KB)
    system.run(system.mount.truncate("/ra"), name="truncate")
    new_size = 64 * KB
    system.run(_write(proc, "/ra", new_size, create=False))
    system.sync()
    # Cold cache, as in IObench: the re-read must hit the disk.
    vn = system.run(system.mount.namei("/ra"), name="lookup")
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)

    system.tracer.enabled = True
    system.run(_read_all(proc, "/ra"))
    system.tracer.enabled = False
    touched = [record for record in system.tracer.records
               if record.tag in ("readahead", "getpage_sync")]
    assert touched, "cold re-read issued no traced I/O"
    for record in touched:
        offset = record.fields["offset"]
        assert offset < new_size, (record.tag, offset)
