"""Figures 9, 10, and 11: the IObench transfer-rate tables.

Runs the IObench workload (16 MB file on the simulated 8 MB SPARCstation 1
with the 400 MB drive) over the four figure 9 configurations and prints the
three tables side by side with the paper's numbers.

Shape assertions (what the reproduction claims):
* clustering roughly doubles sequential read throughput (A/D in [1.6, 2.6]);
* sequential write/update improve by a factor in [1.4, 2.2];
* random reads are unaffected (ratio within 15% of 1.0);
* random updates got *slower* with the new system (A/D <= 1.02): the
  fairness trade-off the paper calls out.
"""

import pytest

from repro.bench.iobench import IObench, PHASES, run_configs
from repro.bench.report import (
    PAPER_FIGURE_10, PAPER_FIGURE_11, Table, compare_to_paper, ratio_table,
)
from repro.kernel.config import SystemConfig


def print_figure9():
    table = Table(
        title="Figure 9: IObench run descriptions",
        columns=["cluster", "rotdelay", "UFS code", "freebehind", "wr-limit"],
    )
    for name in "ABCD":
        cfg = SystemConfig.by_name(name)
        table.add_row(name, [
            f"{cfg.fs_params.maxcontig * cfg.fs_params.bsize // 1024}KB",
            f"{cfg.fs_params.rotdelay_ms:g}ms",
            "4.1.1" if cfg.tuning.read_clustering else "4.1",
            "Yes" if cfg.tuning.freebehind else "No",
            "Yes" if cfg.tuning.write_limit else "No",
        ])
    print()
    print(table.render("{:>10}"))


@pytest.fixture(scope="module")
def iobench_results():
    return {r.config: r for r in run_configs(list("ABCD"))}


def test_fig10_transfer_rates(once, iobench_results):
    results = once(lambda: iobench_results)
    measured = {k: v.rates for k, v in results.items()}
    print_figure9()
    print()
    print(compare_to_paper(measured, PAPER_FIGURE_10, "Figure 10 (KB/s)"))

    a, d = measured["A"], measured["D"]
    assert 1.6 <= a["FSR"] / d["FSR"] <= 2.6
    assert 1.4 <= a["FSU"] / d["FSU"] <= 2.2
    assert 1.4 <= a["FSW"] / d["FSW"] <= 2.2
    # Clustered sequential reads approach the media rate (~1.7 MB/s).
    assert a["FSR"] > 1200
    # The old system gets about half the disk.
    assert 600 <= d["FSR"] <= 950


def test_fig11_ratios(once, iobench_results):
    results = once(lambda: iobench_results)
    measured = {k: v.rates for k, v in results.items()}
    table = ratio_table(measured)
    print()
    print(table)
    print("\nPaper's figure 11 for comparison:")
    paper = Table(title="", columns=list(PHASES))
    for row, vals in PAPER_FIGURE_11.items():
        paper.add_row(row, [vals[p] for p in PHASES])
    print(paper)

    a, d = measured["A"], measured["D"]
    # Random reads: no change.
    assert abs(a["FRR"] / d["FRR"] - 1.0) < 0.15
    # Random updates: the fairness trade-off means A must NOT be faster.
    assert a["FRU"] / d["FRU"] <= 1.02


def test_sequential_cpu_utilization(iobench_results):
    """The motivating measurement: the old system burns about half the CPU
    to move ~750 KB/s."""
    d = iobench_results["D"]
    assert 0.25 <= d.cpu_util["FSR"] <= 0.7
    # The new system moves ~2x the data without proportional CPU growth.
    a = iobench_results["A"]
    cpu_per_byte_a = a.cpu_util["FSR"] / a.rates["FSR"]
    cpu_per_byte_d = d.cpu_util["FSR"] / d.rates["FSR"]
    assert cpu_per_byte_a < cpu_per_byte_d
