"""Ablation: the rejected "driver clustering" alternative.

"Have the disk driver combine (cluster) any contiguous requests in its
queue into one large request...  driver clustering helps only writes.  The
reason for this is that there can be many related writes in the disk queue
at once, since writes are asynchronous in nature.  Reads, on the other
hand, are synchronous, so there can be at most two ... in the queue at
once."  It also leaves the per-block file system CPU cost in place.

We run the old (unclustered) file system over a driver with coalescing on
and off, on a rotdelay=0 layout (driver clustering requires contiguity).
"""

from repro.bench.report import Table
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams
from repro.units import KB, MB

FILE_SIZE = 8 * MB


def run_cell(coalesce):
    cfg = SystemConfig.config_d().with_(
        fs_params=FsParams(rotdelay_ms=0.0, maxcontig=1),
        driver_coalesce=coalesce,
        track_buffer=True,
    )
    system = System.booted(cfg)
    proc = Proc(system)
    chunk = bytes(8 * KB)

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    t0 = system.now
    system.run(write_phase())
    write_rate = FILE_SIZE / (system.now - t0) / 1024

    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/f")
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    cpu0 = system.cpu.system_time
    system.run(read_phase())
    read_rate = FILE_SIZE / (system.now - t0) / 1024
    read_cpu = system.cpu.system_time - cpu0
    coalesced = system.driver.stats["coalesced"]
    return read_rate, write_rate, read_cpu, coalesced


def test_driver_clustering_helps_only_writes(once):
    def run():
        return {False: run_cell(False), True: run_cell(True)}

    results = once(run)
    table = Table(
        title="Driver clustering ablation (old FS code, rotdelay=0)",
        columns=["seq read", "seq write", "read CPU", "merges"],
    )
    for coalesce, (r, w, cpu, merges) in results.items():
        label = "coalescing on" if coalesce else "coalescing off"
        table.add_row(label, [round(r), round(w), round(cpu, 2), int(merges)])
    print()
    print(table.render("{:>11}"))

    off, on = results[False], results[True]
    # Writes improve substantially: queued contiguous writes merge.
    assert on[1] > 1.5 * off[1]
    assert on[3] > 100  # it really did merge requests
    # Reads barely change: never more than ~2 reads queued at once.
    assert abs(on[0] - off[0]) / off[0] < 0.15
    # And the file system CPU per byte does not improve (same traversals).
    assert on[2] > 0.9 * off[2]
