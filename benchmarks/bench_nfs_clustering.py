"""Does clustering survive the wire?  (the figure 1 NFS scenario)

"An additional goal was that *all* users of the file system should benefit
from the enhancements" — including remote NFS clients, whose reads are
ultimately served by the server's UFS.  We stream a file to an NFS client
over a 1991 Ethernet (10 Mbit/s ≈ 1.2 MB/s) and over a faster wire, with
the server running the clustered (A) and stock (D) kernels.

Expected shape: on the slow wire, D's disk (~780 KB/s) is the bottleneck
and clustering helps; on a fast wire the server disk is always the
bottleneck and the full ~1.9x ratio reappears.
"""

from repro.bench.report import Table
from repro.kernel import SystemConfig
from repro.nfs import build_world
from repro.nfs.net import ETHERNET_10MBIT
from repro.units import KB, MB
from repro.vfs import RW

FILE_SIZE = 4 * MB


def stream(config_name, bandwidth):
    server_cfg = SystemConfig.by_name(config_name)
    client, server, mount = build_world(server_config=server_cfg,
                                        bandwidth=bandwidth)

    def setup():
        vn = yield from mount.open("/stream", create=True)
        yield from vn.rdwr(RW.WRITE, 0, bytes(FILE_SIZE))
        yield from vn.fsync()
        return vn

    vn = client.run(setup())
    # Cold caches on both machines.
    for page in client.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            client.pagecache.destroy(page)
    vn.readahead.reset()
    server_vn = server.run(server.mount.namei("/stream"))
    for page in server.pagecache.vnode_pages(server_vn):
        if not page.locked and not page.dirty:
            server.pagecache.destroy(page)
    server_vn.inode.readahead.reset()

    t0 = client.now

    def read_all():
        offset = 0
        while offset < FILE_SIZE:
            data = yield from vn.rdwr(RW.READ, offset, 8 * KB)
            offset += len(data)

    client.run(read_all())
    return FILE_SIZE / (client.now - t0) / 1024


def test_clustering_through_nfs(once):
    fast_wire = 8 * ETHERNET_10MBIT  # a future faster LAN

    def run():
        return {
            ("A", "10Mbit"): stream("A", ETHERNET_10MBIT),
            ("D", "10Mbit"): stream("D", ETHERNET_10MBIT),
            ("A", "fast"): stream("A", fast_wire),
            ("D", "fast"): stream("D", fast_wire),
        }

    results = once(run)
    table = Table(
        title="NFS sequential read, 4 MB file (client KB/s)",
        columns=["10Mbit wire", "fast wire"],
    )
    for cfg in ("A", "D"):
        table.add_row(f"server {cfg}", [
            round(results[(cfg, "10Mbit")]),
            round(results[(cfg, "fast")]),
        ])
    print()
    print(table.render("{:>13}"))

    slow_ratio = results[("A", "10Mbit")] / results[("D", "10Mbit")]
    fast_ratio = results[("A", "fast")] / results[("D", "fast")]
    print(f"\nA/D ratio: {slow_ratio:.2f} on the slow wire, "
          f"{fast_ratio:.2f} on the fast wire")
    # The wire caps the slow case; the disk ratio re-emerges on fast links.
    assert results[("A", "10Mbit")] < ETHERNET_10MBIT / 1024
    assert fast_ratio > slow_ratio
    assert fast_ratio > 1.5
    # Remote users still benefit even at 10 Mbit (D's disk is the choke).
    assert slow_ratio > 1.05
