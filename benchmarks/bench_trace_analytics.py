"""What trace analytics and telemetry cost — and what the series show.

Two claims from the issue:

* **Telemetry is free in simulated time**: a :class:`TelemetryRecorder`
  sampling every 10 ms of simulated time reads live counters from a
  daemon timer — it schedules no I/O and charges no CPU, so IObench's
  FSR/FSW rates with the recorder on must be within 1% of the rates
  with it off (they are in fact bit-identical).
* **The series are legible**: a scrub-daemon pass between two idle
  windows shows up as a clear bump in the ``disk.driver`` queue-depth
  series — telemetry can *bracket* background work, not just average
  over it — while ``vm.freemem`` records the write phase's page
  consumption.

Emits ``BENCH_trace.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.bench.iobench import IObench
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FILE_SIZE = 4 * MB
RECORD = 8 * KB
#: The acceptance bound: 10 ms telemetry perturbs headline rates < 1%.
MAX_PERTURBATION = 0.01


def _write_payload(section, payload):
    out_path = Path(__file__).resolve().parents[1] / "BENCH_trace.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing["benchmark"] = "trace_analytics"
    existing[section] = payload
    out_path.write_text(json.dumps(existing, indent=2, default=str) + "\n")
    print(f"wrote {out_path}")


def _rates(telemetry_interval):
    bench = IObench(SystemConfig.config_c(), file_size=FILE_SIZE,
                    telemetry_interval=telemetry_interval)
    result = bench.run()
    samples = bench.telemetry.samples_taken if bench.telemetry else 0
    return result.rates, samples


def test_telemetry_overhead(once):
    def run():
        off, _ = _rates(None)
        on, samples = _rates(0.010)
        return {"off": off, "on": on, "samples": samples}

    cell = once(run)
    print()
    deltas = {}
    for phase in sorted(cell["off"]):
        off, on = cell["off"][phase], cell["on"][phase]
        deltas[phase] = abs(on - off) / off
        print(f"{phase}: {off:8.0f} KB/s off, {on:8.0f} KB/s with "
              f"telemetry ({deltas[phase] * 100:.3f}% delta)")
    print(f"({cell['samples']} samples at 10 ms simulated cadence)")

    assert cell["samples"] > 100  # the recorder actually ran
    assert deltas["FSR"] < MAX_PERTURBATION
    assert deltas["FSW"] < MAX_PERTURBATION

    _write_payload("telemetry_overhead", {
        "rates_off": cell["off"],
        "rates_on": cell["on"],
        "samples": cell["samples"],
        "perturbation": deltas,
        "bound": MAX_PERTURBATION,
    })


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def _scrub_bracket():
    """Write a file, idle, run one scrub window, idle again — and watch
    the queue-depth and freemem series the whole way."""
    system = System.booted(SystemConfig.config_a().with_(checksums=True))
    recorder = system.start_telemetry(
        0.010, ["vm.freemem", "disk.driver.queue_depth"])
    proc = Proc(system)

    def write_phase():
        fd = yield from proc.creat("/f")
        for i in range(FILE_SIZE // RECORD):
            yield from proc.write(fd, bytes([i % 251]) * RECORD)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    def idle(seconds):
        def anchor():
            yield system.engine.timeout(seconds)

        system.run(anchor(), name="idle")

    system.run(write_phase())
    t_write_end = system.now
    idle(0.5)
    t_scrub_start = system.now
    daemon = system.start_scrub(interval=0.02, batch_frags=64)
    idle(1.0)
    daemon.stop()
    t_scrub_end = system.now
    idle(0.5)
    recorder.stop()

    qd = recorder.series("disk.driver.queue_depth", "avg")
    freemem = recorder.series("vm.freemem", "value")
    windows = {
        "before": _mean([v for t, v in qd
                         if t_write_end < t <= t_scrub_start]),
        "during": _mean([v for t, v in qd
                         if t_scrub_start < t <= t_scrub_end]),
        "after": _mean([v for t, v in qd if t > t_scrub_end]),
    }
    return {
        "frags_scanned": daemon.report.frags_scanned,
        "samples": recorder.samples_taken,
        "queue_depth_windows": windows,
        "freemem_min": min(v for _, v in freemem),
        "freemem_max": max(v for _, v in freemem),
    }


def test_series_bracket_scrub_pass(once):
    cell = once(_scrub_bracket)
    print()
    w = cell["queue_depth_windows"]
    print(f"disk.driver queue depth: {w['before']:.4f} before the scrub "
          f"pass, {w['during']:.4f} during, {w['after']:.4f} after "
          f"({cell['frags_scanned']} frags scanned)")
    print(f"vm.freemem: {cell['freemem_max']:.0f} -> "
          f"{cell['freemem_min']:.0f} pages across the write phase")

    # The scrub pass is visibly bracketed: idle windows on both sides
    # show an (almost) empty queue, the pass itself keeps the disk busy.
    assert cell["frags_scanned"] > 0
    assert w["during"] > 10 * max(w["before"], 1e-6)
    assert w["after"] < w["during"] / 10
    # And the write phase consumed pages the series can see.
    assert cell["freemem_min"] < cell["freemem_max"]

    _write_payload("scrub_bracket", cell)
