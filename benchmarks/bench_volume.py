"""The volume layer: does a stripe actually buy bandwidth?

IObench (config A, 4 MB file) swept over the block-device layouts:
``single`` is the paper's machine; ``concat:2`` must match it exactly for
a one-disk-sized file (all the data lands on member 0); ``stripe:2`` /
``stripe:4`` must scale the sequential phases; ``mirror:2`` must match
single on writes (both legs move in parallel) while paying nothing extra
for reads.

The scaling floor asserted here is on the sequential *write* phases: with
four spindles, FSW and FSU must at least double over one spindle.  The
sequential-read phase is excluded from the floor on purpose — on the
simulated 20 MHz SS1, FSR at stripe:4 runs >90% CPU-bound (checked and
printed below), so its ceiling is the processor, not the disks; exactly
the machine-balance argument the paper makes about its own hardware.

Emits ``BENCH_volume.json`` at the repo root: KB/s per phase, p95
request latencies, and per-member load balance for every layout.
"""

import json
from pathlib import Path

from repro.bench.iobench import IObench
from repro.kernel import SystemConfig
from repro.units import MB

FILE_SIZE = 4 * MB
LAYOUTS = ("single", "concat:2", "stripe:2", "stripe:4", "mirror:2")
#: Four spindles must at least double one spindle on sequential writes.
STRIPE4_SEQ_FLOOR = 2.0


def _run_layout(layout):
    cfg = SystemConfig.config_a().with_(layout=layout)
    result = IObench(cfg, file_size=FILE_SIZE).run()
    latency = result.pipeline["requests"]["latency"]
    return {
        "rates": result.rates,
        "cpu_util": result.cpu_util,
        "p95_ms": {kind: cell["p95"] * 1e3 for kind, cell in latency.items()},
        "queue_depth": result.pipeline["queue_depth"],
        "members": result.pipeline.get("members", []),
    }


def test_volume_layout_sweep(once):
    def run():
        return {layout: _run_layout(layout) for layout in LAYOUTS}

    results = once(run)
    print()
    for layout, cell in results.items():
        rates = cell["rates"]
        print(f"{layout:10s} FSR={rates['FSR']:7.0f} FSW={rates['FSW']:7.0f} "
              f"FSU={rates['FSU']:7.0f} FRR={rates['FRR']:6.0f} "
              f"FRU={rates['FRU']:6.0f} KB/s  "
              f"cpu(FSR)={cell['cpu_util']['FSR']:.2f}")

    single = results["single"]["rates"]
    stripe4 = results["stripe:4"]["rates"]

    # The tentpole claim: four spindles at least double one spindle on the
    # sequential write phases.
    for phase in ("FSW", "FSU"):
        scale = stripe4[phase] / single[phase]
        assert scale >= STRIPE4_SEQ_FLOOR, (
            f"stripe:4 {phase} scaled only {scale:.2f}x over single")

    # Sequential read still improves, and its shortfall from 2x is the
    # CPU's fault, not the volume's: the stripe run is CPU-saturated.
    assert stripe4["FSR"] > single["FSR"] * 1.3
    assert results["stripe:4"]["cpu_util"]["FSR"] > 0.9

    # concat:2 is byte-for-byte the single-disk run for a file that fits
    # the first member: same rates.
    for phase, rate in single.items():
        assert abs(results["concat:2"]["rates"][phase] - rate) < 1e-6

    # mirror:2 writes both legs in parallel: no slower than single writes
    # (small tolerance for balancing noise), reads never worse either.
    for phase in ("FSW", "FSU", "FRU"):
        assert results["mirror:2"]["rates"][phase] >= single[phase] * 0.95
    for phase in ("FSR", "FRR"):
        assert results["mirror:2"]["rates"][phase] >= single[phase] * 0.8

    # Stripes spread the load: every member of stripe:4 did real work,
    # and no member hogged more than half the bytes.
    members = results["stripe:4"]["members"]
    assert len(members) == 4
    total = sum(m["bytes"] for m in members)
    for m in members:
        assert 0 < m["bytes"] < total / 2

    payload = {"benchmark": "volume", "file_size": FILE_SIZE,
               "seq_floor": STRIPE4_SEQ_FLOOR, "layouts": results}
    out_path = Path(__file__).resolve().parents[1] / "BENCH_volume.json"
    out_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {out_path}")
