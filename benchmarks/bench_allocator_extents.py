"""The allocator-confidence experiment (section "Allocator details").

Paper: "In the best case, the average extent size was 1.5MB in a 13MB
file.  In the worst case, the average extent size was 62KB in a 16MB file"
(written into the last 15% of a heavily fragmented /home partition).

We run both at ~1/6 scale (a 64 MB partition instead of ~400 MB) so the
benchmark completes in seconds; extent sizes scale with file size, so the
headline comparison — megabyte-scale extents on a fresh disk, tens-of-KB
extents on an aged one, and clustering still functioning on both — is
preserved.  The conclusion under test is the paper's: the allocator does
well enough that preallocation is unnecessary.
"""

from repro.bench.agefs import age_filesystem, measure_extents
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB


def small_machine():
    # ~66 MB disk: 512 cyl x 9 heads x 28 spt x 512B.  cpg=32 keeps the
    # cylinder groups (and so the maxbpg spill quota, which bounds extent
    # length for big files) proportionate to the paper's 400 MB disk.
    from repro.ufs import FsParams

    cfg = SystemConfig.config_a()
    return cfg.with_(
        geometry=DiskGeometry.uniform(cylinders=512, heads=9,
                                      sectors_per_track=28),
        fs_params=FsParams.clustered(120 * KB, cpg=32),
    )


def write_big_file(system, path, size):
    proc = Proc(system)

    def work():
        fd = yield from proc.creat(path)
        chunk = bytes(64 * KB)
        for _ in range(size // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    system.run(work())


def test_best_case_fresh_filesystem(once):
    """One large file on an empty fs: megabyte-scale average extents."""
    def run():
        system = System.booted(small_machine())
        write_big_file(system, "/big", 13 * MB)
        return measure_extents(system, "/big")

    report = once(run)
    print(f"\nBest case: 13 MB file on a fresh fs -> "
          f"{report.count} extents, average {report.average / KB:.0f} KB, "
          f"largest {report.largest / KB:.0f} KB")
    print("(paper: average extent 1.5 MB in a 13 MB file, full-size disk)")
    # Megabyte-scale extents: the allocator really does lay out contiguously.
    assert report.average >= 600 * KB
    assert report.largest >= 950 * KB  # maxbpg (126 blocks) caps a run


def test_worst_case_aged_filesystem(once):
    """Fill the last 15% of an aged, fragmented fs: small but usable
    extents — clustering degrades gracefully rather than collapsing."""
    def run():
        system = System.booted(small_machine())
        age_filesystem(system, target_utilization=0.85, seed=7)
        write_big_file(system, "/late", 6 * MB)
        return system, measure_extents(system, "/late")

    system, report = once(run)
    print(f"\nWorst case: 6 MB file into the last 15% of an aged fs -> "
          f"{report.count} extents, average {report.average / KB:.0f} KB, "
          f"largest {report.largest / KB:.0f} KB")
    print("(paper: average extent 62 KB in a 16 MB file, full-size disk)")
    assert report.average >= 24 * KB  # still multi-block clusters
    assert report.average < 1 * MB  # but clearly degraded vs fresh
    # The file must still be complete and correct-sized.
    assert report.file_size == 6 * MB
