"""Cluster-size sensitivity: why 56 KB default, why 120 KB for the bench.

The paper uses 56 KB clusters by default ("there are still drivers out
there with 16 bit limitations") but benchmarks configuration A at 120 KB.
The sweep separates the two benefits of clustering:

* **read throughput** is nearly flat in cluster size once the layout is
  contiguous — the drive's look-ahead buffer streams regardless — but the
  **CPU per byte** falls steeply with cluster size ("incur less CPU cost
  per byte"), which is the scaling-to-faster-disks motivation;
* **write throughput** scales directly with cluster size (each cluster
  write loses most of a rotation, so fewer, bigger clusters win).
"""

from repro.bench.report import Table
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams
from repro.units import KB, MB

FILE_SIZE = 8 * MB


def seq_rates(cluster_kb):
    cfg = SystemConfig.config_a().with_(
        fs_params=FsParams.clustered(cluster_kb * KB))
    system = System.booted(cfg)
    proc = Proc(system)
    chunk = bytes(8 * KB)

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    t0 = system.now
    system.run(write_phase())
    write_rate = FILE_SIZE / (system.now - t0) / 1024

    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/f")
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    cpu0 = system.cpu.system_time
    system.run(read_phase())
    read_rate = FILE_SIZE / (system.now - t0) / 1024
    read_cpu_ms_per_mb = (system.cpu.system_time - cpu0) / (FILE_SIZE / MB) * 1000
    return read_rate, write_rate, read_cpu_ms_per_mb


def test_cluster_size_sweep(once):
    sizes = [8, 24, 56, 120, 240]

    def run():
        return {size: seq_rates(size) for size in sizes}

    results = once(run)
    table = Table(title="Cluster size sweep (config A machine)",
                  columns=["read KB/s", "write KB/s", "read CPU ms/MB"])
    for size, (r, w, cpu) in results.items():
        table.add_row(f"{size}KB", [round(r), round(w), round(cpu)])
    print()
    print(table.render("{:>15}"))

    # Reads are already streaming at any cluster size (contiguous layout +
    # track buffer); the cluster buys CPU, not bandwidth.  Through read()
    # the saving is muted because "the IObench CPU times are dominated by
    # the copy time" (the paper's reason for using mmap in figure 12) —
    # the per-I/O work still falls by ~an order of magnitude.
    assert results[56][0] > 0.9 * results[8][0]
    cpus = [results[s][2] for s in sizes]
    assert all(b <= a for a, b in zip(cpus, cpus[1:]))  # monotone decrease
    assert results[120][2] < 0.93 * results[8][2]
    # Writes scale with cluster size (fewer rotation misses per byte).
    assert results[240][1] > results[24][1] > results[8][1]
    assert results[120][1] > 3 * results[8][1]
