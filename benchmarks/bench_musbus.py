"""The MusBus observation: timesharing "improved only slightly".

The paper was "a little disappointed with the time-sharing numbers" until
they saw why: MusBus sleeps most of the time, runs small programs, and its
largest transfer is one file-system block — so clustering has almost
nothing to bite on.  We assert exactly that: A and D complete the same
multi-user script mix within a few percent of each other, while the same
systems differ by ~2x on sequential I/O.
"""

from repro.bench import run_musbus
from repro.bench.report import Table
from repro.kernel.config import SystemConfig


def test_timesharing_improves_only_slightly(once):
    def run():
        return {
            name: run_musbus(SystemConfig.by_name(name), users=4,
                             iterations=6)
            for name in ("A", "D")
        }

    results = once(run)
    table = Table(title="MusBus-like timesharing mix (4 users x 6 scripts)",
                  columns=["elapsed (s)", "scripts/s", "cpu util"])
    for name, r in results.items():
        table.add_row(name, [round(r.elapsed, 2), round(r.throughput, 2),
                             round(r.cpu_util, 2)])
    print()
    print(table.render("{:>14}"))

    ratio = results["D"].elapsed / results["A"].elapsed
    print(f"\nD/A elapsed ratio: {ratio:.3f} (paper: 'improved only slightly')")
    assert 0.97 <= ratio <= 1.25, ratio
