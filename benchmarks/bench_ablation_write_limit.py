"""Ablation: sizing the write limit ("write limits or fairness").

The paper's reasoning: a limit of one write leaves pipeline bubbles; two
or three fix sequential writes but hurt random I/O (disksort needs a
window to sort); unlimited lets one process lock down all of memory.  They
settled on 240 KB.  We sweep the limit and report sequential write rate,
random update rate, and how much memory the writer pinned.
"""

import random

from repro.bench.report import Table
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FILE_SIZE = 8 * MB


def run_cell(limit):
    cfg = SystemConfig.config_a()
    cfg = cfg.with_(tuning=cfg.tuning.with_(write_limit=limit))
    system = System.booted(cfg)
    proc = Proc(system)
    chunk = bytes(8 * KB)

    def seq_write():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    t0 = system.now
    system.run(seq_write())
    seq_rate = FILE_SIZE / (system.now - t0) / 1024

    rng = random.Random(3)
    records = FILE_SIZE // (8 * KB)
    offsets = [rng.randrange(records) * 8 * KB for _ in range(1024)]

    def random_update():
        fd = yield from proc.open("/f")
        for off in offsets:
            yield from proc.pwrite(fd, chunk, off)
        yield from proc.fsync(fd)

    t0 = system.now
    system.run(random_update())
    rand_rate = len(offsets) * 8 * KB / (system.now - t0) / 1024
    max_queued = system.driver.queue_depth.maximum
    return seq_rate, rand_rate, max_queued


def test_write_limit_sweep(once):
    limits = [8 * KB, 24 * KB, 240 * KB, 0]

    def run():
        return {limit: run_cell(limit) for limit in limits}

    results = once(run)
    table = Table(
        title="Write limit sweep (config A machine)",
        columns=["seq write", "rand update", "max queue"],
    )
    for limit, (seq, rand, queued) in results.items():
        label = "unlimited" if limit == 0 else f"{limit // 1024}KB"
        table.add_row(label, [round(seq), round(rand), int(queued)])
    print()
    print(table.render("{:>12}"))

    tiny, small, paper, unlimited = (results[l] for l in limits)
    # One outstanding write: the pipeline has bubbles.
    assert tiny[0] < 0.85 * paper[0]
    # The paper's 240 KB keeps sequential writes at full speed...
    assert paper[0] > 0.95 * unlimited[0]
    # ...while unlimited lets the writer pin far more memory (the fairness
    # problem: "a single process can lock down all of memory").
    assert unlimited[2] > 2 * paper[2]
    # And unlimited random updates are at least as fast (disksort window).
    assert unlimited[1] >= 0.98 * paper[1]
