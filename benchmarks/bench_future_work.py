"""The paper's "Further Work" section, implemented and measured.

* **Bmap cache**: "A small cache in the inode could reduce the cost of
  bmap substantially" (and, with extent tuples, prototype the in-memory
  half of "Extents vs blocks").  We compare bmap CPU for a large-file
  sequential read with and without the cache.
* **Random clustering**: "random reads of 20KB segments of a file, will
  not receive the full benefits of clustering ... the request size could
  be used as a hint".  We compare random 24 KB reads with the hint on and
  off.
* **B_ORDER**: "Requests in the disk queue with the B_ORDER flag may not
  be reordered...  The performance of commands like ``rm *`` would improve
  substantially."  We time ``rm *`` of 64 files with synchronous metadata
  versus B_ORDER ordered asynchronous metadata.
"""

import random

from repro.bench.report import Table
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB


def small_geometry():
    return DiskGeometry.uniform(cylinders=400, heads=4, sectors_per_track=32)


def build(config):
    return System.booted(config)


def test_bmap_cache_reduces_bmap_cpu(once):
    def run():
        out = {}
        for enabled in (False, True):
            cfg = SystemConfig.config_a().with_(geometry=small_geometry())
            cfg = cfg.with_(tuning=cfg.tuning.with_(bmap_cache=enabled))
            system = build(cfg)
            proc = Proc(system)

            def setup():
                fd = yield from proc.creat("/big")
                for _ in range(4 * MB // (64 * KB)):
                    yield from proc.write(fd, bytes(64 * KB))
                yield from proc.fsync(fd)
                return fd

            fd = system.run(setup())
            vn = system.run(system.mount.namei("/big"))
            for page in system.pagecache.vnode_pages(vn):
                if not page.locked and not page.dirty:
                    system.pagecache.destroy(page)
            vn.inode.readahead.reset()
            system.cpu.reset_ledger()

            def read_all():
                yield from proc.lseek(fd, 0)
                while True:
                    data = yield from proc.read(fd, 8 * KB)
                    if not data:
                        break

            system.run(read_all())
            out[enabled] = system.cpu.breakdown().get("bmap", 0.0)
        return out

    results = once(run)
    table = Table(title="Bmap cache: bmap CPU for a 4 MB sequential read",
                  columns=["bmap CPU (s)"])
    table.add_row("without cache", [round(results[False], 3)])
    table.add_row("with cache", [round(results[True], 3)])
    print()
    print(table.render("{:>14}"))
    assert results[True] < 0.6 * results[False]


def test_random_clustering_hint(once):
    record = 24 * KB  # a "random read of 20KB segments" style workload

    def run():
        out = {}
        for enabled in (False, True):
            cfg = SystemConfig.config_a().with_(geometry=small_geometry())
            cfg = cfg.with_(tuning=cfg.tuning.with_(random_clustering=enabled))
            system = build(cfg)
            proc = Proc(system)

            def setup():
                fd = yield from proc.creat("/seg")
                for _ in range(6 * MB // (64 * KB)):
                    yield from proc.write(fd, bytes(64 * KB))
                yield from proc.fsync(fd)
                return fd

            fd = system.run(setup())
            vn = system.run(system.mount.namei("/seg"))
            for page in system.pagecache.vnode_pages(vn):
                if not page.locked and not page.dirty:
                    system.pagecache.destroy(page)
            vn.inode.readahead.reset()

            rng = random.Random(5)
            segments = 6 * MB // record
            offsets = [rng.randrange(segments) * record for _ in range(128)]

            def read_random():
                for off in offsets:
                    yield from proc.pread(fd, record, off)

            t0 = system.now
            system.run(read_random())
            rate = len(offsets) * record / (system.now - t0) / 1024
            out[enabled] = (rate, system.mount.stats["read_ios"])
        return out

    results = once(run)
    table = Table(title="Random clustering: random 24 KB reads",
                  columns=["KB/s", "read I/Os"])
    table.add_row("hint off", [round(results[False][0]),
                               int(results[False][1])])
    table.add_row("hint on", [round(results[True][0]),
                              int(results[True][1])])
    print()
    print(table.render("{:>11}"))
    # Without the hint the intra-record sequentiality triggers *general*
    # read-ahead, which over-fetches whole 120 KB clusters for a 24 KB
    # record; the hint fetches exactly the record in one I/O and is
    # substantially faster.
    assert results[True][0] > 1.15 * results[False][0]


def test_b_order_speeds_up_rm_star(once):
    nfiles = 64

    def run():
        out = {}
        for ordered in (False, True):
            cfg = SystemConfig.config_a().with_(
                geometry=small_geometry(), ordered_metadata=ordered,
            )
            system = build(cfg)
            proc = Proc(system)

            def setup():
                for i in range(nfiles):
                    fd = yield from proc.creat(f"/f{i:03d}")
                    yield from proc.write(fd, bytes(4 * KB))
                    yield from proc.fsync(fd)
                    yield from proc.close(fd)

            system.run(setup())

            def rm_star():
                for i in range(nfiles):
                    yield from proc.unlink(f"/f{i:03d}")
                # The command is done when the *process* finishes; ordered
                # asynchronous metadata writes drain behind it (safely,
                # because the barrier preserves their order on disk).
                return system.now

            t0 = system.now
            done_at = system.run(rm_star())
            out[ordered] = done_at - t0
        return out

    results = once(run)
    table = Table(title=f"B_ORDER: rm * of {nfiles} files (time to prompt)",
                  columns=["elapsed (s)"])
    table.add_row("sync metadata (today)", [round(results[False], 3)])
    table.add_row("B_ORDER metadata", [round(results[True], 3)])
    print()
    print(table.render("{:>13}"))
    assert results[True] < 0.5 * results[False]


def test_ufs_hole_bypass_saves_cached_read_cpu(once):
    """UFS_HOLE: 'we could bypass the bmap in all the cases that the page
    was in memory' — measured as getpage-path CPU for fully cached rereads."""
    def run():
        out = {}
        for enabled in (False, True):
            cfg = SystemConfig.config_a().with_(geometry=small_geometry())
            cfg = cfg.with_(tuning=cfg.tuning.with_(hole_check_bypass=enabled))
            system = build(cfg)
            proc = Proc(system)

            def setup():
                fd = yield from proc.creat("/hot")
                yield from proc.write(fd, bytes(2 * MB))
                yield from proc.fsync(fd)
                return fd

            fd = system.run(setup())

            def reread():
                yield from proc.lseek(fd, 0)
                while True:
                    data = yield from proc.read(fd, 8 * KB)
                    if not data:
                        break

            system.run(reread())  # warm the cache fully
            system.cpu.reset_ledger()
            system.run(reread())  # measured: every page cached
            out[enabled] = (system.cpu.breakdown().get("bmap", 0.0),
                            system.mount.stats["bmap_bypassed"])
        return out

    results = once(run)
    table = Table(title="UFS_HOLE bypass: cached 2 MB re-read",
                  columns=["bmap CPU (s)", "bypasses"])
    table.add_row("bmap always (today)", [round(results[False][0], 3),
                                          int(results[False][1])])
    table.add_row("bypass when no holes", [round(results[True][0], 3),
                                           int(results[True][1])])
    print()
    print(table.render("{:>14}"))
    assert results[True][0] < 0.2 * results[False][0]
    assert results[True][1] >= 250


def test_data_in_the_inode_small_file_service(once):
    """'the system could satisfy many requests directly from the inode' —
    a small-file re-read mix (config files, .h files) with and without."""
    nfiles = 24

    def run():
        out = {}
        for enabled in (False, True):
            cfg = SystemConfig.config_a().with_(geometry=small_geometry())
            cfg = cfg.with_(tuning=cfg.tuning.with_(inode_data_cache=enabled))
            system = build(cfg)
            proc = Proc(system)

            def setup():
                for i in range(nfiles):
                    fd = yield from proc.creat(f"/conf{i:02d}")
                    yield from proc.write(fd, bytes(500 + i * 37))
                    yield from proc.fsync(fd)
                    yield from proc.close(fd)

            system.run(setup())

            def hot_rereads():
                for _ in range(20):
                    for i in range(nfiles):
                        fd = yield from proc.open(f"/conf{i:02d}")
                        yield from proc.read(fd, 2 * KB)
                        yield from proc.close(fd)

            system.run(hot_rereads())  # warm
            system.cpu.reset_ledger()
            t0 = system.now
            system.run(hot_rereads())
            out[enabled] = (system.now - t0, system.cpu.system_time)
        return out

    results = once(run)
    table = Table(title=f"Data in the inode: {nfiles} small files x 20 re-reads",
                  columns=["elapsed (s)", "CPU (s)"])
    table.add_row("page cache (today)", [round(results[False][0], 3),
                                         round(results[False][1], 3)])
    table.add_row("inode cache", [round(results[True][0], 3),
                                  round(results[True][1], 3)])
    print()
    print(table.render("{:>13}"))
    assert results[True][1] < 0.75 * results[False][1]
