"""Crash-point exploration throughput: states enumerated and verified
per second of wall clock, and what the engine buys in coverage.

The explorer's cost is dominated by verification (fsck repair + remount +
contract check + deep sanitizer pass), which runs once per *distinct*
state — so the table also shows what canonical-image deduplication saves:
``raw`` states materialized and hashed versus ``distinct`` states paying
the full verification price.

The relocate row doubles as the bug memorial: that preset is the
distilled workload whose crash states caught the fragment-relocation
durability bug (promised bytes lost to reuse of freed fragments); it now
verifies clean with the relocation barriers in place.
"""

import time

from repro.bench.report import Table
from repro.faults import CrashpointExplorer, PRESETS

BENCH_PRESETS = ["relocate", "overwrite", "smoke"]


def explore(name):
    t0 = time.perf_counter()
    explorer = CrashpointExplorer(PRESETS[name], seed=0)
    report = explorer.run()
    elapsed = time.perf_counter() - t0
    return report, elapsed


def test_crashpoint_throughput(once):
    def run():
        return [(name,) + explore(name) for name in BENCH_PRESETS]

    results = once(run)
    table = Table(
        title="Crash-state exploration (enumerate, dedup, verify)",
        columns=["points", "raw", "distinct", "repairs",
                 "raw/s", "verified/s", "violations"],
    )
    for name, report, elapsed in results:
        table.add_row(name, [
            report.crash_points, report.raw_states, report.distinct_states,
            report.fsck_repairs,
            round(report.raw_states / elapsed),
            round(report.distinct_states / elapsed, 1),
            len(report.violations),
        ])
    print()
    print(table.render("{:>11}"))

    for name, report, _ in results:
        assert report.ok, f"{name}: durability-contract violations"
        assert not report.states_truncated
    smoke = next(r for n, r, _ in results if n == "smoke")
    assert smoke.distinct_states >= 200  # the acceptance floor
    # Dedup is doing real work: many raw states collapse to one image.
    assert smoke.raw_states > 2 * smoke.distinct_states
