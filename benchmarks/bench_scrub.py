"""What end-to-end integrity costs.

Two claims from the issue:

* **Checksum overhead**: verifying every fragment on every read (and
  stamping on every write) must cost less than 15% of IObench sequential
  read throughput — the paper's extent-like numbers have to survive the
  robustness layer.
* **Scrub pacing**: a background scrub daemon makes progress during a
  foreground workload without gutting it — the throttle defers to
  foreground I/O rather than competing with it.

Emits ``BENCH_scrub.json`` at the repo root.
"""

import hashlib
import json
from pathlib import Path

from repro.bench.iobench import IObench
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FILE_SIZE = 4 * MB
RECORD = 8 * KB
#: The acceptance bound: checksummed sequential reads keep >= 85% of the
#: plain configuration's throughput.
MIN_SEQ_READ_FRACTION = 0.85


def _iobench_rates(checksums):
    bench = IObench(SystemConfig.config_a().with_(checksums=checksums),
                    file_size=FILE_SIZE)
    return bench.run().rates


def test_checksum_overhead(once):
    def run():
        return {"off": _iobench_rates(False), "on": _iobench_rates(True)}

    rates = once(run)
    print()
    overhead = {}
    for phase in sorted(rates["off"]):
        off, on = rates["off"][phase], rates["on"][phase]
        overhead[phase] = 100.0 * (1.0 - on / off)
        print(f"{phase}: {off:7.0f} -> {on:7.0f} KB/s "
              f"({overhead[phase]:+5.1f}% overhead)")

    assert rates["on"]["FSR"] >= MIN_SEQ_READ_FRACTION * rates["off"]["FSR"]

    payload = {
        "benchmark": "scrub",
        "file_size": FILE_SIZE,
        "checksum_overhead": {
            "rates_off": rates["off"],
            "rates_on": rates["on"],
            "overhead_pct": overhead,
            "seq_read_fraction": rates["on"]["FSR"] / rates["off"]["FSR"],
            "bound": MIN_SEQ_READ_FRACTION,
        },
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_scrub.json"
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing.update(payload)
    out_path.write_text(json.dumps(existing, indent=2, default=str) + "\n")
    print(f"wrote {out_path}")


def _seq_read_rate(daemon_interval):
    """Write then re-read a file cold; optionally with a scrub daemon."""
    cfg = SystemConfig.config_a().with_(checksums=True)
    system = System.booted(cfg)
    daemon = None
    if daemon_interval is not None:
        daemon = system.start_scrub(interval=daemon_interval, batch_frags=64)
    proc = Proc(system)

    def write_phase():
        fd = yield from proc.creat("/f")
        for i in range(FILE_SIZE // RECORD):
            yield from proc.write(fd, bytes([i % 251]) * RECORD)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(write_phase())
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    digest = hashlib.sha256()

    def read_phase():
        fd = yield from proc.open("/f")
        while True:
            data = yield from proc.read(fd, RECORD)
            if not data:
                break
            digest.update(data)

    t0 = system.now
    system.run(read_phase())
    rate = FILE_SIZE / (system.now - t0) / 1024
    scanned = daemon.report.frags_scanned if daemon is not None else 0
    detected = daemon.report.detected if daemon is not None else 0
    if daemon is not None:
        daemon.stop()
    return digest.hexdigest(), rate, scanned, detected


def test_scrub_daemon_interference(once):
    def run():
        base_digest, base_rate, _, _ = _seq_read_rate(None)
        digest, rate, scanned, detected = _seq_read_rate(0.02)
        return {"base_digest": base_digest, "base_rate": base_rate,
                "digest": digest, "rate": rate,
                "frags_scanned": scanned, "detected": detected}

    cell = once(run)
    print()
    print(f"seq read: {cell['base_rate']:7.0f} KB/s alone, "
          f"{cell['rate']:7.0f} KB/s with scrub daemon "
          f"({cell['frags_scanned']} frags scanned meanwhile)")

    # The daemon made progress, returned correct data everywhere, found
    # nothing wrong on a healthy disk, and left the workload most of the
    # disk (generous 2x bound: pacing, not parity).
    assert cell["digest"] == cell["base_digest"]
    assert cell["frags_scanned"] > 0
    assert cell["detected"] == 0
    assert cell["rate"] >= cell["base_rate"] / 2

    out_path = Path(__file__).resolve().parents[1] / "BENCH_scrub.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing["benchmark"] = "scrub"
    existing["daemon_interference"] = cell
    out_path.write_text(json.dumps(existing, indent=2, default=str) + "\n")
    print(f"wrote {out_path}")
