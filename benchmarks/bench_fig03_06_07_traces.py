"""Figures 3, 6, and 7: the read-ahead and write-clustering event traces.

These regenerate the paper's per-page box diagrams by tracing what
ufs_getpage/ufs_putpage actually did while a process touched pages in
order, and render them in the same style.
"""

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams
from repro.core import ClusterTuning
from repro.units import KB

PAGE = 8 * KB


def build_system(maxcontig_blocks, read_clustering, write_clustering):
    cfg = SystemConfig(
        name="trace",
        geometry=DiskGeometry.uniform(cylinders=200, heads=4,
                                      sectors_per_track=32),
        fs_params=FsParams(rotdelay_ms=0.0, maxcontig=maxcontig_blocks),
        tuning=ClusterTuning(
            read_clustering=read_clustering,
            write_clustering=write_clustering,
            freebehind=False, write_limit=0,
        ),
    )
    system = System.booted(cfg)
    system.tracer.enabled = True
    return system


def render_boxes(events_per_page):
    """Figure 3/6/7 style: one box per page, actions inside."""
    headers = [f"page {i}" for i in range(len(events_per_page))]
    width = max(
        [len(h) for h in headers]
        + [len(line) for cell in events_per_page for line in cell]
    ) + 2
    depth = max(len(cell) for cell in events_per_page)
    rows = ["|" + "|".join(h.center(width) for h in headers) + "|"]
    for level in range(depth):
        cells = []
        for cell in events_per_page:
            text = cell[level] if level < len(cell) else ""
            cells.append(text.center(width))
        rows.append("|" + "|".join(cells) + "|")
    return "\n".join(rows)


def test_fig6_clustered_read_trace(once):
    """maxcontig=3: sync 0-2 + async 3-5 at page 0; async 6-8 at page 3."""
    system = once(lambda: build_system(3, True, True))
    proc = Proc(system)
    npages = 9

    def setup():
        fd = yield from proc.creat("/traced")
        yield from proc.write(fd, bytes(npages * PAGE))
        yield from proc.fsync(fd)
        return fd

    fd = system.run(setup())
    vn = system.run(system.mount.namei("/traced"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    vn.inode.readahead.reset()
    system.tracer.clear()

    cells = [[] for _ in range(npages)]
    for i in range(npages):
        def one(i=i):
            yield from proc.pread(fd, PAGE, i * PAGE)

        before = len(system.tracer.records)
        system.run(one())
        for rec in system.tracer.records[before:]:
            if rec.tag not in ("getpage_sync", "readahead"):
                continue
            first = rec.offset // PAGE
            last = first + rec.bytes // PAGE - 1
            kind = "sync" if rec.tag == "getpage_sync" else "async"
            cells[i].append(f"{kind} {first},..,{last}")

    print("\nFigure 6: clustered reads with maxcontig = 3")
    print(render_boxes(cells))
    assert cells[0] == ["sync 0,..,2", "async 3,..,5"]
    assert cells[1] == [] and cells[2] == []
    assert cells[3] == ["async 6,..,8"]
    assert cells[4] == [] and cells[5] == []
    assert cells[6] == []  # 9..11 is past EOF: nothing to prefetch


def test_fig3_block_read_trace(once):
    """maxcontig=1 (old system): every fault reads ahead one page."""
    system = once(lambda: build_system(1, False, False))
    proc = Proc(system)
    npages = 4

    def setup():
        fd = yield from proc.creat("/traced")
        yield from proc.write(fd, bytes(npages * PAGE))
        yield from proc.fsync(fd)
        return fd

    fd = system.run(setup())
    vn = system.run(system.mount.namei("/traced"))
    for page in system.pagecache.vnode_pages(vn):
        system.pagecache.destroy(page)
    vn.inode.readahead.reset()
    system.tracer.clear()

    cells = [[] for _ in range(npages)]
    for i in range(npages):
        def one(i=i):
            yield from proc.pread(fd, PAGE, i * PAGE)

        before = len(system.tracer.records)
        system.run(one())
        for rec in system.tracer.records[before:]:
            if rec.tag not in ("getpage_sync", "readahead"):
                continue
            page = rec.offset // PAGE
            kind = "sync read" if rec.tag == "getpage_sync" else "async read"
            cells[i].append(f"{kind} {page}")

    print("\nFigure 3: old-system read ahead (one block at a time)")
    print(render_boxes(cells))
    assert cells[0] == ["sync read 0", "async read 1"]
    assert cells[1] == ["async read 2"]
    assert cells[2] == ["async read 3"]
    assert cells[3] == []  # page 4 would be past EOF


def test_fig7_clustered_write_trace(once):
    """maxcontig=3: lie, lie, push 0-2; lie, lie, push 3-5."""
    system = once(lambda: build_system(3, True, True))
    proc = Proc(system)
    npages = 6

    def open_file():
        return (yield from proc.creat("/traced"))

    fd = system.run(open_file())
    cells = [[] for _ in range(npages)]
    for i in range(npages):
        def one(i=i):
            yield from proc.pwrite(fd, bytes(PAGE), i * PAGE)

        before = len(system.tracer.records)
        system.run(one())
        for rec in system.tracer.records[before:]:
            if rec.tag == "write_delayed":
                cells[i].append("lie")
            elif rec.tag == "write_cluster_push":
                first = rec.offset // PAGE
                last = first + rec.bytes // PAGE - 1
                cells[i].append(f"push {first},..,{last}")

    print("\nFigure 7: clustered writes with maxcontig = 3")
    print(render_boxes(cells))
    assert cells[0] == ["lie"] and cells[1] == ["lie"]
    assert cells[2] == ["push 0,..,2"]
    assert cells[3] == ["lie"] and cells[4] == ["lie"]
    assert cells[5] == ["push 3,..,5"]
