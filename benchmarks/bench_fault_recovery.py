"""Fault injection and recovery: the price of surviving a flaky disk.

Two experiments:

* A clustered sequential read of a 10 MB file over a disk whose reads fail
  transiently with p=1e-2 per service attempt.  The driver's bounded
  retries must deliver every byte correctly; the table shows what the
  retries cost in delivered bandwidth versus the fault-free run.
* The crash-consistency campaign: 50 seeded power cuts over a write/fsync
  workload.  fsck must detect and repair every torn-write inconsistency
  (clean second pass) and no fsynced byte may go missing or change.

Both are deterministic: the fault schedule comes from the plan's seed and
the cut instants from the campaign's seed.
"""

from repro.bench.report import Table
from repro.faults import CrashCampaign, FaultPlan
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FILE_SIZE = 10 * MB


def run_transient_read(plan):
    system = System.booted(SystemConfig.config_a(), fault_plan=plan)
    proc = Proc(system)
    chunk = bytes(range(256)) * 32  # 8 KB, non-trivial pattern

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    system.run(write_phase())

    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/f")
        bad = 0
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break
            if data != chunk[:len(data)]:
                bad += 1
        return bad

    t0 = system.now
    bad_chunks = system.run(read_phase())
    rate = FILE_SIZE / (system.now - t0) / 1024
    return rate, bad_chunks, system.driver.stats


def test_transient_read_recovery(once):
    def run():
        clean = run_transient_read(None)
        faulty = run_transient_read(FaultPlan(seed=42, read_transient_p=1e-2))
        return clean, faulty

    (clean_rate, clean_bad, _), (rate, bad, stats) = once(run)
    table = Table(
        title="Sequential 10 MB clustered read under transient faults",
        columns=["KB/s", "bad chunks", "retries", "exhausted"],
    )
    table.add_row("fault-free", [round(clean_rate), clean_bad, 0, 0])
    table.add_row("p=1e-2 transient", [
        round(rate), bad, int(stats["retries"]),
        int(stats["retries_exhausted"]),
    ])
    print()
    print(table.render("{:>12}"))

    assert clean_bad == 0 and bad == 0  # every byte correct, both runs
    assert stats["retries"] > 0  # faults really fired and were retried
    assert stats["retries_exhausted"] == 0  # bounded retries sufficed
    # Retries cost bandwidth but not much: backoff is milliseconds.
    assert rate > 0.5 * clean_rate


def test_crash_campaign(once):
    campaign = CrashCampaign(cuts=50, seed=0)
    stats = once(campaign.run)

    table = Table(
        title="Crash-consistency campaign (50 seeded power cuts)",
        columns=["count"],
    )
    for key, value in stats.as_dict().items():
        table.add_row(key, [value])
    print()
    print(table.render("{:>10}"))

    assert stats.cuts == 50
    assert stats.torn_writes > 0  # the cuts really tore writes
    assert stats.clean_after_repair == stats.cuts  # fsck fixed everything
    assert stats.silent_corruptions == 0  # fsync's promise held
