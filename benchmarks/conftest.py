"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints the table/figure it regenerates (run pytest with
``-s`` to see them; the same numbers are summarised in EXPERIMENTS.md).
pytest-benchmark's timer measures the wall-clock cost of running the
simulation; the *results* are simulated quantities printed by each bench.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
