"""The request pipeline and the pluggable disk scheduler.

Two claims the refactor must hold up:

* **Correctness**: the scheduler changes *ordering only* — a sequential
  read returns byte-identical data under elevator, FIFO, and deadline.
* **Observability**: with tracing on, one syscall-level read maps to a
  span tree whose disk I/Os are cluster-sized (bigger than the record),
  and the per-layer stats (queue wait, service, request latency) come out
  of the same run.

Emits ``BENCH_pipeline.json`` at the repo root with the per-scheduler
rates and pipeline reports.
"""

import hashlib
import json
from pathlib import Path

from repro.bench.iobench import IObench
from repro.kernel import Proc, System, SystemConfig
from repro.units import KB, MB

FILE_SIZE = 4 * MB
RECORD = 8 * KB
SCHEDULERS = ("elevator", "fifo", "deadline")


def _read_digest(scheduler):
    """Write then sequentially re-read a file; digest what came back."""
    cfg = SystemConfig.config_a().with_(scheduler=scheduler)
    system = System.booted(cfg)
    proc = Proc(system)

    def write_phase():
        fd = yield from proc.creat("/f")
        for i in range(FILE_SIZE // RECORD):
            yield from proc.write(fd, bytes([i % 251]) * RECORD)
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    system.run(write_phase())
    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    digest = hashlib.sha256()

    def read_phase():
        fd = yield from proc.open("/f")
        while True:
            data = yield from proc.read(fd, RECORD)
            if not data:
                break
            digest.update(data)

    t0 = system.now
    system.run(read_phase())
    elapsed = system.now - t0
    return digest.hexdigest(), FILE_SIZE / elapsed / 1024, system


def test_pipeline_schedulers(once):
    def run():
        out = {}
        for sched in SCHEDULERS:
            digest, rate, system = _read_digest(sched)
            bench = IObench(SystemConfig.config_a().with_(scheduler=sched),
                            file_size=FILE_SIZE)
            result = bench.run()
            out[sched] = {
                "digest": digest,
                "seq_read_kbs": rate,
                "rates": result.rates,
                "pipeline": result.pipeline,
            }
            assert system.driver.scheduler_name == sched
        return out

    results = once(run)
    print()
    for sched, cell in results.items():
        pipe = cell["pipeline"]
        print(f"{sched:9s} FSR={cell['rates']['FSR']:7.0f} KB/s  "
              f"qdepth_avg={pipe['queue_depth']['avg']:.2f}  "
              f"wait_p95={pipe['queue_wait']['p95'] * 1e3:.2f}ms")

    # Byte-identical data under every scheduler: ordering only.
    digests = {cell["digest"] for cell in results.values()}
    assert len(digests) == 1
    # Every run produced per-layer stats.
    for cell in results.values():
        pipe = cell["pipeline"]
        assert pipe["queue_wait"]["count"] > 0
        assert pipe["service"]["count"] > 0
        assert pipe["requests"]["latency"]["read"]["count"] > 0

    payload = {"benchmark": "pipeline", "file_size": FILE_SIZE,
               "schedulers": results}
    out_path = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
    out_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {out_path}")


def test_traced_read_maps_to_cluster_io(once):
    """One syscall read's span tree contains a cluster-sized disk I/O."""

    def run():
        bench = IObench(SystemConfig.config_a(), file_size=FILE_SIZE,
                        trace_phase="FSR")
        bench.run()
        return bench.system

    system = once(run)
    tracer = system.tracer
    reads = [s for s in tracer.span_roots()
             if s.name == "read" and s.fields.get("ios")]
    assert reads, "no traced read reached the disk"
    root = reads[0]
    tree = tracer.span_tree(root)
    names = {span.name for _, span in tree}
    assert {"getpage", "cluster_read", "disk_io"} <= names
    # The clustering claim: the disk transfer exceeds the 8 KB record.
    biggest = max(span.fields["nsectors"] * 512
                  for _, span in tree if span.name == "disk_io")
    assert biggest > RECORD
    print()
    print(tracer.render_spans(root))
