"""NFS over a lossy wire: what packet loss costs in goodput.

Two experiments:

* Goodput vs loss rate: a 256 KB sequential write + fsync + cold re-read
  over wires dropping 0%, 1%, 5%, and 10% of datagrams (same seed per
  row).  The hardened RPC layer must deliver every byte correctly at every
  loss rate; the table shows what retransmission and backoff cost in
  delivered bandwidth versus the clean wire.
* The network campaign: 20 seeded fault schedules (drops, duplicates,
  corruption, reordering, partitions, server reboots) over a
  create/write/fsync/remove workload.  No acknowledged write may be lost,
  no mutation may execute twice behind the duplicate-request cache, no
  corrupt byte may reach the client's page cache.

Both are deterministic: the fault history derives from each plan's seed
and the engine's event order.
"""

from repro.bench.report import Table
from repro.faults import NetCampaign, NetFaultPlan
from repro.kernel import Proc
from repro.nfs import build_world
from repro.units import KB

FILE_SIZE = 256 * KB
LOSS_RATES = (0.0, 0.01, 0.05, 0.10)


def run_lossy_write_read(drop_p):
    # Default timeo (1.1 s): write-behind bursts queue ~0.2 s of datagrams
    # on a 10 Mbit wire, so a short RTO would retransmit spuriously.
    plan = NetFaultPlan(seed=11, drop_p=drop_p) if drop_p else None
    client, _server, mount = build_world(fault_plan=plan)
    proc = Proc(client, mount=mount)
    chunk = bytes(range(256)) * 32  # 8 KB, non-trivial pattern

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    t0 = client.now
    client.run(write_phase())
    write_rate = FILE_SIZE / (client.now - t0) / 1024

    # Cold re-read: purge the client cache so every byte crosses the wire.
    vn = client.run(mount.namei("/f"))
    client.pagecache.vnode_invalidate(vn)

    def read_phase():
        fd = yield from proc.open("/f")
        bad = 0
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break
            if data != chunk[:len(data)]:
                bad += 1
        return bad

    t1 = client.now
    bad_chunks = client.run(read_phase())
    read_rate = FILE_SIZE / (client.now - t1) / 1024
    return write_rate, read_rate, bad_chunks, mount.stats


def test_goodput_vs_loss_rate(once):
    def run():
        return [run_lossy_write_read(p) for p in LOSS_RATES]

    rows = once(run)
    table = Table(
        title="NFS goodput vs datagram loss rate (256 KB, hard mount)",
        columns=["write KB/s", "read KB/s", "bad chunks",
                 "retransmits", "timeouts"],
    )
    for drop_p, (w, r, bad, stats) in zip(LOSS_RATES, rows):
        table.add_row(f"{drop_p:.0%} loss", [
            round(w), round(r), bad,
            int(stats["retransmits"]), int(stats["rpc_timeouts"]),
        ])
    print()
    print(table.render("{:>12}"))

    clean_w, clean_r, _, clean_stats = rows[0]
    # The adaptive RTO converges near its floor on a fast wire, so a
    # write-behind burst that queues more than that can fire the timer
    # spuriously — the classic NFS-on-a-busy-Ethernet retransmit, absorbed
    # by the server's DRC.  A handful is the cost of fast loss recovery;
    # more would mean the estimator never learned the queueing delay.
    assert int(clean_stats["rpc_timeouts"]) <= 5
    assert int(clean_stats["major_timeouts"]) == 0
    for drop_p, (w, r, bad, stats) in zip(LOSS_RATES, rows):
        assert bad == 0  # every byte correct at every loss rate
        if drop_p >= 0.05:  # real loss forces real retransmission
            assert int(stats["retransmits"]) > int(clean_stats["retransmits"])
    # Loss costs goodput (RTO waits), but the transfer always completes.
    assert rows[-1][0] < clean_w and rows[-1][0] > 0


def test_net_campaign(once):
    campaign = NetCampaign(seeds=20)
    stats = once(campaign.run)

    table = Table(
        title="Network-fault campaign (20 seeded schedules)",
        columns=["count"],
    )
    for key, value in stats.as_dict().items():
        table.add_row(key, [value])
    print()
    print(table.render("{:>10}"))

    assert stats.runs == 20
    assert stats.retransmits > 0 and stats.drc_hits > 0  # faults exercised
    assert stats.ok  # every hardening invariant held
