"""Figures 4 and 5: rotational-delay (interleaved) vs contiguous placement.

Allocates a file under the classic tuning (rotdelay = 4 ms) and under the
clustered tuning (rotdelay = 0) and renders the resulting on-disk layout of
one track's worth of blocks, the way the paper's figures 4 and 5 draw it.
"""

from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import bmap
from repro.units import KB


def allocate_file(config_name, nblocks=8):
    cfg = SystemConfig.by_name(config_name).with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=4,
                                      sectors_per_track=32)
    )
    system = System.booted(cfg)
    proc = Proc(system)

    def work():
        fd = yield from proc.creat("/layout")
        for _ in range(nblocks):
            yield from proc.write(fd, bytes(8 * KB))
        yield from proc.fsync(fd)

    system.run(work())
    vn = system.run(system.mount.namei("/layout"))
    addrs = []
    for lbn in range(nblocks):
        addr = system.run(bmap.get_pointer(system.mount, vn.inode, lbn))
        addrs.append(addr)
    return system, addrs


def render_layout(addrs, frag):
    """Draw the logical blocks on a sector line, figure 4/5 style."""
    base = min(addrs)
    span = (max(addrs) - base) // frag + 1
    cells = ["...."] * span
    for lbn, addr in enumerate(addrs):
        cells[(addr - base) // frag] = f"{lbn:2d}  "
    return "|" + "|".join(cells) + "|"


def test_fig4_interleaved_placement(once):
    """rotdelay=4ms: blocks are separated by a one-block rotational gap."""
    system, addrs = once(lambda: allocate_file("D"))
    frag = system.mount.sb.frag
    print("\nFigure 4 (rotdelay=4ms, maxcontig=1): interleaved blocks")
    print(render_layout(addrs, frag))
    gaps = [b - a for a, b in zip(addrs, addrs[1:])]
    assert all(g == 2 * frag for g in gaps), gaps


def test_fig5_contiguous_placement(once):
    """rotdelay=0: blocks are physically consecutive."""
    system, addrs = once(lambda: allocate_file("A"))
    frag = system.mount.sb.frag
    print("\nFigure 5 (rotdelay=0): non-interleaved blocks")
    print(render_layout(addrs, frag))
    gaps = [b - a for a, b in zip(addrs, addrs[1:])]
    assert all(g == frag for g in gaps), gaps
