"""The related-work comparison: Peacock's S5FS clustering vs UFS clustering.

The paper's point is structural: both systems turn sequential I/O into
larger I/O, but S5FS's free-list allocator "gets scrambled as the file
system ages", so Peacock had to rewrite the allocator (changing the
on-disk format); the FFS allocator keeps laying files out contiguously, so
UFS clustering needed no format change.

We measure sequential read throughput of a 2 MB file on:
* fresh S5FS with mbread clustering (fast: the LIFO free list is still
  in disk order);
* aged S5FS with mbread clustering (slow again: no contiguity left);
* UFS config A on a comparably aged file system (clustering still works).
"""

import random

from repro.bench.agefs import age_filesystem
from repro.bench.report import Table
from repro.cpu import Cpu
from repro.disk import DiskDriver, DiskGeometry, RotationalDisk
from repro.kernel import Proc, System, SystemConfig
from repro.s5fs import S5FileSystem, s5_mkfs
from repro.sim import Engine
from repro.ufs import FsParams
from repro.units import KB, MB

FILE_SIZE = 1 * MB


def s5_cell(age: bool):
    engine = Engine()
    geom = DiskGeometry.uniform(cylinders=700, heads=4, sectors_per_track=32)
    disk = RotationalDisk(engine, geom)
    cpu = Cpu(engine)
    driver = DiskDriver(engine, disk, cpu=cpu)
    s5_mkfs(disk.store)
    fs = S5FileSystem(engine, cpu, driver, clustering=True, nbufs=128)

    contiguity_after_setup = 1.0
    if age:
        rng = random.Random(11)

        def churn():
            # Keep ~2 MB of small files circulating so the scrambled part
            # of the free list is larger than the victim file.
            live = []
            for i in range(900):
                ip = yield from fs.create(f"f{i}")
                yield from fs.write(ip, 0, bytes(rng.randrange(8, 96) * KB))
                live.append(f"f{i}")
                if len(live) > 30:
                    yield from fs.unlink(live.pop(rng.randrange(len(live))))

        engine.run_process(churn())
    contiguity_after_setup = fs.free_list_contiguity()

    def build():
        ip = yield from fs.create("victim")
        yield from fs.write(ip, 0, bytes(FILE_SIZE))
        yield from fs.sync()
        return ip

    ip = engine.run_process(build())
    # Purge the buffer cache with unrelated reads.
    def purge():
        for blk in range(fs.sb.data_start + 9000, fs.sb.data_start + 9128):
            yield from fs.cache.bread(blk)

    engine.run_process(purge())

    def read_back():
        yield from fs.read(ip, 0, FILE_SIZE)

    t0 = engine.now
    engine.run_process(read_back())
    rate = FILE_SIZE / (engine.now - t0) / 1024
    return rate, contiguity_after_setup


def ufs_cell():
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=700, heads=4,
                                      sectors_per_track=32),
        fs_params=FsParams.clustered(56 * KB),
    )
    system = System.booted(cfg)
    age_filesystem(system, target_utilization=0.6, seed=11, mean_file_kb=24)
    proc = Proc(system)

    def build():
        fd = yield from proc.creat("/victim")
        for _ in range(FILE_SIZE // (64 * KB)):
            yield from proc.write(fd, bytes(64 * KB))
        yield from proc.fsync(fd)

    system.run(build())
    vn = system.run(system.mount.namei("/victim"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()
    proc2 = Proc(system)

    def read_back():
        fd = yield from proc2.open("/victim")
        while True:
            data = yield from proc2.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    system.run(read_back())
    return FILE_SIZE / (system.now - t0) / 1024


def test_s5fs_vs_ufs_clustering(once):
    def run():
        return {
            "s5fs fresh": s5_cell(age=False),
            "s5fs aged": s5_cell(age=True),
            "ufs aged": (ufs_cell(), None),
        }

    results = once(run)
    table = Table(
        title="Peacock comparison: sequential read of a 1 MB file (KB/s)",
        columns=["read rate", "freelist contiguity"],
    )
    for label, (rate, contig) in results.items():
        table.add_row(label, [round(rate),
                              "-" if contig is None else round(contig, 2)])
    print()
    print(table.render("{:>20}"))

    fresh, _ = results["s5fs fresh"]
    aged, aged_contig = results["s5fs aged"]
    ufs_rate = results["ufs aged"][0]
    # Fresh S5FS clustering works; aging destroys it.
    assert fresh > 1.5 * aged
    assert aged_contig < 0.5
    # UFS clustering survives aging (the FFS allocator keeps contiguity).
    assert ufs_rate > 1.5 * aged
