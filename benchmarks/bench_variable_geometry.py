"""The variable-geometry argument against user-visible extents.

"Consider a variable geometry drive...  Such a drive may have different
values for the optimal extent size at different locations.  Trying to
write portable code that knows about extents is close to impossible."

On a zoned drive we place the same file in the outer, middle, and inner
zones and measure sequential read throughput and the time one 120 KB
cluster takes — the quantities a user picking a fixed extent size would
have to guess.  The file system's clustering (extent size chosen by bmap
at each call) adapts without anyone choosing anything.
"""

from repro.bench.report import Table
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams, bmap
from repro.units import KB, MB

# Small enough to stay inside one cylinder group (no maxbpg spill out of
# the zone under test).
FILE_SIZE = 1 * MB


def zone_rate(zone_cyl):
    """Write + read a file whose blocks are forced near ``zone_cyl``."""
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.zoned_520mb(),
        fs_params=FsParams.clustered(120 * KB),
    )
    system = System.booted(cfg)
    mount = system.mount
    proc = Proc(system)
    sb = mount.sb
    # Aim the allocator at the cylinder group covering zone_cyl.
    spc_frags = cfg.geometry.heads * cfg.geometry.sectors_per_track_at(0) // 2
    target_frag = min(
        zone_cyl * spc_frags, sb.total_frags - sb.fpg
    )
    target_cg = sb.cg_of_frag(target_frag)

    def work():
        fd = yield from proc.creat("/zoned")
        vn = yield from mount.namei("/zoned")
        # Seed the first block in the target group; the allocator then
        # continues contiguously from there.
        addr = yield from mount.allocator.alloc_block(
            vn.inode, sb.cg_data_frag(target_cg))
        yield from bmap.set_pointer(mount, vn.inode, 0, addr)
        chunk = bytes(8 * KB)
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)
        return vn

    vn = system.run(work())
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/zoned")
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    system.run(read_phase())
    rate = FILE_SIZE / (system.now - t0) / 1024
    # Where did the file actually land?
    addr = system.run(bmap.get_pointer(mount, vn.inode, 1))
    cyl, _, _ = cfg.geometry.to_chs(addr * 2)
    media = cfg.geometry.media_rate(cyl) / 1024
    cluster_ms = 120 * KB / (media * 1024) * 1000
    return rate, media, cluster_ms, cyl


def test_zones_have_no_single_correct_extent_size(once):
    def run():
        return {
            "outer": zone_rate(50),
            "middle": zone_rate(700),
            "inner": zone_rate(1300),
        }

    results = once(run)
    table = Table(
        title="Zoned drive: the same 120 KB cluster, three locations",
        columns=["seq read KB/s", "media KB/s", "cluster ms", "cylinder"],
    )
    for zone, (rate, media, cluster_ms, cyl) in results.items():
        table.add_row(zone, [round(rate), round(media),
                             round(cluster_ms, 1), cyl])
    print()
    print(table.render("{:>15}"))
    print("\nA fixed user-chosen extent size cannot be right at all three "
          "locations;\nbmap-chosen clusters adapt per call — the paper's "
          "case for keeping extents\ninvisible.")

    outer, inner = results["outer"][0], results["inner"][0]
    # The same tuning delivers whatever each zone can do: outer meaningfully
    # faster than inner, with clustering functional in both.
    assert outer > 1.2 * inner
    assert inner > 500  # still clustered, not collapsed
