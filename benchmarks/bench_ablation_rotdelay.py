"""Ablation: the rejected "file system tuning" alternative.

The paper considered just setting rotdelay to 0 (no clustering code) to
exploit track buffers, and rejected it: "The answer is write performance;
it suffers horribly when the file system has no rotational delay", because
the track buffer is write-through.  And drives without track buffers
"would suffer substantial performance penalties on both reads and writes".

Four cells: rotdelay {4ms, 0} x track buffer {on, off}, old (unclustered)
code everywhere.
"""

from repro.bench.report import Table
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams
from repro.units import KB, MB

FILE_SIZE = 8 * MB


def seq_rates(rotdelay_ms, track_buffer):
    cfg = SystemConfig.config_d().with_(
        fs_params=FsParams(rotdelay_ms=rotdelay_ms, maxcontig=1),
        track_buffer=track_buffer,
    )
    system = System.booted(cfg)
    proc = Proc(system)
    chunk = bytes(8 * KB)

    def write_phase():
        fd = yield from proc.creat("/f")
        for _ in range(FILE_SIZE // len(chunk)):
            yield from proc.write(fd, chunk)
        yield from proc.fsync(fd)

    t0 = system.now
    system.run(write_phase())
    write_rate = FILE_SIZE / (system.now - t0) / 1024

    vn = system.run(system.mount.namei("/f"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    def read_phase():
        fd = yield from proc.open("/f")
        while True:
            data = yield from proc.read(fd, 8 * KB)
            if not data:
                break

    t0 = system.now
    system.run(read_phase())
    read_rate = FILE_SIZE / (system.now - t0) / 1024
    return read_rate, write_rate


def test_rotdelay_zero_without_clustering(once):
    def run():
        return {
            ("4ms", "buffer"): seq_rates(4.0, True),
            ("0", "buffer"): seq_rates(0.0, True),
            ("4ms", "no-buffer"): seq_rates(4.0, False),
            ("0", "no-buffer"): seq_rates(0.0, False),
        }

    results = once(run)
    table = Table(
        title="Old (unclustered) code: rotdelay x track buffer (KB/s)",
        columns=["seq read", "seq write"],
    )
    for (rot, buf), (r, w) in results.items():
        table.add_row(f"rotdelay={rot}, {buf}", [round(r), round(w)])
    print()
    print(table.render("{:>11}"))

    # With a track buffer, rotdelay=0 makes reads much faster...
    assert results[("0", "buffer")][0] > 1.4 * results[("4ms", "buffer")][0]
    # ...but writes suffer horribly (each block misses a full rotation).
    assert results[("0", "buffer")][1] < 0.55 * results[("4ms", "buffer")][1]
    # Without a track buffer, rotdelay=0 ruins reads too.
    assert results[("0", "no-buffer")][0] < 0.55 * results[("4ms", "no-buffer")][0]
