"""The Peacock flush-burst comparison (related-work section).

"Our write algorithm is different, it starts a write each time a cluster
boundary is crossed.  Peacock's waits until the buffer cache fills...  the
flush may cause a proportionally large I/O burst.  If the I/O were flushed
to disk at each cluster boundary, the disks are kept uniformly busy,
instead [of] developing large disk queues.  Smoothing out the disk queue
will improve perceived performance since new requests will be serviced
quickly."

A steady writer produces data for 20 simulated seconds under (a) the
paper's cluster-boundary flushing and (b) Peacock-style accumulation with
a periodic update-daemon flush.  We compare the peak disk-queue depth and
the latency of an innocent bystander read issued mid-flush.
"""

from repro.bench.report import Table
from repro.disk import DiskGeometry
from repro.kernel import Proc, System, SystemConfig
from repro.kernel.update import UpdateDaemon
from repro.units import KB


def run_cell(lazy):
    cfg = SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=400, heads=4,
                                      sectors_per_track=32))
    cfg = cfg.with_(tuning=cfg.tuning.with_(
        lazy_writeback=lazy, write_limit=0))
    system = System.booted(cfg)
    proc = Proc(system)
    if lazy:
        UpdateDaemon(system.engine, system.mount, period=5.0)

    # A bystander file to read during the run.
    def setup():
        fd = yield from proc.creat("/bystander")
        yield from proc.write(fd, bytes(16 * KB))
        yield from proc.fsync(fd)

    system.run(setup())
    vn = system.run(system.mount.namei("/bystander"))
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)

    read_latencies = []

    def steady_writer():
        fd = yield from proc.creat("/log")
        for _ in range(200):  # 200 x 64 KB over ~20 s
            yield from proc.write(fd, bytes(64 * KB))
            yield system.engine.timeout(0.1)
        yield from proc.fsync(fd)

    def bystander():
        reader = Proc(system, "bystander")
        for i in range(8):
            yield system.engine.timeout(2.6)
            t0 = system.now
            fd = yield from reader.open("/bystander")
            yield from reader.read(fd, 16 * KB)
            yield from reader.close(fd)
            read_latencies.append(system.now - t0)
            # Drop it again for the next cold read.
            vn2 = yield from system.mount.namei("/bystander")
            for page in system.pagecache.vnode_pages(vn2):
                if not page.locked and not page.dirty:
                    system.pagecache.destroy(page)

    system.run_all([steady_writer(), bystander()])
    return {
        "max_queue": system.driver.queue_depth.maximum,
        "avg_queue": system.driver.queue_depth.average(),
        "worst_read_ms": max(read_latencies) * 1000,
    }


def test_cluster_boundary_flushing_keeps_queues_smooth(once):
    def run():
        return {"boundary": run_cell(False), "accumulate": run_cell(True)}

    results = once(run)
    table = Table(
        title="Write-back policy vs disk queue (steady 640 KB/s writer)",
        columns=["max queue", "avg queue", "worst read ms"],
    )
    table.add_row("cluster boundary (ours)", [
        int(results["boundary"]["max_queue"]),
        round(results["boundary"]["avg_queue"], 1),
        round(results["boundary"]["worst_read_ms"]),
    ])
    table.add_row("accumulate + update (Peacock)", [
        int(results["accumulate"]["max_queue"]),
        round(results["accumulate"]["avg_queue"], 1),
        round(results["accumulate"]["worst_read_ms"]),
    ])
    print()
    print(table.render("{:>16}"))

    smooth, bursty = results["boundary"], results["accumulate"]
    # Accumulation develops much larger queues at flush time...
    assert bursty["max_queue"] > 3 * smooth["max_queue"]
    # ...and the bystander's worst-case read suffers for it.
    assert bursty["worst_read_ms"] > 2 * smooth["worst_read_ms"]
