"""Figure 12: system CPU to read a 16 MB file through mmap.

Paper:
    2.6s   4.1.1 UFS, no rotdelays, 16MB mmap read
    3.4s   4.1 UFS, rotdelays, 16MB mmap read

"The new UFS is approximately 25% more efficient in terms of CPU cycles."
"""

from repro.bench import run_cpu_bench
from repro.bench.report import PAPER_FIGURE_12, Table
from repro.kernel.config import SystemConfig


def test_fig12_cpu_comparison(once):
    def run():
        return {
            "new": run_cpu_bench(SystemConfig.config_a()),
            "old": run_cpu_bench(SystemConfig.config_d()),
        }

    results = once(run)
    table = Table(title="Figure 12: system CPU, 16 MB mmap read",
                  columns=["CPU (ours)", "CPU (paper)", "elapsed"])
    for name in ("new", "old"):
        r = results[name]
        table.add_row(name, [round(r.cpu_seconds, 2),
                             PAPER_FIGURE_12[name], round(r.elapsed, 1)])
    print()
    print(table.render("{:>12}"))
    print("\nnew-system CPU breakdown:",
          {k: round(v, 2) for k, v in results["new"].breakdown.items()
           if v >= 0.05})
    print("old-system CPU breakdown:",
          {k: round(v, 2) for k, v in results["old"].breakdown.items()
           if v >= 0.05})

    new, old = results["new"], results["old"]
    assert new.cpu_seconds < old.cpu_seconds
    savings = 1 - new.cpu_seconds / old.cpu_seconds
    # Paper: ~25% more efficient.  Accept a band around it.
    assert 0.10 <= savings <= 0.40, f"savings {savings:.0%}"
    # Absolute scale should land near the paper's seconds (same machine).
    assert 2.0 <= new.cpu_seconds <= 3.3
    assert 2.8 <= old.cpu_seconds <= 4.2
