"""Where does the time go?  Layer attribution for the paper's A/C gap.

The paper's whole story is that clustering converts per-block rotational
waits into long transfers.  The attribution table makes that visible as
numbers: run IObench on config A (8 KB blocks, 56 KB clusters) and
config C (no clustering) with every phase traced, split each request's
lifetime into cpu / queue_wait / rotation_seek / transfer / throttle_wait
/ rpc / other_io, and demand the mechanism shows up:

* conservation — every kind's categories sum to its total (the sweep
  drops and double-counts nothing);
* config C's sequential reads spend a *larger share* of their disk time
  on rotation+seek than config A's — exactly the per-block rotational
  latency clustering amortizes away.

Emits ``BENCH_attribution.json`` at the repo root: the full per-kind
table for both configs, the same shape ``python -m repro bench`` embeds.
"""

import json
from pathlib import Path

import pytest

from repro.bench.iobench import IObench
from repro.kernel import SystemConfig
from repro.obs.attrib import attribution_table, render_attribution
from repro.units import MB

FILE_SIZE = 2 * MB
RANDOM_OPS = 128


def _run_config(name):
    bench = IObench(SystemConfig.by_name(name), file_size=FILE_SIZE,
                    random_ops=RANDOM_OPS, trace_phase="*")
    result = bench.run()
    return {
        "rates": result.rates,
        "attribution": attribution_table(bench.system.tracer),
    }


def _mech_share(row):
    """rotation_seek's share of the row's disk (non-cpu) time."""
    cats = row["categories"]
    disk = sum(v for k, v in cats.items() if k != "cpu")
    return cats["rotation_seek"] / disk if disk > 0 else 0.0


def test_attribution_a_vs_c(once):
    def run():
        return {name: _run_config(name) for name in ("A", "C")}

    results = once(run)
    print()
    for name, cell in results.items():
        print(f"config {name} (FSR {cell['rates']['FSR']:.0f} KB/s):")
        print(render_attribution(cell["attribution"]))
        print()

    for name, cell in results.items():
        for kind, row in cell["attribution"].items():
            total = sum(row["categories"].values())
            assert total == pytest.approx(row["total"]), (name, kind)

    reads_a = results["A"]["attribution"]["read"]
    reads_c = results["C"]["attribution"]["read"]
    # The paper's mechanism: without clustering, a larger slice of every
    # read's disk time is spent waiting on the platter.
    assert _mech_share(reads_c) > _mech_share(reads_a)
    assert results["A"]["rates"]["FSR"] > results["C"]["rates"]["FSR"]

    out = Path(__file__).resolve().parent.parent / "BENCH_attribution.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out.name}")
