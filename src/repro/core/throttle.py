"""Per-file write limiting ("write limits or fairness").

"We do this by adding what is essentially a counting semaphore in the inode.
Each process decrements the semaphore when writing and increments it when
the write is complete.  If the semaphore falls below zero, the writing
process is put to sleep until one of the other writes completes."

Note the order: the charge happens unconditionally (the write is already
queued), and only then does the writer sleep — so a single write larger
than the limit still proceeds, it just stalls the writer afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class WriteThrottle:
    """The inode's counting semaphore over bytes in the write queue."""

    def __init__(self, engine: "Engine", limit: int):
        """``limit`` in bytes; 0 disables throttling entirely."""
        if limit < 0:
            raise ValueError("limit must be >= 0")
        self.engine = engine
        self.limit = limit
        self.value = limit
        self._waiters: list[Event] = []
        self._drain_waiters: list[Event] = []
        self.sleeps = 0

    @property
    def enabled(self) -> bool:
        return self.limit > 0

    @property
    def in_flight(self) -> int:
        """Bytes currently charged against the limit."""
        if not self.enabled:
            return 0
        return self.limit - self.value

    def take(self, nbytes: int) -> None:
        """Account ``nbytes`` of write being queued (no sleeping here:
        the write must reach the driver before its completion can ever
        credit us back)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.enabled:
            self.value -= nbytes

    def wait_ok(self) -> Generator[Event, Any, None]:
        """Sleep until the semaphore is non-negative again."""
        if not self.enabled:
            return
        while self.value < 0:
            self.sleeps += 1
            ev = Event(self.engine, name="write-limit")
            self._waiters.append(ev)
            yield ev

    def charge(self, nbytes: int) -> Generator[Event, Any, None]:
        """take() then wait_ok(): the paper's decrement-then-maybe-sleep.

        Only correct when the associated write has already been queued or
        will be queued by another process; otherwise use take() before
        issuing and wait_ok() after.
        """
        self.take(nbytes)
        yield from self.wait_ok()

    def drain(self) -> Generator[Event, Any, None]:
        """Sleep until no bytes are in flight (the semaphore is full again).

        Completion includes *failed* writes — whoever queued the write must
        credit() from its error path too — so a drain can never wedge on a
        lost slot.  fsync-style barriers use this to let write-behind
        settle before deciding what failed.
        """
        while self.enabled and self.value < self.limit:
            ev = Event(self.engine, name="write-drain")
            self._drain_waiters.append(ev)
            yield ev

    def credit(self, nbytes: int) -> None:
        """A queued write of ``nbytes`` completed (called from iodone)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not self.enabled:
            return
        self.value += nbytes
        if self.value > self.limit:
            raise RuntimeError("write throttle over-credited")
        if self.value >= 0 and self._waiters:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                ev.succeed()
        if self.value >= self.limit and self._drain_waiters:
            drainers, self._drain_waiters = self._drain_waiters, []
            for ev in drainers:
                ev.succeed()
