"""Per-file write limiting ("write limits or fairness").

"We do this by adding what is essentially a counting semaphore in the inode.
Each process decrements the semaphore when writing and increments it when
the write is complete.  If the semaphore falls below zero, the writing
process is put to sleep until one of the other writes completes."

Note the order: the charge happens unconditionally (the write is already
queued), and only then does the writer sleep — so a single write larger
than the limit still proceeds, it just stalls the writer afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class WriteThrottle:
    """The inode's counting semaphore over bytes in the write queue."""

    def __init__(self, engine: "Engine", limit: int, owner: str = "",
                 stats: "Any | None" = None):
        """``limit`` in bytes; 0 disables throttling entirely.  ``owner``
        labels the file this throttle belongs to in sanitizer reports.
        ``stats`` is an optional shared :class:`~repro.sim.stats.StatSet`
        (one per mount) that consolidates every inode's throttle activity
        for the metrics registry."""
        if limit < 0:
            raise ValueError("limit must be >= 0")
        self.engine = engine
        self.limit = limit
        self.value = limit
        self.owner = owner
        self.stats = stats
        self._waiters: list[Event] = []
        self._drain_waiters: list[Event] = []
        self.sleeps = 0

    @property
    def enabled(self) -> bool:
        return self.limit > 0

    @property
    def in_flight(self) -> int:
        """Bytes currently charged against the limit."""
        if not self.enabled:
            return 0
        return self.limit - self.value

    def take(self, nbytes: int) -> None:
        """Account ``nbytes`` of write being queued (no sleeping here:
        the write must reach the driver before its completion can ever
        credit us back)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.enabled:
            self.value -= nbytes
            if self.stats is not None:
                self.stats.incr("bytes_taken", nbytes)

    def wait_ok(self) -> Generator[Event, Any, None]:
        """Sleep until the semaphore is non-negative again."""
        if not self.enabled:
            return
        while self.value < 0:
            self.sleeps += 1
            if self.stats is not None:
                self.stats.incr("sleeps")
            ev = Event(self.engine, name="write-limit")
            self._waiters.append(ev)
            yield ev

    def charge(self, nbytes: int) -> Generator[Event, Any, None]:
        """take() then wait_ok(): the paper's decrement-then-maybe-sleep.

        Only correct when the associated write has already been queued or
        will be queued by another process; otherwise use take() before
        issuing and wait_ok() after.
        """
        self.take(nbytes)
        yield from self.wait_ok()

    def drain(self) -> Generator[Event, Any, None]:
        """Sleep until no bytes are in flight (the semaphore is full again).

        Completion includes *failed* writes — whoever queued the write must
        credit() from its error path too — so a drain can never wedge on a
        lost slot.  fsync-style barriers use this to let write-behind
        settle before deciding what failed.
        """
        while self.enabled and self.value < self.limit:
            ev = Event(self.engine, name="write-drain")
            self._drain_waiters.append(ev)
            yield ev

    def credit(self, nbytes: int, source: Any = None) -> None:
        """A queued write of ``nbytes`` completed (called from iodone).

        ``source`` is whatever completed (typically the buf): an
        over-credit — crediting more bytes than were ever taken — raises a
        :class:`~repro.sim.invariants.SanitizerError` naming the owner and,
        when the source carries a traced request, its span tree, instead of
        crashing the engine with an anonymous RuntimeError deep in
        interrupt context.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not self.enabled:
            return
        self.value += nbytes
        if self.value > self.limit:
            self._over_credited(nbytes, source)
        if self.value >= 0 and self._waiters:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                ev.succeed()
        if self.value >= self.limit and self._drain_waiters:
            drainers, self._drain_waiters = self._drain_waiters, []
            for ev in drainers:
                ev.succeed()

    def _over_credited(self, nbytes: int, source: Any) -> None:
        from repro.sim.invariants import SanitizerError, render_request

        who = self.owner or "write throttle"
        detail = f"credited {nbytes} bytes"
        if source is not None:
            detail += f" by {source!r}"
        request = getattr(source, "request", None)
        raise SanitizerError(
            "throttle_conservation",
            f"{who} over-credited: {detail}, leaving value="
            f"{self.value} above limit={self.limit} "
            "(a completion credited bytes it never took)",
            span_tree=render_request(request),
        )
