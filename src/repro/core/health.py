"""Per-file cluster health: graceful degradation under I/O errors.

Clustering turns one bad sector into a failed 56 KB transfer.  The driver
already splits and retries coalesced requests, but when a file keeps
hitting errors the kernel should stop amplifying them: after ``threshold``
consecutive failed cluster-sized I/Os on a file we fall back to
single-block (8 KB) transfers — preserving forward progress at reduced
throughput — and re-grow to full clustering as successes accumulate.

Both :class:`repro.core.readahead.ReadAheadState` and
:class:`repro.core.writecluster.WriteClusterState` carry one of these.
"""

from __future__ import annotations


class ClusterHealth:
    """Failure-counting state machine gating a file's cluster size.

    ``record_failure``/``record_success`` are called by the I/O layer after
    each cluster-sized transfer; ``clamp`` is consulted when sizing the
    next one.  A success pays off one failure, so a file that degraded
    after ``threshold`` consecutive errors needs the same number of clean
    single-block transfers before clusters grow back — a linear
    increase/decrease that cannot oscillate on a marginal disk.
    """

    def __init__(self, threshold: int = 2):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.failures = 0
        #: Times this file entered degraded mode (for stats/tests).
        self.degradations = 0

    @property
    def degraded(self) -> bool:
        """True while the file is restricted to single-block I/O."""
        return self.failures >= self.threshold

    def clamp(self, nbytes: int, block_size: int) -> int:
        """Limit a proposed transfer size to one block while degraded."""
        if self.degraded:
            return min(nbytes, block_size)
        return nbytes

    def record_failure(self) -> None:
        was_degraded = self.degraded
        self.failures += 1
        if self.degraded and not was_degraded:
            self.degradations += 1

    def record_success(self) -> None:
        if self.failures > 0:
            self.failures -= 1

    def reset(self) -> None:
        self.failures = 0
