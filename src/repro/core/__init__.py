"""The paper's contribution: I/O clustering policies.

Everything McVoy & Kleiman added to UFS lives here as small, separately
testable policy objects, wired into ``ufs_getpage``/``ufs_putpage``/
``ufs_rdwr`` by :mod:`repro.ufs.io`:

* :class:`ClusterTuning` — the feature switches distinguishing the paper's
  benchmark configurations A-D (figure 9);
* :class:`ReadAheadState` — sequential detection (``nextr``) and clustered
  read-ahead scheduling (``nextrio``), figures 3 and 6;
* :class:`WriteClusterState` — the delayed-write cluster state machine
  (``delayoff``/``delaylen``), figures 7 and 8;
* :class:`FreeBehindPolicy` — the MRU-for-big-sequential-I/O compromise;
* :class:`WriteThrottle` — the per-file fairness limit ("essentially a
  counting semaphore in the inode");
* :class:`BmapCache` — the "bmap cache" future-work extension.
"""

from repro.core.freebehind import FreeBehindPolicy
from repro.core.readahead import ReadAheadAction, ReadAheadState
from repro.core.throttle import WriteThrottle
from repro.core.tuning import ClusterTuning
from repro.core.writecluster import WriteClusterAction, WriteClusterState
from repro.core.extensions import BmapCache

__all__ = [
    "BmapCache",
    "ClusterTuning",
    "FreeBehindPolicy",
    "ReadAheadAction",
    "ReadAheadState",
    "WriteClusterAction",
    "WriteClusterState",
    "WriteThrottle",
]
