"""Sequential detection and read-ahead scheduling (figures 2, 3, 6).

The inode carries two prediction fields:

* ``nextr`` — the offset the next read is predicted to hit.  A fault whose
  offset equals ``nextr`` is *sequential*.  ``nextr`` starts at 0, so the
  first read of a file enables read-ahead immediately ("starting read ahead
  at the beginning of the file turns out to be a beneficial heuristic").
* ``nextrio``/``trigger`` — the offset of the next read-ahead cluster to
  issue, and the fault offset that should issue it (the first page of the
  most recently read-ahead cluster): faulting into the last prefetched
  cluster prefetches the one after it.

With ``cluster size = 1`` block this degenerates to exactly the old
per-block read-ahead of figure 3, which is how configurations B-D run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.health import ClusterHealth


@dataclass(frozen=True)
class ReadAheadAction:
    """What ufs_getpage should do for one fault.

    ``sync_needed``
        The faulted page is not cached; read its cluster synchronously.
    ``ra_after_sync``
        Start a read-ahead for the cluster immediately following the
        synchronous cluster (whose length bmap determines).
    ``ra_offset``
        Start a read-ahead at this explicit offset (trigger fired), or
        None.
    """

    sequential: bool
    sync_needed: bool
    ra_after_sync: bool = False
    ra_offset: "int | None" = None


class ReadAheadState:
    """Per-inode read prediction state."""

    def __init__(self) -> None:
        self.nextr = 0
        self.trigger: "int | None" = None  # fault offset firing the next RA
        self.nextrio = 0  # where the next read-ahead cluster starts
        #: Whether the most recent observe() saw a sequential access; the
        #: free-behind policy reads this ("the file is in sequential read
        #: mode").
        self.last_was_sequential = False
        #: Degraded-mode tracker: repeated cluster failures on this file
        #: clamp reads to single blocks until successes re-grow them.
        self.health = ClusterHealth()

    def observe(self, offset: int, page_size: int, cached: bool,
                readahead_enabled: bool = True) -> ReadAheadAction:
        """Classify one getpage call and decide read-ahead.

        If the action requests a read-ahead and the caller starts it, the
        caller must call :meth:`issued` with the cluster bmap granted.
        """
        if offset < 0 or page_size <= 0:
            raise ValueError("offset must be >= 0 and page_size positive")
        sequential = offset == self.nextr
        self.nextr = offset + page_size
        self.last_was_sequential = sequential
        if not sequential:
            # Lost the pattern; disarm until a new sequential run is seen.
            self.trigger = None
            return ReadAheadAction(False, not cached)
        if not readahead_enabled:
            return ReadAheadAction(True, not cached)
        if not cached:
            # Fresh sync read: prefetch whatever follows the sync cluster.
            return ReadAheadAction(True, True, ra_after_sync=True)
        if self.trigger is not None and offset == self.trigger:
            return ReadAheadAction(True, False, ra_offset=self.nextrio)
        return ReadAheadAction(True, False)

    def issued(self, ra_offset: int, ra_length: int) -> None:
        """Record a started read-ahead [ra_offset, ra_offset+ra_length);
        arms the trigger for the following cluster."""
        if ra_length <= 0:
            raise ValueError("ra_length must be positive")
        if ra_offset < 0:
            raise ValueError("ra_offset must be >= 0")
        self.trigger = ra_offset
        self.nextrio = ra_offset + ra_length

    def reset(self) -> None:
        """Forget all predictions (inode recycled)."""
        self.nextr = 0
        self.trigger = None
        self.nextrio = 0
        self.last_was_sequential = False
        self.health.reset()
