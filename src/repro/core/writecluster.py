"""The delayed-write cluster state machine (figures 7 and 8).

``ufs_putpage`` on the delayed path "handles writes by assuming sequential
I/O and pretending that the I/O completed immediately (in other words, do
nothing)".  Two inode fields track the pretence:

* ``delayoff`` — offset of the first delayed page;
* ``delaylen`` — bytes delayed so far.

When the cluster fills, the whole range is pushed; when the sequentiality
assumption breaks, the old range is pushed and the machine restarts at the
current page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.health import ClusterHealth


@dataclass(frozen=True)
class WriteClusterAction:
    """What the caller must do after offering a page.

    ``flush_offset/flush_len`` describe a range of previously delayed pages
    (possibly including the offered page) that must be written now; a zero
    ``flush_len`` means keep lying.  ``restarted`` is True when the offered
    page broke the pattern and begins a new delayed range (so it is *not*
    part of the flush).
    """

    flush_offset: int = 0
    flush_len: int = 0
    restarted: bool = False

    @property
    def should_flush(self) -> bool:
        return self.flush_len > 0


class WriteClusterState:
    """Per-inode delayed-write bookkeeping."""

    def __init__(self) -> None:
        self.delayoff = 0
        self.delaylen = 0
        #: Degraded-mode tracker: repeated cluster failures on this file
        #: clamp the delayed range to single blocks until successes re-grow.
        self.health = ClusterHealth()

    @property
    def pending(self) -> int:
        """Bytes currently being lied about."""
        return self.delaylen

    def offer(self, offset: int, page_size: int, max_bytes: int) -> WriteClusterAction:
        """Offer one dirty page being unmapped; figure 8's algorithm.

        ``max_bytes`` is the cluster size (maxcontig in bytes).
        """
        if offset < 0 or page_size <= 0 or max_bytes < page_size:
            raise ValueError("bad offer arguments")
        # While the file is degraded by I/O errors, behave as if maxcontig
        # were one block: every page pushes immediately, nothing amplifies.
        max_bytes = self.health.clamp(max_bytes, page_size)
        extended = False
        if self.delaylen == 0:
            # Nothing delayed: start a new range at this page.
            self.delayoff = offset
            self.delaylen = page_size
            extended = True
        elif self.delayoff + self.delaylen == offset and self.delaylen < max_bytes:
            self.delaylen += page_size
            extended = True
        if extended:
            if self.delaylen >= max_bytes:
                # Cluster complete: push it, including this page.  With a
                # one-page cluster this is the old per-page write path.
                action = WriteClusterAction(self.delayoff, self.delaylen)
                self.delayoff += self.delaylen
                self.delaylen = 0
                return action
            return WriteClusterAction()
        # Sequentiality broke (or the range was somehow over-full): write
        # out the old pages, restart with the current page delayed.
        action = WriteClusterAction(self.delayoff, self.delaylen, restarted=True)
        self.delayoff = offset
        self.delaylen = page_size
        return action

    def steal(self, offset: int, length: int) -> "tuple[int, int]":
        """A non-delayed putpage is cleaning [offset, offset+length).

        Returns the delayed range that must be folded into the flush (it
        may be empty), and resets the machine — the dirty bits, not this
        heuristic, are the ground truth for what needs writing.
        """
        if length < 0:
            raise ValueError("length must be >= 0")
        if self.delaylen == 0:
            return (0, 0)
        start, span = self.delayoff, self.delaylen
        if offset < start + span and start < offset + length:
            self.delayoff = 0
            self.delaylen = 0
            return (start, span)
        return (0, 0)

    def reset(self) -> None:
        self.delayoff = 0
        self.delaylen = 0
