"""Feature switches for the clustered kernel.

The paper's figure 9 describes four benchmark configurations of the same
kernel ("we used a kernel that has variables that enable and disable the old
and new code").  :class:`ClusterTuning` is that set of variables; the
on-disk knobs (``rotdelay``, ``maxcontig``) live in
:class:`repro.ufs.FsParams` because they are mkfs/tunefs state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import KB


@dataclass(frozen=True)
class ClusterTuning:
    """Which parts of the new code are enabled."""

    #: Clustered read-ahead in ufs_getpage (figure 6).  When False, the old
    #: one-block-ahead read-ahead (figure 3) is used.
    read_clustering: bool = True
    #: Delayed-write clustering in ufs_putpage (figures 7/8).  When False,
    #: every page write starts its own I/O when unmapped.
    write_clustering: bool = True
    #: Free pages behind large sequential reads under memory pressure.
    freebehind: bool = True
    #: Per-file bytes allowed in the write queue; 0 = unlimited (the old
    #: fairness-free behaviour).  The paper settled on 240 KB.
    write_limit: int = 240 * KB
    #: File offset after which free-behind may engage ("at a large enough
    #: offset" — the file must demonstrably be a big sequential read).
    freebehind_min_offset: int = 256 * KB
    #: Future work: per-inode cache of bmap translations.
    bmap_cache: bool = False
    #: Future work: use the request size as a clustering hint for random
    #: I/O of large records.
    random_clustering: bool = False
    #: Future work (UFS_HOLE): skip the bmap call on a page-cache hit when
    #: the file is known to have no holes.
    hole_check_bypass: bool = False
    #: Future work ("data in the inode"): cache small files' contents in
    #: the in-memory inode and serve reads without touching the page cache.
    inode_data_cache: bool = False
    #: Peacock-style comparison mode: delayed writes accumulate in memory
    #: until something (the update daemon, fsync, pageout) flushes them,
    #: instead of being pushed at each cluster boundary.  Used only by the
    #: related-work burstiness benchmark.
    lazy_writeback: bool = False

    def __post_init__(self) -> None:
        if self.write_limit < 0:
            raise ValueError("write_limit must be >= 0 (0 = unlimited)")
        if self.freebehind_min_offset < 0:
            raise ValueError("freebehind_min_offset must be >= 0")

    # -- the paper's configurations (figure 9) --------------------------------
    @classmethod
    def new_system(cls) -> "ClusterTuning":
        """Configuration A's code: everything on (SunOS 4.1.1)."""
        return cls()

    @classmethod
    def old_system(cls, freebehind: bool = False,
                   write_limit: int = 0) -> "ClusterTuning":
        """The 4.1 code paths: no clustering; B/C add the new heuristics."""
        return cls(
            read_clustering=False,
            write_clustering=False,
            freebehind=freebehind,
            write_limit=write_limit,
        )

    def with_(self, **changes: object) -> "ClusterTuning":
        """A modified copy (ablation helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]
