"""Future-work extensions sketched in the paper's final section.

* **Bmap cache** — "A small cache in the inode could reduce the cost of
  bmap substantially."  :class:`BmapCache` caches recent
  ``lbn -> (physical, contiguous length)`` translations as extent tuples,
  which also prototypes the "Extents vs blocks" idea (the in-memory half
  of it; the on-disk format, as the paper says, must not change).
* **Random clustering** and **B_ORDER** need no classes of their own: the
  former is a flag in :class:`repro.core.ClusterTuning` honoured by
  ``ufs_rdwr``, the latter a flag on :class:`repro.disk.Buf` honoured by
  the driver queue.
"""

from __future__ import annotations

from collections import OrderedDict


class BmapCache:
    """A small per-inode cache of bmap extents.

    Entries are ``(first_lbn, physical_frag, length_blocks)``.  A lookup for
    any lbn inside a cached extent computes the physical address by offset,
    so one entry serves a whole cluster's worth of translations — the
    "cache of extent tuples" variant the paper prefers.
    """

    def __init__(self, capacity: int = 8):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._extents: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, lbn: int, frags_per_block: int) -> "tuple[int, int] | None":
        """Return (physical frag addr, remaining contiguous blocks) or None."""
        for first_lbn, (phys, length) in self._extents.items():
            if first_lbn <= lbn < first_lbn + length:
                delta = lbn - first_lbn
                self._extents.move_to_end(first_lbn)
                self.hits += 1
                return (phys + delta * frags_per_block, length - delta)
        self.misses += 1
        return None

    def insert(self, first_lbn: int, phys: int, length_blocks: int) -> None:
        """Remember one extent translation."""
        if length_blocks <= 0:
            raise ValueError("length_blocks must be positive")
        self._extents[first_lbn] = (phys, length_blocks)
        self._extents.move_to_end(first_lbn)
        while len(self._extents) > self.capacity:
            self._extents.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (block pointers changed: allocation/truncate)."""
        self._extents.clear()

    def __len__(self) -> int:
        return len(self._extents)
