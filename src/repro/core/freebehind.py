"""Free-behind: the MRU compromise for large sequential reads.

"For now, we turn on free behind if the file is in sequential read mode, at
a large enough offset, and free memory is close to the low water mark that
turns on the pager."

The policy is consulted by ``ufs_rdwr`` when it unmaps a page it has just
copied out; a True answer makes the unmap free the page (putpage with
B_FREE), so "the process that is causing the problem is the process finding
the solution" and the pageout daemon stays asleep.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FreeBehindPolicy:
    """Decision function for freeing pages behind a sequential reader."""

    enabled: bool = True
    #: The file offset must exceed this before free-behind engages; small
    #: files keep their cache ("still leave in place the caching effects
    #: for smaller files").
    min_offset: int = 256 * 1024
    #: Headroom multiplier on the pager's low water mark: free memory below
    #: ``headroom * lotsfree`` counts as "close to" it.
    headroom: float = 2.0

    def should_free(self, sequential: bool, offset: int, freemem: int,
                    lotsfree: int) -> bool:
        """True if the just-read page at ``offset`` should be freed."""
        if not self.enabled or not sequential:
            return False
        if offset < self.min_offset:
            return False
        return freemem < self.headroom * lotsfree

    @classmethod
    def disabled(cls) -> "FreeBehindPolicy":
        return cls(enabled=False)
