"""Exception hierarchy for the reproduction.

Modelled failures (ENOSPC, EIO, ...) are ordinary exceptions raised *inside*
the simulation; they are distinct from :class:`repro.sim.SimulationError`,
which indicates misuse of the simulator itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all modelled errors."""


class DiskError(ReproError):
    """I/O error from the disk model (EIO)."""


class FilesystemError(ReproError):
    """Base class for file-system level errors."""


class NoSpaceError(FilesystemError):
    """File system out of blocks/fragments/inodes (ENOSPC)."""


class FileNotFoundError_(FilesystemError):
    """Path component does not exist (ENOENT)."""


class FileExistsError_(FilesystemError):
    """Path already exists (EEXIST)."""


class NotADirectoryError_(FilesystemError):
    """Path component is not a directory (ENOTDIR)."""


class IsADirectoryError_(FilesystemError):
    """Operation not valid on a directory (EISDIR)."""


class DirectoryNotEmptyError(FilesystemError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""


class InvalidArgumentError(ReproError):
    """Bad argument to a syscall-level API (EINVAL)."""


class BadFileError(ReproError):
    """Operation on a closed or invalid file descriptor (EBADF)."""


class CorruptionError(FilesystemError):
    """On-disk metadata failed validation (what fsck exists to find)."""
