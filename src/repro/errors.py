"""Exception hierarchy for the reproduction.

Modelled failures (ENOSPC, EIO, ...) are ordinary exceptions raised *inside*
the simulation; they are distinct from :class:`repro.sim.SimulationError`,
which indicates misuse of the simulator itself.

Every modelled error carries an errno-style ``code`` string (``"EIO"``,
``"ENOSPC"``, ...) so tests and the CLI can assert on codes instead of
class names; :class:`repro.kernel.syscalls.Proc` mirrors the code of the
last failed syscall in its ``errno`` attribute, like the C library does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all modelled errors."""

    #: errno-style code; subclasses override.
    code = "EUNKNOWN"


class DiskError(ReproError):
    """I/O error from the disk model (EIO)."""

    code = "EIO"


class TransientDiskError(DiskError):
    """A request failed for a recoverable reason (vibration, a soft ECC
    miss, a bus glitch); an identical retry is expected to succeed."""

    code = "EIO"


class MediaError(DiskError):
    """A hard media error: a latent bad sector that fails every access
    until the drive revectors it to a spare.  ``sector`` identifies the
    first bad sector in the failed request's range."""

    code = "EIO"

    def __init__(self, message: str = "media error", sector: "int | None" = None):
        super().__init__(message)
        self.sector = sector


class ChecksumError(DiskError):
    """A read returned bytes whose integrity record does not match: the
    per-fragment CRC disagrees (``reason="crc"``, bit rot or a torn/lost
    write) or the self-describing fragment address disagrees
    (``reason="address"``, a misdirected write).  ``sector``/``frag``
    locate the first bad fragment in the request's range."""

    code = "EIO"

    def __init__(self, message: str = "checksum mismatch",
                 sector: "int | None" = None, frag: "int | None" = None,
                 reason: str = "crc"):
        super().__init__(message)
        self.sector = sector
        self.frag = frag
        self.reason = reason


class MemberDeadError(DiskError):
    """A volume member died wholesale (electronics failure): every request
    to it fails instantly and its volatile cache contents are gone.  A
    redundant volume degrades; anything else surfaces the error."""

    code = "EIO"


class DiskTimeoutError(DiskError):
    """The controller stopped responding; the request hung and was failed
    by the driver's timeout handling (ETIMEDOUT)."""

    code = "ETIMEDOUT"


class PowerLossError(DiskError):
    """Power was cut while the request was queued or in flight.  An
    in-flight multi-sector write may have been torn at a sector boundary;
    the durable state is frozen from this instant on."""

    code = "EIO"


class NetworkError(ReproError):
    """Base class for network/RPC level errors (the NFS path)."""

    code = "EIO"


class RpcTimeoutError(NetworkError):
    """A soft-mounted RPC exhausted its retransmissions: the major timeout
    expired with no reply (ETIMEDOUT).  Hard mounts never raise this — they
    retry forever, exactly like ``mount -o hard``."""

    code = "ETIMEDOUT"


class FilesystemError(ReproError):
    """Base class for file-system level errors."""


class NoSpaceError(FilesystemError):
    """File system out of blocks/fragments/inodes (ENOSPC)."""

    code = "ENOSPC"


class FileNotFoundError_(FilesystemError):
    """Path component does not exist (ENOENT)."""

    code = "ENOENT"


class FileExistsError_(FilesystemError):
    """Path already exists (EEXIST)."""

    code = "EEXIST"


class NotADirectoryError_(FilesystemError):
    """Path component is not a directory (ENOTDIR)."""

    code = "ENOTDIR"


class IsADirectoryError_(FilesystemError):
    """Operation not valid on a directory (EISDIR)."""

    code = "EISDIR"


class DirectoryNotEmptyError(FilesystemError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""

    code = "ENOTEMPTY"


class InvalidArgumentError(ReproError):
    """Bad argument to a syscall-level API (EINVAL)."""

    code = "EINVAL"


class BadFileError(ReproError):
    """Operation on a closed or invalid file descriptor (EBADF)."""

    code = "EBADF"


class CorruptionError(FilesystemError):
    """On-disk metadata failed validation (what fsck exists to find)."""

    code = "EUCLEAN"
