"""The simulated machine: engine + CPU + disk + VM + file system."""

from __future__ import annotations

from typing import Any, Generator

from repro.cpu import Cpu
from repro.disk.store import DiskStore
from repro.disk.volume import build_volume
from repro.kernel.config import SystemConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.invariants import Sanitizer
from repro.sim.request import RequestRegistry
from repro.sim.trace import Tracer
from repro.ufs.mkfs import mkfs
from repro.ufs.mount import UfsMount
from repro.ufs.params import FsParams
from repro.vfs.specfs import RawDiskVnode
from repro.vm.pagecache import PageCache
from repro.vm.pageout import PageoutDaemon, PageoutParams


class System:
    """A booted machine: build, mkfs, mount, and run workloads."""

    def __init__(self, config: SystemConfig | None = None,
                 engine: Engine | None = None,
                 store: "DiskStore | list[DiskStore] | None" = None,
                 fault_plan=None):
        """``engine`` lets several machines (e.g. an NFS client and server)
        share one simulated world.  ``store`` boots the machine against
        existing on-disk bytes (a crash survivor, remounted) — one store
        for the single layout, one per member for multi-member layouts;
        ``fault_plan`` is a :class:`repro.faults.FaultPlan` injected into
        the disk (or a per-member list of plans)."""
        self.config = config if config is not None else SystemConfig()
        cfg = self.config
        self.engine = engine if engine is not None else Engine()
        self.cpu = Cpu(self.engine, cfg.costs)
        self.tracer = Tracer(self.engine)
        #: One registry per machine: every syscall-level I/O request is
        #: opened here, so benchmarks can report per-kind latencies.
        self.requests = RequestRegistry(self.engine, self.tracer)
        self.fault_plan = fault_plan
        #: The block-device stack: a SingleVolume facade by default
        #: (byte-identical to the classic one-disk machine), or a
        #: concat/stripe/mirror volume per ``cfg.layout``.  ``store``,
        #: ``disk``, ``driver``, and ``write_cache`` below are the
        #: volume's kernel-facing views of it.
        self.volume = build_volume(self.engine, cfg, cpu=self.cpu,
                                   store=store, fault_plan=fault_plan)
        self.store = self.volume.store
        self.write_cache = self.volume.cache_view
        self.disk = self.volume.disk
        self.driver = self.volume.device
        reserved_pages = cfg.reserved_memory_bytes // cfg.page_size
        self.pagecache = PageCache(self.engine, cfg.memory_bytes,
                                   page_size=cfg.page_size,
                                   reserved_pages=reserved_pages)
        self.pageout = PageoutDaemon(
            self.engine, self.pagecache, self.cpu,
            PageoutParams.for_memory(self.pagecache.total_pages),
            registry=self.requests,
        )
        self.mount: UfsMount | None = None
        self.raw_disk = RawDiskVnode(self.engine, self.driver, self.cpu)
        #: The unified metrics registry: every layer's counters, gauges,
        #: and histograms behind one namespaced snapshot()/to_json() view.
        self.metrics = MetricsRegistry(self.engine)
        self.metrics.register("cpu", self.cpu.ledger)
        self.requests.register_metrics(self.metrics)
        self.volume.register_metrics(self.metrics)
        self.pagecache.register_metrics(self.metrics)
        #: Background daemons started on this machine (scrub today); a
        #: remount over the same stores neutralizes them via the stores'
        #: attach epochs, and shutdown_daemons() stops them explicitly.
        self.daemons: list = []
        for member in self.volume.members:
            member.store.attach_epoch += 1
        #: Durability-point listeners: called as ``cb(kind, vnode)`` after
        #: every acknowledged durability point (fsync, O_SYNC write) — the
        #: crash-point recorder snapshots declared-durable state here.
        self.on_durability: list = []
        #: The cross-layer invariant sanitizer ("simsan"); enabled via the
        #: REPRO_SANITIZE environment variable or per-run --sanitize flags.
        self.sanitizer = Sanitizer(self)
        # A remounted store may already carry an integrity region — find
        # it, so verification starts with the first read (mount itself).
        self.disk.attach_integrity()

    # -- setup -------------------------------------------------------------
    def mkfs(self, params: FsParams | None = None):
        """Build the file system (offline; no simulated time)."""
        params = params if params is not None else self.config.fs_params
        if self.config.checksums and not params.checksums:
            from dataclasses import replace

            params = replace(params, checksums=True)
        sb = mkfs(self.store, self.volume.geometry, params)
        self.disk.attach_integrity()
        return sb

    def mount_fs(self) -> Generator[Any, Any, UfsMount]:
        """Mount the file system (reads the root inode)."""
        self.mount = UfsMount(
            self.engine, self.cpu, self.driver, self.pagecache,
            tuning=self.config.tuning, tracer=self.tracer,
            metacache_blocks=self.config.metacache_blocks,
            ordered_metadata=self.config.ordered_metadata,
        )
        yield from self.mount.activate()
        if "ufs" not in self.metrics:
            self.mount.register_metrics(self.metrics)
        return self.mount

    @classmethod
    def booted(cls, config: SystemConfig | None = None,
               fault_plan=None) -> "System":
        """Build + mkfs + mount in one step (runs the engine briefly)."""
        system = cls(config, fault_plan=fault_plan)
        system.mkfs()
        system.run(system.mount_fs())
        return system

    @classmethod
    def remounted(cls, store: "DiskStore | list[DiskStore]",
                  config: SystemConfig | None = None,
                  fault_plan=None) -> "System":
        """Boot a fresh machine against existing on-disk bytes (no mkfs) —
        how a crash-consistency campaign comes back up after a power cut."""
        system = cls(config, store=store, fault_plan=fault_plan)
        system.run(system.mount_fs())
        return system

    # -- running workloads -----------------------------------------------------
    def run(self, gen: Generator, name: str = "workload") -> Any:
        """Run one generator to completion on the engine.

        A successful run drains the engine to idle — a quiesce point — so
        the sanitizer's full invariant suite runs here.  A run that raises
        leaves the machine in a legitimately inconsistent state (crashed
        workload, injected fault), so no checkpoint fires on that path.
        """
        result = self.engine.run_process(gen, name=name)
        self.sanitizer.checkpoint("run_idle", idle=True)
        return result

    def run_all(self, gens: "list[Generator]") -> list[Any]:
        """Run several generators concurrently; returns their results."""
        procs = [self.engine.process(g, name=f"workload{i}")
                 for i, g in enumerate(gens)]
        self.engine.run()
        missing = [p for p in procs if not p.triggered]
        if missing:
            raise RuntimeError(f"{len(missing)} workload(s) deadlocked")
        self.sanitizer.checkpoint("run_idle", idle=True)
        return [p.value for p in procs]

    @property
    def now(self) -> float:
        return self.engine.now

    def sync(self) -> None:
        """Flush everything (runs the engine)."""
        if self.mount is not None:
            self.run(self.mount.sync(), name="sync")

    def start_scrub(self, interval: float = 5.0, batch_frags: int = 64,
                    inflight_limit: int = 2):
        """Start the paced background scrub daemon (requires an attached
        integrity region); returns it."""
        from repro.integrity.scrub import ScrubDaemon

        daemon = ScrubDaemon(self, interval=interval,
                             batch_frags=batch_frags,
                             inflight_limit=inflight_limit)
        daemon.start()
        self.daemons.append(daemon)
        # replace=True: a restarted daemon takes over the namespace.
        self.metrics.register("scrub", daemon.stats, replace=True)
        return daemon

    def start_telemetry(self, interval: float = 0.010,
                        namespaces: "list[str] | None" = None):
        """Start a :class:`~repro.obs.timeseries.TelemetryRecorder`
        sampling the metrics registry every ``interval`` simulated
        seconds (``namespaces=None`` samples everything registered so
        far); returns the recorder, also tracked in ``daemons``."""
        from repro.obs.timeseries import TelemetryRecorder

        recorder = TelemetryRecorder(self, interval=interval,
                                     namespaces=namespaces)
        recorder.start()
        self.daemons.append(recorder)
        return recorder

    def shutdown_daemons(self) -> None:
        """Stop every background daemon started on this machine."""
        for daemon in self.daemons:
            daemon.stop()
