"""The update daemon: periodic sync, as update(8)/bdflush did.

Old UNIX "periodically flushes the cache to avoid file system
inconsistencies in the event of a system crash or power failure."  The
paper's related-work comparison hinges on what that periodic flush does to
the disk queue when writes have been accumulating (Peacock) versus being
pushed at each cluster boundary (this paper): "If the I/O were flushed to
disk at each cluster boundary, the disks are kept uniformly busy, instead
[of] developing large disk queues."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.ufs.mount import UfsMount


class UpdateDaemon:
    """Calls ``mount.sync()`` every ``period`` simulated seconds."""

    def __init__(self, engine: "Engine", mount: "UfsMount",
                 period: float = 30.0):
        if period <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.mount = mount
        self.period = period
        self.syncs = 0
        self._proc = engine.process(self._run(), name="update")

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield self.engine.timeout(self.period, daemon=True)
            yield from self.mount.sync()
            self.syncs += 1
