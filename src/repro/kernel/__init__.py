"""Kernel glue: wiring the subsystems into a bootable simulated machine.

:class:`~repro.kernel.config.SystemConfig` captures a full machine + tuning
description (the paper's figure 9 rows are presets);
:class:`~repro.kernel.system.System` builds engine, CPU, disk, driver, VM,
and pageout daemon from it and can mkfs/mount the file system;
:class:`~repro.kernel.syscalls.Proc` provides the open/read/write/lseek/
close/fsync layer benchmarks and examples program against.
"""

from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc, SEEK_CUR, SEEK_END, SEEK_SET
from repro.kernel.system import System

__all__ = ["Proc", "SEEK_CUR", "SEEK_END", "SEEK_SET", "System", "SystemConfig"]
