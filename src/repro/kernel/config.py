"""Machine + tuning configurations, including the paper's figure 9 rows.

The benchmarked hardware is "an 8MB, 20MHz Sparcstation 1, with one 400MB
3.5" IBM SCSI drive"; the four configurations differ only in file system
tuning and which parts of the new code are enabled:

====  ============  ========  ===========  ===========  ===========
run   cluster size  rotdelay  UFS version  free behind  write limit
====  ============  ========  ===========  ===========  ===========
A     120KB         0         SunOS 4.1.1  Yes          Yes
B     8KB           4ms       SunOS 4.1    Yes          Yes
C     8KB           4ms       SunOS 4.1    No           Yes
D     8KB           4ms       SunOS 4.1    No           No
====  ============  ========  ===========  ===========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import ClusterTuning
from repro.cpu import CostTable
from repro.disk.geometry import DiskGeometry
from repro.ufs.params import FsParams
from repro.units import KB, MB


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a simulated machine and file system."""

    name: str = "custom"
    memory_bytes: int = 8 * MB
    #: Pages held by the kernel and process working sets, unavailable to
    #: the page cache (text, kernel data, u-areas on the 8 MB SS1).
    reserved_memory_bytes: int = 2 * MB
    page_size: int = 8 * KB
    geometry: DiskGeometry = field(default_factory=DiskGeometry.ibm_400mb)
    track_buffer: bool = True
    use_disksort: bool = True
    driver_coalesce: bool = False  # the rejected driver-clustering approach
    #: Disk queue policy: "elevator" (disksort), "fifo", or "deadline".
    #: ``use_disksort=False`` downgrades the default "elevator" to "fifo"
    #: for backward compatibility with the pre-scheduler configs.
    scheduler: str = "elevator"
    fs_params: FsParams = field(default_factory=FsParams)
    tuning: ClusterTuning = field(default_factory=ClusterTuning.new_system)
    costs: CostTable = field(default_factory=CostTable)
    metacache_blocks: int = 64
    ordered_metadata: bool = False  # B_ORDER future work
    #: Model a drive with a volatile write cache (footnote 5's forbidden
    #: fast ack): completed writes are durable only after a FLUSH, a FUA
    #: write, or capacity destaging.  Off = the paper's write-through drive.
    write_cache: bool = False
    write_cache_bytes: int = 64 * KB
    #: End-to-end integrity: mkfs reserves a checksum region, every media
    #: write is stamped, every read verified (repro.integrity).
    checksums: bool = False
    #: Block-device layout under the file system: ``single`` (one disk,
    #: the default), ``concat:N``, ``stripe:N[:chunk=64k]``, or
    #: ``mirror:N[:read=rr|shortest]`` — see :mod:`repro.disk.volume`.
    #: The geometry above describes *each member*; multi-member layouts
    #: present a logical device spanning all of them.
    layout: str = "single"

    def with_(self, **changes: object) -> "SystemConfig":
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- the paper's figure 9 rows ------------------------------------------
    @classmethod
    def config_a(cls) -> "SystemConfig":
        """SunOS 4.1.1: clustering with 120 KB clusters, rotdelay 0."""
        return cls(
            name="A",
            fs_params=FsParams.clustered(120 * KB),
            tuning=ClusterTuning.new_system(),
        )

    @classmethod
    def config_b(cls) -> "SystemConfig":
        """SunOS 4.1 code, 8 KB blocks, rotdelay 4 ms, + free behind and
        write limit."""
        return cls(
            name="B",
            fs_params=FsParams(rotdelay_ms=4.0, maxcontig=1),
            tuning=ClusterTuning.old_system(freebehind=True,
                                            write_limit=240 * KB),
        )

    @classmethod
    def config_c(cls) -> "SystemConfig":
        """As B but without free behind."""
        return cls(
            name="C",
            fs_params=FsParams(rotdelay_ms=4.0, maxcontig=1),
            tuning=ClusterTuning.old_system(freebehind=False,
                                            write_limit=240 * KB),
        )

    @classmethod
    def config_d(cls) -> "SystemConfig":
        """A close approximation of a stock SunOS 4.1 installation."""
        return cls(
            name="D",
            fs_params=FsParams(rotdelay_ms=4.0, maxcontig=1),
            tuning=ClusterTuning.old_system(freebehind=False, write_limit=0),
        )

    @classmethod
    def by_name(cls, name: str) -> "SystemConfig":
        presets = {
            "A": cls.config_a, "B": cls.config_b,
            "C": cls.config_c, "D": cls.config_d,
        }
        try:
            return presets[name.upper()]()
        except KeyError:
            raise ValueError(f"unknown configuration {name!r}") from None
