"""The syscall layer: what a simulated user process programs against.

A :class:`Proc` owns a file-descriptor table; its methods are generators
(simulation processes) implementing open/creat/read/write/lseek/close/
fsync/unlink/mkdir plus an mmap-style ``mmap_read`` that drives the fault
path without copyout (the paper's figure 12 benchmark interface).
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import (
    BadFileError, FileNotFoundError_, InvalidArgumentError, ReproError,
)
from repro.sim.events import EventFailed
from repro.vfs.vnode import RW

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.system import System
    from repro.vfs.vnode import Vnode

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


def _syscall(method):
    """Mirror the errno-style ``code`` of a failed syscall in ``proc.errno``.

    Like the C library, ``errno`` is only written when a call fails; it
    keeps the last failure's code otherwise.  Failed simulation events that
    escape the I/O stack are unwrapped so callers always see the modelled
    :class:`ReproError`, never the engine's ``EventFailed`` envelope.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        try:
            return (yield from method(self, *args, **kwargs))
        except ReproError as exc:
            self.errno = exc.code
            raise
        except EventFailed as failure:
            cause = failure.args[0] if failure.args else failure
            if isinstance(cause, ReproError):
                self.errno = cause.code
                raise cause from None
            raise

    return wrapper


class _OpenFile:
    __slots__ = ("vnode", "offset", "sync")

    def __init__(self, vnode: "Vnode", sync: bool = False):
        self.vnode = vnode
        self.offset = 0
        #: O_SYNC: every write is acknowledged only once durable.
        self.sync = sync


class Proc:
    """A simulated process: an fd table and an address space.

    ``mount`` overrides the file system the process talks to — the vnode
    architecture's point being that any Vfs with the namespace surface
    works, so a process on a diskless client can run against an
    :class:`~repro.nfs.client.NfsMount` and still see errno semantics
    (including ETIMEDOUT from a soft mount's major timeout).
    """

    def __init__(self, system: "System", name: str = "proc", mount=None):
        from repro.vm.addrspace import AddressSpace

        self.system = system
        self.name = name
        self._mount_override = mount
        self._files: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands
        #: errno-style code ("EIO", "ENOSPC", ...) of the last failed
        #: syscall; None until something fails.
        self.errno: "str | None" = None
        self.addrspace = AddressSpace(system.engine, system.cpu,
                                      system.pagecache.page_size)

    @property
    def _mount(self):
        mount = (self._mount_override if self._mount_override is not None
                 else self.system.mount)
        if mount is None:
            raise RuntimeError("file system not mounted")
        return mount

    def _file(self, fd: int) -> _OpenFile:
        try:
            return self._files[fd]
        except KeyError:
            raise BadFileError(f"fd {fd} not open") from None

    def _charge_syscall(self) -> Generator[Any, Any, None]:
        cpu = self.system.cpu
        yield from cpu.work("syscall", cpu.costs.syscall)

    def _request(self, kind: str, **fields: Any):
        """Open an :class:`~repro.sim.request.IORequest` for one syscall.

        This is the top of the request pipeline: the returned context is
        threaded down through the vnode layer so every disk transfer (and,
        when tracing, every span) is attributed to this call.
        """
        return self.system.requests.start(kind, origin=self.name, **fields)

    # -- fd lifecycle --------------------------------------------------------
    @_syscall
    def open(self, path: str, create: bool = False,
             sync: bool = False) -> Generator[Any, Any, int]:
        """Open (optionally creating) a file; returns the fd.

        ``sync=True`` is O_SYNC: every write through this fd is pushed
        durable (data, inode, and a disk flush) before it returns.
        """
        yield from self._charge_syscall()
        mount = self._mount
        try:
            vnode = yield from mount.namei(path)
        except FileNotFoundError_:
            if not create:
                raise
            vnode = yield from mount.create(path)
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OpenFile(vnode, sync=sync)
        return fd

    def creat(self, path: str) -> Generator[Any, Any, int]:
        return (yield from self.open(path, create=True))

    @_syscall
    def close(self, fd: int) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        self._file(fd)
        del self._files[fd]

    # -- I/O --------------------------------------------------------------------
    @_syscall
    def read(self, fd: int, count: int) -> Generator[Any, Any, bytes]:
        """Read ``count`` bytes at the fd's offset (short at EOF)."""
        yield from self._charge_syscall()
        f = self._file(fd)
        req = self._request("read", fd=fd, offset=f.offset, count=count)
        try:
            data = yield from f.vnode.rdwr(RW.READ, f.offset, count, req=req)
        except BaseException as exc:
            req.complete(error=exc)
            raise
        req.complete()
        assert isinstance(data, bytes)
        f.offset += len(data)
        return data

    @_syscall
    def write(self, fd: int, data: bytes) -> Generator[Any, Any, int]:
        """Write at the fd's offset; returns bytes written."""
        yield from self._charge_syscall()
        f = self._file(fd)
        req = self._request("write", fd=fd, offset=f.offset, count=len(data))
        try:
            n = yield from f.vnode.rdwr(RW.WRITE, f.offset, data, req=req)
            if f.sync:
                # O_SYNC: the write is durable before it returns.
                yield from f.vnode.fsync(req=req)
        except BaseException as exc:
            req.complete(error=exc)
            raise
        req.complete()
        if f.sync:
            self._durability_point("osync_write", f.vnode)
        assert isinstance(n, int)
        f.offset += n
        return n

    def pread(self, fd: int, count: int, offset: int) -> Generator[Any, Any, bytes]:
        yield from self.lseek(fd, offset, SEEK_SET)
        return (yield from self.read(fd, count))

    def pwrite(self, fd: int, data: bytes, offset: int) -> Generator[Any, Any, int]:
        yield from self.lseek(fd, offset, SEEK_SET)
        return (yield from self.write(fd, data))

    @_syscall
    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET
              ) -> Generator[Any, Any, int]:
        f = self._file(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = f.offset + offset
        elif whence == SEEK_END:
            new = f.vnode.size + offset
        else:
            raise InvalidArgumentError(f"bad whence {whence}")
        if new < 0:
            raise InvalidArgumentError("negative file offset")
        f.offset = new
        return new
        yield  # pragma: no cover - lseek does no I/O but stays a generator

    def _durability_point(self, kind: str, vnode: "Vnode") -> None:
        """An acknowledged durability point: notify listeners (the
        crash-point recorder snapshots declared-durable state here)."""
        for cb in self.system.on_durability:
            cb(kind, vnode)

    @_syscall
    def fsync(self, fd: int) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        f = self._file(fd)
        req = self._request("fsync", fd=fd)
        try:
            yield from f.vnode.fsync(req=req)
        except BaseException as exc:
            req.complete(error=exc)
            raise
        req.complete()
        self._durability_point("fsync", f.vnode)
        # fsync is a quiesce point for *this file*, not the machine: other
        # processes may be mid-I/O, so only the always-true checks run.
        self.system.sanitizer.checkpoint("fsync", idle=False)

    def mmap(self, fd: int, length: int, offset: int = 0,
             writable: bool = False):
        """Map [offset, offset+length) of the file; returns the Segment."""
        f = self._file(fd)
        return self.addrspace.map(f.vnode, length, offset, writable)

    @_syscall
    def munmap(self, segment) -> Generator[Any, Any, None]:
        """Remove a mapping, flushing mapped writes."""
        yield from self._charge_syscall()
        yield from self.addrspace.unmap(segment)

    @_syscall
    def msync(self, segment) -> Generator[Any, Any, None]:
        """Flush a mapping's dirty pages synchronously."""
        yield from self._charge_syscall()
        yield from self.addrspace.msync(segment)

    def mem_read(self, addr: int, count: int) -> Generator[Any, Any, bytes]:
        """A load through the address space (faults pages in)."""
        return (yield from self.addrspace.read(addr, count))

    def mem_write(self, addr: int, data: bytes) -> Generator[Any, Any, int]:
        """A store through the address space (write faults)."""
        return (yield from self.addrspace.write(addr, data))

    @_syscall
    def mmap_read(self, fd: int, offset: int, length: int
                  ) -> Generator[Any, Any, int]:
        """Touch every page of [offset, offset+length) through the fault
        path, without copying to a user buffer (the figure 12 benchmark).

        Returns the number of pages touched.
        """
        yield from self._charge_syscall()
        f = self._file(fd)
        psize = self.system.pagecache.page_size
        if offset % psize:
            raise InvalidArgumentError("mmap offset must be page aligned")
        length = min(length, f.vnode.size - offset)
        segment = self.addrspace.map(f.vnode, length, offset)
        req = self._request("mmap_read", fd=fd, offset=offset, count=length)
        try:
            touched = 0
            addr = segment.base
            while addr < segment.end:
                yield from self.addrspace.fault(addr, RW.READ, req=req)
                touched += 1
                addr += psize
            yield from self.addrspace.unmap(segment)
        except BaseException as exc:
            req.complete(error=exc)
            raise
        req.complete()
        return touched

    # -- namespace operations ------------------------------------------------------
    @_syscall
    def link(self, existing: str, new_path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.link(existing, new_path)

    @_syscall
    def symlink(self, target: str, link_path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.symlink(target, link_path)

    @_syscall
    def readlink(self, path: str) -> Generator[Any, Any, str]:
        yield from self._charge_syscall()
        return (yield from self._mount.readlink(path))

    @_syscall
    def unlink(self, path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.unlink(path)

    @_syscall
    def rename(self, old_path: str, new_path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.rename(old_path, new_path)

    @_syscall
    def mkdir(self, path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.mkdir(path)

    @_syscall
    def rmdir(self, path: str) -> Generator[Any, Any, None]:
        yield from self._charge_syscall()
        yield from self._mount.rmdir(path)

    @_syscall
    def readdir(self, path: str) -> Generator[Any, Any, list[tuple[str, int]]]:
        yield from self._charge_syscall()
        return (yield from self._mount.readdir(path))

    @_syscall
    def stat_size(self, path: str) -> Generator[Any, Any, int]:
        yield from self._charge_syscall()
        vn = yield from self._mount.namei(path)
        return vn.size
