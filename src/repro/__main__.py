"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``iobench [--configs ABCD] [--file-mb 16]`` — run the paper's figure 10
  benchmark and print the measured-vs-paper tables;
* ``cpubench`` — the figure 12 CPU comparison;
* ``musbus [--users 4]`` — the timesharing mix;
* ``traces`` — print the figure 3/6/7 event-trace diagrams;
* ``faultcampaign [--cuts 50] [--seed 0] [--json PATH]`` — seeded
  power-cut crash-consistency sweep (fault injection + fsck repair);
* ``netcampaign [--seeds 20] [--seed 0] [--json PATH]`` — seeded
  network-fault sweep over NFS (drops/duplicates/corruption/partitions/
  server reboots against the RPC hardening: no lost acknowledged writes,
  exactly-once mutations);
* ``memberkill [--seeds 10] [--seed 0] [--json PATH]`` — seeded
  mirror-member-death sweep: kill one member of a mirror:2 volume
  mid-workload, verify degraded reads serve every acknowledged byte,
  then resync and demand byte-identical members;
* ``crashpoints [--preset smoke] [--seed 0] [--json PATH]`` — exhaustive
  crash-state exploration: record a workload over a volatile write cache,
  enumerate every bounded-legal crash state (cache subsets × torn
  destages), fsck-repair and remount each distinct image, and hold every
  acknowledged durability point to its word;
* ``scrubcampaign [--seed 0] [--json PATH]`` — seeded silent-corruption
  sweep: inject bit rot / misdirected / torn / zeroed fragments into a
  checksummed file system, run a scrub pass, and audit every outcome
  (detect, repair-from-replica/cache, precise EIO, rehabilitation);
* ``simcheck [--file-mb 4] [--json PATH]`` — the determinism differ: run
  IObench twice with the sanitizer on and demand identical stable trace
  digests;
* ``bench [--configs AC] [--json [PATH]] [--baseline PATH]`` — the
  unified perf bench: one schema-versioned BENCH.json (rates + metrics
  snapshot + layer time attribution), byte-identical across same-seed
  runs, optionally gated against a committed baseline (exit 1 on a >10%
  headline regression or attribution blowup);
* ``trace {analyze|chrome|flamegraph|series}`` — trace analytics: run a
  seeded iobench phase (or ingest an existing ``--trace-jsonl`` file)
  and either print the critical-path report with per-layer blame
  (``analyze``), export Chrome trace-event JSON for ``chrome://tracing``
  / Perfetto (``chrome``), export collapsed folded stacks for flamegraph
  tools (``flamegraph``), or record simulated-time telemetry series of
  selected metrics namespaces (``series``);
* ``demo`` — a short guided tour (quickstart + fsck).

``iobench``, ``faultcampaign``, and ``netcampaign`` accept ``--sanitize``
to run with the cross-layer invariant sanitizer enabled (see
``repro.sim.invariants``); the ``REPRO_SANITIZE`` environment variable
sets the default.

Every command with ``--json`` accepts it bare (or as ``--json -``) to
write the JSON document to **stdout** with all human progress routed to
stderr, so ``python -m repro <cmd> --json | jq .`` just works.
"""

from __future__ import annotations

import argparse
import sys


def _emit(args: argparse.Namespace):
    """The human-output printer for commands that take ``--json``.

    When the JSON document itself goes to stdout (``--json -``), every
    progress/verdict line moves to stderr so stdout stays parseable.
    """
    if getattr(args, "json", "") == "-":
        return lambda *a, **k: print(*a, file=sys.stderr, **k)
    return print


def _add_json_flag(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--json", nargs="?", const="-", default="", metavar="PATH",
        help=help_text + " (bare --json writes it to stdout; human "
                         "output then goes to stderr)")


def _cmd_iobench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench.iobench import IObench, format_member_table
    from repro.bench.report import PAPER_FIGURE_10, compare_to_paper, ratio_table
    from repro.kernel import SystemConfig
    from repro.units import MB

    names = list(args.configs.upper())
    scheduler = args.scheduler or None
    layout = args.layout or None
    tracing = bool(args.trace_jsonl)
    where = f" on layout {layout}" if layout else ""
    print(f"running IObench on configurations {', '.join(names)}{where} "
          f"({args.file_mb} MB file; this simulates a few minutes of 1991)...")
    results = {}
    benches = []
    pipelines = []
    for name in names:
        config = SystemConfig.by_name(name)
        overrides = {}
        if scheduler is not None:
            overrides["scheduler"] = scheduler
        if layout is not None:
            overrides["layout"] = layout
        if overrides:
            config = dataclasses.replace(config, **overrides)
        bench = IObench(config, file_size=args.file_mb * MB,
                        trace_phase="FSR" if tracing and not benches else None,
                        sanitize=True if args.sanitize else None)
        full = bench.run()
        results[name] = full.rates
        benches.append(bench)
        if not pipelines:
            pipelines.append(full.pipeline)
    print()
    print(compare_to_paper(results, PAPER_FIGURE_10, "Figure 10 (KB/s)"))
    if len(results) > 1 and "A" in results:
        print()
        print(ratio_table(results))
    first = benches[0]
    assert first.system is not None
    report = first.system.requests.report()
    print()
    print(f"pipeline (config {names[0]}, "
          f"layout={first.system.volume.describe()}, "
          f"scheduler={first.system.driver.scheduler_name}):")
    for kind, summary in report["latency"].items():
        print(f"  {kind:10s} n={summary['count']:<6.0f} "
              f"mean={summary['mean'] * 1e3:8.3f}ms "
              f"p95={summary['p95'] * 1e3:8.3f}ms "
              f"p99={summary['p99'] * 1e3:8.3f}ms")
    members = pipelines[0].get("members") if pipelines else None
    if members:
        print(f"\nper-member pipeline (config {names[0]}):")
        print(format_member_table(members))
    if tracing:
        tracer = first.system.tracer
        lines = tracer.export_jsonl(args.trace_jsonl)
        print(f"\nwrote {lines} trace lines to {args.trace_jsonl}")
        # Show the first traced read that actually went to the disk.
        for root in tracer.span_roots():
            if root.name == "read" and root.fields.get("ios"):
                print("\none traced read, as a span tree:")
                print(tracer.render_spans(root))
                break
    return 0


def _cmd_cpubench(args: argparse.Namespace) -> int:
    from repro.bench import run_cpu_bench
    from repro.bench.report import PAPER_FIGURE_12
    from repro.kernel import SystemConfig

    for label, cfg in (("new", SystemConfig.config_a()),
                       ("old", SystemConfig.config_d())):
        r = run_cpu_bench(cfg)
        print(f"{label}: {r.cpu_seconds:.2f} CPU s "
              f"(paper: {PAPER_FIGURE_12[label]}) over {r.elapsed:.1f} s "
              f"elapsed")
    return 0


def _cmd_musbus(args: argparse.Namespace) -> int:
    from repro.bench import run_musbus
    from repro.kernel import SystemConfig

    for name in ("A", "D"):
        r = run_musbus(SystemConfig.by_name(name), users=args.users)
        print(f"config {name}: {r.elapsed:.2f} s elapsed, "
              f"{r.throughput:.2f} scripts/s")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    import subprocess

    return subprocess.call([
        sys.executable, "-m", "pytest", "-q", "-s", "--benchmark-only",
        "benchmarks/bench_fig03_06_07_traces.py",
    ])


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.collect import collect_results
    from repro.units import MB

    results = collect_results(list(args.configs.upper()),
                              file_size=args.file_mb * MB)
    text = results.to_markdown()
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _write_json(path: str, document: dict, say=print) -> None:
    import json

    if path == "-":
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say(f"wrote {path}")


def _cmd_faultcampaign(args: argparse.Namespace) -> int:
    from repro.faults import CrashCampaign

    say = _emit(args)
    if args.cuts < 1:
        print("faultcampaign: --cuts must be >= 1", file=sys.stderr)
        return 2
    campaign = CrashCampaign(cuts=args.cuts, seed=args.seed,
                             trace=args.trace,
                             sanitize=True if args.sanitize else None)
    say(f"running {args.cuts} seeded power cuts (seed={args.seed})...")
    stats = campaign.run()
    say(stats)
    if args.trace:
        for record in campaign.trace_records:
            if record.tag == "power_cut":
                say(record.describe())
    if args.json:
        _write_json(args.json, campaign.to_json(), say)
    failed = (stats.silent_corruptions > 0
              or stats.clean_after_repair < stats.cuts)
    if failed:
        say("FAILED: corruption or unrepaired damage detected")
    return 1 if failed else 0


def _cmd_netcampaign(args: argparse.Namespace) -> int:
    from repro.faults import NetCampaign

    say = _emit(args)
    if args.seeds < 1:
        print("netcampaign: --seeds must be >= 1", file=sys.stderr)
        return 2
    campaign = NetCampaign(seeds=args.seeds, base_seed=args.seed,
                           sanitize=True if args.sanitize else None)
    say(f"running {args.seeds} seeded network-fault schedules "
        f"(base seed={args.seed}) over an NFS workload...")
    stats = campaign.run()
    say(stats)
    if args.json:
        _write_json(args.json, campaign.to_json(), say)
    if not stats.ok:
        say("FAILED: an RPC-hardening invariant was violated")
        return 1
    if stats.retransmits == 0 or stats.drc_hits == 0:
        say("FAILED: the sweep never exercised retransmission / the "
            "duplicate-request cache (fault injection inert?)")
        return 1
    return 0


def _cmd_memberkill(args: argparse.Namespace) -> int:
    from repro.faults import MirrorKillCampaign

    say = _emit(args)
    if args.seeds < 1:
        print("memberkill: --seeds must be >= 1", file=sys.stderr)
        return 2
    campaign = MirrorKillCampaign(seeds=args.seeds, base_seed=args.seed,
                                  sanitize=True if args.sanitize else None)
    say(f"killing one mirror member per seed ({args.seeds} seeds, "
        f"base seed={args.seed}): degraded reads, zero acknowledged "
        "loss, resync back to byte-identical members...")
    stats = campaign.run()
    say(stats)
    if args.json:
        _write_json(args.json, campaign.to_json(), say)
    if not stats.ok:
        say("FAILED: a mirror-redundancy invariant was violated")
        return 1
    return 0


def _cmd_crashpoints(args: argparse.Namespace) -> int:
    from repro.faults import PRESETS, run_crashpoints

    say = _emit(args)
    preset = PRESETS.get(args.preset)
    if preset is None:
        print(f"crashpoints: unknown preset {args.preset!r} "
              f"(have {', '.join(sorted(PRESETS))})", file=sys.stderr)
        return 2
    say(f"exploring crash states of preset {preset.name!r} "
        f"(seed={args.seed}): {preset.description}...")
    report = run_crashpoints(
        preset=args.preset, seed=args.seed,
        sanitize=True if args.sanitize else None,
        max_states=args.max_states,
        json_path=args.json if args.json not in ("", "-") else None)
    d = report.to_json()
    for key in ("journal_events", "contract_events", "durability_points",
                "crash_points", "raw_states", "distinct_states",
                "fsck_repairs"):
        say(f"{key:22} {d[key]}")
    say(f"{'digest':22} {report.digest}")
    if report.states_truncated:
        say(f"NOTE: enumeration truncated at --max-states="
            f"{args.max_states}; coverage is partial")
    if args.json == "-":
        _write_json("-", d, say)
    elif args.json:
        say(f"wrote {args.json}")
    if not report.ok:
        say(f"FAILED: {len(report.violations)} durability-contract "
            "violation(s)")
        for v in report.violations[:10]:
            say(f"  [{v.category}] {v.detail} (crash point "
                f"{v.event_index}, torn={v.torn})")
            for span in v.spans[:1]:
                say("    " + span.replace("\n", "\n    "))
        return 1
    say("OK: every distinct crash state repaired, remounted, and kept "
        "its durability promises")
    return 0


def _cmd_scrubcampaign(args: argparse.Namespace) -> int:
    from repro.integrity import run_scrubcampaign

    say = _emit(args)
    say(f"injecting seeded silent corruption and scrubbing "
        f"(seed={args.seed})...")
    campaign = run_scrubcampaign(
        seed=args.seed, sanitize=True if args.sanitize else None,
        json_path=args.json if args.json not in ("", "-") else None,
        out=say)
    if args.json == "-":
        _write_json("-", campaign.to_json(), say)
    if not campaign.stats.ok:
        say("FAILED: a corruption went undetected, misrepaired, or "
            "surfaced without EIO semantics")
        return 1
    say("OK: every injected corruption detected; repairable ones "
        "repaired byte-exact, the rest surfaced as precise EIO")
    return 0


def _cmd_simcheck(args: argparse.Namespace) -> int:
    from repro.sim.simcheck import run_simcheck

    return run_simcheck(config_name=args.config.upper(),
                        file_mb=args.file_mb, random_ops=args.ops,
                        trace_phase=args.trace_phase, seed=args.seed,
                        json_path=args.json or None, out=_emit(args))


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.obs.bench import canonical_json, diff_documents, run_bench
    from repro.obs.gate import check_gate

    say = _emit(args)
    say(f"running the unified bench on configurations "
        f"{', '.join(args.configs.upper())} ({args.file_mb} MB file, "
        f"{args.ops} random ops, seed {args.seed}; tracing every phase)...")
    document = run_bench(configs=args.configs.upper(), file_mb=args.file_mb,
                         random_ops=args.ops, seed=args.seed,
                         scheduler=args.scheduler or None,
                         layout=args.layout or None, out=say)
    say(f"bench id {document['id']}")
    if args.json == "-":
        sys.stdout.write(canonical_json(document))
    elif args.json:
        with open(args.json, "w") as fh:
            fh.write(canonical_json(document))
        say(f"wrote {args.json}")
    if not args.baseline:
        return 0
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    if args.diff:
        lines = diff_documents(baseline, document)
        say(f"diff against {args.baseline} (baseline -> current):")
        for line in lines or ["  (documents agree)"]:
            say(f"  {line}" if not line.startswith("  ") else line)
    gate = check_gate(document, baseline,
                      rate_tolerance=args.rate_tolerance,
                      share_tolerance=args.share_tolerance)
    say(gate.render())
    return 0 if gate.ok else 1


def _trace_bench(args: argparse.Namespace, say,
                 telemetry_interval: "float | None" = None,
                 telemetry_namespaces: "list[str] | None" = None):
    """Run the seeded iobench the trace subcommands analyze; returns the
    bench (its system carries the tracer and any telemetry recorder)."""
    from repro.bench.iobench import IObench
    from repro.kernel import SystemConfig
    from repro.units import MB

    say(f"running IObench config {args.config.upper()} "
        f"({args.file_mb} MB file, {args.ops} random ops, "
        f"seed {args.seed}; tracing phase {args.phase})...")
    bench = IObench(SystemConfig.by_name(args.config.upper()),
                    file_size=args.file_mb * MB, random_ops=args.ops,
                    seed=args.seed, trace_phase=args.phase,
                    telemetry_interval=telemetry_interval,
                    telemetry_namespaces=telemetry_namespaces)
    bench.run()
    return bench


def _trace_source(args: argparse.Namespace, say):
    """The tracer to analyze: an ingested ``--trace-jsonl`` file, or a
    fresh seeded iobench run."""
    from repro.sim.trace import load_jsonl

    if args.trace_jsonl:
        with open(args.trace_jsonl) as fh:
            tracer = load_jsonl(fh.read())
        say(f"loaded {len(tracer.spans)} spans and "
            f"{len(tracer.records)} records from {args.trace_jsonl}")
        return tracer
    bench = _trace_bench(args, say)
    assert bench.system is not None
    return bench.system.tracer


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.critpath import (
        critical_paths, verify_against_attribution, verify_conservation,
    )
    from repro.obs.export import chrome_trace_json, folded_stacks

    say = _emit(args)

    if args.mode == "series":
        if args.trace_jsonl:
            print("trace series: needs a live run (telemetry samples the "
                  "machine, not a trace file); drop --trace-jsonl",
                  file=sys.stderr)
            return 2
        namespaces = ([ns.strip() for ns in args.namespaces.split(",")
                       if ns.strip()] if args.namespaces else None)
        bench = _trace_bench(args, say,
                             telemetry_interval=args.interval_ms / 1e3,
                             telemetry_namespaces=namespaces)
        recorder = bench.telemetry
        assert recorder is not None
        say(f"sampled {recorder.samples_taken} ticks at "
            f"{args.interval_ms:g} ms simulated cadence")
        for ns in sorted(recorder._sources):
            for key in recorder.keys(ns):
                say("  " + recorder.render(ns, key))
        if args.json:
            _write_json(args.json, recorder.to_json(), say)
        return 0

    tracer = _trace_source(args, say)
    report = critical_paths(tracer)

    if args.mode == "analyze":
        say(report.render(top_n=args.top))
        problems = (verify_conservation(report)
                    + verify_against_attribution(tracer, report))
        if args.json:
            document = report.to_json()
            document["violations"] = problems
            _write_json(args.json, document, say)
        if problems:
            say(f"FAILED: {len(problems)} conservation/attribution "
                "violation(s)")
            for problem in problems[:10]:
                say(f"  {problem}")
            return 1
        say("OK: every critical path conserves its request's latency and "
            "agrees with the attribution sweep")
        return 0

    if args.mode == "chrome":
        text = chrome_trace_json(tracer)
        args.out = args.out or "trace-chrome.json"
    else:  # flamegraph
        text = folded_stacks(tracer, report)
        args.out = args.out or "trace.folded"
    if report.open_roots or report.open_spans:
        say(f"WARNING: {report.open_roots} open request(s) excluded, "
            f"{report.open_spans} open span(s) clamped")
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        say(f"wrote {args.out} ({len(text.splitlines())} lines, "
            f"{len(report.paths)} requests)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from examples.quickstart import main as quickstart_main  # type: ignore

    quickstart_main()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of McVoy & Kleiman, USENIX 1991.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("iobench", help="figure 10/11 transfer rates")
    p.add_argument("--configs", default="AD",
                   help="which figure 9 configurations (default AD)")
    p.add_argument("--file-mb", type=int, default=16)
    p.add_argument("--scheduler", default="",
                   choices=["", "elevator", "fifo", "deadline"],
                   help="override the disk scheduler for every config")
    p.add_argument("--layout", default="",
                   help="override the block-device layout for every config "
                        "(single, concat:N, stripe:N[:chunk=SIZE], "
                        "mirror:N[:read=rr|shortest])")
    p.add_argument("--trace-jsonl", default="", metavar="PATH",
                   help="trace the sequential-read phase of the first "
                        "config; write records+spans as JSON lines to PATH")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on")
    p.set_defaults(fn=_cmd_iobench)

    p = sub.add_parser("cpubench", help="figure 12 CPU comparison")
    p.set_defaults(fn=_cmd_cpubench)

    p = sub.add_parser("musbus", help="timesharing mix")
    p.add_argument("--users", type=int, default=4)
    p.set_defaults(fn=_cmd_musbus)

    p = sub.add_parser("traces", help="figure 3/6/7 trace diagrams")
    p.set_defaults(fn=_cmd_traces)

    p = sub.add_parser("report", help="regenerate RESULTS.md")
    p.add_argument("--configs", default="ABCD")
    p.add_argument("--file-mb", type=int, default=16)
    p.add_argument("--output", default="")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("faultcampaign",
                       help="seeded power-cut crash-consistency sweep")
    p.add_argument("--cuts", type=int, default=50,
                   help="number of seeded power-cut points (default 50)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true",
                   help="print a per-cut trace summary")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on")
    _add_json_flag(p, "write per-cut outcomes and repair actions to PATH")
    p.set_defaults(fn=_cmd_faultcampaign)

    p = sub.add_parser("netcampaign",
                       help="seeded network-fault sweep over NFS")
    p.add_argument("--seeds", type=int, default=20,
                   help="number of seeded fault schedules (default 20)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed (schedules use seed..seed+seeds-1)")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on")
    _add_json_flag(p, "write per-seed outcomes to PATH")
    p.set_defaults(fn=_cmd_netcampaign)

    p = sub.add_parser("memberkill",
                       help="seeded mirror-member-death sweep: degraded "
                            "operation, zero acknowledged loss, resync")
    p.add_argument("--seeds", type=int, default=10,
                   help="number of seeded member kills (default 10)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed (kills use seed..seed+seeds-1)")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on")
    _add_json_flag(p, "write per-seed outcomes to PATH")
    p.set_defaults(fn=_cmd_memberkill)

    p = sub.add_parser("crashpoints",
                       help="exhaustive crash-state exploration over a "
                            "volatile write cache")
    p.add_argument("--preset", default="smoke",
                   help="workload preset (default smoke; see "
                        "repro.faults.crashpoints.PRESETS)")
    p.add_argument("--seed", type=int, default=0,
                   help="payload seed (default 0)")
    p.add_argument("--max-states", type=int, default=20000,
                   help="raw crash-state budget (default 20000)")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on "
                        "(recording and every survivor)")
    _add_json_flag(p, "write the full report (violations included) to PATH")
    p.set_defaults(fn=_cmd_crashpoints)

    p = sub.add_parser("scrubcampaign",
                       help="seeded silent-corruption injection + scrub/"
                            "repair audit")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sanitize", action="store_true",
                   help="run with the cross-layer invariant sanitizer on")
    _add_json_flag(p, "write per-injection outcomes and the seed-stable "
                      "digest to PATH")
    p.set_defaults(fn=_cmd_scrubcampaign)

    p = sub.add_parser("simcheck",
                       help="determinism differ + sanitized benchmark run")
    p.add_argument("--config", default="C",
                   help="figure 9 configuration to run (default C)")
    p.add_argument("--file-mb", type=int, default=4)
    p.add_argument("--ops", type=int, default=256,
                   help="random operations per random phase (default 256)")
    p.add_argument("--trace-phase", default="FSW",
                   choices=["FSR", "FSU", "FSW", "FRR", "FRU"],
                   help="which phase to trace and digest (default FSW)")
    p.add_argument("--seed", type=int, default=1991)
    _add_json_flag(p, "write both runs' digests/rates/counts and the "
                      "verdict to PATH")
    p.set_defaults(fn=_cmd_simcheck)

    p = sub.add_parser("bench",
                       help="unified perf bench: BENCH.json + optional "
                            "gate against a committed baseline")
    p.add_argument("--configs", default="AC",
                   help="figure 9 configurations to run (default AC)")
    p.add_argument("--file-mb", type=int, default=4)
    p.add_argument("--ops", type=int, default=512,
                   help="random operations per random phase (default 512)")
    p.add_argument("--seed", type=int, default=1991)
    p.add_argument("--scheduler", default="",
                   choices=["", "elevator", "fifo", "deadline"],
                   help="override the disk scheduler for every config")
    p.add_argument("--layout", default="",
                   help="override the block-device layout for every config")
    p.add_argument("--baseline", default="", metavar="PATH",
                   help="gate against this committed BENCH.json; exit 1 "
                        "on regression")
    p.add_argument("--diff", action="store_true",
                   help="print per-quantity deltas against the baseline")
    p.add_argument("--rate-tolerance", type=float, default=0.10,
                   help="allowed headline-rate drop (default 0.10)")
    p.add_argument("--share-tolerance", type=float, default=0.10,
                   help="allowed attribution-share growth (default 0.10)")
    _add_json_flag(p, "write the BENCH document to PATH")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("trace",
                       help="trace analytics: critical paths, Chrome/"
                            "flamegraph exports, telemetry series")
    p.add_argument("mode",
                   choices=["analyze", "chrome", "flamegraph", "series"],
                   help="analyze = critical-path report; chrome = trace-"
                        "event JSON for chrome://tracing / Perfetto; "
                        "flamegraph = collapsed folded stacks; series = "
                        "simulated-time telemetry samples")
    p.add_argument("--config", default="C",
                   help="figure 9 configuration to run (default C)")
    p.add_argument("--file-mb", type=int, default=4)
    p.add_argument("--ops", type=int, default=256,
                   help="random operations per random phase (default 256)")
    p.add_argument("--seed", type=int, default=1991)
    p.add_argument("--phase", default="FSR",
                   choices=["FSR", "FSU", "FSW", "FRR", "FRU", "*"],
                   help="which iobench phase to trace (default FSR; "
                        "* = all five)")
    p.add_argument("--trace-jsonl", default="", metavar="PATH",
                   help="ingest this spans/records JSONL export instead "
                        "of running a benchmark (analyze/chrome/"
                        "flamegraph only)")
    p.add_argument("--out", default="", metavar="PATH",
                   help="output file for chrome/flamegraph (default "
                        "trace-chrome.json / trace.folded; - = stdout)")
    p.add_argument("--top", type=int, default=5,
                   help="slowest requests to print in analyze (default 5)")
    p.add_argument("--interval-ms", type=float, default=10.0,
                   help="series sampling cadence in simulated ms "
                        "(default 10)")
    p.add_argument("--namespaces", default="",
                   metavar="NS[,NS...]",
                   help="metrics namespaces to sample in series "
                        "(default: every registered namespace)")
    _add_json_flag(p, "write the analyze report / series document to PATH")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("demo", help="guided quickstart")
    p.set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
