"""File system aging and extent measurement.

Reproduces the paper's allocator-confidence experiment: "We tried several
tests, ranging from filling up an entire partition with one file to filling
up the last 15% of a heavily fragmented /home partition.  In the best case,
the average extent size was 1.5MB in a 13MB file.  In the worst case, the
average extent size was 62KB in a 16MB file."

``age_filesystem`` runs create/delete churn until a target utilisation;
``measure_extents`` walks a file's bmap and reports its extents (a span of
contiguous blocks followed by a gap — the paper's footnote 7 definition).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.errors import NoSpaceError
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.ufs import bmap
from repro.units import KB


@dataclass
class ExtentReport:
    """Extents of one file."""

    file_size: int
    extents: list[int] = field(default_factory=list)  # lengths in bytes

    @property
    def count(self) -> int:
        return len(self.extents)

    @property
    def average(self) -> float:
        """Average extent size in bytes (the paper's metric)."""
        if not self.extents:
            return 0.0
        return sum(self.extents) / len(self.extents)

    @property
    def largest(self) -> int:
        return max(self.extents, default=0)


def measure_extents(system: System, path: str) -> ExtentReport:
    """Walk the file's block pointers and collect contiguous extents."""
    mount = system.mount
    vn = system.run(mount.namei(path), name="measure")
    ip = vn.inode
    sb = mount.sb
    nblocks = (ip.size + sb.bsize - 1) // sb.bsize

    def walk() -> Generator[Any, Any, list[int]]:
        extents: list[int] = []
        run_frags = 0
        prev = None
        for lbn in range(nblocks):
            addr = yield from bmap.get_pointer(mount, ip, lbn)
            if addr == bmap.HOLE:
                continue
            nfrags = ip.blksize(lbn) // sb.fsize
            if prev is not None and addr == prev[0] + prev[1]:
                run_frags += nfrags
            else:
                if run_frags:
                    extents.append(run_frags * sb.fsize)
                run_frags = nfrags
            prev = (addr, nfrags)
        if run_frags:
            extents.append(run_frags * sb.fsize)
        return extents

    extents = system.run(walk(), name="measure-extents")
    return ExtentReport(file_size=ip.size, extents=extents)


def age_filesystem(system: System, target_utilization: float = 0.75,
                   seed: int = 1991, mean_file_kb: int = 24,
                   churn_factor: float = 2.0) -> int:
    """Create/delete churn until the fs reaches ``target_utilization`` of
    its non-reserved space, with extra churn to fragment the free space.

    Returns the number of files left alive.
    """
    if not 0 < target_utilization < 1:
        raise ValueError("target_utilization must be in (0, 1)")
    mount = system.mount
    sb = mount.sb
    rng = random.Random(seed)
    proc = Proc(system, name="aging")
    total_frags = sb.total_frags
    usable = total_frags * (100 - sb.minfree) // 100

    def used_fraction() -> float:
        free = sb.cs_nbfree * sb.frag + sb.cs_nffree
        reserve = total_frags - usable
        return 1.0 - max(0, free - reserve) / usable

    live: list[tuple[str, int]] = []
    counter = 0
    created = 0
    target_creates = None

    def churn():
        nonlocal counter, created, target_creates
        system.run(proc.mkdir("/aged"), name="aging")
        while True:
            if used_fraction() >= target_utilization:
                if target_creates is None:
                    # Keep churning (delete+create) to scramble free space.
                    target_creates = created * churn_factor
                if created >= target_creates:
                    return
            over_target = used_fraction() >= target_utilization
            delete = live and (over_target or rng.random() < 0.35)
            if delete:
                path, _ = live.pop(rng.randrange(len(live)))
                system.run(proc.unlink(path), name="aging")
                continue
            size = max(1, int(rng.expovariate(1.0 / mean_file_kb))) * KB
            path = f"/aged/f{counter}"
            counter += 1

            def make(path=path, size=size):
                fd = yield from proc.creat(path)
                yield from proc.write(fd, bytes(size))
                yield from proc.fsync(fd)
                yield from proc.close(fd)

            try:
                system.run(make(), name="aging")
                live.append((path, size))
                created += 1
            except NoSpaceError:
                # Too full to create: delete a few and keep going.
                for _ in range(min(3, len(live))):
                    path, _ = live.pop(rng.randrange(len(live)))
                    system.run(proc.unlink(path), name="aging")

    churn()
    return len(live)
