"""IObench: the paper's transfer-rate benchmark.

"The columns are headed by a three letter name indicating the type of I/O.
The first letter means File system, the second letter indicates Sequential
or Random, and the third letter indicates Read, Write, or Update.  The
difference between write and update is that in the update case the file's
blocks have already been allocated."

Methodology notes (documented deviations are in EXPERIMENTS.md):

* Each phase's clock includes making the data durable (final fsync/drain),
  so asynchronous writes cannot hide the disk.
* Before the sequential-read phase the file's cached pages are dropped,
  standing in for the unmount/remount benchmarks of the era used between
  phases (the 16 MB file on an 8 MB machine mostly self-evicts anyway).
* Random phases use a seeded RNG; offsets are 8 KB-aligned records within
  the file, the record size IObench reports in KB/second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.units import KB, MB, kb_per_sec

PHASES = ("FSR", "FSU", "FSW", "FRR", "FRU")


@dataclass
class IObenchResult:
    """KB/second per phase for one configuration."""

    config: str
    rates: dict[str, float] = field(default_factory=dict)
    cpu_util: dict[str, float] = field(default_factory=dict)
    #: Request-pipeline report: scheduler name, driver queue-wait/service
    #: histograms, queue-depth gauge, and per-kind request latencies.
    pipeline: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, phase: str) -> float:
        return self.rates[phase]


class IObench:
    """Run the IObench phases against one system configuration."""

    def __init__(self, config: SystemConfig, file_size: int = 16 * MB,
                 record_size: int = 8 * KB, random_ops: int = 2048,
                 seed: int = 1991, path: str = "/iobench.dat",
                 trace_phase: "str | None" = None,
                 sanitize: "bool | None" = None,
                 telemetry_interval: "float | None" = None,
                 telemetry_namespaces: "list[str] | None" = None):
        if file_size % record_size:
            raise ValueError("file size must be a multiple of the record size")
        if trace_phase is not None and trace_phase not in PHASES + ("*",):
            raise ValueError(f"trace_phase must be one of {PHASES} or '*'")
        self.config = config
        self.file_size = file_size
        self.record_size = record_size
        self.random_ops = random_ops
        self.seed = seed
        self.path = path
        #: Enable the tracer (spans + records) for exactly this phase, so
        #: the trace stays bounded: one phase's span trees, not five.
        #: ``"*"`` traces every phase — what ``python -m repro bench``
        #: needs to attribute the whole run's time, at ~5x trace volume.
        self.trace_phase = trace_phase
        #: Force the invariant sanitizer on (True) or off (False) for this
        #: run; None keeps the REPRO_SANITIZE environment default.
        self.sanitize = sanitize
        #: Sample the metrics registry every this many simulated seconds
        #: during the run (None = no telemetry); the recorder lands on
        #: ``self.telemetry`` for series reads after :meth:`run`.
        self.telemetry_interval = telemetry_interval
        self.telemetry_namespaces = telemetry_namespaces
        self.telemetry = None
        self.system: System | None = None
        self._phase_reports: dict[str, Any] = {}

    # -- phases ---------------------------------------------------------------
    def _timed(self, system: System, gen, nbytes: int,
               result: IObenchResult, phase: str) -> None:
        tracing = self.trace_phase in ("*", phase)
        if tracing:
            system.tracer.enabled = True
        # Snapshot the registry so this phase's table reports only its own
        # samples — before this, every phase's latencies and counts leaked
        # into the next phase's report.
        snap = system.requests.snapshot()
        t0 = system.now
        cpu0 = system.cpu.system_time
        system.run(gen, name=f"iobench-{phase}")
        elapsed = system.now - t0
        if tracing:
            system.tracer.enabled = False
        result.rates[phase] = kb_per_sec(nbytes, elapsed)
        result.cpu_util[phase] = (system.cpu.system_time - cpu0) / elapsed
        self._phase_reports[phase] = system.requests.report_since(snap)
        # Each phase end is a quiesce point: the workload drained the engine.
        system.sanitizer.checkpoint(f"phase_{phase}", idle=True)

    def _pipeline_report(self, system: System) -> dict[str, Any]:
        """Per-layer pipeline stats for the whole run (all phases)."""
        driver = system.driver
        report = {
            "scheduler": driver.scheduler_name,
            "layout": system.volume.describe(),
            "queue_depth": {
                "avg": driver.queue_depth.average(),
                "max": driver.queue_depth.maximum,
            },
            "queue_wait": driver.wait_hist.summary(),
            "service": driver.service_hist.summary(),
            "requests": system.requests.report(),
            "phases": dict(self._phase_reports),
        }
        members = system.volume.members
        if len(members) > 1:
            # Per-member breakdown: shows how evenly the volume spread the
            # load (stripe balance, mirror read policy) and each member's
            # own queue behaviour.
            report["members"] = [
                {
                    "name": m.driver.name,
                    "requests": m.driver.stats["requests"],
                    "bytes": m.driver.stats["bytes"],
                    # A member can finish a run with zero I/Os (a concat
                    # tail the file never reached, a mirror member the
                    # read policy skipped) — its average is undefined,
                    # not a ZeroDivisionError.  Renderers show "-".
                    "avg_io_bytes": (
                        m.driver.stats["bytes"] / m.driver.stats["requests"]
                        if m.driver.stats["requests"] else None
                    ),
                    "queue_depth": {
                        "avg": m.driver.queue_depth.average(),
                        "max": m.driver.queue_depth.maximum,
                    },
                    "service": m.driver.service_hist.summary(),
                }
                for m in members
            ]
        return report

    def _seq_write(self, proc: Proc, update: bool):
        record = bytes(self.record_size)

        def work():
            fd = yield from proc.open(self.path, create=not update)
            yield from proc.lseek(fd, 0)
            for _ in range(self.file_size // self.record_size):
                yield from proc.write(fd, record)
            yield from proc.fsync(fd)
            yield from proc.close(fd)

        return work()

    def _seq_read(self, proc: Proc):
        def work():
            fd = yield from proc.open(self.path)
            while True:
                data = yield from proc.read(fd, self.record_size)
                if not data:
                    break
            yield from proc.close(fd)

        return work()

    def _random_ops(self, proc: Proc, write: bool):
        rng = random.Random(self.seed)
        records = self.file_size // self.record_size
        offsets = [rng.randrange(records) * self.record_size
                   for _ in range(self.random_ops)]
        payload = bytes(self.record_size)

        def work():
            fd = yield from proc.open(self.path)
            for offset in offsets:
                if write:
                    yield from proc.pwrite(fd, payload, offset)
                else:
                    yield from proc.pread(fd, self.record_size, offset)
            if write:
                yield from proc.fsync(fd)
            yield from proc.close(fd)

        return work()

    def _drop_file_cache(self, system: System):
        vn = system.run(system.mount.namei(self.path), name="lookup")
        for page in system.pagecache.vnode_pages(vn):
            if not page.locked and not page.dirty:
                system.pagecache.destroy(page)
        vn.inode.readahead.reset()

    # -- the full run ------------------------------------------------------------
    def run(self) -> IObenchResult:
        """FSW, FSU, FSR, FRR, FRU — in an order that sets up each phase."""
        system = System.booted(self.config)
        if self.sanitize is not None:
            system.sanitizer.enabled = self.sanitize
        if self.telemetry_interval is not None:
            self.telemetry = system.start_telemetry(
                self.telemetry_interval, self.telemetry_namespaces)
        self.system = system
        proc = Proc(system, name="iobench")
        result = IObenchResult(config=self.config.name)
        self._phase_reports.clear()

        # FSW: sequential write with allocation.
        self._timed(system, self._seq_write(proc, update=False),
                    self.file_size, result, "FSW")
        # FSU: sequential update (blocks already allocated).
        self._timed(system, self._seq_write(proc, update=True),
                    self.file_size, result, "FSU")
        # FSR: sequential read, cold cache.
        self._drop_file_cache(system)
        self._timed(system, self._seq_read(proc), self.file_size,
                    result, "FSR")
        # FRR: random reads.
        self._drop_file_cache(system)
        nbytes = self.random_ops * self.record_size
        self._timed(system, self._random_ops(proc, write=False), nbytes,
                    result, "FRR")
        # FRU: random updates.
        self._timed(system, self._random_ops(proc, write=True), nbytes,
                    result, "FRU")
        result.pipeline = self._pipeline_report(system)
        return result


def format_member_table(members: "list[dict[str, Any]]") -> str:
    """Render the per-member pipeline rows as a fixed-width table.

    ``avg_io_bytes`` is None for a member that served no I/O (see
    :meth:`IObench._pipeline_report`); it renders as ``-``.
    """
    lines = [f"  {'member':8s} {'requests':>9s} {'bytes':>12s} "
             f"{'avg io':>9s} {'qdepth':>7s}"]
    for m in members:
        avg = m.get("avg_io_bytes")
        avg_text = "-" if avg is None else f"{avg / KB:.1f}K"
        lines.append(f"  {m['name']:8s} {m['requests']:>9.0f} "
                     f"{m['bytes']:>12.0f} {avg_text:>9s} "
                     f"{m['queue_depth']['avg']:>7.2f}")
    return "\n".join(lines)


def run_configs(names: "list[str]" = list("ABCD"),
                scheduler: "str | None" = None,
                layout: "str | None" = None,
                **kwargs) -> "list[IObenchResult]":
    """Run IObench over several figure 9 configurations.

    ``scheduler`` overrides each configuration's disk scheduler (elevator /
    fifo / deadline); None keeps the configs' own choice.  ``layout``
    overrides the block-device layout (e.g. ``stripe:4:chunk=64k``); None
    keeps the default single disk.
    """
    import dataclasses

    results = []
    for name in names:
        config = SystemConfig.by_name(name)
        overrides = {}
        if scheduler is not None:
            overrides["scheduler"] = scheduler
        if layout is not None:
            overrides["layout"] = layout
        if overrides:
            config = dataclasses.replace(config, **overrides)
        bench = IObench(config, **kwargs)
        results.append(bench.run())
    return results
