"""Benchmark harnesses reproducing the paper's evaluation.

* :mod:`iobench` — the IObench workload (figure 10's FSR/FSU/FSW/FRR/FRU
  columns) over the figure 9 configurations;
* :mod:`cpubench` — the mmap-interface CPU comparison (figure 12);
* :mod:`musbus` — a MusBus-like multi-user timesharing workload ("didn't
  move any substantial amount of data");
* :mod:`agefs` — file system aging (create/delete churn) and extent-size
  measurement, reproducing the allocator-contiguity observations;
* :mod:`report` — paper-style table formatting and paper-vs-measured
  comparison helpers.
"""

from repro.bench.agefs import age_filesystem, measure_extents
from repro.bench.collect import Results, collect_results
from repro.bench.cpubench import CpuBenchResult, run_cpu_bench
from repro.bench.iobench import IObench, IObenchResult
from repro.bench.musbus import MusbusResult, run_musbus
from repro.bench.report import Table, ratio_table

__all__ = [
    "CpuBenchResult",
    "Results",
    "collect_results",
    "IObench",
    "IObenchResult",
    "MusbusResult",
    "Table",
    "age_filesystem",
    "measure_extents",
    "ratio_table",
    "run_cpu_bench",
    "run_musbus",
]
