"""The mmap CPU benchmark (figure 12).

"The benchmark is similar to IObench, in fact it shows identical I/O
rates, but uses the mmap interface to avoid the copying of data from the
kernel to the user...  The cpu times show the seconds used by the CPU to
read a 16MB file."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.units import KB, MB


@dataclass
class CpuBenchResult:
    """Simulated CPU seconds to fault-read the file, plus context."""

    config: str
    cpu_seconds: float
    elapsed: float
    breakdown: dict

    @property
    def utilization(self) -> float:
        return self.cpu_seconds / self.elapsed if self.elapsed else 0.0


def run_cpu_bench(config: SystemConfig, file_size: int = 16 * MB,
                  path: str = "/mmapbench.dat") -> CpuBenchResult:
    """Write the file, drop caches, then mmap-read it and meter the CPU."""
    system = System.booted(config)
    proc = Proc(system, name="cpubench")
    record = bytes(64 * KB)

    def setup():
        fd = yield from proc.open(path, create=True)
        for _ in range(file_size // len(record)):
            yield from proc.write(fd, record)
        yield from proc.fsync(fd)
        return fd

    fd = system.run(setup(), name="cpubench-setup")
    vn = system.run(system.mount.namei(path), name="lookup")
    for page in system.pagecache.vnode_pages(vn):
        if not page.locked and not page.dirty:
            system.pagecache.destroy(page)
    vn.inode.readahead.reset()

    system.cpu.reset_ledger()
    t0 = system.now

    def fault_read():
        yield from proc.mmap_read(fd, 0, file_size)

    system.run(fault_read(), name="cpubench-read")
    return CpuBenchResult(
        config=config.name,
        cpu_seconds=system.cpu.system_time,
        elapsed=system.now - t0,
        breakdown=system.cpu.breakdown(),
    )
