"""Collect every headline result into one report (RESULTS.md generator).

``python -m repro report`` (or :func:`collect_results` programmatically)
re-runs the core paper experiments and renders a single markdown document
with measured-vs-paper tables — the artifact a reproduction hands to a
reviewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.cpubench import run_cpu_bench
from repro.bench.iobench import PHASES, run_configs
from repro.bench.musbus import run_musbus
from repro.bench.report import (
    PAPER_FIGURE_10, PAPER_FIGURE_11, PAPER_FIGURE_12,
)
from repro.kernel.config import SystemConfig
from repro.units import MB


@dataclass
class Results:
    """Everything :func:`collect_results` measured."""

    figure10: dict = field(default_factory=dict)  # config -> phase -> KB/s
    figure11: dict = field(default_factory=dict)  # ratio label -> phase -> x
    figure12: dict = field(default_factory=dict)  # new/old -> CPU seconds
    musbus: dict = field(default_factory=dict)  # config -> elapsed

    def to_markdown(self) -> str:
        lines = ["# RESULTS (generated)", ""]
        lines += ["## Figure 10 — IObench transfer rates (KB/s)", ""]
        header = "| run | " + " | ".join(
            f"{p} ours | {p} paper" for p in PHASES) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (2 * len(PHASES) + 1))
        for config in sorted(self.figure10):
            cells = []
            for phase in PHASES:
                cells.append(f"{self.figure10[config][phase]:.0f}")
                cells.append(f"{PAPER_FIGURE_10[config][phase]}")
            lines.append(f"| {config} | " + " | ".join(cells) + " |")
        lines += ["", "## Figure 11 — ratios (ours / paper)", ""]
        lines.append("| ratio | " + " | ".join(PHASES) + " |")
        lines.append("|" + "---|" * (len(PHASES) + 1))
        for label in sorted(self.figure11):
            cells = [
                f"{self.figure11[label][p]:.2f} / "
                f"{PAPER_FIGURE_11[label][p]:.2f}"
                for p in PHASES
            ]
            lines.append(f"| {label} | " + " | ".join(cells) + " |")
        lines += ["", "## Figure 12 — CPU seconds, 16 MB mmap read", ""]
        lines.append("| system | ours | paper |")
        lines.append("|---|---|---|")
        for label in ("new", "old"):
            lines.append(f"| {label} | {self.figure12[label]:.2f} | "
                         f"{PAPER_FIGURE_12[label]} |")
        lines += ["", "## MusBus-like timesharing", ""]
        lines.append("| config | elapsed (s) |")
        lines.append("|---|---|")
        for config in sorted(self.musbus):
            lines.append(f"| {config} | {self.musbus[config]:.2f} |")
        if {"A", "D"} <= set(self.musbus):
            ratio = self.musbus["D"] / self.musbus["A"]
            lines.append("")
            lines.append(f"D/A elapsed ratio: {ratio:.3f} "
                         f"(paper: \"improved only slightly\")")
        lines.append("")
        return "\n".join(lines)


def collect_results(configs: "list[str] | None" = None,
                    file_size: int = 16 * MB) -> Results:
    """Run the figure 10/11/12 + MusBus experiments and bundle them."""
    names = configs if configs is not None else list("ABCD")
    results = Results()
    for r in run_configs(names, file_size=file_size):
        results.figure10[r.config] = dict(r.rates)
    if "A" in results.figure10:
        for other in names:
            if other == "A":
                continue
            results.figure11[f"A/{other}"] = {
                p: results.figure10["A"][p] / results.figure10[other][p]
                for p in PHASES
            }
    results.figure12["new"] = run_cpu_bench(SystemConfig.config_a()).cpu_seconds
    results.figure12["old"] = run_cpu_bench(SystemConfig.config_d()).cpu_seconds
    for name in ("A", "D"):
        results.musbus[name] = run_musbus(SystemConfig.by_name(name)).elapsed
    return results
