"""Paper-style tables and paper-vs-measured comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

#: The paper's figure 10, for side-by-side comparison (KB/second).
PAPER_FIGURE_10 = {
    "A": {"FSR": 1610, "FSU": 1364, "FSW": 1359, "FRR": 383, "FRU": 452},
    "B": {"FSR": 805, "FSU": 799, "FSW": 790, "FRR": 369, "FRU": 431},
    "C": {"FSR": 749, "FSU": 783, "FSW": 784, "FRR": 366, "FRU": 428},
    "D": {"FSR": 749, "FSU": 722, "FSW": 718, "FRR": 370, "FRU": 545},
}

#: The paper's figure 11 (transfer rate ratios).
PAPER_FIGURE_11 = {
    "A/B": {"FSR": 2.00, "FSU": 1.71, "FSW": 1.72, "FRR": 1.04, "FRU": 1.05},
    "A/C": {"FSR": 2.15, "FSU": 1.74, "FSW": 1.73, "FRR": 1.05, "FRU": 1.06},
    "A/D": {"FSR": 2.15, "FSU": 1.89, "FSW": 1.89, "FRR": 1.04, "FRU": 0.83},
}

#: The paper's figure 12 (CPU seconds, 16 MB mmap read).
PAPER_FIGURE_12 = {"new": 2.6, "old": 3.4}


@dataclass
class Table:
    """A small fixed-width table that prints like the paper's figures."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    row_label: str = ""

    def add_row(self, label: str, values: "list[float | str]") -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append((label, values))

    def render(self, fmt: str = "{:>8}") -> str:
        width = max((len(r[0]) for r in self.rows), default=4)
        width = max(width, len(self.row_label), 4)
        header = " " * width + "".join(fmt.format(c) for c in self.columns)
        lines = [self.title, header]
        for label, values in self.rows:
            cells = []
            for v in values:
                if isinstance(v, float):
                    cells.append(fmt.format(f"{v:.2f}" if v < 50 else f"{v:.0f}"))
                else:
                    cells.append(fmt.format(v))
            lines.append(label.ljust(width) + "".join(cells))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def ratio_table(results: dict, base_config: str = "A",
                phases: "list[str] | None" = None) -> Table:
    """Figure 11: the base configuration's rates over each other's."""
    from repro.bench.iobench import PHASES

    phases = phases if phases is not None else list(PHASES)
    table = Table(title=f"Transfer rate ratios ({base_config}/x)",
                  columns=phases)
    base = results[base_config]
    for name, result in results.items():
        if name == base_config:
            continue
        table.add_row(f"{base_config}/{name}",
                      [base[p] / result[p] for p in phases])
    return table


def compare_to_paper(measured: dict, paper: dict, label: str) -> Table:
    """Side-by-side measured-vs-paper table."""
    columns = list(next(iter(paper.values())).keys())
    table = Table(title=f"{label}: measured vs paper", columns=columns)
    for row, paper_vals in paper.items():
        if row in measured:
            table.add_row(f"{row} (ours)",
                          [measured[row][c] for c in columns])
        table.add_row(f"{row} (paper)", [paper_vals[c] for c in columns])
    return table
