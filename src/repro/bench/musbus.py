"""A MusBus-like multi-user timesharing workload.

The paper: "the benchmark, MusBus, was spending most of its time sleeping
and the rest of the time running small programs such as date(1) and ls(1).
The largest I/O transfer done by MusBus was around 8KB...  In other words,
MusBus didn't move any substantial amount of data" — hence the time-sharing
numbers "improved only slightly".

Each simulated user loops over a script: think (sleep), run a small program
(CPU burst + context switch), create a small file, read it back, list the
directory, delete the file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.units import KB


@dataclass
class MusbusResult:
    """Elapsed simulated time for the whole multi-user run."""

    config: str
    users: int
    iterations: int
    elapsed: float
    cpu_util: float

    @property
    def throughput(self) -> float:
        """Script iterations per simulated second."""
        return self.users * self.iterations / self.elapsed


def run_musbus(config: SystemConfig, users: int = 4, iterations: int = 8,
               think_time: float = 0.2, seed: int = 7) -> MusbusResult:
    """Run the workload; returns timing for the whole mix."""
    system = System.booted(config)
    cpu = system.cpu
    rng = random.Random(seed)

    def user(index: int):
        proc = Proc(system, name=f"user{index}")
        yield from proc.mkdir(f"/u{index}")
        for it in range(iterations):
            # Think.
            yield system.engine.timeout(think_time * rng.uniform(0.5, 1.5))
            # Run a small program (fork/exec + a little computation).
            yield from cpu.work("exec", cpu.costs.context_switch * 4)
            yield from cpu.work("user", 0.005)
            # Small file churn: the biggest transfer is one block.
            path = f"/u{index}/tmp{it}"
            fd = yield from proc.creat(path)
            yield from proc.write(fd, bytes(rng.randrange(1, 9) * KB))
            yield from proc.fsync(fd)
            yield from proc.close(fd)
            fd = yield from proc.open(path)
            yield from proc.read(fd, 8 * KB)
            yield from proc.close(fd)
            yield from proc.readdir(f"/u{index}")
            yield from proc.unlink(path)

    t0 = system.now
    system.run_all([user(i) for i in range(users)])
    elapsed = system.now - t0
    return MusbusResult(
        config=config.name, users=users, iterations=iterations,
        elapsed=elapsed, cpu_util=cpu.system_time / elapsed,
    )
