"""Unit helpers.

All simulated time is in seconds, all sizes in bytes.  These helpers keep the
calibration tables readable (``56 * KB``, ``4 * MS``) without inventing a
quantity type system.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

US = 1e-6  #: one microsecond, in seconds
MS = 1e-3  #: one millisecond, in seconds

SECTOR_SIZE = 512  #: disk sector size in bytes (fixed, as on the paper's SCSI drive)


def kb_per_sec(nbytes: float, seconds: float) -> float:
    """Throughput in KB/second, the unit of the paper's figure 10."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / KB / seconds


def fmt_bytes(nbytes: float) -> str:
    """Render a byte count the way the paper does (KB/MB)."""
    if nbytes >= MB:
        return f"{nbytes / MB:.1f}MB"
    if nbytes >= KB:
        return f"{nbytes / KB:.0f}KB"
    return f"{nbytes:.0f}B"


def fmt_time(seconds: float) -> str:
    """Render a duration with a sensible unit."""
    if seconds >= 1:
        return f"{seconds:.2f}s"
    if seconds >= MS:
        return f"{seconds / MS:.2f}ms"
    return f"{seconds / US:.1f}us"
