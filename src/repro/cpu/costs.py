"""Calibrated per-operation CPU costs.

The numbers model a 20 MHz SPARCstation 1 (~12 MIPS) running SunOS 4.1: a
millisecond of simulated CPU corresponds to roughly 12k instructions.  They
are calibrated so that

* the old (un-clustered) system uses roughly half the CPU to stream ~750 KB/s
  through ``read()`` (the paper's motivating measurement), and
* a 16 MB mmap-style fault-driven read costs ~3.4 simulated CPU seconds on
  the old system and ~2.6 s with clustering (paper figure 12).

Only *ratios* between code paths matter for the reproduction; the absolute
scale is inherited from the target machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.units import MB, US


@dataclass
class CostTable:
    """CPU cost, in seconds, of each modelled kernel operation."""

    #: read()/write() syscall entry/exit and argument validation.
    syscall: float = 250 * US
    #: Mapping/unmapping one file block into the kernel address space
    #: (seg_map window management in ufs_rdwr).
    segmap: float = 200 * US
    #: Taking and resolving a page fault (trap, address space lookup,
    #: segment fault handler) — excludes the getpage work itself.
    fault: float = 650 * US
    #: ufs_getpage body when the page is found in the page cache.
    getpage_hit: float = 300 * US
    #: Additional ufs_getpage work when the page must be read (page list
    #: setup, buf initialisation) — charged per call, not per page.
    getpage_miss: float = 250 * US
    #: ufs_putpage body per call.
    putpage: float = 200 * US
    #: One bmap() translation using the inode's direct/indirect pointers.
    bmap: float = 120 * US
    #: Extra CPU for walking an indirect block already in memory.
    bmap_indirect: float = 60 * US
    #: Per-page cost of assembling a multi-page cluster I/O (pagelist build).
    cluster_per_page: float = 40 * US
    #: Allocating/freeing one page from the VM free list.
    page_alloc: float = 80 * US
    page_free: float = 60 * US
    #: Driver strategy routine per request (buf setup, queue insert).
    driver_strategy: float = 160 * US
    #: disksort() insertion per request already in the queue scanned.
    disksort_scan: float = 8 * US
    #: Disk completion interrupt handling per request.
    interrupt: float = 120 * US
    #: Pageout daemon cost per page examined by a clock hand.
    pagedaemon_scan: float = 10 * US
    #: Context switch to/from the pageout daemon per wakeup.
    pagedaemon_wakeup: float = 400 * US
    #: Kernel <-> user copy bandwidth in bytes/second (SS1 memory system).
    copy_bandwidth: float = 5.0 * MB
    #: Block allocator work per block allocated (cylinder-group search,
    #: bitmap update).
    alloc_block: float = 300 * US
    #: Fragment-level allocator work.
    alloc_frag: float = 200 * US
    #: Directory lookup per entry scanned.
    dirscan_entry: float = 15 * US
    #: namei per path component (vnode hold/release, hashing).
    namei_component: float = 150 * US
    #: Inode read/update bookkeeping (itimes, locking) per operation.
    inode_update: float = 80 * US
    #: Process context switch (used by the timesharing benchmark).
    context_switch: float = 300 * US
    #: CRC over one fragment (verify on read, stamp on write) when an
    #: integrity region is attached.
    checksum_frag: float = 8 * US

    extra: dict[str, float] = field(default_factory=dict)

    def copy_cost(self, nbytes: int) -> float:
        """CPU seconds to copy ``nbytes`` between kernel and user space."""
        if nbytes < 0:
            raise ValueError("cannot copy a negative byte count")
        return nbytes / self.copy_bandwidth

    def scaled(self, factor: float) -> "CostTable":
        """A cost table with every per-operation cost scaled by ``factor``.

        Copy bandwidth is divided by the factor (a slower CPU copies slower).
        Used to model faster/slower CPUs in sensitivity benchmarks.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        values: dict[str, object] = {}
        for f in fields(self):
            if f.name == "extra":
                values[f.name] = dict(self.extra)
            elif f.name == "copy_bandwidth":
                values[f.name] = self.copy_bandwidth / factor
            else:
                values[f.name] = getattr(self, f.name) * factor
        return CostTable(**values)  # type: ignore[arg-type]

    @classmethod
    def free(cls) -> "CostTable":
        """A zero-cost table (infinite CPU) for disk-only experiments."""
        values: dict[str, object] = {}
        for f in fields(cls):
            if f.name == "extra":
                values[f.name] = {}
            elif f.name == "copy_bandwidth":
                values[f.name] = float("inf")
            else:
                values[f.name] = 0.0
        return cls(**values)  # type: ignore[arg-type]
