"""The simulated CPU.

Process-context kernel work contends for the single CPU through a FIFO
:class:`~repro.sim.resources.Resource`; interrupt-context work is modelled as
preemptive (it delays the I/O completion path and is charged to the ledger,
but does not queue).  A per-tag ledger lets benchmarks report where the CPU
went — the breakdown behind the paper's figure 12.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.cpu.costs import CostTable
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Cpu:
    """A single simulated CPU with cost accounting.

    Use ``yield from cpu.work("getpage", cost_seconds)`` from process
    context.  Interrupt handlers call :meth:`interrupt_charge`, which returns
    the handler duration for the caller to fold into its completion timing.
    """

    def __init__(self, engine: "Engine", costs: CostTable | None = None,
                 ncpus: int = 1):
        self.engine = engine
        self.costs = costs if costs is not None else CostTable()
        self.resource = Resource(engine, capacity=ncpus, name="cpu")
        self.ledger = StatSet("cpu")
        self._zero = all(
            getattr(self.costs, name) == 0
            for name in ("syscall", "fault", "getpage_hit", "driver_strategy")
        ) and self.costs.copy_bandwidth == float("inf")

    # -- process context ---------------------------------------------------
    def work(self, tag: str, seconds: float) -> Generator[Event, Any, None]:
        """Occupy the CPU for ``seconds``, charged to ``tag``."""
        if seconds < 0:
            raise ValueError("CPU work duration must be >= 0")
        if seconds == 0:
            return
        self.ledger.incr(tag, seconds)
        yield from self.resource.use(seconds)

    def copy(self, tag: str, nbytes: int) -> Generator[Event, Any, None]:
        """Charge a kernel<->user copy of ``nbytes`` to ``tag``."""
        yield from self.work(tag, self.costs.copy_cost(nbytes))

    # -- interrupt context ---------------------------------------------------
    def interrupt_charge(self, tag: str, seconds: float) -> float:
        """Account for interrupt-handler time; returns the delay to apply.

        Interrupts preempt whatever is running, so they do not queue on the
        CPU resource; the time still appears in the ledger and in
        :attr:`busy_time` so utilisation reports include it.
        """
        if seconds < 0:
            raise ValueError("interrupt duration must be >= 0")
        self.ledger.incr(tag, seconds)
        self.resource.busy_time += seconds
        return seconds

    # -- reporting -----------------------------------------------------------
    @property
    def system_time(self) -> float:
        """Total simulated CPU seconds consumed so far."""
        return sum(self.ledger.as_dict().values())

    def utilization(self, elapsed: float | None = None) -> float:
        """CPU utilisation over ``elapsed`` seconds (default: since t=0)."""
        total = self.engine.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self.system_time / total)

    def breakdown(self) -> dict[str, float]:
        """Per-tag CPU seconds, sorted by key."""
        return self.ledger.as_dict()

    def reset_ledger(self) -> None:
        """Zero the accounting (keeps calibration and the resource state)."""
        self.ledger.reset()
        self.resource.busy_time = 0.0
        self.resource.service_count = 0
