"""Simulated CPU with a calibrated kernel cost model.

The paper's motivation is as much about CPU as about the disk: "about half of
a 12 MIPS CPU was used to get half of the disk bandwidth of a 1.5 MB/second
disk", and figure 12 reports CPU seconds for a 16 MB mmap read.  Every kernel
code path in this reproduction charges simulated CPU time from the
:class:`~repro.cpu.costs.CostTable`, so clustering's CPU savings (fewer
traversals of the file system and driver code) emerge from the model rather
than being asserted.
"""

from repro.cpu.costs import CostTable
from repro.cpu.cpu import Cpu

__all__ = ["CostTable", "Cpu"]
