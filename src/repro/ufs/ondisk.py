"""On-disk structures: superblock, cylinder group, dinode, directory entry.

Everything here is real bytes: the structures are packed with :mod:`struct`
into the simulated disk's sectors, and ``fsck`` re-reads and validates them.
The layout is a cleaned-up FFS:

* sector 0-15: boot area (block 0, unused)
* block 1: superblock
* cylinder group *i* occupies ``fpg`` fragments starting at ``cgbase(i)``:
  a header block (with both bitmaps inline), the inode blocks, then data.
  Group 0's header follows the boot and superblock blocks.

All block pointers are *fragment addresses* (like FFS); fragment address 0
is the boot block, which is never allocatable, so 0 doubles as the hole
marker in inode pointers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CorruptionError

SUPERBLOCK_MAGIC = 0x011954  # FS_MAGIC, as a tip of the hat
CG_MAGIC = 0x090255
DINODE_SIZE = 128
INODES_PER_BLOCK_ALIGN = 64  # ipg is rounded to a whole number of blocks
NDADDR = 12  # direct block pointers per dinode
DIRBLKSIZ = 512  # directory entries never span a 512-byte boundary
MAX_NAMELEN = 59
ROOT_INO = 2  # inode 0 unused, inode 1 historically bad-blocks

# File type bits (stored in dinode.mode).
IFREG = 0o100000
IFDIR = 0o040000
IFLNK = 0o120000
IFMT = 0o170000


def _unpack_exact(fmt: str, data: bytes, what: str) -> tuple:
    size = struct.calcsize(fmt)
    if len(data) < size:
        raise CorruptionError(f"short {what}: {len(data)} < {size} bytes")
    return struct.unpack(fmt, data[:size])


@dataclass
class Superblock:
    """The file system's description of itself."""

    # magic, 11 ints, rotdelay float, rps, 5 64-bit counters, clean flag
    _FMT = "<I" + "i" * 11 + "f" + "i" + "Q" * 5 + "I"

    magic: int
    bsize: int
    fsize: int
    nsect: int  # sectors per track
    ntrak: int  # heads
    ncyl: int
    cpg: int
    fpg: int  # fragments per cylinder group
    ipg: int  # inodes per cylinder group
    ncg: int
    minfree: int  # percent
    maxcontig: int
    rotdelay_ms: float
    rps: int  # rotations per second
    total_frags: int
    cs_ndir: int = 0
    cs_nbfree: int = 0
    cs_nifree: int = 0
    cs_nffree: int = 0
    clean: int = 1

    @property
    def frag(self) -> int:
        return self.bsize // self.fsize

    @property
    def frags_per_block(self) -> int:
        return self.bsize // self.fsize

    @property
    def spc(self) -> int:
        """Sectors per cylinder."""
        return self.nsect * self.ntrak

    def fsb_to_sector(self, frag_addr: int) -> int:
        """Fragment address -> disk sector (fsbtodb)."""
        return frag_addr * (self.fsize // 512)

    @property
    def inode_blocks_per_group(self) -> int:
        return (self.ipg * DINODE_SIZE) // self.bsize

    def cgbase(self, cgx: int) -> int:
        """First fragment of cylinder group ``cgx``."""
        if not 0 <= cgx < self.ncg:
            raise ValueError(f"cylinder group {cgx} out of range")
        return cgx * self.fpg

    def cg_header_frag(self, cgx: int) -> int:
        """Fragment address of the group's header block."""
        base = self.cgbase(cgx)
        if cgx == 0:
            return base + 2 * self.frag  # past boot block and superblock
        return base + 0

    def cg_inode_frag(self, cgx: int) -> int:
        """Fragment address of the group's first inode block."""
        return self.cg_header_frag(cgx) + self.frag

    def cg_data_frag(self, cgx: int) -> int:
        """Fragment address of the group's first data fragment."""
        return self.cg_inode_frag(cgx) + self.inode_blocks_per_group * self.frag

    def cg_end_frag(self, cgx: int) -> int:
        """One past the group's last fragment (last group may be short)."""
        return min(self.cgbase(cgx) + self.fpg, self.total_frags)

    def cg_of_frag(self, frag_addr: int) -> int:
        return frag_addr // self.fpg

    def cg_of_inode(self, ino: int) -> int:
        return ino // self.ipg

    def inode_location(self, ino: int) -> tuple[int, int]:
        """(fragment address of the block, byte offset in it) for ``ino``."""
        if not 0 <= ino < self.ncg * self.ipg:
            raise ValueError(f"inode {ino} out of range")
        cgx = ino // self.ipg
        index = ino % self.ipg
        per_block = self.bsize // DINODE_SIZE
        block = index // per_block
        return (
            self.cg_inode_frag(cgx) + block * self.frag,
            (index % per_block) * DINODE_SIZE,
        )

    def pack(self) -> bytes:
        data = struct.pack(
            self._FMT, self.magic, self.bsize, self.fsize, self.nsect,
            self.ntrak, self.ncyl, self.cpg, self.fpg, self.ipg, self.ncg,
            self.minfree, self.maxcontig, self.rotdelay_ms, self.rps,
            self.total_frags, self.cs_ndir, self.cs_nbfree, self.cs_nifree,
            self.cs_nffree, self.clean,
        )
        return data.ljust(self.bsize, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "Superblock":
        values = _unpack_exact(cls._FMT, data, "superblock")
        sb = cls(*values)
        if sb.magic != SUPERBLOCK_MAGIC:
            raise CorruptionError(f"bad superblock magic {sb.magic:#x}")
        if sb.bsize <= 0 or sb.fsize <= 0 or sb.bsize % sb.fsize:
            raise CorruptionError("superblock block/fragment sizes invalid")
        return sb


@dataclass
class CylinderGroup:
    """One cylinder group: counters plus the fragment and inode bitmaps.

    Bitmaps are bytearrays, one bit per fragment / inode; bit set = free.
    """

    _FMT = "<IIIIIIIII"

    magic: int
    cgx: int
    ndblk: int  # fragments in this group (including metadata area)
    nbfree: int  # free full blocks
    nffree: int  # free fragments not part of free full blocks
    nifree: int
    ndir: int
    frag_rotor: int
    inode_rotor: int
    frag_bitmap: bytearray = field(default_factory=bytearray)
    inode_bitmap: bytearray = field(default_factory=bytearray)

    def pack(self, sb: Superblock) -> bytes:
        frag_bytes = (sb.fpg + 7) // 8
        inode_bytes = (sb.ipg + 7) // 8
        head = struct.pack(
            self._FMT, self.magic, self.cgx, self.ndblk, self.nbfree,
            self.nffree, self.nifree, self.ndir, self.frag_rotor,
            self.inode_rotor,
        )
        data = head + bytes(self.frag_bitmap.ljust(frag_bytes, b"\x00"))
        data += bytes(self.inode_bitmap.ljust(inode_bytes, b"\x00"))
        if len(data) > sb.bsize:
            raise CorruptionError("cylinder group header exceeds one block")
        return data.ljust(sb.bsize, b"\x00")

    @classmethod
    def unpack(cls, data: bytes, sb: Superblock) -> "CylinderGroup":
        values = _unpack_exact(cls._FMT, data, "cylinder group")
        cg = cls(*values)
        if cg.magic != CG_MAGIC:
            raise CorruptionError(f"bad cylinder group magic {cg.magic:#x}")
        head = struct.calcsize(cls._FMT)
        frag_bytes = (sb.fpg + 7) // 8
        inode_bytes = (sb.ipg + 7) // 8
        cg.frag_bitmap = bytearray(data[head:head + frag_bytes])
        cg.inode_bitmap = bytearray(
            data[head + frag_bytes:head + frag_bytes + inode_bytes]
        )
        return cg

    # -- bitmap helpers (bit set = free) -------------------------------------
    @staticmethod
    def _get(bitmap: bytearray, i: int) -> bool:
        return bool(bitmap[i >> 3] & (1 << (i & 7)))

    @staticmethod
    def _set(bitmap: bytearray, i: int, free: bool) -> None:
        if free:
            bitmap[i >> 3] |= 1 << (i & 7)
        else:
            bitmap[i >> 3] &= ~(1 << (i & 7)) & 0xFF

    def frag_is_free(self, rel_frag: int) -> bool:
        return self._get(self.frag_bitmap, rel_frag)

    def set_frag(self, rel_frag: int, free: bool) -> None:
        self._set(self.frag_bitmap, rel_frag, free)

    def inode_is_free(self, rel_ino: int) -> bool:
        return self._get(self.inode_bitmap, rel_ino)

    def set_inode(self, rel_ino: int, free: bool) -> None:
        self._set(self.inode_bitmap, rel_ino, free)

    def block_is_free(self, rel_block_frag: int, frag: int) -> bool:
        """True if the whole (aligned) block starting at ``rel_block_frag``
        is free."""
        return all(self.frag_is_free(rel_block_frag + i) for i in range(frag))


@dataclass
class Dinode:
    """The on-disk inode: 128 bytes."""

    _FMT = "<HHIQIII" + "I" * NDADDR + "IIII"

    mode: int = 0
    nlink: int = 0
    uid: int = 0
    size: int = 0
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    direct: tuple[int, ...] = (0,) * NDADDR
    indirect: int = 0
    dindirect: int = 0
    blocks: int = 0  # fragments held, for du/stat
    gen: int = 0

    def __post_init__(self) -> None:
        if len(self.direct) != NDADDR:
            raise ValueError(f"direct pointer list must have {NDADDR} entries")
        self.direct = tuple(self.direct)

    @property
    def is_allocated(self) -> bool:
        return self.mode != 0

    @property
    def is_dir(self) -> bool:
        return (self.mode & IFMT) == IFDIR

    @property
    def is_reg(self) -> bool:
        return (self.mode & IFMT) == IFREG

    def pack(self) -> bytes:
        data = struct.pack(
            self._FMT, self.mode, self.nlink, self.uid, self.size,
            self.atime, self.mtime, self.ctime, *self.direct,
            self.indirect, self.dindirect, self.blocks, self.gen,
        )
        assert len(data) <= DINODE_SIZE
        return data.ljust(DINODE_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "Dinode":
        values = _unpack_exact(cls._FMT, data, "dinode")
        mode, nlink, uid, size, atime, mtime, ctime = values[:7]
        direct = values[7:7 + NDADDR]
        indirect, dindirect, blocks, gen = values[7 + NDADDR:]
        return cls(mode, nlink, uid, size, atime, mtime, ctime,
                   tuple(direct), indirect, dindirect, blocks, gen)


@dataclass(frozen=True)
class Dirent:
    """One directory entry."""

    ino: int
    name: str

    _HEAD = "<IHH"

    def __post_init__(self) -> None:
        if not self.name or len(self.name) > MAX_NAMELEN:
            raise ValueError(f"bad name length for {self.name!r}")
        if "/" in self.name or "\x00" in self.name:
            raise ValueError(f"illegal character in name {self.name!r}")

    @property
    def reclen_needed(self) -> int:
        """Bytes needed: header + name, rounded to 4."""
        head = struct.calcsize(self._HEAD)
        return (head + len(self.name.encode()) + 3) & ~3


def pack_dirent(ino: int, name: str, reclen: int) -> bytes:
    """Pack one directory entry into exactly ``reclen`` bytes."""
    encoded = name.encode()
    head = struct.pack(Dirent._HEAD, ino, reclen, len(encoded))
    body = head + encoded
    if len(body) > reclen:
        raise ValueError("reclen too small for entry")
    return body.ljust(reclen, b"\x00")


def empty_dirblock(bsize: int) -> bytes:
    """A directory block of entirely free slots (one per DIRBLKSIZ chunk)."""
    slot = struct.pack(Dirent._HEAD, 0, DIRBLKSIZ, 0).ljust(DIRBLKSIZ, b"\x00")
    return slot * (bsize // DIRBLKSIZ)


def iter_dirents(block: bytes) -> "list[tuple[int, int, str]]":
    """Yield (offset, ino, name) for every live entry in a directory block.

    Entries never cross DIRBLKSIZ boundaries; an entry with ino == 0 is a
    deleted slot whose reclen still consumes space.
    """
    head_size = struct.calcsize(Dirent._HEAD)
    entries = []
    for chunk_start in range(0, len(block), DIRBLKSIZ):
        offset = chunk_start
        chunk_end = min(chunk_start + DIRBLKSIZ, len(block))
        while offset < chunk_end:
            ino, reclen, namelen = struct.unpack_from(Dirent._HEAD, block, offset)
            if reclen < head_size or offset + reclen > chunk_end or reclen % 4:
                raise CorruptionError(
                    f"bad directory reclen {reclen} at offset {offset}"
                )
            if ino != 0:
                name = block[offset + head_size:offset + head_size + namelen].decode()
                entries.append((offset, ino, name))
            offset += reclen
    return entries
