"""The FFS allocator with the rotational layout policy.

This is the machinery the paper *relies on* rather than changes: "There were
no changes to the allocator.  The UFS allocator has always been able to
allocate files contiguously."  What changes is the *preference* it is asked
for: with ``rotdelay = 0``, :meth:`Allocator.blkpref` asks for the block
immediately after the previous one; with ``rotdelay > 0`` it asks for a
block one rotational gap later (figure 4's interleaved layout).

Policies implemented (per [McKusick]):

* preferred-block allocation with same-group fallback scan (which is what
  produces contiguous runs when the preference is "previous + 1");
* quadratic rehash across cylinder groups, then brute-force scan;
* the ``minfree`` reserve — the 10 % slack the paper credits for the
  allocator "think[ing] ahead enough" to keep files contiguous;
* ``maxbpg`` spill: a single file stops hogging a group after a quota of
  blocks and continues in the next group;
* fragments: the tail of a small file occupies a best-fit run of fragments
  inside a partially-used block, extended or moved as the file grows;
* inode allocation: directories spread to the emptiest groups, plain files
  cluster with their directory.

All bitmap state is the parsed, authoritative copy of the on-disk cylinder
groups held by the mount; ``mount.sync()`` packs it back to disk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import NoSpaceError
from repro.ufs.ondisk import CylinderGroup, IFDIR

if TYPE_CHECKING:  # pragma: no cover
    from repro.ufs.inode import Inode
    from repro.ufs.mount import UfsMount


class Allocator:
    """Block, fragment, and inode allocation for one mounted UFS."""

    def __init__(self, mount: "UfsMount"):
        self.mount = mount
        self.sb = mount.sb

    # -- policy: where should the next block go? --------------------------------
    def rotdelay_gap_frags(self) -> int:
        """The rotational gap in fragments (rounded up to whole blocks,
        since full blocks are block aligned).  Zero when rotdelay is 0."""
        sb = self.sb
        if sb.rotdelay_ms <= 0:
            return 0
        sectors_per_ms = sb.nsect * sb.rps / 1000.0
        gap_sectors = sb.rotdelay_ms * sectors_per_ms
        frag_sectors = sb.fsize // 512
        gap_frags = -(-gap_sectors // frag_sectors)
        # Round up to a whole block so the next block stays aligned.
        blocks = -(-gap_frags // sb.frag)
        return int(blocks) * sb.frag

    def maxbpg(self) -> int:
        """Blocks one file may allocate in a group before spilling."""
        return max(1, self.sb.fpg // self.sb.frag // 4)

    def blkpref(self, ip: "Inode", lbn: int, prev_addr: int) -> int:
        """Preferred fragment address for logical block ``lbn``.

        ``prev_addr`` is the address of block ``lbn - 1`` (0 if none).
        """
        sb = self.sb
        if prev_addr == 0:
            # No previous block: start in the inode's group (or rotate to a
            # fresh group for later sections of a big file).
            cgx = sb.cg_of_inode(ip.ino) % sb.ncg
            return sb.cg_data_frag(cgx)
        cgx = sb.cg_of_frag(prev_addr)
        if ip.pref_cg != cgx:
            ip.pref_cg = cgx
            ip.blocks_in_cg = 0
        if ip.blocks_in_cg >= self.maxbpg():
            # Spill to the next group with average free space.
            nxt = self._best_group(start=(cgx + 1) % sb.ncg)
            ip.pref_cg = nxt
            ip.blocks_in_cg = 0
            return sb.cg_data_frag(nxt)
        return prev_addr + sb.frag + self.rotdelay_gap_frags()

    def _best_group(self, start: int) -> int:
        """The first group at/after ``start`` with >= average free blocks."""
        sb = self.sb
        avg = max(1, sb.cs_nbfree // sb.ncg)
        for i in range(sb.ncg):
            cgx = (start + i) % sb.ncg
            if self.mount.cgs[cgx].nbfree >= avg:
                return cgx
        return start

    # -- full blocks ------------------------------------------------------------------
    def _reserve_ok(self) -> bool:
        """True if allocation is allowed under the minfree reserve."""
        sb = self.sb
        free_frags = sb.cs_nbfree * sb.frag + sb.cs_nffree
        reserve = sb.total_frags * sb.minfree // 100
        return free_frags > reserve

    def alloc_block(self, ip: "Inode", pref: int) -> Generator[Any, Any, int]:
        """Allocate one full block, as close to ``pref`` as possible."""
        yield from self.mount.cpu.work("alloc", self.mount.cpu.costs.alloc_block)
        if not self._reserve_ok():
            raise NoSpaceError("file system full (minfree reserve)")
        sb = self.sb
        pref_cg = min(sb.cg_of_frag(pref), sb.ncg - 1) if pref else sb.cg_of_frag(
            sb.cg_data_frag(0))
        addr = self._alloc_block_cg(pref_cg, pref)
        if addr is None:
            addr = self._hash_groups(pref_cg, lambda cgx: self._alloc_block_cg(cgx, 0))
        if addr is None:
            raise NoSpaceError("no free blocks in any cylinder group")
        ip.blocks_in_cg += 1
        ip.blocks += sb.frag
        ip.mark_dirty()
        return addr

    def _alloc_block_cg(self, cgx: int, pref: int) -> int | None:
        """Take a free block in group ``cgx``, preferring ``pref``."""
        sb = self.sb
        cg = self.mount.cgs[cgx]
        base = sb.cgbase(cgx)
        data_start = sb.cg_data_frag(cgx) - base
        end = sb.cg_end_frag(cgx) - base
        if cg.nbfree <= 0:
            return None
        frag = sb.frag

        def aligned(rel: int) -> int:
            return (rel // frag) * frag

        candidates: list[int] = []
        if pref and sb.cg_of_frag(pref) == cgx:
            rel = aligned(pref - base)
            if rel >= data_start:
                candidates.append(rel)
        rotor = aligned(max(cg.frag_rotor, data_start))
        if rotor + frag > end:
            rotor = data_start
        # Scan forward from the preference (or rotor), wrapping once.
        rel = candidates[0] if candidates else rotor
        nblocks = (end - data_start) // frag
        for _ in range(nblocks + 1):
            if rel + frag > end:
                rel = data_start
            if cg.block_is_free(rel, frag):
                self._take_frags(cgx, rel, frag)
                cg.frag_rotor = rel + frag
                return base + rel
            rel += frag
        return None

    def free_block(self, ip: "Inode | None", addr: int) -> None:
        """Free one full block."""
        sb = self.sb
        cgx = sb.cg_of_frag(addr)
        self._release_frags(cgx, addr - sb.cgbase(cgx), sb.frag)
        if ip is not None:
            ip.blocks -= sb.frag
            ip.mark_dirty()

    # -- fragments ---------------------------------------------------------------------
    def alloc_frags(self, ip: "Inode", pref: int, nfrags: int
                    ) -> Generator[Any, Any, int]:
        """Allocate a run of ``nfrags`` fragments inside one block."""
        sb = self.sb
        if not 1 <= nfrags <= sb.frag:
            raise ValueError(f"nfrags must be in [1, {sb.frag}]")
        if nfrags == sb.frag:
            return (yield from self.alloc_block(ip, pref))
        yield from self.mount.cpu.work("alloc", self.mount.cpu.costs.alloc_frag)
        if not self._reserve_ok():
            raise NoSpaceError("file system full (minfree reserve)")
        pref_cg = min(sb.cg_of_frag(pref), sb.ncg - 1) if pref else 0
        addr = self._hash_groups(pref_cg, lambda cgx: self._alloc_frags_cg(cgx, nfrags))
        if addr is None:
            raise NoSpaceError("no fragment run available")
        ip.blocks += nfrags
        ip.mark_dirty()
        return addr

    def _alloc_frags_cg(self, cgx: int, nfrags: int) -> int | None:
        """Best-fit fragment run in ``cgx``: the smallest suitable run in a
        partially-used block; break a whole block only as a last resort."""
        sb = self.sb
        cg = self.mount.cgs[cgx]
        base = sb.cgbase(cgx)
        data_start = sb.cg_data_frag(cgx) - base
        end = sb.cg_end_frag(cgx) - base
        frag = sb.frag
        best_rel, best_len = -1, frag + 1
        for block_rel in range(data_start, end - frag + 1, frag):
            free_here = sum(
                1 for i in range(frag) if cg.frag_is_free(block_rel + i)
            )
            if free_here == frag or free_here < nfrags:
                continue  # whole blocks are kept for block allocation
            # Find the best run inside this block.
            run = 0
            for i in range(frag + 1):
                if i < frag and cg.frag_is_free(block_rel + i):
                    run += 1
                    continue
                if nfrags <= run < best_len:
                    best_rel, best_len = block_rel + i - run, run
                run = 0
            if best_len == nfrags:
                break
        if best_rel >= 0:
            self._take_frags(cgx, best_rel, nfrags)
            return base + best_rel
        # Break a free block.
        if cg.nbfree > 0:
            block_addr = self._alloc_block_cg(cgx, 0)
            if block_addr is not None:
                rel = block_addr - base
                # Return the unused tail of the broken block.
                self._release_frags(cgx, rel + nfrags, frag - nfrags)
                return block_addr
        return None

    def realloc_frags(self, ip: "Inode", old_addr: int, old_n: int,
                      new_n: int, pref: int) -> Generator[Any, Any, int]:
        """Grow a fragment run from ``old_n`` to ``new_n`` fragments.

        Extends in place when the following fragments are free (and stay in
        the same block); otherwise allocates a new run and frees the old
        (the caller's dirty page supplies the data, so no media copy).
        """
        sb = self.sb
        if not old_n < new_n <= sb.frag:
            raise ValueError("realloc must grow within one block")
        cgx = sb.cg_of_frag(old_addr)
        cg = self.mount.cgs[cgx]
        base = sb.cgbase(cgx)
        rel = old_addr - base
        same_block = (rel % sb.frag) + new_n <= sb.frag
        extra = new_n - old_n
        if same_block and all(
            cg.frag_is_free(rel + old_n + i) for i in range(extra)
        ):
            yield from self.mount.cpu.work(
                "alloc", self.mount.cpu.costs.alloc_frag
            )
            self._take_frags(cgx, rel + old_n, extra)
            ip.blocks += extra
            ip.mark_dirty()
            return old_addr
        new_addr = yield from self.alloc_frags(ip, pref or old_addr, new_n)
        self.free_frags(ip, old_addr, old_n)
        return new_addr

    def free_frags(self, ip: "Inode | None", addr: int, nfrags: int) -> None:
        sb = self.sb
        if not 1 <= nfrags <= sb.frag:
            raise ValueError("bad fragment count")
        cgx = sb.cg_of_frag(addr)
        self._release_frags(cgx, addr - sb.cgbase(cgx), nfrags)
        if ip is not None:
            ip.blocks -= nfrags
            ip.mark_dirty()

    # -- bitmap bookkeeping --------------------------------------------------------------
    def _block_free_frags(self, cg: CylinderGroup, block_rel: int) -> int:
        return sum(1 for i in range(self.sb.frag) if cg.frag_is_free(block_rel + i))

    def _adjust_counts(self, cgx: int, block_rel: int, before: int, after: int) -> None:
        sb = self.sb
        cg = self.mount.cgs[cgx]
        if before == sb.frag:
            cg.nbfree -= 1
            sb.cs_nbfree -= 1
        else:
            cg.nffree -= before
            sb.cs_nffree -= before
        if after == sb.frag:
            cg.nbfree += 1
            sb.cs_nbfree += 1
        else:
            cg.nffree += after
            sb.cs_nffree += after
        self.mount.mark_cg_dirty(cgx)

    def _take_frags(self, cgx: int, rel: int, n: int) -> None:
        sb = self.sb
        cg = self.mount.cgs[cgx]
        frag = sb.frag
        first_block = (rel // frag) * frag
        last_block = ((rel + n - 1) // frag) * frag
        for block_rel in range(first_block, last_block + 1, frag):
            before = self._block_free_frags(cg, block_rel)
            for i in range(max(rel, block_rel),
                           min(rel + n, block_rel + frag)):
                if not cg.frag_is_free(i):
                    raise RuntimeError(
                        f"double allocation of fragment {sb.cgbase(cgx) + i}"
                    )
                cg.set_frag(i, False)
            after = self._block_free_frags(cg, block_rel)
            self._adjust_counts(cgx, block_rel, before, after)

    def _release_frags(self, cgx: int, rel: int, n: int) -> None:
        sb = self.sb
        cg = self.mount.cgs[cgx]
        frag = sb.frag
        first_block = (rel // frag) * frag
        last_block = ((rel + n - 1) // frag) * frag
        for block_rel in range(first_block, last_block + 1, frag):
            before = self._block_free_frags(cg, block_rel)
            for i in range(max(rel, block_rel),
                           min(rel + n, block_rel + frag)):
                if cg.frag_is_free(i):
                    raise RuntimeError(
                        f"double free of fragment {sb.cgbase(cgx) + i}"
                    )
                cg.set_frag(i, True)
            after = self._block_free_frags(cg, block_rel)
            self._adjust_counts(cgx, block_rel, before, after)

    def _hash_groups(self, start: int, fn) -> int | None:
        """FFS group search: preferred, quadratic rehash, then brute scan."""
        sb = self.sb
        result = fn(start)
        if result is not None:
            return result
        step = 1
        tried = {start}
        while step < sb.ncg:
            cgx = (start + step) % sb.ncg
            if cgx not in tried:
                tried.add(cgx)
                result = fn(cgx)
                if result is not None:
                    return result
            step *= 2
        for cgx in range(sb.ncg):
            if cgx not in tried:
                result = fn(cgx)
                if result is not None:
                    return result
        return None

    # -- inodes ----------------------------------------------------------------------------
    def alloc_inode(self, pref_cg: int, mode: int) -> Generator[Any, Any, int]:
        """Allocate an inode.  Directories spread out; files stay close."""
        yield from self.mount.cpu.work("alloc", self.mount.cpu.costs.alloc_frag)
        sb = self.sb
        is_dir = (mode & IFDIR) == IFDIR
        if is_dir:
            cgx = self._emptiest_dir_group()
        else:
            cgx = pref_cg % sb.ncg
        ino = self._hash_groups(cgx, self._alloc_inode_cg)
        if ino is None:
            raise NoSpaceError("out of inodes")
        if is_dir:
            cg = self.mount.cgs[sb.cg_of_inode(ino)]
            cg.ndir += 1
            sb.cs_ndir += 1
        return ino

    def _emptiest_dir_group(self) -> int:
        """Group with above-average free inodes and fewest directories."""
        sb = self.sb
        avg = sb.cs_nifree // sb.ncg
        best, best_ndir = 0, None
        for cgx, cg in enumerate(self.mount.cgs):
            if cg.nifree < avg or cg.nifree == 0:
                continue
            if best_ndir is None or cg.ndir < best_ndir:
                best, best_ndir = cgx, cg.ndir
        return best

    def _alloc_inode_cg(self, cgx: int) -> int | None:
        sb = self.sb
        cg = self.mount.cgs[cgx]
        if cg.nifree <= 0:
            return None
        start = cg.inode_rotor % sb.ipg
        for i in range(sb.ipg):
            rel = (start + i) % sb.ipg
            if cg.inode_is_free(rel):
                cg.set_inode(rel, False)
                cg.nifree -= 1
                sb.cs_nifree -= 1
                cg.inode_rotor = rel + 1
                self.mount.mark_cg_dirty(cgx)
                return cgx * sb.ipg + rel
        return None

    def free_inode(self, ino: int, was_dir: bool) -> None:
        sb = self.sb
        cgx = sb.cg_of_inode(ino)
        cg = self.mount.cgs[cgx]
        rel = ino % sb.ipg
        if cg.inode_is_free(rel):
            raise RuntimeError(f"double free of inode {ino}")
        cg.set_inode(rel, True)
        cg.nifree += 1
        sb.cs_nifree += 1
        if was_dir:
            cg.ndir -= 1
            sb.cs_ndir -= 1
        self.mount.mark_cg_dirty(cgx)
