"""The UFS vnode: the VFS face of an inode."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.ufs import io
from repro.vfs.vnode import PutFlags, RW, Vnode, VnodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.ufs.inode import Inode
    from repro.ufs.mount import UfsMount
    from repro.vm.page import Page


class UfsVnode(Vnode):
    """A UFS file as the kernel sees it."""

    def __init__(self, mount: "UfsMount", inode: "Inode"):
        vtype = VnodeType.DIRECTORY if inode.is_dir else VnodeType.REGULAR
        super().__init__(vtype)
        self.mount = mount
        self.inode = inode

    @property
    def size(self) -> int:
        return self.inode.size

    def rdwr(self, rw: RW, offset: int, payload: "bytes | int",
             req: "Any | None" = None) -> Generator[Any, Any, "bytes | int"]:
        return (yield from io.ufs_rdwr(self, rw, offset, payload, req=req))

    def getpage(self, offset: int, rw: RW = RW.READ,
                req: "Any | None" = None) -> Generator[Any, Any, "Page"]:
        return (yield from io.ufs_getpage(self, offset, rw, req=req))

    def putpage(self, offset: int, length: int, flags: PutFlags,
                req: "Any | None" = None) -> Generator[Any, Any, None]:
        yield from io.ufs_putpage(self, offset, length, flags, req=req)

    def allocate_backing(self, offset: int) -> Generator[Any, Any, None]:
        """Ensure the block at ``offset`` has backing store (the write-fault
        half of the UFS_HOLE discipline for mapped writes)."""
        from repro.ufs import bmap
        from repro.ufs.io import _frags_for

        ip = self.inode
        sb = self.mount.sb
        if offset >= ip.size:
            from repro.errors import InvalidArgumentError

            raise InvalidArgumentError("mapped write past end of file")
        lbn = offset // sb.bsize
        yield from bmap.bmap_alloc(self.mount, ip, lbn,
                                   _frags_for(sb, lbn, ip.size))
        ip.inline_data = None  # a mapped store bypasses rdwr's invalidation

    def fsync(self, req: "Any | None" = None) -> Generator[Any, Any, None]:
        """Flush data pages, then the inode, synchronously.

        Durability contract (volatile write caches): the data must be on
        the media *before* the inode that points at it — otherwise a crash
        can leave a durable inode referencing fragments whose contents
        never left the drive's buffer (the tail-relocation hazard).  Hence
        flush between data and inode, and flush again before acknowledging
        so the inode itself (and any B_ORDER barrier it rode in on) is
        durable when fsync returns.
        """
        if self.inode.size > 0:
            yield from io.ufs_putpage(self, 0, self.inode.size, PutFlags(),
                                      req=req)
            yield from self.mount.flush_disk(req=req)
        yield from self.mount.write_inode(self.inode, sync=True)
        yield from self.mount.flush_disk(req=req)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UfsVnode ino={self.inode.ino} size={self.inode.size}>"
