"""The metadata buffer cache (bread/bwrite/bdwrite for UFS metadata).

File *data* goes through the unified page cache, but metadata — inode
blocks, indirect blocks, directory blocks — still moves through a classic
fixed-size buffer cache, exactly as in SunOS 4.x.  Reads are synchronous;
writes are delayed by default (marked dirty, flushed on sync/eviction) with
``bwrite`` available for the synchronous updates UFS uses to keep the disk
consistent (the cost the paper's B_ORDER proposal wants to remove).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.sim.events import Event
from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.disk.driver import DiskDriver
    from repro.sim.engine import Engine


class MetaBuf:
    """One cached metadata block."""

    __slots__ = ("frag_addr", "data", "dirty")

    def __init__(self, frag_addr: int, data: bytearray):
        self.frag_addr = frag_addr
        self.data = data
        self.dirty = False


class MetaCache:
    """LRU cache of metadata blocks, keyed by fragment address."""

    def __init__(self, engine: "Engine", driver: "DiskDriver", cpu: "Cpu",
                 bsize: int, frag_sectors: int, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.driver = driver
        self.cpu = cpu
        self.bsize = bsize
        self.frag_sectors = frag_sectors  # sectors per fragment
        self.capacity = capacity
        self._bufs: OrderedDict[int, MetaBuf] = OrderedDict()
        self._inflight: dict[int, Event] = {}
        self.stats = StatSet("metacache")

    def _sectors_of(self, frag_addr: int) -> tuple[int, int]:
        nsectors = self.bsize // 512
        return frag_addr * self.frag_sectors, nsectors

    # -- read -----------------------------------------------------------------
    def bread(self, frag_addr: int) -> Generator[Any, Any, MetaBuf]:
        """Get the metadata block at ``frag_addr`` (block aligned), reading
        it synchronously on a miss."""
        while True:
            cached = self._bufs.get(frag_addr)
            if cached is not None:
                self._bufs.move_to_end(frag_addr)
                self.stats.incr("hits")
                return cached
            pending = self._inflight.get(frag_addr)
            if pending is None:
                break
            # Someone else is reading it; wait and re-check.
            self.stats.incr("inflight_waits")
            yield pending
        self.stats.incr("misses")
        ev = Event(self.engine, name=f"metaread@{frag_addr}")
        self._inflight[frag_addr] = ev
        try:
            sector, nsectors = self._sectors_of(frag_addr)
            buf = Buf(self.engine, BufOp.READ, sector, nsectors)
            yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
            self.driver.strategy(buf)
            yield buf.done
            assert buf.data is not None
            meta = MetaBuf(frag_addr, bytearray(buf.data))
            yield from self._install(meta)
        finally:
            del self._inflight[frag_addr]
            ev.succeed()
        return meta

    # -- write ---------------------------------------------------------------------
    def bdwrite(self, meta: MetaBuf) -> None:
        """Delayed write: mark dirty; flushed on sync or eviction."""
        if meta.frag_addr not in self._bufs:
            raise ValueError("buffer is not in the cache")
        meta.dirty = True
        self.stats.incr("delayed_writes")

    def bwrite(self, meta: MetaBuf) -> Generator[Any, Any, None]:
        """Synchronous write (UFS consistency-critical updates)."""
        self.stats.incr("sync_writes")
        yield from self._push(meta, wait=True)

    def bawrite(self, meta: MetaBuf) -> Generator[Any, Any, None]:
        """Asynchronous write: start it, do not wait."""
        self.stats.incr("async_writes")
        yield from self._push(meta, wait=False)

    def install_new(self, frag_addr: int, data: bytes | None = None
                    ) -> Generator[Any, Any, MetaBuf]:
        """Install a freshly *allocated* block without reading the disk
        (its previous contents are dead)."""
        if frag_addr in self._bufs:
            raise ValueError(f"block {frag_addr} already cached")
        meta = MetaBuf(frag_addr, bytearray(data) if data else bytearray(self.bsize))
        if len(meta.data) != self.bsize:
            raise ValueError("new metadata block must be exactly one block")
        yield from self._install(meta)
        return meta

    def drop(self, frag_addr: int) -> None:
        """Forget a block (freed by truncation); dirty contents are dead."""
        self._bufs.pop(frag_addr, None)

    def flush(self) -> Generator[Any, Any, int]:
        """Write all dirty buffers (synchronously); returns count flushed."""
        flushed = 0
        for meta in [m for m in self._bufs.values() if m.dirty]:
            yield from self._push(meta, wait=True)
            flushed += 1
        return flushed

    @property
    def dirty_count(self) -> int:
        return sum(1 for m in self._bufs.values() if m.dirty)

    # -- internals ----------------------------------------------------------------------
    def _install(self, meta: MetaBuf) -> Generator[Any, Any, None]:
        while len(self._bufs) >= self.capacity:
            victim_addr, victim = next(iter(self._bufs.items()))
            if victim.dirty:
                self.stats.incr("eviction_writebacks")
                yield from self._push(victim, wait=True)
            self._bufs.pop(victim_addr, None)
        self._bufs[meta.frag_addr] = meta

    def _push(self, meta: MetaBuf, wait: bool) -> Generator[Any, Any, None]:
        # A synchronous metadata write is only worth waiting for if it is
        # durable when it completes: force unit access past any volatile
        # write cache (the UFS consistency discipline assumes stable
        # storage, not a drive buffer).
        sector, nsectors = self._sectors_of(meta.frag_addr)
        buf = Buf(self.engine, BufOp.WRITE, sector, nsectors,
                  data=bytes(meta.data), async_=not wait, fua=wait,
                  owner=f"meta@{meta.frag_addr}")
        meta.dirty = False
        yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
        self.driver.strategy(buf)
        if wait:
            yield buf.done
