"""Directory operations.

Directories are files of variable-length entries that never cross a
DIRBLKSIZ (512-byte) boundary.  Deletion merges an entry's record length
into its predecessor (classic FFS compaction); insertion claims the first
sufficient free span.  Directory blocks move through the metadata buffer
cache, and directory *updates* are written synchronously — the consistency
discipline whose cost motivates the paper's B_ORDER proposal.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import FileExistsError_, FilesystemError
from repro.ufs import bmap
from repro.ufs.ondisk import DIRBLKSIZ, Dirent, empty_dirblock, iter_dirents

if TYPE_CHECKING:  # pragma: no cover
    from repro.ufs.inode import Inode
    from repro.ufs.mount import UfsMount

_HEAD = Dirent._HEAD
_HEAD_SIZE = struct.calcsize(_HEAD)


def _entry_span(block: "bytes | bytearray", offset: int) -> tuple[int, int, int]:
    """(ino, reclen, namelen) at ``offset``."""
    return struct.unpack_from(_HEAD, block, offset)


def _dir_blocks(ip: "Inode") -> int:
    bsize = ip.mount.sb.bsize
    if ip.size % bsize:
        raise FilesystemError(f"directory {ip.ino} size not block aligned")
    return ip.size // bsize


def _charge_scan(mount: "UfsMount", entries: int) -> Generator[Any, Any, None]:
    yield from mount.cpu.work(
        "dirscan", entries * mount.cpu.costs.dirscan_entry
    )


def lookup(mount: "UfsMount", dp: "Inode", name: str) -> Generator[Any, Any, int | None]:
    """Find ``name`` in directory ``dp``; returns its inode number or None."""
    for blkno in range(_dir_blocks(dp)):
        addr = yield from bmap.get_pointer(mount, dp, blkno)
        if addr == bmap.HOLE:
            raise FilesystemError(f"hole in directory {dp.ino}")
        meta = yield from mount.metacache.bread(addr)
        entries = iter_dirents(bytes(meta.data))
        yield from _charge_scan(mount, max(1, len(entries)))
        for _, ino, entry_name in entries:
            if entry_name == name:
                return ino
    return None


def entries(mount: "UfsMount", dp: "Inode") -> Generator[Any, Any, list[tuple[str, int]]]:
    """All (name, ino) pairs, including '.' and '..'."""
    found: list[tuple[str, int]] = []
    for blkno in range(_dir_blocks(dp)):
        addr = yield from bmap.get_pointer(mount, dp, blkno)
        meta = yield from mount.metacache.bread(addr)
        listed = iter_dirents(bytes(meta.data))
        yield from _charge_scan(mount, max(1, len(listed)))
        found.extend((name, ino) for _, ino, name in listed)
    return found


def is_empty(mount: "UfsMount", dp: "Inode") -> Generator[Any, Any, bool]:
    """True if the directory holds only '.' and '..'."""
    listed = yield from entries(mount, dp)
    return all(name in (".", "..") for name, _ in listed)


def enter(mount: "UfsMount", dp: "Inode", name: str, ino: int
          ) -> Generator[Any, Any, None]:
    """Add ``name -> ino``; the directory block is written synchronously."""
    needed = Dirent(ino, name).reclen_needed
    existing = yield from lookup(mount, dp, name)
    if existing is not None:
        raise FileExistsError_(f"{name!r} already exists")
    for blkno in range(_dir_blocks(dp)):
        addr = yield from bmap.get_pointer(mount, dp, blkno)
        meta = yield from mount.metacache.bread(addr)
        if _try_insert(meta.data, name, ino, needed):
            yield from mount.meta_write(meta)
            dp.mark_dirty()
            return
    # No room: extend the directory by one block.
    blkno = _dir_blocks(dp)
    addr = yield from bmap.bmap_alloc(mount, dp, blkno, mount.sb.frag)
    meta = yield from mount.metacache.install_new(
        addr, empty_dirblock(mount.sb.bsize)
    )
    dp.size += mount.sb.bsize
    dp.mark_dirty()
    if not _try_insert(meta.data, name, ino, needed):
        raise FilesystemError("fresh directory block cannot hold entry")
    yield from mount.meta_write(meta)
    yield from mount.write_inode(dp, sync=True)


def _try_insert(block: bytearray, name: str, ino: int, needed: int) -> bool:
    """Claim space for the entry in any DIRBLKSIZ chunk of ``block``."""
    for chunk in range(0, len(block), DIRBLKSIZ):
        offset = chunk
        while offset < chunk + DIRBLKSIZ:
            e_ino, reclen, namelen = _entry_span(block, offset)
            if e_ino == 0:
                # A fully free slot.
                if reclen >= needed:
                    _write_entry(block, offset, ino, name, reclen)
                    return True
            else:
                used = (_HEAD_SIZE + namelen + 3) & ~3
                spare = reclen - used
                if spare >= needed:
                    # Shrink this entry; the new one takes the tail space.
                    struct.pack_into("<H", block, offset + 4, used)
                    _write_entry(block, offset + used, ino, name, spare)
                    return True
            offset += reclen
    return False


def _write_entry(block: bytearray, offset: int, ino: int, name: str,
                 reclen: int) -> None:
    encoded = name.encode()
    struct.pack_into(_HEAD, block, offset, ino, reclen, len(encoded))
    block[offset + _HEAD_SIZE:offset + _HEAD_SIZE + len(encoded)] = encoded


def remove(mount: "UfsMount", dp: "Inode", name: str) -> Generator[Any, Any, int]:
    """Remove ``name``; returns the inode number it referenced."""
    if name in (".", ".."):
        raise FilesystemError(f"cannot remove {name!r}")
    for blkno in range(_dir_blocks(dp)):
        addr = yield from bmap.get_pointer(mount, dp, blkno)
        meta = yield from mount.metacache.bread(addr)
        hit = _find_in_block(meta.data, name)
        if hit is None:
            continue
        offset, prev_offset, ino = hit
        if prev_offset is not None:
            # Merge into the predecessor's record length.
            _, prev_reclen, _ = _entry_span(meta.data, prev_offset)
            _, reclen, _ = _entry_span(meta.data, offset)
            struct.pack_into("<H", meta.data, prev_offset + 4,
                             prev_reclen + reclen)
        else:
            struct.pack_into("<I", meta.data, offset, 0)  # ino = 0: free slot
        yield from mount.meta_write(meta)
        dp.mark_dirty()
        return ino
    raise FilesystemError(f"{name!r} not found")


def _find_in_block(block: bytearray, name: str) -> "tuple[int, int | None, int] | None":
    """(offset, previous entry offset in chunk, ino) of ``name``, or None."""
    encoded = name.encode()
    for chunk in range(0, len(block), DIRBLKSIZ):
        offset = chunk
        prev: int | None = None
        while offset < chunk + DIRBLKSIZ:
            ino, reclen, namelen = _entry_span(block, offset)
            if ino != 0 and block[offset + _HEAD_SIZE:offset + _HEAD_SIZE + namelen] == encoded:
                return offset, prev, ino
            prev = offset
            offset += reclen
    return None
