"""The in-memory inode.

"An inode is an in-memory version of the control information associated
with a file", plus the "meta information that the file system uses to help
tune performance": the read-ahead prediction fields (``nextr``/``nextrio``),
the delayed-write cluster fields (``delayoff``/``delaylen``), the write
throttle, and (future work) the bmap cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import BmapCache, ReadAheadState, WriteClusterState, WriteThrottle
from repro.ufs.ondisk import Dinode, IFDIR, IFLNK, IFMT, IFREG, NDADDR

if TYPE_CHECKING:  # pragma: no cover
    from repro.ufs.mount import UfsMount


class Inode:
    """An active file's control information."""

    def __init__(self, mount: "UfsMount", ino: int, din: Dinode):
        self.mount = mount
        self.ino = ino
        self.mode = din.mode
        self.nlink = din.nlink
        self.size = din.size
        self.atime = din.atime
        self.mtime = din.mtime
        self.ctime = din.ctime
        self.direct = list(din.direct)
        self.indirect = din.indirect
        self.dindirect = din.dindirect
        self.blocks = din.blocks  # fragments held
        self.gen = din.gen
        self.dirty = False

        # Performance meta information (never on disk).
        #: Conservative holes flag (the UFS_HOLE future work): True unless
        #: di_blocks proves every logical block is backed.
        self.maybe_holes = not self._blocks_prove_no_holes(mount, din)
        #: "Data in the inode" future work: small files' bytes cached here.
        self.inline_data: "bytes | None" = None
        self.readahead = ReadAheadState()
        self.writecluster = WriteClusterState()
        self.throttle = WriteThrottle(
            mount.engine, mount.tuning.write_limit, owner=f"inode {ino}",
            stats=getattr(mount, "throttle_stats", None))
        self.bmap_cache = BmapCache() if mount.tuning.bmap_cache else None
        #: Blocks this file has allocated in its current preferred group,
        #: for the maxbpg group-spill policy.
        self.blocks_in_cg = 0
        self.pref_cg = -1

    @staticmethod
    def _blocks_prove_no_holes(mount: "UfsMount", din: Dinode) -> bool:
        """True when di_blocks equals the frag count of a hole-free file of
        this size (including its indirect blocks) — an exact check."""
        sb = mount.sb
        if din.size == 0:
            return True
        last = (din.size - 1) // sb.bsize
        frags = 0
        for lbn in range(min(last, NDADDR - 1) + 1):
            if lbn < last or lbn >= NDADDR:
                frags += sb.frag
            else:
                tail = din.size - last * sb.bsize
                frags += max(1, -(-tail // sb.fsize))
        if last >= NDADDR:
            frags += (last - NDADDR + 1) * sb.frag  # indirect-range data
            frags += sb.frag  # the indirect block
            nindir = sb.bsize // 4
            if last >= NDADDR + nindir:
                inner = (last - NDADDR - nindir) // nindir + 1
                frags += (1 + inner) * sb.frag  # dindirect + inner blocks
        return din.blocks == frags

    # -- types --------------------------------------------------------------
    @property
    def cluster_blocks(self) -> int:
        """The cluster size in blocks (maxcontig, per the paper)."""
        return max(1, self.mount.sb.maxcontig)

    @property
    def is_dir(self) -> bool:
        return (self.mode & IFMT) == IFDIR

    @property
    def is_reg(self) -> bool:
        return (self.mode & IFMT) == IFREG

    @property
    def is_symlink(self) -> bool:
        return (self.mode & IFMT) == IFLNK

    # -- geometry helpers ------------------------------------------------------
    def lblkno(self, offset: int) -> int:
        """Logical block number containing byte ``offset``."""
        return offset // self.mount.sb.bsize

    def blksize(self, lbn: int) -> int:
        """Size in bytes of logical block ``lbn`` (the tail of a small file
        may be a fragment run shorter than a full block)."""
        sb = self.mount.sb
        if lbn < 0:
            raise ValueError("negative lbn")
        last = max(0, (self.size - 1)) // sb.bsize
        if self.size == 0 or lbn < last or lbn >= NDADDR:
            return sb.bsize
        if lbn > last:
            return sb.bsize
        tail = self.size - last * sb.bsize
        frags = -(-tail // sb.fsize)
        return frags * sb.fsize

    # -- dinode conversion --------------------------------------------------------
    def to_dinode(self) -> Dinode:
        return Dinode(
            mode=self.mode, nlink=self.nlink, size=self.size,
            atime=self.atime, mtime=self.mtime, ctime=self.ctime,
            direct=tuple(self.direct), indirect=self.indirect,
            dindirect=self.dindirect, blocks=self.blocks, gen=self.gen,
        )

    def mark_dirty(self) -> None:
        """The dinode needs writing back."""
        self.dirty = True
        self.mtime = int(self.mount.engine.now)

    def invalidate_translations(self) -> None:
        """Block pointers changed: drop any cached bmap extents."""
        if self.bmap_cache is not None:
            self.bmap_cache.invalidate()

    def recycle(self) -> None:
        """The contents vanished out from under the inode (truncate, last
        link destroyed): forget every piece of performance meta-state that
        described the old bytes.  The sequential predictions (``nextr`` /
        ``trigger`` / ``nextrio``) would otherwise survive into the file's
        next life and fire read-ahead at offsets past the new EOF; the
        delayed-write cluster names pages that were just invalidated."""
        self.readahead.reset()
        self.writecluster.delayoff = 0
        self.writecluster.delaylen = 0
        self.writecluster.health.reset()
        self.invalidate_translations()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dir" if self.is_dir else "reg" if self.is_reg else "?"
        return f"<Inode {self.ino} {kind} size={self.size}>"
