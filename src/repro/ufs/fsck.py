"""fsck: offline consistency checking of the on-disk bytes.

The paper's constraint — "a change in on-disk file system format would
require changes to many system utilities, such as dump, restore, and fsck"
— is only meaningful if such utilities exist.  This fsck re-reads the raw
disk (never the in-memory mount state) and runs the classic phases:

1. inodes: valid modes, sane sizes, block pointers in range, block/fragment
   claims without duplicates, claimed counts matching ``di_blocks``;
2. directory structure: reachable from the root, ``.``/``..`` correct,
   entries pointing at allocated inodes;
3. link counts: directory references vs ``di_nlink``;
4. bitmaps and counters: claimed vs free agreement per cylinder group, and
   superblock summary totals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CorruptionError
from repro.ufs.ondisk import (
    CG_MAGIC, DINODE_SIZE, DIRBLKSIZ, IFDIR, IFLNK, IFMT, IFREG, NDADDR,
    ROOT_INO, CylinderGroup, Dinode, Superblock, empty_dirblock, iter_dirents,
    pack_dirent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.store import DiskStore


@dataclass
class FsckReport:
    """Findings from one fsck pass (and, in repair mode, the repairs)."""

    findings: list[str] = field(default_factory=list)
    repairs: list[str] = field(default_factory=list)
    inodes_checked: int = 0
    directories_checked: int = 0
    frags_claimed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def problem(self, text: str) -> None:
        self.findings.append(text)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "CLEAN" if self.clean else f"{len(self.findings)} PROBLEM(S)"
        lines = [f"fsck: {status}; {self.inodes_checked} inodes, "
                 f"{self.directories_checked} dirs, {self.frags_claimed} frags"]
        lines.extend(f"  - {f}" for f in self.findings)
        lines.extend(f"  * repaired: {r}" for r in self.repairs)
        return "\n".join(lines)


class _Checker:
    def __init__(self, store: "DiskStore"):
        from repro.integrity.checksum import IntegrityRegion

        self.store = store
        self.report = FsckReport()
        #: Structured repair hints gathered alongside the findings; applied
        #: by :class:`_Repairer` when fsck runs with ``repair=True``.
        self.actions: list[tuple] = []
        self.region = IntegrityRegion.find(store)
        raw = self._read_frags_raw(16, 16)
        if self.region is None:
            self.sb = Superblock.unpack(raw)
        else:
            try:
                if self.region.verify_range(16, raw):
                    raise CorruptionError(
                        "primary superblock failed integrity check")
                self.sb = Superblock.unpack(raw)
            except CorruptionError:
                # The replica in the integrity region stands in; repair
                # mode rewrites the primary from it.
                self.sb = Superblock.unpack(self.region.sb_replica())
                self.report.problem(
                    "primary superblock corrupt; using integrity replica")
                self.actions.append(("rewrite_superblock",))
        self.frag_sectors = self.sb.fsize // 512
        self.claims: dict[int, int] = {}  # frag -> claiming inode
        self.link_counts: dict[int, int] = {}  # ino -> references seen
        self.inode_modes: dict[int, int] = {}

    def _read_frags_raw(self, sector: int, nsectors: int) -> bytes:
        return self.store.read(sector, nsectors)

    def _read_frag_addr(self, frag_addr: int, nbytes: int) -> bytes:
        nsectors = -(-nbytes // 512)
        return self.store.read(frag_addr * self.frag_sectors, nsectors)

    # -- phase 1: inodes and block claims -------------------------------------
    def _claim(self, ino: int, frag_addr: int, nfrags: int) -> None:
        sb = self.sb
        for f in range(frag_addr, frag_addr + nfrags):
            if f <= 0 or f >= sb.total_frags:
                self.report.problem(
                    f"inode {ino}: fragment {f} out of range"
                )
                self.actions.append(("clear_inode", ino))
                return
            prev = self.claims.get(f)
            if prev is not None:
                self.report.problem(
                    f"fragment {f} claimed by inodes {prev} and {ino}"
                )
                self.actions.append(("clear_inode", ino))
                continue
            self.claims[f] = ino
            self.report.frags_claimed += 1

    def _read_dinode(self, ino: int) -> Dinode:
        frag_addr, byte_off = self.sb.inode_location(ino)
        block = self._read_frag_addr(frag_addr, self.sb.bsize)
        return Dinode.unpack(block[byte_off:byte_off + DINODE_SIZE])

    def _file_frags(self, din: Dinode, lbn: int) -> int:
        """Fragments logical block ``lbn`` should hold, from the size."""
        sb = self.sb
        last = (din.size - 1) // sb.bsize if din.size > 0 else 0
        if lbn < last or lbn >= NDADDR:
            return sb.frag
        tail = din.size - last * sb.bsize
        return max(1, -(-tail // sb.fsize))

    def check_inodes(self) -> None:
        sb = self.sb
        nindir = sb.bsize // 4
        for ino in range(sb.ncg * sb.ipg):
            din = self._read_dinode(ino)
            if not din.is_allocated:
                continue
            if ino in (0, 1):
                continue  # reserved
            self.report.inodes_checked += 1
            self.inode_modes[ino] = din.mode
            kind = din.mode & IFMT
            if kind not in (IFREG, IFDIR, IFLNK):
                self.report.problem(f"inode {ino}: unknown mode {din.mode:#o}")
                self.actions.append(("clear_inode", ino))
                continue
            fast_symlink_max = (NDADDR + 2) * 4 - 1
            if kind == IFLNK:
                if din.size <= fast_symlink_max:
                    # Fast symlink: the pointer words are target bytes.
                    if din.blocks != 0:
                        self.report.problem(
                            f"symlink {ino}: fast link claims blocks"
                        )
                        self.actions.append(("set_blocks", ino, 0))
                else:
                    nfrags = max(1, -(-din.size // sb.fsize))
                    self._claim(ino, din.direct[0], nfrags)
                    if din.blocks != nfrags:
                        self.report.problem(
                            f"symlink {ino}: holds {nfrags} frags but "
                            f"di_blocks says {din.blocks}"
                        )
                        self.actions.append(("set_blocks", ino, nfrags))
                continue
            claimed = 0
            last_lbn = (din.size - 1) // sb.bsize if din.size > 0 else -1
            for lbn in range(min(last_lbn + 1, NDADDR)):
                addr = din.direct[lbn]
                if addr == 0:
                    continue
                nfrags = self._file_frags(din, lbn)
                self._claim(ino, addr, nfrags)
                claimed += nfrags
            for lbn in range(NDADDR, last_lbn + 1):
                pass  # counted via the pointer blocks below
            if din.indirect:
                claimed += self._walk_pointer_block(ino, din.indirect, 1)
            if din.dindirect:
                claimed += self._walk_pointer_block(ino, din.dindirect, 2)
            if claimed != din.blocks:
                self.report.problem(
                    f"inode {ino}: holds {claimed} frags but di_blocks says "
                    f"{din.blocks}"
                )
                self.actions.append(("set_blocks", ino, claimed))
            max_size = (NDADDR + nindir + nindir * nindir) * sb.bsize
            if din.size > max_size:
                self.report.problem(f"inode {ino}: impossible size {din.size}")
                self.actions.append(("clear_inode", ino))

    def _walk_pointer_block(self, ino: int, addr: int, depth: int) -> int:
        sb = self.sb
        self._claim(ino, addr, sb.frag)
        claimed = sb.frag
        if addr <= 0 or addr + sb.frag > sb.total_frags:
            return claimed  # _claim flagged it; nothing readable behind it
        block = self._read_frag_addr(addr, sb.bsize)
        for i in range(sb.bsize // 4):
            child = struct.unpack_from("<I", block, i * 4)[0]
            if child == 0:
                continue
            if depth > 1:
                claimed += self._walk_pointer_block(ino, child, depth - 1)
            else:
                self._claim(ino, child, sb.frag)
                claimed += sb.frag
        return claimed

    # -- phase 2/3: directory structure and link counts ---------------------------
    def check_directories(self) -> None:
        sb = self.sb
        seen: set[int] = set()
        # (ino, parent, referencing entry's (frag addr, offset) or None)
        stack = [(ROOT_INO, ROOT_INO, None)]
        while stack:
            ino, parent, loc = stack.pop()
            if ino in seen:
                self.report.problem(f"directory {ino} reached twice")
                if loc is not None:
                    self.actions.append(("zero_dirent",) + loc)
                continue
            seen.add(ino)
            din = self._read_dinode(ino)
            if not din.is_dir:
                self.report.problem(f"inode {ino} expected directory")
                if loc is not None:
                    self.actions.append(("zero_dirent",) + loc)
                continue
            self.report.directories_checked += 1
            names: set[str] = set()
            nblocks = din.size // sb.bsize
            for lbn in range(min(nblocks, NDADDR)):
                addr = din.direct[lbn]
                if addr == 0:
                    self.report.problem(f"directory {ino}: hole at block {lbn}")
                    self.actions.append(("clear_inode", ino))
                    continue
                try:
                    block = self._read_frag_addr(addr, sb.bsize)
                    entries = iter_dirents(block)
                except (CorruptionError, ValueError, UnicodeDecodeError) as exc:
                    self.report.problem(f"directory {ino}: {exc}")
                    self.actions.append(("clear_dirblock", addr))
                    continue
                for offset, child_ino, name in entries:
                    if name in names:
                        self.report.problem(
                            f"directory {ino}: duplicate name {name!r}"
                        )
                        self.actions.append(("zero_dirent", addr, offset))
                    names.add(name)
                    if name == ".":
                        if child_ino != ino:
                            self.report.problem(f"directory {ino}: bad '.'")
                            self.actions.append(("fix_dirent", addr, offset, ino))
                        continue
                    if name == "..":
                        if child_ino != parent:
                            self.report.problem(f"directory {ino}: bad '..'")
                            self.actions.append(
                                ("fix_dirent", addr, offset, parent))
                        self.link_counts[parent] = self.link_counts.get(parent, 0) + 1
                        continue
                    mode = self.inode_modes.get(child_ino)
                    if mode is None:
                        self.report.problem(
                            f"directory {ino}: entry {name!r} -> unallocated "
                            f"inode {child_ino}"
                        )
                        self.actions.append(("zero_dirent", addr, offset))
                        continue
                    self.link_counts[child_ino] = self.link_counts.get(child_ino, 0) + 1
                    if (mode & IFMT) == IFDIR:
                        stack.append((child_ino, ino, (addr, offset)))
            if "." not in names or ".." not in names:
                self.report.problem(f"directory {ino}: missing '.' or '..'")
                if ino == ROOT_INO and din.direct[0] != 0:
                    # Clearing the root is unrecoverable (every later pass
                    # would find "expected directory" forever): rebuild its
                    # dot entries in place.  Entries sharing the first
                    # DIRBLKSIZ chunk are sacrificed; the orphan cascade
                    # collects whatever they referenced.
                    self.actions.append(
                        ("rebuild_dot", din.direct[0], ino, parent))
                else:
                    self.actions.append(("clear_inode", ino))
        # Note: the root's '..' entry points at itself and was counted in
        # the scan, standing in for the parent-directory entry it lacks.
        for ino, mode in self.inode_modes.items():
            din = self._read_dinode(ino)
            expected = self.link_counts.get(ino, 0)
            if (mode & IFMT) == IFDIR:
                expected += 1  # its own '.'
                if ino not in seen:
                    self.report.problem(f"directory {ino} unreachable from root")
                    self.actions.append(("clear_inode", ino))
                    continue
            if din.nlink != expected:
                self.report.problem(
                    f"inode {ino}: nlink {din.nlink} but {expected} references"
                )
                if expected == 0 and ino != ROOT_INO:
                    # Orphan: allocated but referenced by nothing (its
                    # creating dirent never became durable).  Clear it.
                    self.actions.append(("clear_inode", ino))
                else:
                    self.actions.append(("set_nlink", ino, expected))

    # -- phase 4: bitmaps and counters -----------------------------------------------
    def check_bitmaps(self) -> None:
        sb = self.sb
        total_nbfree = total_nffree = total_nifree = total_ndir = 0
        for cgx in range(sb.ncg):
            data = self._read_frag_addr(sb.cg_header_frag(cgx), sb.bsize)
            try:
                cg = CylinderGroup.unpack(data, sb)
            except CorruptionError as exc:
                self.report.problem(f"group {cgx}: {exc}")
                continue
            base = sb.cgbase(cgx)
            data_start = sb.cg_data_frag(cgx) - base
            end = sb.cg_end_frag(cgx) - base
            nbfree = nffree = 0
            for block_rel in range(data_start, end - sb.frag + 1, sb.frag):
                free_here = 0
                for i in range(sb.frag):
                    rel = block_rel + i
                    frag_addr = base + rel
                    is_free = cg.frag_is_free(rel)
                    claimed = frag_addr in self.claims
                    if is_free and claimed:
                        self.report.problem(
                            f"fragment {frag_addr} free in bitmap but claimed "
                            f"by inode {self.claims[frag_addr]}"
                        )
                    if not is_free and not claimed:
                        self.report.problem(
                            f"fragment {frag_addr} allocated in bitmap but "
                            f"unclaimed (leak)"
                        )
                    free_here += is_free
                if free_here == sb.frag:
                    nbfree += 1
                else:
                    nffree += free_here
            if nbfree != cg.nbfree:
                self.report.problem(
                    f"group {cgx}: nbfree {cg.nbfree} but bitmap shows {nbfree}"
                )
            if nffree != cg.nffree:
                self.report.problem(
                    f"group {cgx}: nffree {cg.nffree} but bitmap shows {nffree}"
                )
            nifree = sum(
                1 for i in range(sb.ipg) if cg.inode_is_free(i)
            )
            if nifree != cg.nifree:
                self.report.problem(
                    f"group {cgx}: nifree {cg.nifree} but bitmap shows {nifree}"
                )
            for i in range(sb.ipg):
                ino = cgx * sb.ipg + i
                allocated = ino in self.inode_modes or ino in (0, 1)
                if cg.inode_is_free(i) and ino in self.inode_modes:
                    self.report.problem(
                        f"inode {ino} free in bitmap but allocated on disk"
                    )
                if not cg.inode_is_free(i) and not allocated:
                    self.report.problem(f"inode {ino} leaked in bitmap")
            total_nbfree += cg.nbfree
            total_nffree += cg.nffree
            total_nifree += cg.nifree
            total_ndir += cg.ndir
        if total_nbfree != sb.cs_nbfree:
            self.report.problem(
                f"superblock nbfree {sb.cs_nbfree} != groups {total_nbfree}"
            )
        if total_nffree != sb.cs_nffree:
            self.report.problem(
                f"superblock nffree {sb.cs_nffree} != groups {total_nffree}"
            )
        if total_nifree != sb.cs_nifree:
            self.report.problem(
                f"superblock nifree {sb.cs_nifree} != groups {total_nifree}"
            )
        if total_ndir != sb.cs_ndir:
            self.report.problem(
                f"superblock ndir {sb.cs_ndir} != groups {total_ndir}"
            )


class _Repairer:
    """Applies a checker's structured repair hints to the raw bytes, then
    rebuilds both bitmaps and every counter from the repaired claims.

    Clearing a damaged directory orphans its children; the caller re-checks
    and re-repairs until a pass comes back clean, so cascading damage is
    handled by iteration rather than cleverness — exactly how the real
    fsck's multiple phases interact.
    """

    def __init__(self, store: "DiskStore", sb: Superblock):
        from repro.integrity.checksum import IntegrityRegion

        self.store = store
        self.sb = sb
        self.frag_sectors = sb.fsize // 512
        self.region = IntegrityRegion.find(store)

    # -- raw byte access ----------------------------------------------------
    def _read_block(self, frag_addr: int) -> bytearray:
        nsectors = -(-self.sb.bsize // 512)
        return bytearray(self.store.read(frag_addr * self.frag_sectors, nsectors))

    def _write_block(self, frag_addr: int, data: bytes) -> None:
        nsectors = -(-len(data) // 512)
        padded = bytes(data).ljust(nsectors * 512, b"\x00")
        self.store.write(frag_addr * self.frag_sectors, padded)
        if self.region is not None:
            # Every repair write restamps, or the repair itself would be
            # indicted on the next read.
            self.region.stamp_range(frag_addr * self.frag_sectors, padded)

    def _patch(self, frag_addr: int, offset: int, payload: bytes) -> None:
        block = self._read_block(frag_addr)
        block[offset:offset + len(payload)] = payload
        self._write_block(frag_addr, bytes(block))

    def _rewrite_dinode(self, ino: int, mutate) -> None:
        frag_addr, offset = self.sb.inode_location(ino)
        block = self._read_block(frag_addr)
        din = Dinode.unpack(bytes(block[offset:offset + DINODE_SIZE]))
        mutate(din)
        block[offset:offset + DINODE_SIZE] = din.pack()
        self._write_block(frag_addr, bytes(block))

    # -- the repairs --------------------------------------------------------
    def apply(self, actions: "list[tuple]", log: "list[str]") -> None:
        done: set[tuple] = set()
        for action in actions:
            if action in done:
                continue
            done.add(action)
            kind = action[0]
            if kind == "clear_inode":
                ino = action[1]
                frag_addr, offset = self.sb.inode_location(ino)
                self._patch(frag_addr, offset, b"\x00" * DINODE_SIZE)
                log.append(f"cleared inode {ino}")
            elif kind == "set_nlink":
                _, ino, nlink = action

                def set_nlink(din, nlink=nlink):
                    din.nlink = nlink

                self._rewrite_dinode(ino, set_nlink)
                log.append(f"inode {ino}: nlink set to {nlink}")
            elif kind == "set_blocks":
                _, ino, blocks = action

                def set_blocks(din, blocks=blocks):
                    din.blocks = blocks

                self._rewrite_dinode(ino, set_blocks)
                log.append(f"inode {ino}: di_blocks set to {blocks}")
            elif kind == "zero_dirent":
                _, frag_addr, offset = action
                self._patch(frag_addr, offset, struct.pack("<I", 0))
                log.append(f"zeroed dirent at frag {frag_addr}+{offset}")
            elif kind == "fix_dirent":
                _, frag_addr, offset, ino = action
                self._patch(frag_addr, offset, struct.pack("<I", ino))
                log.append(f"dirent at frag {frag_addr}+{offset} -> inode {ino}")
            elif kind == "clear_dirblock":
                _, frag_addr = action
                self._write_block(frag_addr, empty_dirblock(self.sb.bsize))
                log.append(f"reset directory block at frag {frag_addr}")
            elif kind == "rebuild_dot":
                _, frag_addr, ino, parent = action
                chunk = (pack_dirent(ino, ".", 12)
                         + pack_dirent(parent, "..", DIRBLKSIZ - 12))
                self._patch(frag_addr, 0, chunk)
                log.append(f"rebuilt '.'/'..' of directory {ino}")
            elif kind == "rewrite_superblock":
                assert self.region is not None
                replica = self.region.sb_replica()
                self.store.write(16, replica)
                self.region.stamp_range(16, replica)
                log.append("rewrote primary superblock from integrity replica")
        self._rebuild_maps(log)

    def _rebuild_maps(self, log: "list[str]") -> None:
        """Recompute every bitmap and counter from a fresh claims scan."""
        scan = _Checker(self.store)
        scan.check_inodes()
        sb = scan.sb
        claims = scan.claims
        total_nbfree = total_nffree = total_nifree = total_ndir = 0
        for cgx in range(sb.ncg):
            base = sb.cgbase(cgx)
            header = sb.cg_header_frag(cgx)
            try:
                cg = CylinderGroup.unpack(bytes(self._read_block(header)), sb)
            except CorruptionError:
                # Header itself unreadable: rebuild it from scratch.  A
                # zeroed bitmap means "allocated", which is correct for the
                # metadata area; the loops below set the data-area bits.
                cg = CylinderGroup(
                    CG_MAGIC, cgx, sb.cg_end_frag(cgx) - base, 0, 0, 0, 0,
                    0, 0, bytearray((sb.fpg + 7) // 8),
                    bytearray((sb.ipg + 7) // 8),
                )
            data_start = sb.cg_data_frag(cgx) - base
            end = sb.cg_end_frag(cgx) - base
            nbfree = nffree = 0
            for block_rel in range(data_start, end - sb.frag + 1, sb.frag):
                free_here = 0
                for i in range(sb.frag):
                    rel = block_rel + i
                    free = (base + rel) not in claims
                    cg.set_frag(rel, free)
                    free_here += free
                if free_here == sb.frag:
                    nbfree += 1
                else:
                    nffree += free_here
            nifree = ndir = 0
            for i in range(sb.ipg):
                ino = cgx * sb.ipg + i
                allocated = ino in scan.inode_modes or ino in (0, 1)
                cg.set_inode(i, not allocated)
                if not allocated:
                    nifree += 1
                elif (scan.inode_modes.get(ino, 0) & IFMT) == IFDIR:
                    ndir += 1
            cg.nbfree, cg.nffree = nbfree, nffree
            cg.nifree, cg.ndir = nifree, ndir
            self._write_block(header, cg.pack(sb))
            total_nbfree += nbfree
            total_nffree += nffree
            total_nifree += nifree
            total_ndir += ndir
        sb.cs_nbfree, sb.cs_nffree = total_nbfree, total_nffree
        sb.cs_nifree, sb.cs_ndir = total_nifree, total_ndir
        packed = sb.pack()
        self.store.write(16, packed)
        if self.region is not None:
            self.region.stamp_range(16, packed)
        log.append("rebuilt bitmaps, group counters, and superblock summary")


def _check(store: "DiskStore") -> _Checker:
    checker = _Checker(store)
    checker.check_inodes()
    checker.check_directories()
    checker.check_bitmaps()
    return checker


def fsck(store: "DiskStore", repair: bool = False,
         max_passes: int = 8) -> FsckReport:
    """Check (and with ``repair=True``, repair) the file system on ``store``.

    The returned report carries the first pass's findings — what was
    *detected* — plus, in repair mode, every repair applied across however
    many check/repair passes it took to converge.  Callers verify by
    running a second ``fsck(store)`` and asserting ``clean``.
    """
    checker = _check(store)
    report = checker.report
    if not repair or report.clean:
        return report
    for _ in range(max_passes):
        _Repairer(store, checker.sb).apply(checker.actions, report.repairs)
        checker = _check(store)
        if checker.report.clean:
            break
    return report
