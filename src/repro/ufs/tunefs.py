"""tunefs: re-tune an existing file system without reformatting.

This is the administrative half of the paper's claim: because the on-disk
format never changed, a stock 4.1 file system becomes a clustered one by
flipping two superblock fields — "previously, when rotdelay was zero,
maxcontig had no meaning, but now it always indicates cluster size."
Existing data is untouched (and stays readable); only future allocation
and I/O policy change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgumentError
from repro.ufs.ondisk import Superblock

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.store import DiskStore


def tunefs(store: "DiskStore", rotdelay_ms: float | None = None,
           maxcontig: int | None = None,
           minfree_pct: int | None = None,
           checksums: bool | None = None) -> Superblock:
    """Adjust tunable superblock fields in place; returns the new superblock.

    Offline tool (run against an unmounted store), like the real one.
    ``checksums=True`` retrofits an integrity region into the device-tail
    slack past the data area (stamping everything currently written) —
    possible only when mkfs's block rounding left enough; ``False``
    forgets an existing region.
    """
    from repro.integrity.checksum import IntegrityRegion

    sb = Superblock.unpack(store.read(16, 16))
    if rotdelay_ms is not None:
        if rotdelay_ms < 0:
            raise InvalidArgumentError("rotdelay must be >= 0")
        sb.rotdelay_ms = rotdelay_ms
    if maxcontig is not None:
        if maxcontig < 1:
            raise InvalidArgumentError("maxcontig must be >= 1")
        sb.maxcontig = maxcontig
    if minfree_pct is not None:
        if not 0 <= minfree_pct < 50:
            raise InvalidArgumentError("minfree must be in [0, 50)")
        sb.minfree = minfree_pct
    store.write(16, sb.pack())
    region = IntegrityRegion.find(store)
    if checksums is True and region is None:
        # create() raises InvalidArgumentError if the slack is too small.
        region = IntegrityRegion.create(store, sb)
        region.stamp_all()
    elif checksums is False and region is not None:
        region.erase()
        region = None
    elif region is not None:
        # The superblock rewrite above must keep its record fresh.
        region.stamp_range(16, sb.pack())
    return sb
