"""File system parameters (the knobs ``newfs``/``tunefs`` expose).

The paper's whole enhancement is expressible as tuning plus code: the
on-disk format carries ``rotdelay`` and ``maxcontig``, and the clustered
kernel reinterprets ``maxcontig`` as the cluster size ("previously, when
rotdelay was zero, maxcontig had no meaning, but now it always indicates
cluster size").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KB


@dataclass(frozen=True)
class FsParams:
    """mkfs-time parameters; stored in the superblock."""

    #: Logical block size in bytes.
    bsize: int = 8 * KB
    #: Fragment size in bytes (bsize/fsize must be 1, 2, 4, or 8).
    fsize: int = 1 * KB
    #: Cylinders per cylinder group.
    cpg: int = 16
    #: Bytes of data space per inode (determines inodes per group).
    nbpi: int = 4 * KB
    #: Fraction of space kept free (the FFS 10 % reserve the paper credits
    #: for the allocator's ability to allocate contiguously).
    minfree_pct: int = 10
    #: Rotational delay between successive blocks, in milliseconds.
    #: 4 ms (one 8 KB block time) is the classic pre-clustering tuning;
    #: 0 asks the allocator for contiguous layout.
    rotdelay_ms: float = 4.0
    #: Maximum contiguous blocks; with clustering this is the cluster size.
    maxcontig: int = 1
    #: Reserve an integrity region (per-fragment checksums + metadata
    #: replicas) in the device tail and stamp every write against it.
    checksums: bool = False

    def __post_init__(self) -> None:
        if self.bsize % self.fsize != 0 or self.bsize // self.fsize not in (1, 2, 4, 8):
            raise ValueError("bsize/fsize must be 1, 2, 4, or 8")
        if self.bsize % 4096 not in (0,) or self.bsize < 4096:
            raise ValueError("bsize must be a multiple of 4096")
        if self.fsize % 512 != 0:
            raise ValueError("fsize must be a multiple of the sector size")
        if self.cpg <= 0:
            raise ValueError("cpg must be positive")
        if not 0 <= self.minfree_pct < 50:
            raise ValueError("minfree_pct must be in [0, 50)")
        if self.rotdelay_ms < 0:
            raise ValueError("rotdelay_ms must be >= 0")
        if self.maxcontig < 1:
            raise ValueError("maxcontig must be >= 1")

    @property
    def frag(self) -> int:
        """Fragments per block."""
        return self.bsize // self.fsize

    @property
    def frags_per_sector_shift(self) -> int:
        return self.fsize // 512

    def fsb_to_sector(self, frag_addr: int) -> int:
        """Convert a fragment address to a disk sector (fsbtodb)."""
        return frag_addr * (self.fsize // 512)

    def sector_to_fsb(self, sector: int) -> int:
        """Convert a disk sector to a fragment address (dbtofsb)."""
        return sector // (self.fsize // 512)

    @classmethod
    def clustered(cls, cluster_bytes: int = 56 * KB, **kwargs: object) -> "FsParams":
        """The paper's tuning: rotdelay 0, maxcontig = cluster size.

        56 KB is the paper's default ("there are still drivers out there
        with 16 bit limitations"); the benchmarked configuration A uses
        120 KB.
        """
        base = cls(**kwargs)  # type: ignore[arg-type]
        if cluster_bytes % base.bsize != 0:
            raise ValueError("cluster size must be a multiple of the block size")
        return cls(
            bsize=base.bsize, fsize=base.fsize, cpg=base.cpg, nbpi=base.nbpi,
            minfree_pct=base.minfree_pct, rotdelay_ms=0.0,
            maxcontig=cluster_bytes // base.bsize, checksums=base.checksums,
        )
