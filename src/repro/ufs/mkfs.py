"""mkfs: build a UFS file system on a (simulated) disk.

mkfs is an offline tool: it writes through the :class:`~repro.disk.DiskStore`
data plane directly, taking no simulated time (the paper never benchmarks
mkfs).  Everything it writes is real packed bytes that ``mount`` and
``fsck`` re-read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgumentError
from repro.ufs.ondisk import (
    CG_MAGIC, DINODE_SIZE, DIRBLKSIZ, IFDIR, INODES_PER_BLOCK_ALIGN, ROOT_INO,
    SUPERBLOCK_MAGIC, CylinderGroup, Dinode, Superblock, empty_dirblock,
    pack_dirent,
)
from repro.ufs.params import FsParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.geometry import DiskGeometry
    from repro.disk.store import DiskStore


def _write_frags(store: "DiskStore", params: FsParams, frag_addr: int,
                 data: bytes) -> None:
    sector = params.fsb_to_sector(frag_addr)
    if len(data) % 512:
        data = data.ljust((len(data) + 511) & ~511, b"\x00")
    store.write(sector, data)


def compute_superblock(geometry: "DiskGeometry", params: FsParams,
                       total_sectors: "int | None" = None) -> Superblock:
    """Lay out the file system for the given disk.

    ``total_sectors`` overrides the device size — mkfs uses it to hold
    back the tail sectors an integrity region needs.
    """
    frag_sectors = params.fsize // 512
    usable = geometry.total_sectors if total_sectors is None else total_sectors
    total_frags = usable // frag_sectors
    spc = geometry.heads * geometry.sectors_per_track_at(0)
    # Fragments per group, rounded down to a whole block so group data
    # areas stay block aligned.
    fpg = (params.cpg * spc // frag_sectors) // params.frag * params.frag
    if fpg <= 0:
        raise InvalidArgumentError("cylinder group smaller than one block")
    ncg = total_frags // fpg
    if ncg < 1:
        raise InvalidArgumentError("disk too small for one cylinder group")
    # Inodes per group, rounded up to fill whole inode blocks.
    raw_ipg = max(1, (fpg * params.fsize) // params.nbpi)
    ipg = -(-raw_ipg // INODES_PER_BLOCK_ALIGN) * INODES_PER_BLOCK_ALIGN
    sb = Superblock(
        magic=SUPERBLOCK_MAGIC,
        bsize=params.bsize,
        fsize=params.fsize,
        nsect=geometry.sectors_per_track_at(0),
        ntrak=geometry.heads,
        ncyl=geometry.cylinders,
        cpg=params.cpg,
        fpg=fpg,
        ipg=ipg,
        ncg=ncg,
        minfree=params.minfree_pct,
        maxcontig=params.maxcontig,
        rotdelay_ms=params.rotdelay_ms,
        rps=int(round(geometry.rpm / 60)),
        total_frags=ncg * fpg,
    )
    # Sanity: metadata must fit inside each group.
    for cgx in (0, ncg - 1):
        if sb.cg_data_frag(cgx) >= sb.cg_end_frag(cgx):
            raise InvalidArgumentError(
                "group metadata leaves no data space; increase cpg or nbpi"
            )
    return sb


def _build_group(sb: Superblock, cgx: int) -> CylinderGroup:
    """An initial cylinder group: everything free except metadata."""
    frag_bytes = (sb.fpg + 7) // 8
    inode_bytes = (sb.ipg + 7) // 8
    cg = CylinderGroup(
        magic=CG_MAGIC, cgx=cgx, ndblk=sb.cg_end_frag(cgx) - sb.cgbase(cgx),
        nbfree=0, nffree=0, nifree=0, ndir=0, frag_rotor=0, inode_rotor=0,
        frag_bitmap=bytearray(frag_bytes), inode_bitmap=bytearray(inode_bytes),
    )
    base = sb.cgbase(cgx)
    data_start = sb.cg_data_frag(cgx) - base
    for rel in range(cg.ndblk):
        cg.set_frag(rel, rel >= data_start)
    # Count free blocks (the data area is block aligned by construction).
    frag = sb.frag
    whole = (cg.ndblk - data_start) // frag
    cg.nbfree = whole
    cg.nffree = (cg.ndblk - data_start) - whole * frag
    # Mark the tail frags (not forming a whole block) individually free:
    # they already are; nffree above counts them.
    for rel in range(sb.ipg):
        cg.set_inode(rel, True)
    cg.nifree = sb.ipg
    if cgx == 0:
        # Inodes 0 and 1 are reserved (historical); root is inode 2.
        cg.set_inode(0, False)
        cg.set_inode(1, False)
        cg.nifree -= 2
    return cg


def mkfs(store: "DiskStore", geometry: "DiskGeometry",
         params: FsParams | None = None) -> Superblock:
    """Create the file system; returns the superblock as written.

    The root directory (inode 2) is created with ``.`` and ``..`` entries
    in the first data block of group 0.
    """
    params = params if params is not None else FsParams()
    total_sectors = None
    if params.checksums:
        # Two passes: size the region for a full-device layout, then lay
        # the file system out on what is left.  The reservation only
        # shrinks with the data area, so one shrink always converges.
        from repro.integrity.checksum import IntegrityRegion

        probe = compute_superblock(geometry, params)
        reserve = IntegrityRegion.sectors_needed(
            probe.total_frags, probe.ncg, probe.bsize)
        total_sectors = geometry.total_sectors - reserve
        if total_sectors <= 0:
            raise InvalidArgumentError("disk too small for an integrity region")
    sb = compute_superblock(geometry, params, total_sectors=total_sectors)
    groups = [_build_group(sb, cgx) for cgx in range(sb.ncg)]

    # Root directory: one block in group 0's data area.
    root_block = sb.cg_data_frag(0)
    cg0 = groups[0]
    rel = root_block - sb.cgbase(0)
    for i in range(sb.frag):
        cg0.set_frag(rel + i, False)
    cg0.nbfree -= 1
    cg0.set_inode(ROOT_INO, False)
    cg0.nifree -= 1
    cg0.ndir += 1

    dirblock = bytearray(empty_dirblock(sb.bsize))
    dirblock[0:12] = pack_dirent(ROOT_INO, ".", 12)
    dirblock[12:DIRBLKSIZ] = pack_dirent(ROOT_INO, "..", DIRBLKSIZ - 12)
    _write_frags(store, params, root_block, bytes(dirblock))

    root = Dinode(
        mode=IFDIR | 0o755, nlink=2, size=sb.bsize,
        direct=(root_block,) + (0,) * 11, blocks=sb.frag,
    )
    inode_frag, byte_off = sb.inode_location(ROOT_INO)
    inode_block = bytearray(sb.bsize)
    inode_block[byte_off:byte_off + DINODE_SIZE] = root.pack()
    _write_frags(store, params, inode_frag, bytes(inode_block))

    # Totals.
    sb.cs_ndir = sum(g.ndir for g in groups)
    sb.cs_nbfree = sum(g.nbfree for g in groups)
    sb.cs_nifree = sum(g.nifree for g in groups)
    sb.cs_nffree = sum(g.nffree for g in groups)

    # Write groups and superblock (block 1, past the boot block).
    for cgx, cg in enumerate(groups):
        _write_frags(store, params, sb.cg_header_frag(cgx), cg.pack(sb))
    _write_frags(store, params, sb.frag, sb.pack())

    from repro.integrity.checksum import IntegrityRegion

    if params.checksums:
        region = IntegrityRegion.create(store, sb)
        region.stamp_all()
    else:
        # A reused store may carry a stale region from a previous life;
        # forget it, or its table would indict every fresh write.
        stale = IntegrityRegion.find(store)
        if stale is not None:
            stale.erase()
    return sb
