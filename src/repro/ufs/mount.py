"""A mounted UFS: inodes, name lookup, file operations, sync.

The mount owns the authoritative in-memory copies of the superblock and
cylinder groups (as the kernel does), an inode cache, the metadata buffer
cache, and the allocator.  ``sync()`` packs everything dirty back to disk;
``fsck`` then validates the on-disk bytes independently.

Directory-modifying operations write the affected metadata synchronously —
the UFS consistency discipline whose cost the paper's B_ORDER proposal
targets.  Pass ``ordered_metadata=True`` to use B_ORDER barrier writes
instead (asynchronous but unreorderable), the future-work variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core import ClusterTuning, FreeBehindPolicy
from repro.disk.buf import Buf, BufOp
from repro.errors import (
    CorruptionError, DirectoryNotEmptyError, FileExistsError_,
    FileNotFoundError_, InvalidArgumentError, IsADirectoryError_,
    NotADirectoryError_,
)
from repro.sim.events import EventFailed
from repro.sim.stats import StatSet
from repro.sim.trace import Tracer
from repro.ufs import bmap, dir as dirops
from repro.ufs.alloc import Allocator
from repro.ufs.inode import Inode
from repro.ufs.metacache import MetaCache
from repro.ufs.ondisk import (
    DINODE_SIZE, Dinode, IFDIR, IFLNK, IFREG, NDADDR, ROOT_INO,
    CylinderGroup, Superblock, empty_dirblock, pack_dirent, DIRBLKSIZ,
)
from repro.ufs.vnode import UfsVnode
from repro.vfs.vnode import Vfs

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.disk.driver import DiskDriver
    from repro.sim.engine import Engine
    from repro.vm.pagecache import PageCache


class UfsMount(Vfs):
    """One mounted instance of UFS."""

    def __init__(self, engine: "Engine", cpu: "Cpu", driver: "DiskDriver",
                 pagecache: "PageCache", tuning: ClusterTuning | None = None,
                 tracer: Tracer | None = None, metacache_blocks: int = 64,
                 ordered_metadata: bool = False, name: str = "ufs0"):
        super().__init__(name)
        self.engine = engine
        self.cpu = cpu
        self.driver = driver
        self.pagecache = pagecache
        self.tuning = tuning if tuning is not None else ClusterTuning.new_system()
        self.trace = tracer if tracer is not None else Tracer(engine)
        self.stats = StatSet(name)
        #: Shared per-mount throttle counters: every inode's WriteThrottle
        #: reports into this one StatSet (the metrics registry's
        #: ``ufs.throttle`` namespace).
        self.throttle_stats = StatSet("throttle")
        self.ordered_metadata = ordered_metadata

        store = driver.disk.store
        region = driver.disk.integrity
        # Mount-time reads (superblock, group headers) go through the data
        # plane directly: mount is not on any benchmarked path.  The
        # superblock lives at the canonical 8 KB offset (block 1).
        #: True if the primary superblock failed its integrity check and
        #: the mount came up from the region's replica.
        self.sb_recovered = False
        raw = store.read(16, 16)
        if region is None:
            self.sb = Superblock.unpack(raw)
        else:
            try:
                if region.verify_range(16, raw):
                    raise CorruptionError(
                        "primary superblock failed integrity check")
                self.sb = Superblock.unpack(raw)
            except CorruptionError:
                # Come up from the replica; the primary stays rotted on
                # disk until the next sync() rewrite or an fsck
                # rewrite_superblock action heals it.
                self.sb = Superblock.unpack(region.sb_replica())
                self.sb_recovered = True
                self.stats.incr("sb_replica_mounts")
        if pagecache.page_size != self.sb.bsize:
            raise InvalidArgumentError(
                "this reproduction assumes page size == block size "
                f"({pagecache.page_size} != {self.sb.bsize})"
            )
        frag_sectors = self.sb.fsize // 512
        self.cgs: list[CylinderGroup] = []
        self._dirty_cgs: set[int] = set()
        self._sb_dirty = False
        for cgx in range(self.sb.ncg):
            sector = self.sb.cg_header_frag(cgx) * frag_sectors
            data = store.read(sector, self.sb.bsize // 512)
            if region is not None:
                try:
                    if region.verify_range(sector, data):
                        raise CorruptionError(
                            f"cg {cgx} header failed integrity check")
                    cg = CylinderGroup.unpack(data, self.sb)
                except CorruptionError:
                    cg = CylinderGroup.unpack(region.cg_replica(cgx), self.sb)
                    self.stats.incr("cg_replica_mounts")
                    # Self-heal: the next sync() rewrites (and restamps)
                    # the primary from the recovered copy.
                    self._dirty_cgs.add(cgx)
            else:
                cg = CylinderGroup.unpack(data, self.sb)
            self.cgs.append(cg)
        if self.sb_recovered:
            self._sb_dirty = True

        self.metacache = MetaCache(engine, driver, cpu, self.sb.bsize,
                                   frag_sectors, capacity=metacache_blocks)
        self.allocator = Allocator(self)
        self.freebehind = FreeBehindPolicy(
            enabled=self.tuning.freebehind,
            min_offset=self.tuning.freebehind_min_offset,
        )
        self._icache: dict[int, Inode] = {}
        self._vnodes: dict[int, UfsVnode] = {}

    # -- Vfs interface ---------------------------------------------------------
    @property
    def root(self) -> UfsVnode:
        vn = self._vnodes.get(ROOT_INO)
        if vn is None:
            raise RuntimeError("call mount.activate() (a process) first")
        return vn

    def activate(self) -> Generator[Any, Any, "UfsMount"]:
        """Read the root inode (the only I/O mount needs a process for)."""
        yield from self.iget(ROOT_INO)
        return self

    # -- inode management ----------------------------------------------------------
    def iget(self, ino: int) -> Generator[Any, Any, UfsVnode]:
        """Get (reading if necessary) the vnode for inode ``ino``."""
        vn = self._vnodes.get(ino)
        if vn is not None:
            return vn
        frag_addr, byte_off = self.sb.inode_location(ino)
        meta = yield from self.metacache.bread(frag_addr)
        din = Dinode.unpack(bytes(meta.data[byte_off:byte_off + DINODE_SIZE]))
        ip = Inode(self, ino, din)
        self._icache[ino] = ip
        vn = UfsVnode(self, ip)
        self._vnodes[ino] = vn
        yield from self.cpu.work("inode", self.cpu.costs.inode_update)
        return vn

    def write_inode(self, ip: Inode, sync: bool = False
                    ) -> Generator[Any, Any, None]:
        """Pack the dinode into its inode block; sync or delayed."""
        frag_addr, byte_off = self.sb.inode_location(ip.ino)
        meta = yield from self.metacache.bread(frag_addr)
        meta.data[byte_off:byte_off + DINODE_SIZE] = ip.to_dinode().pack()
        ip.dirty = False
        yield from self.cpu.work("inode", self.cpu.costs.inode_update)
        if sync and self.ordered_metadata:
            yield from self._ordered_write(meta)
        elif sync:
            yield from self.metacache.bwrite(meta)
        else:
            self.metacache.bdwrite(meta)

    def meta_write(self, meta) -> Generator[Any, Any, None]:
        """A consistency-critical metadata write: synchronous today, or an
        asynchronous B_ORDER barrier write when ``ordered_metadata`` is on
        (the paper's future-work proposal)."""
        if self.ordered_metadata:
            yield from self._ordered_write(meta)
        else:
            yield from self.metacache.bwrite(meta)

    def _ordered_write(self, meta) -> Generator[Any, Any, None]:
        """B_ORDER: asynchronous but unreorderable metadata write."""
        frag_sectors = self.sb.fsize // 512
        buf = Buf(self.engine, BufOp.WRITE, meta.frag_addr * frag_sectors,
                  self.sb.bsize // 512, data=bytes(meta.data),
                  async_=True, ordered=True)
        meta.dirty = False
        yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
        self.driver.strategy(buf)

    def mark_cg_dirty(self, cgx: int) -> None:
        self._dirty_cgs.add(cgx)
        self._sb_dirty = True

    def flush_disk(self, req: Any = None) -> Generator[Any, Any, None]:
        """Emit a disk FLUSH barrier and wait for it — the durability point
        every fsync/O_SYNC acknowledgement rests on.  A no-op on
        write-through disks (no volatile cache to drain)."""
        buf = self.driver.issue_flush(owner=f"{self.name}.flush", request=req)
        if buf is None:
            return
        self.stats.incr("disk_flushes")
        try:
            yield buf.done
        except EventFailed as failure:
            cause = failure.args[0] if failure.args else failure
            raise cause from None

    # -- sync --------------------------------------------------------------------------
    def sync(self) -> Generator[Any, Any, None]:
        """Flush dirty inodes, data pages, cylinder groups, superblock."""
        for ino, ip in list(self._icache.items()):
            vn = self._vnodes[ino]
            if self.pagecache.dirty_pages(vn):
                yield from vn.fsync()
            elif ip.dirty:
                yield from self.write_inode(ip, sync=False)
        yield from self.metacache.flush()
        frag_sectors = self.sb.fsize // 512
        for cgx in sorted(self._dirty_cgs):
            data = self.cgs[cgx].pack(self.sb)
            buf = Buf(self.engine, BufOp.WRITE,
                      self.sb.cg_header_frag(cgx) * frag_sectors,
                      len(data) // 512, data=data, fua=True)
            self.driver.strategy(buf)
            yield buf.done
        self._dirty_cgs.clear()
        # The superblock is always rewritten (update(8) behaviour).
        data = self.sb.pack()
        buf = Buf(self.engine, BufOp.WRITE, self.sb.frag * frag_sectors,
                  len(data) // 512, data=data, fua=True)
        self.driver.strategy(buf)
        yield buf.done
        self._sb_dirty = False
        # sync(2)'s contract is "everything written is on stable storage":
        # drain whatever the drive still holds volatile.
        yield from self.flush_disk()

    #: The fast-symlink capacity: the byte space of the block pointer
    #: array in the dinode ("the space normally used for block pointers is
    #: filled with the symlink data").
    FAST_SYMLINK_MAX = (NDADDR + 2) * 4 - 1

    # -- name lookup ----------------------------------------------------------------------
    def namei(self, path: str, follow: bool = True,
              _depth: int = 0) -> Generator[Any, Any, UfsVnode]:
        """Resolve an absolute path to a vnode, following symlinks."""
        if _depth > 8:
            from repro.errors import FilesystemError

            raise FilesystemError(f"too many levels of symbolic links: {path}")
        parts = self._split(path)
        vn = yield from self.iget(ROOT_INO)
        for i, part in enumerate(parts):
            if not vn.inode.is_dir:
                raise NotADirectoryError_(f"{part!r} looked up in non-directory")
            yield from self.cpu.work("namei", self.cpu.costs.namei_component)
            ino = yield from dirops.lookup(self, vn.inode, part)
            if ino is None:
                raise FileNotFoundError_(path)
            vn = yield from self.iget(ino)
            last = i == len(parts) - 1
            if vn.inode.is_symlink and (follow or not last):
                target = yield from self.readlink_inode(vn.inode)
                rest = "/".join(parts[i + 1:])
                next_path = target + ("/" + rest if rest else "")
                return (yield from self.namei(next_path, follow=follow,
                                              _depth=_depth + 1))
        return vn

    # -- symlinks -----------------------------------------------------------------------
    def symlink(self, target: str, link_path: str
                ) -> Generator[Any, Any, UfsVnode]:
        """Create a symbolic link.  Short targets are stored inside the
        dinode's pointer area (the "fast symlink" the paper points to as
        prior art for data-in-the-inode)."""
        if not target:
            raise InvalidArgumentError("empty symlink target")
        if not target.startswith("/"):
            raise InvalidArgumentError(
                "this reproduction supports absolute symlink targets only")
        dir_vn, name = yield from self._dir_and_name(link_path)
        clash = yield from dirops.lookup(self, dir_vn.inode, name)
        if clash is not None:
            raise FileExistsError_(link_path)
        ino = yield from self.allocator.alloc_inode(
            self.sb.cg_of_inode(dir_vn.inode.ino), IFLNK)
        ip = Inode(self, ino, Dinode(mode=IFLNK | 0o777, nlink=1))
        self._icache[ino] = ip
        vn = UfsVnode(self, ip)
        self._vnodes[ino] = vn
        encoded = target.encode()
        ip.size = len(encoded)
        if len(encoded) <= self.FAST_SYMLINK_MAX:
            # Fast symlink: pack the target into the pointer words.
            padded = encoded.ljust((NDADDR + 2) * 4, b"\x00")
            words = [int.from_bytes(padded[j:j + 4], "little")
                     for j in range(0, len(padded), 4)]
            ip.direct = words[:NDADDR]
            ip.indirect = words[NDADDR]
            ip.dindirect = words[NDADDR + 1]
            self.stats.incr("fast_symlinks")
        else:
            # Slow symlink: the target lives in a data block.
            from repro.ufs import bmap as bmap_mod

            nfrags = max(1, -(-len(encoded) // self.sb.fsize))
            addr = yield from bmap_mod.bmap_alloc(self, ip, 0, nfrags)
            meta = yield from self.metacache.install_new(
                addr, encoded.ljust(self.sb.bsize, b"\x00"))
            yield from self.meta_write(meta)
            self.stats.incr("slow_symlinks")
        yield from self.write_inode(ip, sync=True)
        yield from dirops.enter(self, dir_vn.inode, name, ino)
        return vn

    def readlink_inode(self, ip: Inode) -> Generator[Any, Any, str]:
        """The symlink's target string."""
        if not ip.is_symlink:
            raise InvalidArgumentError("not a symlink")
        if ip.size <= self.FAST_SYMLINK_MAX:
            words = list(ip.direct) + [ip.indirect, ip.dindirect]
            raw = b"".join(w.to_bytes(4, "little") for w in words)
            return raw[:ip.size].decode()
        meta = yield from self.metacache.bread(ip.direct[0])
        return bytes(meta.data[:ip.size]).decode()

    def readlink(self, path: str) -> Generator[Any, Any, str]:
        vn = yield from self.namei(path, follow=False)
        return (yield from self.readlink_inode(vn.inode))

    @staticmethod
    def _split(path: str) -> list[str]:
        if not path.startswith("/"):
            raise InvalidArgumentError(f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _dir_and_name(self, path: str) -> Generator[Any, Any, tuple[UfsVnode, str]]:
        parts = self._split(path)
        if not parts:
            raise InvalidArgumentError("path names the root")
        dir_vn = yield from self.namei("/" + "/".join(parts[:-1]))
        if not dir_vn.inode.is_dir:
            raise NotADirectoryError_(path)
        return dir_vn, parts[-1]

    # -- file operations -----------------------------------------------------------------------
    def create(self, path: str, mode: int = IFREG | 0o644
               ) -> Generator[Any, Any, UfsVnode]:
        """Create a regular file; inode and directory written synchronously."""
        dir_vn, name = yield from self._dir_and_name(path)
        existing = yield from dirops.lookup(self, dir_vn.inode, name)
        if existing is not None:
            raise FileExistsError_(path)
        ino = yield from self.allocator.alloc_inode(
            self.sb.cg_of_inode(dir_vn.inode.ino), mode
        )
        ip = Inode(self, ino, Dinode(mode=mode, nlink=1))
        self._icache[ino] = ip
        vn = UfsVnode(self, ip)
        self._vnodes[ino] = vn
        yield from self.write_inode(ip, sync=True)
        yield from dirops.enter(self, dir_vn.inode, name, ino)
        self.stats.incr("creates")
        return vn

    def mkdir(self, path: str, mode: int = IFDIR | 0o755
              ) -> Generator[Any, Any, UfsVnode]:
        """Create a directory with '.' and '..'."""
        dir_vn, name = yield from self._dir_and_name(path)
        parent = dir_vn.inode
        existing = yield from dirops.lookup(self, parent, name)
        if existing is not None:
            raise FileExistsError_(path)
        ino = yield from self.allocator.alloc_inode(
            self.sb.cg_of_inode(parent.ino), mode
        )
        ip = Inode(self, ino, Dinode(mode=mode, nlink=2))
        self._icache[ino] = ip
        vn = UfsVnode(self, ip)
        self._vnodes[ino] = vn
        # First block with . and ..
        addr = yield from bmap.bmap_alloc(self, ip, 0, self.sb.frag)
        block = bytearray(empty_dirblock(self.sb.bsize))
        block[0:12] = pack_dirent(ino, ".", 12)
        block[12:DIRBLKSIZ] = pack_dirent(parent.ino, "..", DIRBLKSIZ - 12)
        meta = yield from self.metacache.install_new(addr, bytes(block))
        yield from self.meta_write(meta)
        ip.size = self.sb.bsize
        yield from self.write_inode(ip, sync=True)
        yield from dirops.enter(self, parent, name, ino)
        parent.nlink += 1
        yield from self.write_inode(parent, sync=True)
        self.stats.incr("mkdirs")
        return vn

    def link(self, existing: str, new_path: str) -> Generator[Any, Any, None]:
        """Create a hard link (link(2)): same inode, one more name."""
        vn = yield from self.namei(existing)
        ip = vn.inode
        if ip.is_dir:
            raise IsADirectoryError_("cannot hard-link directories")
        dir_vn, name = yield from self._dir_and_name(new_path)
        clash = yield from dirops.lookup(self, dir_vn.inode, name)
        if clash is not None:
            raise FileExistsError_(new_path)
        ip.nlink += 1
        yield from self.write_inode(ip, sync=True)
        yield from dirops.enter(self, dir_vn.inode, name, ip.ino)
        self.stats.incr("links")

    def unlink(self, path: str) -> Generator[Any, Any, None]:
        """Remove a file: directory entry, pages, blocks, inode."""
        dir_vn, name = yield from self._dir_and_name(path)
        ino = yield from dirops.lookup(self, dir_vn.inode, name)
        if ino is None:
            raise FileNotFoundError_(path)
        vn = yield from self.iget(ino)
        ip = vn.inode
        if ip.is_dir:
            raise IsADirectoryError_(path)
        yield from dirops.remove(self, dir_vn.inode, name)
        ip.nlink -= 1
        if ip.nlink > 0:
            yield from self.write_inode(ip, sync=True)
            return
        yield from self._destroy_inode(vn)
        self.stats.incr("unlinks")

    def _destroy_inode(self, vn: UfsVnode) -> Generator[Any, Any, None]:
        """Last link gone: remove backing store (frees every cached page),
        free the blocks and the inode."""
        ip = vn.inode
        for page in self.pagecache.vnode_pages(vn):
            if page.locked:
                yield from page.wait_unlocked()
        self.pagecache.vnode_invalidate(vn)
        ip.recycle()
        yield from self._release_file_blocks(ip)
        ip.mode = 0
        yield from self.write_inode(ip, sync=True)
        self.allocator.free_inode(ip.ino, was_dir=False)
        self._icache.pop(ip.ino, None)
        self._vnodes.pop(ip.ino, None)

    def rename(self, old_path: str, new_path: str
               ) -> Generator[Any, Any, None]:
        """Rename a regular file or symlink (directories unsupported).

        4.3BSD-style link-then-unlink ordering: the link count is bumped
        durably first, the new name entered, then the old name removed —
        no crash point leaves the file reachable by neither name (though a
        displaced target's old contents are gone once its entry is
        removed, as with the real non-atomic UFS rename).
        """
        src_dir, src_name = yield from self._dir_and_name(old_path)
        ino = yield from dirops.lookup(self, src_dir.inode, src_name)
        if ino is None:
            raise FileNotFoundError_(old_path)
        vn = yield from self.iget(ino)
        ip = vn.inode
        if ip.is_dir:
            raise IsADirectoryError_("directory rename is not supported")
        dst_dir, dst_name = yield from self._dir_and_name(new_path)
        existing = yield from dirops.lookup(self, dst_dir.inode, dst_name)
        if existing == ino:
            return
        target_vn = None
        if existing is not None:
            target_vn = yield from self.iget(existing)
            if target_vn.inode.is_dir:
                raise IsADirectoryError_(new_path)
            yield from dirops.remove(self, dst_dir.inode, dst_name)
        ip.nlink += 1
        yield from self.write_inode(ip, sync=True)
        yield from dirops.enter(self, dst_dir.inode, dst_name, ino)
        yield from dirops.remove(self, src_dir.inode, src_name)
        ip.nlink -= 1
        yield from self.write_inode(ip, sync=True)
        if target_vn is not None:
            tp = target_vn.inode
            tp.nlink -= 1
            if tp.nlink > 0:
                yield from self.write_inode(tp, sync=True)
            else:
                yield from self._destroy_inode(target_vn)
        self.stats.incr("renames")

    def _release_file_blocks(self, ip: Inode) -> Generator[Any, Any, None]:
        """Free an inode's blocks; a fast symlink's "pointers" are target
        bytes and must not be fed to the allocator."""
        if ip.is_symlink:
            if ip.size > self.FAST_SYMLINK_MAX:
                nfrags = max(1, -(-ip.size // self.sb.fsize))
                self.metacache.drop(ip.direct[0])
                self.allocator.free_frags(ip, ip.direct[0], nfrags)
            ip.direct = [0] * NDADDR
            ip.indirect = 0
            ip.dindirect = 0
            ip.blocks = 0
            ip.size = 0
            ip.mark_dirty()
            return
        yield from bmap.truncate_blocks(self, ip)

    def rmdir(self, path: str) -> Generator[Any, Any, None]:
        dir_vn, name = yield from self._dir_and_name(path)
        parent = dir_vn.inode
        ino = yield from dirops.lookup(self, parent, name)
        if ino is None:
            raise FileNotFoundError_(path)
        vn = yield from self.iget(ino)
        ip = vn.inode
        if not ip.is_dir:
            raise NotADirectoryError_(path)
        empty = yield from dirops.is_empty(self, ip)
        if not empty:
            raise DirectoryNotEmptyError(path)
        yield from dirops.remove(self, parent, name)
        parent.nlink -= 1
        yield from self.write_inode(parent, sync=True)
        yield from bmap.truncate_blocks(self, ip)
        ip.mode = 0
        ip.nlink = 0
        yield from self.write_inode(ip, sync=True)
        self.allocator.free_inode(ino, was_dir=True)
        self._icache.pop(ino, None)
        self._vnodes.pop(ino, None)
        self.stats.incr("rmdirs")

    def readdir(self, path: str) -> Generator[Any, Any, list[tuple[str, int]]]:
        vn = yield from self.namei(path)
        if not vn.inode.is_dir:
            raise NotADirectoryError_(path)
        return (yield from dirops.entries(self, vn.inode))

    def truncate(self, path: str) -> Generator[Any, Any, None]:
        """Truncate a file to zero length (frees all blocks)."""
        vn = yield from self.namei(path)
        ip = vn.inode
        if ip.is_dir:
            raise IsADirectoryError_(path)
        for page in self.pagecache.vnode_pages(vn):
            if page.locked:
                yield from page.wait_unlocked()
        self.pagecache.vnode_invalidate(vn)
        ip.recycle()
        yield from bmap.truncate_blocks(self, ip)
        yield from self.write_inode(ip, sync=True)

    # -- reporting ---------------------------------------------------------------
    def free_space(self) -> tuple[int, int]:
        """(free blocks, free fragments) from the superblock summary."""
        return self.sb.cs_nbfree, self.sb.cs_nffree

    def register_metrics(self, registry) -> None:
        """Report the mount's instruments into a system MetricsRegistry."""
        registry.register("ufs", self.stats)
        registry.register("ufs.metacache", self.metacache.stats)
        registry.register("ufs.throttle", self.throttle_stats)
