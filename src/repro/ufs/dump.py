"""dump and restore: the backup utilities the on-disk format contract
protects.

"A change in on-disk file system format would require changes to many
system utilities, such as dump, restore, and fsck."  Those utilities exist
here so the contract is testable: ``ufsdump`` walks the raw disk image
offline (sharing no code with the mounted file system), and ``restore``
replays an archive through the normal mount API.  A dump of a clustered
file system restores onto an unclustered one and vice versa, because the
format is one and the same.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import CorruptionError
from repro.ufs.ondisk import (
    DINODE_SIZE, IFDIR, IFLNK, IFMT, IFREG, NDADDR, ROOT_INO, Dinode,
    Superblock, iter_dirents,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.store import DiskStore
    from repro.kernel.syscalls import Proc


@dataclass
class DumpEntry:
    """One archived file or directory."""

    path: str
    kind: str  # "file" | "dir" | "symlink"
    content: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in ("file", "dir", "symlink"):
            raise ValueError(f"bad entry kind {self.kind!r}")


@dataclass
class DumpArchive:
    """A full-filesystem archive, in path order."""

    entries: list[DumpEntry] = field(default_factory=list)

    def paths(self) -> list[str]:
        return [e.path for e in self.entries]

    def find(self, path: str) -> DumpEntry:
        for entry in self.entries:
            if entry.path == path:
                return entry
        raise KeyError(path)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DumpArchive):
            return NotImplemented
        mine = sorted((e.path, e.kind, e.content) for e in self.entries)
        theirs = sorted((e.path, e.kind, e.content) for e in other.entries)
        return mine == theirs


class _OfflineReader:
    """Reads files straight out of the disk image, fsck-style."""

    def __init__(self, store: "DiskStore"):
        self.store = store
        self.sb = Superblock.unpack(store.read(16, 16))
        self.frag_sectors = self.sb.fsize // 512

    def _read_frags(self, frag_addr: int, nbytes: int) -> bytes:
        nsectors = -(-nbytes // 512)
        return self.store.read(frag_addr * self.frag_sectors, nsectors)[:nbytes]

    def read_dinode(self, ino: int) -> Dinode:
        frag_addr, off = self.sb.inode_location(ino)
        block = self._read_frags(frag_addr, self.sb.bsize)
        return Dinode.unpack(block[off:off + DINODE_SIZE])

    def _pointer(self, din: Dinode, lbn: int) -> int:
        sb = self.sb
        n = sb.bsize // 4
        if lbn < NDADDR:
            return din.direct[lbn]
        lbn -= NDADDR
        if lbn < n:
            if not din.indirect:
                return 0
            block = self._read_frags(din.indirect, sb.bsize)
            return struct.unpack_from("<I", block, lbn * 4)[0]
        lbn -= n
        if not din.dindirect:
            return 0
        outer_block = self._read_frags(din.dindirect, sb.bsize)
        outer = struct.unpack_from("<I", outer_block, (lbn // n) * 4)[0]
        if not outer:
            return 0
        inner = self._read_frags(outer, sb.bsize)
        return struct.unpack_from("<I", inner, (lbn % n) * 4)[0]

    def read_file(self, din: Dinode) -> bytes:
        sb = self.sb
        parts: list[bytes] = []
        remaining = din.size
        lbn = 0
        while remaining > 0:
            take = min(sb.bsize, remaining)
            addr = self._pointer(din, lbn)
            if addr == 0:
                parts.append(bytes(take))  # hole
            else:
                parts.append(self._read_frags(addr, take))
            remaining -= take
            lbn += 1
        return b"".join(parts)

    def list_dir(self, din: Dinode) -> list[tuple[str, int]]:
        out = []
        nblocks = din.size // self.sb.bsize
        for lbn in range(nblocks):
            addr = self._pointer(din, lbn)
            if addr == 0:
                raise CorruptionError("hole in directory")
            block = self._read_frags(addr, self.sb.bsize)
            out.extend((name, ino) for _, ino, name in iter_dirents(block)
                       if name not in (".", ".."))
        return out


def ufsdump(store: "DiskStore") -> DumpArchive:
    """Archive every file and directory reachable from the root."""
    reader = _OfflineReader(store)
    archive = DumpArchive()
    stack: list[tuple[str, int]] = [("", ROOT_INO)]
    while stack:
        prefix, ino = stack.pop()
        din = reader.read_dinode(ino)
        kind = din.mode & IFMT
        if kind == IFDIR:
            if prefix:  # the root itself is implicit
                archive.entries.append(DumpEntry(prefix, "dir"))
            for name, child in sorted(reader.list_dir(din), reverse=True):
                stack.append((f"{prefix}/{name}", child))
        elif kind == IFREG:
            archive.entries.append(
                DumpEntry(prefix, "file", reader.read_file(din))
            )
        elif kind == IFLNK:
            fast_max = (NDADDR + 2) * 4 - 1
            if din.size <= fast_max:
                words = list(din.direct) + [din.indirect, din.dindirect]
                raw = b"".join(w.to_bytes(4, "little") for w in words)
                target = raw[:din.size]
            else:
                target = reader._read_frags(din.direct[0], din.size)
            archive.entries.append(DumpEntry(prefix, "symlink", target))
        else:
            raise CorruptionError(f"inode {ino}: unknown type {din.mode:#o}")
    archive.entries.sort(key=lambda e: e.path)
    return archive


def restore(proc: "Proc", archive: DumpArchive) -> Generator[Any, Any, int]:
    """Replay an archive through the syscall layer; returns entries restored.

    Directories are created parents-first (path order guarantees it).
    """
    count = 0
    for entry in sorted(archive.entries, key=lambda e: e.path):
        if entry.kind == "dir":
            yield from proc.mkdir(entry.path)
        elif entry.kind == "symlink":
            yield from proc.symlink(entry.content.decode(), entry.path)
        else:
            fd = yield from proc.creat(entry.path)
            if entry.content:
                yield from proc.write(fd, entry.content)
            yield from proc.fsync(fd)
            yield from proc.close(fd)
        count += 1
    return count
