"""ufs_getpage / ufs_putpage / ufs_rdwr: the paper's modified code paths.

Read side (figure 2 / figure 6): ``ufs_getpage`` looks the page up, calls
``bmap`` (which now also returns a contiguous length), reads a whole
*cluster* synchronously on a miss, and — when the sequential heuristics say
so — starts the next cluster's read-ahead asynchronously.

Write side (figures 7/8): ``ufs_putpage`` on the delayed path lies until a
cluster accumulates, then pushes the whole range, splitting on bmap
contiguity (the ``while (more pages)`` loop).  The per-file write throttle
is charged as clusters are queued and credited from the completion
interrupt.

``ufs_rdwr`` maps each file block, faults it in via getpage, copies, and on
unmap triggers delayed putpage (writes) or free-behind (large sequential
reads under memory pressure).

Every entry point accepts an optional :class:`~repro.sim.request.IORequest`
(``req``), the context opened at the syscall boundary.  When present, each
layer opens a child span (getpage → cluster_read → biowait, putpage →
cluster_write → throttle_wait) and tags the bufs it issues, so a completed
request renders as one tree from syscall to rotational service.  With
``req=None`` (internal callers, tests) the only cost is a None check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.errors import DiskError, InvalidArgumentError, ReproError
from repro.sim.events import EventFailed
from repro.ufs import bmap
from repro.vfs.vnode import PutFlags, RW

#: Largest file the "data in the inode" future-work extension will cache
#: (the paper: "many files are small, less than 2KB").
INLINE_DATA_MAX = 2048

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.request import IORequest
    from repro.ufs.vnode import UfsVnode
    from repro.vm.page import Page


def _await_buf(buf: "Buf", req: "IORequest | None" = None
               ) -> Generator[Any, Any, None]:
    """biowait: wait for a buf, unwrapping the engine's ``EventFailed``
    envelope so callers see the original :class:`DiskError`."""
    span = req.begin("biowait", buf=buf.id) if req is not None else None
    try:
        yield buf.done
    except EventFailed as failure:
        cause = failure.args[0] if failure.args else failure
        raise cause from None
    finally:
        if req is not None:
            req.end(span)


# ---------------------------------------------------------------------------
# getpage
# ---------------------------------------------------------------------------

def ufs_getpage(vn: "UfsVnode", offset: int, rw: RW = RW.READ,
                req: "IORequest | None" = None
                ) -> Generator[Any, Any, "Page"]:
    """Return the page at ``offset``, reading (a cluster) if necessary."""
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    cpu = mount.cpu
    psize = pc.page_size
    tuning = mount.tuning
    trace = mount.trace
    if offset % psize:
        raise InvalidArgumentError(f"offset {offset} not page aligned")
    span = req.begin("getpage", offset=offset) if req is not None else None
    try:
        # Find the page; if an I/O (read-ahead) is in flight, wait for it.
        while True:
            page = pc.lookup(vn, offset)
            if page is not None and page.locked and not page.valid:
                mount.stats.incr("getpage_io_waits")
                yield from page.wait_unlocked()
                continue
            break
        cached = page is not None and page.valid

        yield from cpu.work("getpage", cpu.costs.getpage_hit)
        action = ip.readahead.observe(offset, psize, cached)
        want = ip.cluster_blocks if action.sequential else 1
        # Degraded mode: repeated I/O errors on this file clamp reads to one
        # block until successes re-grow the cluster (forward progress first).
        want = ip.readahead.health.clamp(want, 1)

        # bmap() to find the disk location — called even when the page is in
        # memory, because of holes (the UFS_HOLE discussion).  The future-work
        # bypass skips it on a hit when di_blocks proves the file hole-free.
        lbn = offset // mount.sb.bsize
        if cached and tuning.hole_check_bypass and not ip.maybe_holes:
            addr, contig = bmap.HOLE, 1  # unused on the cached path
            mount.stats.incr("bmap_bypassed")
        else:
            addr, contig = yield from bmap.bmap_read(mount, ip, lbn, want)

        if not cached:
            yield from cpu.work("getpage", cpu.costs.getpage_miss)
            if addr == bmap.HOLE or offset >= ip.size:
                # A hole (or read past EOF via mmap): deliver zeros, no I/O.
                page = yield from _grab_page(vn, offset, req=req)
                page.zero()
                page.valid = True
                page.unlock()
                mount.stats.incr("zero_fill")
            else:
                sync_blocks = contig if tuning.read_clustering else 1
                sync_blocks = ip.readahead.health.clamp(sync_blocks, 1)
                buf, sync_bytes = yield from _issue_read(
                    vn, offset, sync_blocks, async_=False,
                    translation=(addr, contig), req=req,
                )
                if trace.enabled:
                    trace.emit("getpage_sync", offset=offset, bytes=sync_bytes)
                if action.ra_after_sync:
                    yield from _maybe_readahead(vn, offset + sync_bytes,
                                                req=req)
                if buf is not None:
                    try:
                        # First page not cached: wait.
                        yield from _await_buf(buf, req=req)
                    except DiskError as error:
                        mount.stats.incr("read_errors")
                        if trace.enabled:
                            trace.emit("read_error", offset=offset,
                                       code=error.code)
                        if sync_bytes <= psize:
                            raise
                        # A cluster-sized read failed: before surfacing EIO,
                        # retry just the faulted page (the health tracker has
                        # already shrunk this file's future clusters).
                        mount.stats.incr("degraded_reads")
                        retry, _ = yield from _issue_read(vn, offset, 1,
                                                          async_=False,
                                                          req=req)
                        if retry is None:
                            raise
                        yield from _await_buf(retry, req=req)
        elif action.ra_offset is not None:
            yield from _maybe_readahead(vn, action.ra_offset, req=req)

        page = pc.lookup(vn, offset)
        if page is None or not page.valid:
            # The frame was stolen between iodone and now (extreme pressure):
            # retry from the top.
            mount.stats.incr("getpage_retries")
            return (yield from ufs_getpage(vn, offset, rw, req=req))
        page.referenced = True
        return page
    finally:
        if req is not None:
            req.end(span)


def _maybe_readahead(vn: "UfsVnode", ra_offset: int,
                     req: "IORequest | None" = None
                     ) -> Generator[Any, Any, None]:
    """Start an asynchronous cluster read at ``ra_offset`` if sensible."""
    mount = vn.mount
    ip = vn.inode
    if ra_offset >= ip.size:
        return
    want = ip.cluster_blocks if mount.tuning.read_clustering else 1
    want = ip.readahead.health.clamp(want, 1)
    buf, nbytes = yield from _issue_read(vn, ra_offset, want, async_=True,
                                         req=req)
    if nbytes > 0:
        ip.readahead.issued(ra_offset, nbytes)
        mount.stats.incr("readaheads")
        if mount.trace.enabled:
            mount.trace.emit("readahead", offset=ra_offset, bytes=nbytes)


def _grab_page(vn: "UfsVnode", offset: int, req: "IORequest | None" = None
               ) -> Generator[Any, Any, "Page"]:
    """Allocate (locked) a page frame for <vn, offset>, waiting for memory."""
    mount = vn.mount
    pc = mount.pagecache
    while True:
        page = pc.allocate(vn, offset)
        if page is not None:
            yield from mount.cpu.work("page_alloc", mount.cpu.costs.page_alloc)
            return page
        yield from pc.wait_for_memory(req=req)


class _ReadIodone:
    """b_iodone for a cluster read: map the data in, or dissolve the frames.

    A named object (not a closure) so a queued buf's completion behaviour is
    inspectable and the request pipeline has one identifiable callback per
    layer instead of anonymous plumbing.
    """

    __slots__ = ("pages", "psize", "pagecache", "health")

    def __init__(self, pages: "list[Page]", psize: int, pagecache,
                 health) -> None:
        self.pages = pages
        self.psize = psize
        self.pagecache = pagecache
        self.health = health

    def __call__(self, done_buf: Buf) -> None:
        if done_buf.error is not None:
            # The read failed: there is nothing valid to map in.  Destroy
            # the frames so a retry faults cleanly instead of finding a
            # stale invalid page, and let the health tracker shrink this
            # file's clusters.
            for page in self.pages:
                page.unlock()
                self.pagecache.destroy(page)
            self.health.record_failure()
            return
        assert done_buf.data is not None
        for i, page in enumerate(self.pages):
            page.fill(done_buf.data[i * self.psize:(i + 1) * self.psize])
            page.valid = True
            page.dirty = False
            page.unlock()
        self.health.record_success()


def _issue_read(vn: "UfsVnode", offset: int, want_blocks: int, async_: bool,
                translation: "tuple[int, int] | None" = None,
                req: "IORequest | None" = None,
                ) -> Generator[Any, Any, "tuple[Buf | None, int]"]:
    """Read up to ``want_blocks`` starting at ``offset`` as one request.

    The cluster is bounded by bmap contiguity, EOF, and the first page that
    is already cached.  ``translation`` is the caller's bmap result for
    ``offset``, when it already has one (ufs_getpage does).  Returns
    (buf, bytes issued); (None, 0) if nothing needed reading.
    """
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    sb = mount.sb
    psize = pc.page_size
    span = None
    if req is not None:
        span = req.begin("cluster_read", offset=offset, want=want_blocks,
                         async_=async_)
    try:
        lbn = offset // sb.bsize
        if translation is not None:
            addr, contig = translation
        else:
            addr, contig = yield from bmap.bmap_read(mount, ip, lbn,
                                                     max(1, want_blocks))
        if addr == bmap.HOLE:
            return None, 0
        blocks = min(contig, want_blocks)
        last_lbn = (ip.size - 1) // sb.bsize
        blocks = min(blocks, last_lbn - lbn + 1)
        if blocks <= 0:
            return None, 0

        # Collect consecutive uncached pages (stop at the first cached one).
        pages: list["Page"] = []
        for i in range(blocks):
            page_off = offset + i * psize
            if pc.lookup(vn, page_off) is not None:
                break
            page = yield from _grab_page(vn, page_off, req=req)
            pages.append(page)
        if not pages:
            return None, 0
        blocks = len(pages)

        # The tail block of a small file may be a fragment run.
        nbytes = (blocks - 1) * sb.bsize + ip.blksize(lbn + blocks - 1)
        nsectors = -(-nbytes // 512)
        cpu = mount.cpu
        if blocks > 1:
            yield from cpu.work("cluster", blocks * cpu.costs.cluster_per_page)
        yield from cpu.work("driver", cpu.costs.driver_strategy)

        buf = Buf(mount.engine, BufOp.READ, sb.fsb_to_sector(addr), nsectors,
                  async_=async_, owner=f"ufs-read-i{ip.ino}")
        if req is not None:
            buf.request = req
            buf.parent_span = span if span is not None else req.current_span
        mount.stats.incr("read_ios")
        mount.stats.incr("read_bytes", nbytes)

        buf.iodone.append(_ReadIodone(pages, psize, pc, ip.readahead.health))
        mount.driver.strategy(buf)
        return buf, blocks * psize
    finally:
        if req is not None:
            req.end(span)


# ---------------------------------------------------------------------------
# putpage
# ---------------------------------------------------------------------------

def ufs_putpage(vn: "UfsVnode", offset: int, length: int, flags: PutFlags,
                req: "IORequest | None" = None
                ) -> Generator[Any, Any, None]:
    """Write pages of [offset, offset+length) back, per ``flags``."""
    mount = vn.mount
    ip = vn.inode
    psize = mount.pagecache.page_size
    cpu = mount.cpu
    trace = mount.trace
    yield from cpu.work("putpage", cpu.costs.putpage)

    if flags.delay:
        if length != psize:
            raise InvalidArgumentError("delayed putpage is per page")
        if mount.tuning.lazy_writeback:
            # Peacock-style: keep lying until the cache is flushed ("the
            # flush may cause a proportionally large I/O burst").
            if trace.enabled:
                trace.emit("write_delayed", offset=offset)
            return
        if mount.tuning.write_clustering:
            max_bytes = max(psize, ip.cluster_blocks * mount.sb.bsize)
            action = ip.writecluster.offer(offset, psize, max_bytes)
            if action.should_flush:
                if trace.enabled:
                    trace.emit(
                        "write_cluster_push",
                        offset=action.flush_offset, bytes=action.flush_len,
                        restarted=action.restarted,
                    )
                yield from _push_range(
                    vn, action.flush_offset, action.flush_len,
                    async_=True, free=False, req=req,
                )
            elif trace.enabled:
                trace.emit("write_delayed", offset=offset)
            return
        # Old system: start the I/O for this page right away.
        yield from _push_range(vn, offset, psize, async_=True, free=False,
                               req=req)
        return

    # Non-delayed: dirty bits are ground truth; fold in any stolen range.
    start, span = ip.writecluster.steal(offset, length)
    if span:
        end = max(offset + length, start + span)
        offset = min(offset, start)
        length = end - offset
    yield from _push_range(vn, offset, length, async_=flags.async_,
                           free=flags.free, invalidate=flags.invalidate,
                           req=req)


def _push_range(vn: "UfsVnode", offset: int, length: int, async_: bool,
                free: bool, invalidate: bool = False,
                req: "IORequest | None" = None
                ) -> Generator[Any, Any, None]:
    """Write out all dirty pages in [offset, offset+length), clustered by
    contiguity on disk (figure 8's while loop).

    The range is re-scanned after each cluster: pages may be cleaned,
    locked, or re-dirtied by other processes (pageout, other writers)
    between I/Os, and the dirty bits — not this routine's snapshot — are
    the ground truth.
    """
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    sb = mount.sb
    psize = pc.page_size
    end = offset + length
    seen: set[int] = set()
    waits = []
    while True:
        dirty = [
            p for p in pc.vnode_pages(vn)
            if offset <= p.offset < end and p.dirty and p.valid
            and not p.locked and p.frame not in seen
        ]
        if not dirty:
            break
        # The first run of consecutive page offsets...
        run = [dirty[0]]
        for p in dirty[1:]:
            if p.offset != run[-1].offset + psize:
                break
            run.append(p)
        # ...split by on-disk contiguity.
        lbn = run[0].offset // sb.bsize
        addr, contig = yield from bmap.bmap_read(mount, ip, lbn, len(run))
        if addr == bmap.HOLE:
            raise InvalidArgumentError(
                f"dirty page at {run[0].offset} has no backing store"
            )
        cluster = run[:contig]
        buf, written = yield from _issue_write(vn, cluster, addr, async_,
                                               free, invalidate, req=req)
        seen.update(p.frame for p in written)
        if buf is not None:
            if not async_:
                waits.append(buf.done)
        elif not written:
            # No progress (pages stolen mid-flight): let time advance so
            # whoever holds them finishes, then rescan.
            seen.update(p.frame for p in cluster)
    errors: list[BaseException] = []
    wait_span = None
    if req is not None and waits:
        wait_span = req.begin("biowait", bufs=len(waits))
    try:
        for done in waits:
            try:
                yield done
            except EventFailed as failure:
                errors.append(failure.args[0] if failure.args else failure)
    finally:
        if req is not None:
            req.end(wait_span)
    if errors:
        # Drain every wait before surfacing the first error, so no buf is
        # left with an unconsumed failure.
        raise errors[0]


class _WriteIodone:
    """b_iodone for a cluster write: clean/free the pages, credit the
    throttle.

    Named, like :class:`_ReadIodone`, so the completion path is one
    inspectable object per issued cluster rather than an anonymous closure.
    The throttle credit runs from "interrupt context" (buf completion)
    whether the write succeeded or not — charged bytes must never leak.
    """

    __slots__ = ("pages", "pagecache", "throttle", "charged", "health",
                 "free", "invalidate")

    def __init__(self, pages: "list[Page]", pagecache, throttle, charged: int,
                 health, free: bool, invalidate: bool) -> None:
        self.pages = pages
        self.pagecache = pagecache
        self.throttle = throttle
        self.charged = charged
        self.health = health
        self.free = free
        self.invalidate = invalidate

    def __call__(self, done_buf: Buf) -> None:
        if done_buf.error is not None:
            # The write failed: the bytes exist only in memory.  Keep the
            # pages dirty so later writebacks retry them, and shrink this
            # file's clusters so the error is not amplified.
            for page in self.pages:
                page.unlock()
            self.health.record_failure()
        else:
            for page in self.pages:
                page.dirty = False
                page.unlock()
                if self.invalidate:
                    self.pagecache.destroy(page)
                elif self.free and not page.referenced and not page.free:
                    self.pagecache.free(page)
            self.health.record_success()
        self.throttle.credit(self.charged, source=done_buf)


def _issue_write(vn: "UfsVnode", cluster: "list[Page]", addr: int,
                 async_: bool, free: bool, invalidate: bool,
                 req: "IORequest | None" = None
                 ) -> Generator[Any, Any, "tuple[Buf | None, list[Page]]"]:
    """Write one on-disk-contiguous cluster of dirty pages.

    Returns the buf (None if nothing needed writing) and the pages actually
    covered by it.
    """
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    sb = mount.sb
    cpu = mount.cpu
    span = None
    if req is not None:
        span = req.begin("cluster_write", offset=cluster[0].offset,
                         pages=len(cluster), async_=async_)
    try:
        # Lock the pages; drop any that got cleaned or claimed meanwhile, and
        # keep only the still-consecutive prefix (the dropped tail stays dirty
        # and is picked up by the caller's rescan).
        run: list["Page"] = []
        for page in cluster:
            if page.locked:
                yield from page.lock_wait()
            else:
                page.lock()
            usable = page.dirty and page.valid and page.vnode is vn
            consecutive = not run or page.offset == run[-1].offset + pc.page_size
            if not usable or not consecutive:
                page.unlock()
                if not usable:
                    continue
                break
            run.append(page)
        if not run:
            return None, []
        # If leading pages were dropped, shift the physical address to match
        # (bmap guaranteed contiguity across the original cluster).
        addr += (run[0].offset - cluster[0].offset) // sb.bsize * sb.frag
        first_lbn = run[0].offset // sb.bsize
        last_lbn = first_lbn + len(run) - 1
        nbytes = (len(run) - 1) * sb.bsize + ip.blksize(last_lbn)
        data = bytearray()
        for idx, page in enumerate(run):
            take = min(pc.page_size, nbytes - idx * pc.page_size)
            data.extend(page.data[:take])
        nsectors = -(-len(data) // 512)
        data = bytes(data.ljust(nsectors * 512, b"\x00"))

        # The write is charged now but the sleep happens after the request is
        # queued — a single over-limit write must still reach the driver.
        ip.throttle.take(len(data))
        if len(run) > 1:
            yield from cpu.work("cluster", len(run) * cpu.costs.cluster_per_page)
        yield from cpu.work("driver", cpu.costs.driver_strategy)

        buf = Buf(mount.engine, BufOp.WRITE, sb.fsb_to_sector(addr), nsectors,
                  data=data, async_=async_, owner=f"ufs-write-i{ip.ino}")
        # Integrity attribution: records stamped for this write name the
        # owning inode and logical block, so scrub repair can find a clean
        # page-cache copy without walking block pointers.
        buf.integrity_owner = (ip.ino, first_lbn)
        if req is not None:
            buf.request = req
            buf.parent_span = span if span is not None else req.current_span
        mount.stats.incr("write_ios")
        mount.stats.incr("write_bytes", len(data))

        buf.iodone.append(_WriteIodone(run, pc, ip.throttle, len(data),
                                       ip.writecluster.health, free,
                                       invalidate))
        mount.driver.strategy(buf)
        throttle_span = None
        if req is not None and ip.throttle.enabled and ip.throttle.value < 0:
            throttle_span = req.begin("throttle_wait",
                                      over_by=-ip.throttle.value)
        try:
            yield from ip.throttle.wait_ok()
        finally:
            # A torn-down wait (interrupt, failing event) must still close
            # the span, or the request finishes with it open.
            if req is not None:
                req.end(throttle_span)
        return buf, run
    finally:
        if req is not None:
            req.end(span)


# ---------------------------------------------------------------------------
# rdwr
# ---------------------------------------------------------------------------

def ufs_rdwr(vn: "UfsVnode", rw: RW, offset: int, payload: "bytes | int",
             req: "IORequest | None" = None
             ) -> Generator[Any, Any, "bytes | int"]:
    """The read/write entry point: map, fault, copy, unmap per block."""
    if offset < 0:
        raise InvalidArgumentError("negative file offset")
    if rw is RW.READ:
        return (yield from _rdwr_read(vn, offset, int(payload), req=req))
    return (yield from _rdwr_write(vn, offset, bytes(payload), req=req))  # type: ignore[arg-type]


def _rdwr_read(vn: "UfsVnode", offset: int, count: int,
               req: "IORequest | None" = None
               ) -> Generator[Any, Any, bytes]:
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    cpu = mount.cpu
    psize = pc.page_size
    tuning = mount.tuning
    if count < 0:
        raise InvalidArgumentError("negative read count")
    if offset >= ip.size:
        return b""
    count = min(count, ip.size - offset)

    # Future work, "data in the inode": "inodes are already cached in the
    # system separately from pages which means that the system could
    # satisfy many requests directly from the inode".
    if (tuning.inode_data_cache and ip.size <= INLINE_DATA_MAX
            and ip.inline_data is not None):
        yield from cpu.work("inode", cpu.costs.inode_update)
        yield from cpu.copy("copyout", count)
        mount.stats.incr("inline_reads")
        return ip.inline_data[offset:offset + count]

    # Future work, "random clustering": "if the request is a read of a
    # large amount of data ... the request size could be passed down to
    # the ufs_getpage routine, which could use the request size as a hint
    # to turn on clustering for what is apparently random access."
    if (tuning.random_clustering and count > psize
            and offset != ip.readahead.nextr):
        start = (offset // psize) * psize
        end = min(((offset + count + psize - 1) // psize) * psize, ip.size)
        pos = start
        while pos < end:
            want = (end - pos + mount.sb.bsize - 1) // mount.sb.bsize
            buf, nbytes = yield from _issue_read(vn, pos, want, async_=True,
                                                 req=req)
            if nbytes == 0:
                pos += psize  # cached or a hole: skip forward one page
            else:
                pos += nbytes
                mount.stats.incr("random_clustered_reads")

    parts: list[bytes] = []
    remaining = count
    while remaining > 0:
        page_off = (offset // psize) * psize
        chunk = min(psize - (offset - page_off), remaining)
        yield from cpu.work("segmap", cpu.costs.segmap)
        yield from cpu.work("fault", cpu.costs.fault)
        try:
            page = yield from ufs_getpage(vn, page_off, RW.READ, req=req)
        except DiskError:
            if parts:
                break  # partial read: return the bytes that arrived
            raise
        yield from page.lock_wait()
        yield from cpu.copy("copyout", chunk)
        parts.append(bytes(page.data[offset - page_off:offset - page_off + chunk]))
        page.unlock()
        # Unmap: free behind, if the conditions hold.
        if tuning.freebehind and offset - page_off + chunk == psize:
            lotsfree = max(1, pc.low_water)
            if mount.freebehind.should_free(
                ip.readahead.last_was_sequential, page_off,
                pc.freemem, lotsfree,
            ) and not page.locked and not page.dirty and not page.free:
                pc.free(page, front=True)
                mount.stats.incr("freebehind")
        offset += chunk
        remaining -= chunk
    result = b"".join(parts)
    if (tuning.inode_data_cache and ip.size <= INLINE_DATA_MAX
            and offset - count == 0 and count >= ip.size):
        # A whole-file read of a small file: cache it in the inode.
        ip.inline_data = result
    return result


def _rdwr_write(vn: "UfsVnode", offset: int, data: bytes,
                req: "IORequest | None" = None
                ) -> Generator[Any, Any, int]:
    mount = vn.mount
    ip = vn.inode
    pc = mount.pagecache
    cpu = mount.cpu
    sb = mount.sb
    psize = pc.page_size
    written = 0
    remaining = len(data)
    while remaining > 0:
        page_off = (offset // psize) * psize
        in_page = offset - page_off
        chunk = min(psize - in_page, remaining)
        lbn = page_off // sb.bsize
        new_size = max(ip.size, offset + chunk)
        frags_needed = _frags_for(sb, lbn, new_size)
        yield from cpu.work("segmap", cpu.costs.segmap)

        try:
            # Growing past the tail block: the old tail's fragment run must
            # be expanded to a full block first (classic UFS), preserving
            # its data.
            if ip.size > 0:
                old_last = (ip.size - 1) // sb.bsize
                if lbn > old_last and old_last < len(ip.direct):
                    yield from _expand_frag_tail(vn, old_last, req=req)
                if lbn > old_last + 1:
                    ip.maybe_holes = True  # whole blocks skipped: a hole
            elif lbn > 0:
                ip.maybe_holes = True
            ip.inline_data = None  # writes invalidate the inline cache

            old_ptr = yield from bmap.get_pointer(mount, ip, lbn)
            new_ptr = yield from bmap.bmap_alloc(mount, ip, lbn, frags_needed)
            relocated = old_ptr != bmap.HOLE and new_ptr != old_ptr

            page = pc.lookup(vn, page_off)
            if page is not None:
                if page.locked and not page.valid:
                    yield from page.wait_unlocked()
                    page = pc.lookup(vn, page_off)
            if page is None:
                if old_ptr == bmap.HOLE or (in_page == 0 and chunk >= min(
                        psize, new_size - page_off)):
                    # Nothing old to preserve: take a fresh zeroed page.
                    page = yield from _grab_page(vn, page_off, req=req)
                    page.zero()
                    page.valid = True
                    page.unlock()
                else:
                    yield from cpu.work("fault", cpu.costs.fault)
                    page = yield from ufs_getpage(vn, page_off, RW.WRITE,
                                                  req=req)
        except ReproError:
            # Partial-write semantics: if earlier chunks landed, report
            # them; the error resurfaces on the next write or fsync.
            if written:
                break
            raise
        yield from page.lock_wait()
        yield from cpu.copy("copyin", chunk)
        page.data[in_page:in_page + chunk] = data[written:written + chunk]
        page.dirty = True
        page.referenced = True
        page.valid = True
        page.unlock()
        if new_size > ip.size:
            ip.size = new_size
            ip.mark_dirty()
        if relocated and mount.driver.disk.write_cache is not None:
            yield from _secure_relocation(vn, page_off, req=req)
        # Unmap: the delayed putpage is where write clustering happens.
        yield from ufs_putpage(vn, page_off, psize, PutFlags(delay=True),
                               req=req)
        offset += chunk
        written += chunk
        remaining -= chunk
    yield from cpu.work("inode", cpu.costs.inode_update)
    return written


def _expand_frag_tail(vn: "UfsVnode", tail_lbn: int,
                      req: "IORequest | None" = None
                      ) -> Generator[Any, Any, None]:
    """Grow the file's (old) tail block to a full block before the file
    extends past it.

    The reallocation may move the fragments; the data survives because the
    tail page is brought into the cache first and marked dirty, so the next
    writeback lands it at the new address.
    """
    mount = vn.mount
    ip = vn.inode
    sb = mount.sb
    old_ptr = yield from bmap.get_pointer(mount, ip, tail_lbn)
    if old_ptr == bmap.HOLE:
        return  # a hole stays a hole
    old_frags = ip.blksize(tail_lbn) // sb.fsize
    if old_frags >= sb.frag:
        return  # already a full block
    page = yield from ufs_getpage(vn, tail_lbn * sb.bsize, RW.READ, req=req)
    yield from page.lock_wait()
    try:
        new_addr = yield from bmap.bmap_alloc(mount, ip, tail_lbn, sb.frag)
        page.dirty = True  # must be written out (possibly to a new address)
        page.referenced = True
    finally:
        page.unlock()
    if new_addr != old_ptr and mount.driver.disk.write_cache is not None:
        yield from _secure_relocation(vn, tail_lbn * sb.bsize, req=req)
    mount.stats.incr("tail_expansions")


def _secure_relocation(vn: "UfsVnode", page_off: int,
                       req: "IORequest | None" = None
                       ) -> Generator[Any, Any, None]:
    """Make a just-relocated fragment run durable before its old home can
    be reused.

    Reallocation frees the old fragments while the on-disk inode may still
    point at them; over a volatile write cache the relocated data is not
    durable either, so another file can claim the freed fragments and have
    *its* flush land foreign bytes in sectors the durable inode still
    references — silently destroying previously-fsynced data.  Close the
    window inside the relocating write itself: land the block at its new
    address, barrier, then point the durable inode at it (and barrier
    again, for ordered-metadata mounts where the inode write itself rides
    the cache).
    """
    mount = vn.mount
    psize = mount.pagecache.page_size
    mount.stats.incr("relocation_barriers")
    yield from _push_range(vn, page_off, psize, async_=False, free=False,
                           req=req)
    yield from mount.flush_disk(req=req)
    yield from mount.write_inode(vn.inode, sync=True)
    yield from mount.flush_disk(req=req)


def _frags_for(sb, lbn: int, file_size: int) -> int:
    """Fragments logical block ``lbn`` needs for a file of ``file_size``."""
    from repro.ufs.ondisk import NDADDR

    if lbn >= NDADDR:
        return sb.frag
    last_lbn = (file_size - 1) // sb.bsize if file_size > 0 else 0
    if lbn < last_lbn:
        return sb.frag
    tail = file_size - last_lbn * sb.bsize
    return max(1, -(-tail // sb.fsize))
