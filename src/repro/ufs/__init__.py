"""UFS: Sun's UNIX file system (a Berkeley FFS derivative), with clustering.

This package implements a real, byte-accurate-on-its-own-terms file system
on the simulated disk:

* an FFS-style on-disk format — superblock, cylinder groups with fragment
  and inode bitmaps, 128-byte dinodes with direct/indirect/double-indirect
  pointers, directories with variable-length entries (:mod:`ondisk`,
  :mod:`mkfs`);
* the FFS allocator with the rotational-layout policy (``rotdelay``,
  ``maxcontig``), fragments for small files, a 10 % ``minfree`` reserve, and
  cylinder-group spreading for directories (:mod:`alloc`);
* ``bmap`` extended, as in the paper, to return the *contiguous length*
  along with the physical address (:mod:`bmap`);
* ``ufs_getpage`` / ``ufs_putpage`` / ``ufs_rdwr`` with the paper's read
  clustering, write clustering, free-behind and write throttling
  (:mod:`io`, driven by the policies in :mod:`repro.core`);
* ``fsck``-style consistency checking (:mod:`fsck`).

The on-disk format never changes with tuning — the paper's primary
constraint.  Every clustering feature is a pure code-path change expressed
through :class:`repro.core.ClusterTuning`.
"""

from repro.ufs.params import FsParams
from repro.ufs.mkfs import mkfs
from repro.ufs.mount import UfsMount
from repro.ufs.fsck import FsckReport, fsck
from repro.ufs.tunefs import tunefs
from repro.ufs.dump import DumpArchive, DumpEntry, restore, ufsdump

__all__ = [
    "DumpArchive",
    "DumpEntry",
    "FsParams",
    "FsckReport",
    "UfsMount",
    "fsck",
    "mkfs",
    "restore",
    "tunefs",
    "ufsdump",
]
