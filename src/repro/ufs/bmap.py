"""bmap: logical block -> physical fragment translation.

The paper's change: "bmap used to take a logical block number and return a
physical block number.  We modified it to return a length as well...  The
length returned is at most maxcontig blocks long and is used as the
effective cluster size by the caller."

``bmap_read`` implements exactly that.  ``bmap_alloc`` is the write-side
translation-with-allocation, including indirect and double-indirect blocks
and fragment handling for small-file tails.  A hole translates to address 0
(fragment 0 is the boot block and never allocatable).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import InvalidArgumentError
from repro.ufs.ondisk import NDADDR

if TYPE_CHECKING:  # pragma: no cover
    from repro.ufs.inode import Inode
    from repro.ufs.mount import UfsMount

HOLE = 0


def nindir(bsize: int) -> int:
    """Pointers per indirect block."""
    return bsize // 4


def max_lbn(bsize: int) -> int:
    """One past the largest addressable logical block."""
    n = nindir(bsize)
    return NDADDR + n + n * n


def _charge(mount: "UfsMount", indirect: bool) -> Generator[Any, Any, None]:
    costs = mount.cpu.costs
    cost = costs.bmap + (costs.bmap_indirect if indirect else 0.0)
    yield from mount.cpu.work("bmap", cost)


def _read_ptr(mount: "UfsMount", addr_block: int, index: int
              ) -> Generator[Any, Any, int]:
    meta = yield from mount.metacache.bread(addr_block)
    return struct.unpack_from("<I", meta.data, index * 4)[0]


def _write_ptr(mount: "UfsMount", addr_block: int, index: int, value: int
               ) -> Generator[Any, Any, None]:
    meta = yield from mount.metacache.bread(addr_block)
    struct.pack_into("<I", meta.data, index * 4, value)
    mount.metacache.bdwrite(meta)


def get_pointer(mount: "UfsMount", ip: "Inode", lbn: int
                ) -> Generator[Any, Any, int]:
    """The raw block pointer for ``lbn`` (0 = hole / unallocated)."""
    if lbn < 0:
        raise InvalidArgumentError(f"negative lbn {lbn}")
    n = nindir(mount.sb.bsize)
    if lbn < NDADDR:
        return ip.direct[lbn]
    lbn -= NDADDR
    if lbn < n:
        if ip.indirect == HOLE:
            return HOLE
        return (yield from _read_ptr(mount, ip.indirect, lbn))
    lbn -= n
    if lbn < n * n:
        if ip.dindirect == HOLE:
            return HOLE
        outer = yield from _read_ptr(mount, ip.dindirect, lbn // n)
        if outer == HOLE:
            return HOLE
        return (yield from _read_ptr(mount, outer, lbn % n))
    raise InvalidArgumentError(f"lbn {lbn + NDADDR + n} beyond maximum file size")


def set_pointer(mount: "UfsMount", ip: "Inode", lbn: int, value: int
                ) -> Generator[Any, Any, None]:
    """Install a block pointer, allocating indirect blocks as needed."""
    if lbn < 0:
        raise InvalidArgumentError(f"negative lbn {lbn}")
    ip.invalidate_translations()
    n = nindir(mount.sb.bsize)
    if lbn < NDADDR:
        ip.direct[lbn] = value
        ip.mark_dirty()
        return
    lbn -= NDADDR
    if lbn < n:
        if ip.indirect == HOLE:
            ip.indirect = yield from _alloc_meta_block(mount, ip)
            ip.mark_dirty()
        yield from _write_ptr(mount, ip.indirect, lbn, value)
        return
    lbn -= n
    if lbn < n * n:
        if ip.dindirect == HOLE:
            ip.dindirect = yield from _alloc_meta_block(mount, ip)
            ip.mark_dirty()
        outer_index = lbn // n
        outer = yield from _read_ptr(mount, ip.dindirect, outer_index)
        if outer == HOLE:
            outer = yield from _alloc_meta_block(mount, ip)
            yield from _write_ptr(mount, ip.dindirect, outer_index, outer)
        yield from _write_ptr(mount, outer, lbn % n, value)
        return
    raise InvalidArgumentError("lbn beyond maximum file size")


def _alloc_meta_block(mount: "UfsMount", ip: "Inode") -> Generator[Any, Any, int]:
    """Allocate and zero a block for pointers."""
    pref = mount.allocator.blkpref(ip, 0, ip.direct[NDADDR - 1] or ip.direct[0])
    addr = yield from mount.allocator.alloc_block(ip, pref)
    yield from mount.metacache.install_new(addr)
    meta = yield from mount.metacache.bread(addr)
    mount.metacache.bdwrite(meta)
    return addr


def bmap_read(mount: "UfsMount", ip: "Inode", lbn: int, maxcontig: int
              ) -> Generator[Any, Any, tuple[int, int]]:
    """Translate ``lbn``; returns ``(fragment address, contiguous blocks)``.

    The contiguous length is at most ``maxcontig`` blocks and at least 1
    (when the block exists).  A hole returns ``(HOLE, 1)``.
    """
    if maxcontig < 1:
        raise InvalidArgumentError("maxcontig must be >= 1")
    sb = mount.sb
    indirect = lbn >= NDADDR
    if ip.bmap_cache is not None:
        hit = ip.bmap_cache.lookup(lbn, sb.frag)
        if hit is not None:
            # The cached extent tuple answers without walking pointers:
            # "a small cache in the inode could reduce the cost of bmap
            # substantially".  Only a lookup's worth of CPU is charged.
            yield from mount.cpu.work("bmap", mount.cpu.costs.bmap * 0.15)
            addr, remaining = hit
            return addr, min(remaining, maxcontig)
    yield from _charge(mount, indirect)
    addr = yield from get_pointer(mount, ip, lbn)
    if addr == HOLE:
        return HOLE, 1
    length = 1
    prev = addr
    last_lbn = (ip.size - 1) // sb.bsize if ip.size > 0 else 0
    while length < maxcontig and lbn + length <= last_lbn:
        nxt = yield from get_pointer(mount, ip, lbn + length)
        if nxt != prev + sb.frag:
            break
        # Only full blocks extend a cluster (a fragment tail ends it).
        if ip.blksize(lbn + length) != sb.bsize:
            break
        prev = nxt
        length += 1
    if ip.bmap_cache is not None:
        ip.bmap_cache.insert(lbn, addr, length)
    return addr, length


def bmap_alloc(mount: "UfsMount", ip: "Inode", lbn: int, frags_needed: int
               ) -> Generator[Any, Any, int]:
    """Ensure ``lbn`` is backed by at least ``frags_needed`` fragments;
    returns the fragment address.

    Grows a fragment tail in place (or moves it) when the file extends; the
    caller holds the block's data in a dirty page, so no media copy is done
    here.
    """
    sb = mount.sb
    if not 1 <= frags_needed <= sb.frag:
        raise InvalidArgumentError("frags_needed must be in [1, frag]")
    indirect = lbn >= NDADDR
    yield from _charge(mount, indirect)
    existing = yield from get_pointer(mount, ip, lbn)
    prev = 0
    if lbn > 0:
        prev = yield from get_pointer(mount, ip, lbn - 1)
    # Fragments only make sense for direct-block tails.
    if lbn >= NDADDR:
        frags_needed = sb.frag
    old_frags = 0
    if existing != HOLE:
        old_size = ip.blksize(lbn)
        old_frags = old_size // sb.fsize
        if old_frags >= frags_needed:
            return existing
        new_addr = yield from mount.allocator.realloc_frags(
            ip, existing, old_frags, frags_needed,
            mount.allocator.blkpref(ip, lbn, prev),
        )
        if new_addr != existing:
            yield from set_pointer(mount, ip, lbn, new_addr)
        else:
            ip.invalidate_translations()
        return new_addr
    pref = mount.allocator.blkpref(ip, lbn, prev)
    if frags_needed == sb.frag:
        addr = yield from mount.allocator.alloc_block(ip, pref)
    else:
        addr = yield from mount.allocator.alloc_frags(ip, pref, frags_needed)
    yield from set_pointer(mount, ip, lbn, addr)
    return addr


def truncate_blocks(mount: "UfsMount", ip: "Inode") -> Generator[Any, Any, int]:
    """Free every block of the file (truncate to zero); returns frags freed.

    Walks direct, indirect, and double-indirect pointers, returning data
    blocks, pointer blocks, and the fragment tail to the allocator.
    """
    sb = mount.sb
    freed = 0
    last_lbn = (ip.size - 1) // sb.bsize if ip.size > 0 else -1
    for lbn in range(min(last_lbn + 1, NDADDR)):
        addr = ip.direct[lbn]
        if addr == HOLE:
            continue
        nfrags = ip.blksize(lbn) // sb.fsize
        mount.allocator.free_frags(ip, addr, nfrags)
        freed += nfrags
        ip.direct[lbn] = HOLE
    if ip.indirect != HOLE:
        freed += yield from _free_pointer_block(mount, ip, ip.indirect, depth=1)
        ip.indirect = HOLE
    if ip.dindirect != HOLE:
        freed += yield from _free_pointer_block(mount, ip, ip.dindirect, depth=2)
        ip.dindirect = HOLE
    ip.size = 0
    ip.invalidate_translations()
    ip.mark_dirty()
    return freed


def _free_pointer_block(mount: "UfsMount", ip: "Inode", addr: int, depth: int
                        ) -> Generator[Any, Any, int]:
    sb = mount.sb
    meta = yield from mount.metacache.bread(addr)
    freed = 0
    for i in range(nindir(sb.bsize)):
        child = struct.unpack_from("<I", meta.data, i * 4)[0]
        if child == HOLE:
            continue
        if depth > 1:
            freed += yield from _free_pointer_block(mount, ip, child, depth - 1)
        else:
            mount.allocator.free_frags(ip, child, sb.frag)
            freed += sb.frag
    mount.metacache.drop(addr)
    mount.allocator.free_frags(ip, addr, sb.frag)
    freed += sb.frag
    return freed
