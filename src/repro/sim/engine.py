"""The deterministic discrete-event engine.

The engine owns simulated time and an event heap of ``(time, seq, fn, arg)``
entries.  Everything in the simulation — timeouts, event callbacks, process
resumptions, disk interrupts — flows through this single heap, so runs are
fully deterministic for a given seed and workload.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

from repro.sim.events import Event, Process, ProcessGen, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled failure)."""


class Scheduled:
    """A handle to one heap entry, so callers can cancel it.

    A cancelled entry is skipped silently when it reaches the top of the
    heap — in particular it does *not* advance simulated time, which is what
    lets retransmission timers be abandoned the moment a reply arrives
    without leaving a dead-time tail at the end of the run.
    """

    __slots__ = ("fn", "arg", "daemon", "cancelled", "fired")

    def __init__(self, fn: Callable[[Any], None], arg: Any, daemon: bool):
        self.fn = fn
        self.arg = arg
        self.daemon = daemon
        self.cancelled = False
        self.fired = False


class Recurring:
    """A cancelable recurring timer created by :meth:`Engine.every`.

    The next occurrence is scheduled *before* the callback runs, so the
    callback may cancel the timer (or raise) without leaving a stray
    entry behind; ``fires`` counts completed callbacks.
    """

    __slots__ = ("engine", "interval", "fn", "daemon", "cancelled", "fires",
                 "_entry")

    def __init__(self, engine: "Engine", interval: float,
                 fn: Callable[[], None], daemon: bool):
        if interval <= 0:
            raise SimulationError(f"recurring interval must be > 0 "
                                  f"(got {interval})")
        self.engine = engine
        self.interval = interval
        self.fn = fn
        self.daemon = daemon
        self.cancelled = False
        self.fires = 0
        self._entry = engine.schedule(interval, self._fire, daemon=daemon)

    def _fire(self, _arg: Any) -> None:
        if self.cancelled:
            return
        self._entry = self.engine.schedule(self.interval, self._fire,
                                           daemon=self.daemon)
        self.fires += 1
        self.fn()

    def cancel(self) -> None:
        """Stop the timer; the pending occurrence is cancelled too."""
        if self.cancelled:
            return
        self.cancelled = True
        self.engine.cancel(self._entry)


class Engine:
    """A discrete-event simulation engine with generator-based processes.

    Example
    -------
    >>> eng = Engine()
    >>> def hello():
    ...     yield eng.timeout(1.5)
    ...     return "done"
    >>> proc = eng.process(hello())
    >>> eng.run()
    >>> eng.now, proc.value
    (1.5, 'done')
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Scheduled]] = []
        self._seq = count()
        self._live = 0  # non-daemon heap entries
        self._crashed: list[tuple[Process, BaseException]] = []
        self._running = False
        #: Optional hook run every ``step_hook_every`` executed steps (the
        #: invariant sanitizer's periodic mode); None disables it.
        self.step_hook: "Callable[[], None] | None" = None
        self.step_hook_every = 0
        self._steps = 0
        #: Buf ids are allocated here (one counter per simulated world, not
        #: per process) so same-seed runs number their bufs identically and
        #: trace exports compare byte-for-byte across runs.
        self.buf_ids = count(1)

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives --------------------------------------------
    def schedule(self, delay: float, fn: Callable[[Any], None], arg: Any = None,
                 daemon: bool = False) -> Scheduled:
        """Schedule ``fn(arg)`` to run ``delay`` seconds from now.

        ``daemon=True`` marks an entry that must not keep the simulation
        alive: :meth:`run` stops once only daemon entries remain (so
        periodic background services like update(8) don't make run-to-idle
        spin forever).

        Returns a :class:`Scheduled` handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = Scheduled(fn, arg, daemon)
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), entry))
        if not daemon:
            self._live += 1
        return entry

    def cancel(self, entry: Scheduled) -> None:
        """Cancel a scheduled entry; a no-op if already cancelled or fired.

        The heap slot stays behind but is skipped (without advancing time)
        when popped, and stops counting toward run-to-idle liveness.

        An entry that already fired has left the heap and settled its
        liveness accounting in :meth:`step`; cancelling it then must not
        decrement ``_live`` a second time (that would make run-to-idle stop
        with work still pending).
        """
        if entry.cancelled or entry.fired:
            return
        entry.cancelled = True
        if not entry.daemon:
            entry.daemon = True  # stop counting toward liveness exactly once
            self._live -= 1

    def every(self, interval: float, fn: Callable[[], None],
              daemon: bool = True) -> Recurring:
        """Run ``fn()`` every ``interval`` simulated seconds until cancelled.

        The telemetry sampler's clock: ``daemon=True`` (the default) keeps
        the timer from holding :meth:`run` open on its own, so a workload
        still runs to idle; the pending occurrence simply fires during the
        next burst of real work.  Returns a :class:`Recurring` handle with
        ``cancel()``.
        """
        return Recurring(self, interval, fn, daemon)

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                daemon: bool = False) -> Timeout:
        """An event that triggers ``delay`` seconds from now.

        A ``daemon`` timeout does not keep :meth:`run` alive on its own.
        """
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Spawn a process from a generator; it starts at the current time."""
        return Process(self, gen, name=name)

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Run the single next scheduled callback.  Returns False if idle.

        Cancelled entries are discarded without running or advancing time.
        """
        while self._heap:
            when, _, entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            assert when >= self._now, "event heap went backwards"
            self._now = when
            entry.fired = True
            if not entry.daemon:
                self._live -= 1
            entry.fn(entry.arg)
            self._steps += 1
            if (self.step_hook is not None and self.step_hook_every > 0
                    and self._steps % self.step_hook_every == 0):
                self.step_hook()
            return True
        return False

    def live_pending(self) -> int:
        """Non-cancelled, non-daemon entries still in the heap.

        The run-to-idle invariant is ``self._live == self.live_pending()``
        at every step boundary; the sanitizer's liveness check asserts it.
        """
        return sum(
            1 for _, _, entry in self._heap
            if not entry.cancelled and not entry.daemon
        )

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``.

        If a process crashed with an uncaught exception and nothing was
        waiting on it, the exception is re-raised here — errors should never
        pass silently.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            while self._heap:
                if until is None and self._live == 0:
                    break  # only daemon housekeeping left: we are idle
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
                if self._crashed:
                    proc, exc = self._crashed[0]
                    self._crashed.clear()
                    raise SimulationError(
                        f"process {proc.name!r} crashed at t={self._now:.6f}"
                    ) from exc
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        A failure in the process re-raises its original exception here, so
        modelled errors (ENOSPC and friends) reach the caller untouched.
        """
        proc = self.process(gen, name=name)
        proc.add_callback(lambda _event: None)  # claim the crash, if any
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked (heap drained)")
        return proc.value

    # -- internal ----------------------------------------------------------
    def _process_crashed(self, proc: Process, exc: BaseException) -> None:
        # Called for crashes with no waiter; run() re-raises these so that
        # a buggy daemon process cannot fail silently.
        self._crashed.append((proc, exc))
