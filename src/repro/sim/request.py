"""The I/O request spine: one context object per logical I/O.

The paper's argument is about what happens to *one* logical read or write
as it crosses layers — getpage/putpage clustering, bmap contiguity, driver
queueing, rotational service.  :class:`IORequest` is that request made
first-class: created at the syscall boundary, threaded down through the
vnode layer, the page cache, and the driver, so a completed request can
show its entire lifecycle as one span tree ("this 8 KB user read became one
56 KB cluster I/O that waited 3 ms in the queue").

Two costs are kept strictly separate:

* **accounting** (always on): request counts, byte counts, per-kind latency
  histograms, aggregated by :class:`RequestRegistry` — cheap enough for
  every benchmark run;
* **tracing** (opt-in): hierarchical :class:`~repro.sim.trace.Span` records
  via the tracer, enabled only when someone wants the tree.

Every layer below the syscall accepts ``req=None`` so direct callers (tests,
internal maintenance I/O) pay nothing and need no ceremony.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any

from repro.sim.stats import Histogram, StatSet, TimeWeighted

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.buf import Buf
    from repro.sim.engine import Engine
    from repro.sim.trace import Span, Tracer

#: Fallback id source for bare IORequests built without a registry (tests,
#: ad-hoc instrumentation).  Registry-created requests draw from the
#: registry's own counter so same-seed runs number requests identically.
_request_ids = count(1)


class IORequest:
    """One logical I/O request, from syscall entry to completion.

    Layers open child spans with :meth:`begin`/:meth:`end` (no-ops unless
    the tracer is enabled); the driver reports each finished disk transfer
    through :meth:`io_done`, which both counts it and records its
    queue-wait/service spans under whatever span issued the buf.
    """

    __slots__ = (
        "id", "kind", "origin", "engine", "tracer", "registry",
        "created_at", "finished_at", "error", "ios", "bytes",
        "root", "_stack", "fields",
    )

    def __init__(self, engine: "Engine", kind: str,
                 tracer: "Tracer | None" = None,
                 registry: "RequestRegistry | None" = None,
                 origin: str = "", **fields: Any):
        self.id = next(registry._ids if registry is not None
                       else _request_ids)
        self.kind = kind
        self.origin = origin
        self.engine = engine
        self.tracer = tracer
        self.registry = registry
        self.created_at = engine.now
        self.finished_at: float | None = None
        self.error: BaseException | None = None
        #: Disk transfers (bufs) completed on behalf of this request.
        self.ios = 0
        #: Bytes moved by those transfers.
        self.bytes = 0
        self.fields = fields
        self.root: "Span | None" = None
        self._stack: list["Span"] = []
        if tracer is not None and tracer.enabled:
            self.root = tracer.span_begin(kind, request=self.id,
                                          origin=origin, **fields)
            if self.root is not None:
                self._stack.append(self.root)

    # -- spans ----------------------------------------------------------------
    @property
    def current_span(self) -> "Span | None":
        """The innermost open span (the parent for new child spans/bufs)."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, **fields: Any) -> "Span | None":
        """Open a child span under the innermost open one.

        Returns None (and records nothing) when tracing is off, so hot
        paths pay one attribute check; pass the result to :meth:`end`.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return None
        span = tracer.span_begin(name, parent=self.current_span, **fields)
        if span is not None:
            self._stack.append(span)
        return span

    def end(self, span: "Span | None", **fields: Any) -> None:
        """Close a span opened with :meth:`begin` (no-op on None)."""
        if span is None:
            return
        assert self.tracer is not None
        self.tracer.span_end(span, **fields)
        if span in self._stack:
            # Normally the top of the stack; tolerate out-of-order closes
            # from interleaved async completions.
            self._stack.remove(span)

    # -- driver feedback ---------------------------------------------------------
    def io_done(self, buf: "Buf") -> None:
        """Account one completed disk transfer issued for this request.

        Called from the buf's completion (interrupt context); records the
        disk_io → queue_wait/service subtree when tracing is enabled.
        """
        self.ios += 1
        self.bytes += buf.nbytes
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        finished = buf.finished_at if buf.finished_at is not None else self.engine.now
        started = buf.started_at if buf.started_at is not None else finished
        member = getattr(buf, "member", None)
        io_span = tracer.record_span(
            "disk_io" if member is None else f"disk_io[m{member}]",
            buf.issued_at, finished, parent=buf.parent_span,
            op=buf.op.value, sector=buf.sector, nsectors=buf.nsectors,
            error=(buf.error.__class__.__name__ if buf.error is not None else None),
        )
        tracer.record_span("queue_wait", buf.issued_at, started, parent=io_span)
        service = tracer.record_span("service", started, finished,
                                     parent=io_span)
        # The disk accounted how much of the service was mechanical
        # positioning vs. data movement; lay those out as consecutive
        # child intervals (the exact interleaving within the service is
        # not recorded — only the totals matter for attribution).
        seek_rot = min(buf.seek_rot_time, finished - started)
        if seek_rot > 0:
            tracer.record_span("rotation_seek", started, started + seek_rot,
                               parent=service)
        xfer = min(buf.xfer_time, finished - started - seek_rot)
        if xfer > 0:
            tracer.record_span("transfer", started + seek_rot,
                               started + seek_rot + xfer, parent=service)

    # -- completion ---------------------------------------------------------------
    def complete(self, error: BaseException | None = None) -> None:
        """Close the request (idempotent); feeds the registry's histograms.

        A request must finish with no child span still open — every layer
        that ``begin``\\ s a span owns a ``finally`` that ``end``\\ s it, even
        on error paths.  Leftovers are reported to the registry's
        ``span_leaks`` ledger, which the sanitizer's span-balance check
        turns into a hard failure.
        """
        if self.finished_at is not None:
            return
        self.finished_at = self.engine.now
        self.error = error
        if self.tracer is not None and self.root is not None:
            leaked = [s for s in self._stack if s is not self.root]
            if leaked and self.registry is not None:
                self.registry._span_leaked(self, leaked)
            self.tracer.span_end(
                self.root, ios=self.ios, bytes=self.bytes,
                error=(error.__class__.__name__ if error is not None else None),
            )
            self._stack.clear()
        if self.registry is not None:
            self.registry._finished(self)

    @property
    def elapsed(self) -> float:
        """Syscall-to-completion latency (so far, if still open)."""
        end = self.finished_at if self.finished_at is not None else self.engine.now
        return end - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished_at is not None else "open"
        return f"<IORequest#{self.id} {self.kind} {state} ios={self.ios}>"


class RequestRegistry:
    """Creates requests and aggregates their lifecycle statistics.

    One registry per machine (``system.requests``).  Per-kind latency
    histograms and an in-flight gauge are always maintained; span recording
    rides on the tracer's enabled flag.
    """

    def __init__(self, engine: "Engine", tracer: "Tracer | None" = None):
        self.engine = engine
        self.tracer = tracer
        #: Per-registry request ids (one registry per machine): two
        #: same-seed machines in one process number their requests the
        #: same way, which trace-export byte-determinism depends on.
        self._ids = count(1)
        self.stats = StatSet("requests")
        self.inflight = TimeWeighted(engine, 0)
        self.latency: dict[str, Histogram] = {}
        #: Requests started but not yet completed, by id — the sanitizer's
        #: span-balance check requires this to be empty at idle.
        self.open: dict[int, IORequest] = {}
        #: (request id, kind, leaked span names) for every request that
        #: completed with a child span still open; must stay empty.
        self.span_leaks: list[tuple[int, str, tuple[str, ...]]] = []

    def start(self, kind: str, origin: str = "", **fields: Any) -> IORequest:
        """Open a request of ``kind`` at the current simulated time."""
        self.stats.incr("started")
        self.stats.incr(f"{kind}_started")
        self.inflight.add(1)
        req = IORequest(self.engine, kind, tracer=self.tracer, registry=self,
                        origin=origin, **fields)
        self.open[req.id] = req
        return req

    def _finished(self, req: IORequest) -> None:
        self.open.pop(req.id, None)
        self.inflight.add(-1)
        self.stats.incr("completed")
        self.stats.incr("ios", req.ios)
        self.stats.incr("bytes", req.bytes)
        if req.error is not None:
            self.stats.incr("errors")
            self.stats.incr(f"{req.kind}_errors")
        hist = self.latency.get(req.kind)
        if hist is None:
            hist = self.latency[req.kind] = Histogram(f"{req.kind}_latency")
        hist.observe(req.elapsed)

    def _span_leaked(self, req: IORequest, leaked: "list[Any]") -> None:
        self.stats.incr("span_leaks")
        self.span_leaks.append(
            (req.id, req.kind, tuple(s.name for s in leaked))
        )

    def register_metrics(self, registry) -> None:
        """Report request accounting into a system MetricsRegistry.

        Latency histograms are per-kind and appear lazily, so they go in
        as a callable the registry re-renders at each snapshot."""
        registry.register("requests", self.stats)
        registry.register("requests.inflight", self.inflight)
        registry.register("requests.latency", lambda: {
            kind: h.summary() for kind, h in sorted(self.latency.items())})

    def report(self) -> dict[str, Any]:
        """A plain-dict snapshot for benchmark reports / JSON dumps."""
        return {
            "counts": self.stats.as_dict(),
            "inflight_avg": self.inflight.average(),
            "inflight_max": self.inflight.maximum,
            "latency": {kind: h.summary() for kind, h in sorted(self.latency.items())},
        }

    # -- phase-delta reporting ----------------------------------------------
    def snapshot(self) -> "RegistrySnapshot":
        """Freeze counters and per-kind histograms at a phase boundary."""
        return RegistrySnapshot(
            counts=dict(self.stats.as_dict()),
            latency={k: h.snapshot() for k, h in self.latency.items()},
        )

    def report_since(self, snap: "RegistrySnapshot") -> dict[str, Any]:
        """Like :meth:`report`, but covering only activity after ``snap``.

        Benchmark phase tables use this so each phase reports its own
        samples instead of mixing in every prior phase's.
        """
        counts = {
            k: v - snap.counts.get(k, 0)
            for k, v in self.stats.as_dict().items()
            if v - snap.counts.get(k, 0)
        }
        latency: dict[str, dict[str, float]] = {}
        for kind, hist in sorted(self.latency.items()):
            prior = snap.latency.get(kind)
            delta = hist.since(prior) if prior is not None else hist
            if delta.count:
                latency[kind] = delta.summary()
        return {"counts": counts, "latency": latency}


class RegistrySnapshot:
    """Frozen registry state for :meth:`RequestRegistry.report_since`."""

    __slots__ = ("counts", "latency")

    def __init__(self, counts: dict[str, float], latency: dict[str, Any]):
        self.counts = counts
        self.latency = latency
