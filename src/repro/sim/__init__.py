"""Discrete-event simulation kernel.

This package provides the minimal machinery the rest of the reproduction is
built on: a deterministic event loop (:class:`~repro.sim.engine.Engine`),
generator-based processes, waitable events and timeouts, and synchronisation
primitives (semaphores, FIFO resources, signals).

The style is deliberately SimPy-like: a *process* is a Python generator that
``yield``\\ s :class:`~repro.sim.events.Event` objects; the engine resumes the
generator when the yielded event triggers.  All simulated time is in
**seconds** (floats); determinism is guaranteed by a monotonically increasing
tie-break sequence number in the event heap.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, EventFailed, Interrupt, Process, Timeout
from repro.sim.invariants import Sanitizer, SanitizerError
from repro.sim.request import IORequest, RegistrySnapshot, RequestRegistry
from repro.sim.resources import Resource, Semaphore, Signal
from repro.sim.simcheck import run_simcheck, stable_digest
from repro.sim.stats import Histogram, HistogramSnapshot, StatSet, TimeWeighted
from repro.sim.trace import Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "EventFailed",
    "Histogram",
    "HistogramSnapshot",
    "IORequest",
    "Interrupt",
    "Process",
    "RegistrySnapshot",
    "RequestRegistry",
    "Resource",
    "Sanitizer",
    "SanitizerError",
    "Semaphore",
    "Signal",
    "SimulationError",
    "Span",
    "StatSet",
    "TimeWeighted",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "run_simcheck",
    "stable_digest",
]
