"""Discrete-event simulation kernel.

This package provides the minimal machinery the rest of the reproduction is
built on: a deterministic event loop (:class:`~repro.sim.engine.Engine`),
generator-based processes, waitable events and timeouts, and synchronisation
primitives (semaphores, FIFO resources, signals).

The style is deliberately SimPy-like: a *process* is a Python generator that
``yield``\\ s :class:`~repro.sim.events.Event` objects; the engine resumes the
generator when the yielded event triggers.  All simulated time is in
**seconds** (floats); determinism is guaranteed by a monotonically increasing
tie-break sequence number in the event heap.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, EventFailed, Interrupt, Process, Timeout
from repro.sim.request import IORequest, RequestRegistry
from repro.sim.resources import Resource, Semaphore, Signal
from repro.sim.stats import Histogram, StatSet, TimeWeighted
from repro.sim.trace import Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "EventFailed",
    "Histogram",
    "IORequest",
    "Interrupt",
    "Process",
    "RequestRegistry",
    "Resource",
    "Semaphore",
    "Signal",
    "SimulationError",
    "Span",
    "StatSet",
    "TimeWeighted",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
