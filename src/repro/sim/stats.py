"""Lightweight statistics for simulation components.

Every subsystem (disk, VM, UFS) exposes a :class:`StatSet` of named counters
and accumulators; benchmarks read them to build the paper's tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class StatSet:
    """A named bag of counters (ints) and accumulators (floats).

    Counters and accumulators share a namespace; reading an absent name
    yields zero, so callers never need to pre-register statistics.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counts: dict[str, float] = defaultdict(float)

    def incr(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key``."""
        self._counts[key] += amount

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def as_dict(self) -> dict[str, float]:
        """A plain dict snapshot (sorted by key)."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def reset(self) -> None:
        """Zero every statistic."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in self.as_dict().items())
        return f"<StatSet {self.name}: {inner}>"


class TimeWeighted:
    """Tracks the time-weighted average of a piecewise-constant quantity.

    Used for e.g. average disk queue depth and average free-memory level.
    """

    def __init__(self, engine: "Engine", initial: float = 0.0):
        self.engine = engine
        self._value = initial
        self._last_change = engine.now
        self._area = 0.0
        self._start = engine.now
        self.minimum = initial
        self.maximum = initial

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Record a change of the tracked quantity at the current time."""
        now = self.engine.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def add(self, delta: float) -> None:
        """Adjust the tracked quantity by ``delta``."""
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted mean from creation until now."""
        now = self.engine.now
        total = now - self._start
        if total <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / total
