"""Lightweight statistics for simulation components.

Every subsystem (disk, VM, UFS) exposes a :class:`StatSet` of named counters
and accumulators; benchmarks read them to build the paper's tables.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class StatSet:
    """A named bag of counters (ints) and accumulators (floats).

    Counters and accumulators share a namespace; reading an absent name
    yields zero, so callers never need to pre-register statistics.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counts: dict[str, float] = defaultdict(float)

    def incr(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key``."""
        self._counts[key] += amount

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def as_dict(self) -> dict[str, float]:
        """A plain dict snapshot (sorted by key)."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def reset(self) -> None:
        """Zero every statistic."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in self.as_dict().items())
        return f"<StatSet {self.name}: {inner}>"


class Histogram:
    """A log2-bucketed histogram for latencies and sizes.

    Values land in power-of-two buckets ((2^(i-1), 2^i]); percentiles are
    read back as the upper edge of the bucket holding the requested rank,
    clamped to the observed maximum.  Memory is O(number of distinct
    magnitudes), so a histogram can sit on the driver's hot path.
    """

    def __init__(self, name: str = "hist"):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._zeros = 0
        self._buckets: dict[int, int] = defaultdict(int)

    def observe(self, value: float) -> None:
        """Fold one sample in (negative values are clamped to zero)."""
        value = max(0.0, value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if value == 0.0:
            self._zeros += 1
        else:
            self._buckets[math.ceil(math.log2(value))] += 1

    @property
    def mean(self) -> float:
        # `> 0`, not truthiness: a mismatched snapshot delta can leave a
        # negative count, which must read as empty, not as a negative mean.
        return self.total / self.count if self.count > 0 else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]).

        An empty histogram — zero samples, or a degenerate snapshot delta
        with nothing in it — reports 0.0 for every percentile rather than
        indexing into empty buckets.
        """
        if self.count <= 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        if rank <= self._zeros:
            return 0.0
        seen = self._zeros
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                upper = 2.0 ** idx
                return min(upper, self.maximum if self.maximum is not None else upper)
        return self.maximum if self.maximum is not None else 0.0

    def summary(self) -> dict[str, float]:
        """count / mean / min / max / p50 / p95 / p99 as a plain dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- snapshot / delta ----------------------------------------------------
    def snapshot(self) -> "HistogramSnapshot":
        """Freeze the current state, for later :meth:`since` deltas.

        Benchmarks take a snapshot at a phase boundary and report
        ``hist.since(snap)`` so one phase's table is not contaminated by
        samples from all the phases before it.
        """
        return HistogramSnapshot(
            count=self.count, total=self.total, zeros=self._zeros,
            buckets=dict(self._buckets),
            minimum=self.minimum, maximum=self.maximum,
        )

    def since(self, snap: "HistogramSnapshot") -> "Histogram":
        """A new histogram holding only the samples observed after ``snap``.

        Counts, totals, and buckets subtract exactly.  min/max cannot be
        recovered from bucket deltas, so they are approximated by the delta
        buckets' edges (clamped to the lifetime maximum); percentiles keep
        their usual bucket-upper-edge resolution.
        """
        delta = Histogram(self.name)
        delta.count = self.count - snap.count
        delta.total = self.total - snap.total
        delta._zeros = self._zeros - snap.zeros
        for idx, n in self._buckets.items():
            d = n - snap.buckets.get(idx, 0)
            if d:
                delta._buckets[idx] = d
        if delta.count <= 0:
            # A snapshot from a different (or reset) histogram subtracts to
            # nonsense; normalize to a genuinely empty delta so summary()
            # and percentile() report clean zeros.
            delta.count = 0
            delta.total = 0.0
            delta._zeros = 0
            delta._buckets.clear()
        if delta.count > 0:
            if delta._zeros > 0:
                delta.minimum = 0.0
            elif delta._buckets:
                delta.minimum = 2.0 ** (min(delta._buckets) - 1)
            if delta._buckets:
                upper = 2.0 ** max(delta._buckets)
                delta.maximum = (min(upper, self.maximum)
                                 if self.maximum is not None else upper)
            else:
                delta.maximum = 0.0
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name}: n={self.count} mean={self.mean:g} "
                f"max={self.maximum}>")


@dataclass(frozen=True)
class HistogramSnapshot:
    """A frozen :class:`Histogram` state (see :meth:`Histogram.snapshot`)."""

    count: int
    total: float
    zeros: int
    buckets: dict[int, int]
    minimum: "float | None"
    maximum: "float | None"


class TimeWeighted:
    """Tracks the time-weighted average of a piecewise-constant quantity.

    Used for e.g. average disk queue depth and average free-memory level.
    """

    def __init__(self, engine: "Engine", initial: float = 0.0):
        self.engine = engine
        self._value = initial
        self._last_change = engine.now
        self._area = 0.0
        self._start = engine.now
        self.minimum = initial
        self.maximum = initial

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Record a change of the tracked quantity at the current time."""
        now = self.engine.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def add(self, delta: float) -> None:
        """Adjust the tracked quantity by ``delta``."""
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted mean from creation (or :meth:`reset`) until now."""
        now = self.engine.now
        total = now - self._start
        if total <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / total

    def area(self) -> float:
        """Cumulative value x time integral up to now.

        Two reads of this bracket a window: ``(a2 - a1) / dt`` is the
        exact time-weighted mean over the window — how the telemetry
        recorder turns one gauge into a per-sample-window average series
        without resetting (and so perturbing) the gauge itself.
        """
        return self._area + self._value * (self.engine.now - self._last_change)

    def reset(self) -> None:
        """Restart the averaging window at the current time and value."""
        now = self.engine.now
        self._area = 0.0
        self._start = now
        self._last_change = now
        self.minimum = self._value
        self.maximum = self._value
