"""Synchronisation primitives for simulation processes.

These mirror the kernel primitives the paper's code depends on:

* :class:`Semaphore` — counting semaphore with FIFO wakeup.  The per-file
  write limit ("essentially a counting semaphore in the inode") is built on
  this.
* :class:`Resource` — a capacity-limited server (e.g. the CPU) with a
  ``use(duration)`` helper for the common acquire/hold/release pattern.
* :class:`Signal` — a broadcast condition (``sleep``/``wakeup`` in kernel
  terms); every waiter present at :meth:`Signal.fire` is released.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Semaphore:
    """A counting semaphore with strictly FIFO grant order.

    Unlike a classic semaphore, ``acquire``/``release`` take an ``n`` so the
    write-throttle can count bytes rather than operations.  The count may be
    driven negative only through :meth:`take`, which models the paper's
    "decrement then sleep if below zero" idiom.
    """

    def __init__(self, engine: "Engine", value: int, name: str = "sem"):
        if value < 0:
            raise ValueError("initial semaphore value must be >= 0")
        self.engine = engine
        self.name = name
        self._value = value
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def value(self) -> int:
        """Current count (may be negative only transiently via take())."""
        return self._value

    @property
    def waiting(self) -> int:
        """Number of processes blocked on this semaphore."""
        return len(self._waiters)

    def acquire(self, n: int = 1) -> Event:
        """Return an event that triggers once ``n`` units are granted."""
        if n <= 0:
            raise ValueError("acquire count must be positive")
        ev = Event(self.engine, name=f"{self.name}.acquire({n})")
        self._waiters.append((ev, n))
        self._grant()
        return ev

    def try_acquire(self, n: int = 1) -> bool:
        """Non-blocking acquire; True on success."""
        if not self._waiters and self._value >= n:
            self._value -= n
            return True
        return False

    def release(self, n: int = 1) -> None:
        """Return ``n`` units and wake FIFO waiters whose requests now fit."""
        if n <= 0:
            raise ValueError("release count must be positive")
        self._value += n
        self._grant()

    def take(self, n: int) -> None:
        """Unconditionally subtract ``n`` (the count may go negative).

        Models the paper's write-limit accounting where the writer charges
        bytes first and sleeps only if the count went negative.
        """
        self._value -= n

    def _grant(self) -> None:
        while self._waiters and self._value >= self._waiters[0][1]:
            ev, n = self._waiters.popleft()
            self._value -= n
            ev.succeed()


class Resource:
    """A server with ``capacity`` concurrent slots and FIFO queueing.

    ``yield from resource.use(duration)`` acquires a slot, holds it for
    ``duration`` simulated seconds, and releases it.  Total busy time is
    accumulated in :attr:`busy_time` for utilisation reporting.
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "resource"):
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._sem = Semaphore(engine, capacity, name=f"{name}.slots")
        self.busy_time = 0.0
        self.service_count = 0

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self.capacity - self._sem.value

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return self._sem.waiting

    def acquire(self) -> Event:
        """Acquire one slot (event triggers when granted)."""
        return self._sem.acquire(1)

    def release(self) -> None:
        """Release one slot."""
        self._sem.release(1)

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire, hold for ``duration``, release.  Use with ``yield from``."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        yield self._sem.acquire(1)
        try:
            if duration > 0:
                yield self.engine.timeout(duration)
            self.busy_time += duration
            self.service_count += 1
        finally:
            self._sem.release(1)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time busy, relative to ``elapsed`` (default: now)."""
        total = self.engine.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / (total * self.capacity))


class Signal:
    """A broadcast condition variable (kernel ``sleep``/``wakeup``).

    Each :meth:`wait` returns a fresh event; :meth:`fire` triggers every
    event registered so far and resets the waiter list.
    """

    def __init__(self, engine: "Engine", name: str = "signal"):
        self.engine = engine
        self.name = name
        self._waiters: list[Event] = []
        self.fire_count = 0

    @property
    def waiting(self) -> int:
        """Number of events waiting for the next fire()."""
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event triggered by the next :meth:`fire`."""
        ev = Event(self.engine, name=f"{self.name}.wait")
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        self.fire_count += 1
        return len(waiters)
