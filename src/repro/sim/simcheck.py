"""The determinism differ: run a workload twice, demand identical traces.

The simulation's whole claim to being an *instrument* rests on two legs:

* every invariant the sanitizer checks actually holds while a real
  workload runs (not just in unit tests), and
* the same seed produces the same history, byte for byte — otherwise no
  campaign finding, no benchmark regression, no sanitizer report is
  diagnosable.

``python -m repro simcheck`` stands on both.  It runs IObench twice with
the same seed — sanitizer on, one phase traced — and compares a *stable
digest* of the trace/span JSONL plus the phase rates and request counts.

The JSONL is not directly comparable across runs: span, request, and buf
ids come from process-global counters that keep climbing from run to run.
:func:`stable_digest` renumbers each id space by first appearance — two
runs with the same shape and timing then digest identically, while any
divergence in ordering, timing, or structure changes the digest.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Any, Callable

from repro.units import MB

#: JSONL keys holding ids from process-global counters, and the id space
#: each belongs to ("id"/"parent" are both span ids).
_ID_KEYS = (("id", "span"), ("parent", "span"),
            ("request", "request"), ("buf", "buf"))


def stable_digest(jsonl: str) -> str:
    """SHA-256 of ``jsonl`` with volatile ids renumbered by appearance.

    Each id space (span, request, buf) is remapped to 1, 2, 3… in first-
    appearance order, then every line is re-serialized with sorted keys.
    Two runs of the same deterministic workload digest identically even
    though their raw ids differ; any structural or timing divergence does
    not.
    """
    maps: dict[str, dict[Any, int]] = {"span": {}, "request": {}, "buf": {}}

    def renumber(space: str, value: Any) -> Any:
        if value is None:
            return None
        table = maps[space]
        if value not in table:
            table[value] = len(table) + 1
        return table[value]

    out = []
    for line in jsonl.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        for key, space in _ID_KEYS:
            if key in obj:
                obj[key] = renumber(space, obj[key])
        out.append(json.dumps(obj, sort_keys=True))
    return hashlib.sha256("\n".join(out).encode()).hexdigest()


def run_simcheck(config_name: str = "C", file_mb: int = 4,
                 random_ops: int = 256, trace_phase: str = "FSW",
                 seed: int = 1991,
                 json_path: "str | None" = None,
                 out: Callable[[str], None] = print) -> int:
    """Run the workload twice; return 0 when both legs hold.

    Leg one: the sanitizer's six checks pass at every quiesce point of
    both runs, plus a deep (fsck-backed) sweep after each.  Leg two: the
    two runs' stable trace digests, phase rates, and request counts are
    identical.  ``json_path`` writes the comparison (both runs' digests,
    rates, counts, and the verdict) as one JSON document — the CI
    artifact form.
    """
    from repro.bench.iobench import IObench
    from repro.kernel.config import SystemConfig

    def one_run() -> dict[str, Any]:
        bench = IObench(SystemConfig.by_name(config_name),
                        file_size=file_mb * MB, random_ops=random_ops,
                        seed=seed, trace_phase=trace_phase, sanitize=True)
        result = bench.run()
        system = bench.system
        assert system is not None
        # Final quiesce: flush everything, then the deep sweep (fsck's
        # walkers over the on-disk bytes, read-only).
        system.sync()
        system.sanitizer.checkpoint("simcheck_end", idle=True, deep=True)
        return {
            "digest": stable_digest(system.tracer.to_jsonl()),
            "spans": len(system.tracer.spans),
            "rates": dict(result.rates),
            "counts": dict(system.requests.stats.as_dict()),
            "checkpoints": system.sanitizer.checkpoints,
            "checks": system.sanitizer.checks_run,
        }

    first = one_run()
    second = one_run()

    out(f"simcheck: config {config_name}, {file_mb} MB file, "
        f"{random_ops} random ops, traced phase {trace_phase}")
    out(f"  sanitizer: {first['checks']} checks at "
        f"{first['checkpoints']} checkpoints per run — all passed")
    out(f"  trace: {first['spans']} spans, digest {first['digest'][:16]}…")

    failures = []
    for key in ("digest", "spans", "rates", "counts"):
        if first[key] != second[key]:
            failures.append(key)
            out(f"  MISMATCH {key}: run1={first[key]!r} run2={second[key]!r}")
    if json_path:
        document = {
            "config": config_name,
            "file_mb": file_mb,
            "random_ops": random_ops,
            "trace_phase": trace_phase,
            "seed": seed,
            "runs": [first, second],
            "mismatched_keys": failures,
            "ok": not failures,
        }
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if json_path == "-":
            # The CLI's --json-to-stdout mode: the document owns stdout
            # (human lines already routed to stderr by the caller's out).
            sys.stdout.write(text)
        else:
            with open(json_path, "w") as fh:
                fh.write(text)
            out(f"wrote {json_path}")
    if failures:
        out(f"simcheck FAILED: runs diverged on {', '.join(failures)}")
        return 1
    out("simcheck OK: identical digests, rates, and request counts")
    return 0


__all__ = ["stable_digest", "run_simcheck"]
