"""Cross-layer invariant checks ("simsan").

The paper's performance tricks are controlled lies: write clustering lies
about delayed pages, free-behind drops pages the pager thinks it owns, and
the write-limit semaphore promises that every queued byte is eventually
credited back.  Each lie rests on an accounting invariant that spans two or
more layers — and no single unit test exercises those seams.  This module
is the registry of such invariants, checked at *quiesce points*:

* after every :meth:`System.run`/``run_all`` (the engine is idle: no bufs
  outstanding, throttles drained, no requests open);
* inside ``fsync`` (not idle — other processes may be mid-I/O — so only the
  always-true subset runs);
* at campaign ends and benchmark phase boundaries;
* optionally every N engine steps (:meth:`Sanitizer.attach_every`).

The six shipped checks:

``engine_liveness``
    ``Engine._live`` equals the number of non-cancelled, non-daemon heap
    entries — the run-to-idle counter can neither wedge the loop (too high)
    nor stop it with work pending (too low).
``buf_balance``
    Every buf handed to ``DiskDriver.strategy`` completes (or errors)
    exactly once, including driver-coalesce and split-retry paths; at idle
    the driver's outstanding table is empty.
``throttle_conservation``
    Per-file write throttles are never over-credited, the bytes charged
    never fall below the bytes still sitting in the driver for that file,
    and at idle every throttle is fully drained.
``request_spans``
    No request finishes with a child span still open; at idle the registry
    has no open requests and the in-flight gauge reads zero.
``page_coherency``
    Every clean, valid, unlocked page of a mounted UFS file is
    byte-identical to its backing store, resolved through the same block
    pointers bmap uses.
``allocator``
    In-memory cylinder-group bitmaps agree with the group counters and the
    superblock totals, and every block an active inode points at is marked
    allocated; ``deep=True`` additionally runs fsck's walkers read-only
    over the on-disk bytes.

A violation raises :class:`SanitizerError`, which carries the offending
request's rendered span tree when one is attributable.

Adding a check: write a ``Sanitizer`` method raising :meth:`Sanitizer.fail`
on violation and append it to :data:`Sanitizer.CHECKS` with ``idle_only``
set if it only holds when the engine has drained.
"""

from __future__ import annotations

import os
import struct
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.throttle import WriteThrottle
    from repro.kernel.system import System

#: Environment switch: ``REPRO_SANITIZE=1`` turns the sanitizer on for
#: every :class:`~repro.kernel.system.System` built afterwards (the test
#: suite sets it in ``tests/conftest.py``; production runs default off).
ENV_SWITCH = "REPRO_SANITIZE"


def default_enabled() -> bool:
    """The process-wide default for new sanitizers (see :data:`ENV_SWITCH`)."""
    return os.environ.get(ENV_SWITCH, "0").lower() in ("1", "true", "yes", "on")


class SanitizerError(SimulationError):
    """An invariant violation: a bug in the simulation, never a modelled
    fault.  Carries the failed check's name and, when one is attributable,
    the offending request's span tree."""

    def __init__(self, check: str, message: str,
                 span_tree: "str | None" = None):
        self.check = check
        self.span_tree = span_tree
        text = f"[simsan:{check}] {message}"
        if span_tree:
            text += f"\nrequest span tree:\n{span_tree}"
        super().__init__(text)


class Sanitizer:
    """The per-machine registry of cross-layer invariant checks."""

    def __init__(self, system: "System", enabled: "bool | None" = None):
        self.system = system
        self.enabled = default_enabled() if enabled is None else enabled
        #: Checkpoints taken and checks run, for tests and reports.
        self.checkpoints = 0
        self.checks_run = 0
        #: Extra throttle providers beyond the UFS inode cache (the NFS
        #: campaign registers its client vnodes here); each yields
        #: ``(owner label, WriteThrottle)`` pairs.
        self.throttle_sources: list[
            Callable[[], Iterable[tuple[str, "WriteThrottle"]]]
        ] = []

    # -- running ----------------------------------------------------------
    def checkpoint(self, point: str, idle: bool, deep: bool = False) -> None:
        """Run every applicable check; raise on the first violation.

        ``idle`` asserts the engine has drained (post-``run`` quiesce);
        checks marked ``idle_only`` are skipped otherwise.  ``deep`` adds
        the expensive on-disk pass (fsck's walkers, read-only).
        """
        if not self.enabled:
            return
        self.checkpoints += 1
        for name, idle_only, fn in self.CHECKS:
            if idle_only and not idle:
                continue
            self.checks_run += 1
            fn(self, point, idle, deep)

    def attach_every(self, steps: int) -> None:
        """Also run the non-idle-safe checks every ``steps`` engine steps."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        engine = self.system.engine

        def hook() -> None:
            self.checkpoint("step", idle=False)

        engine.step_hook = hook
        engine.step_hook_every = steps

    def fail(self, check: str, message: str, request: Any = None) -> None:
        """Raise a :class:`SanitizerError`, attaching ``request``'s span
        tree when tracing captured one."""
        raise SanitizerError(check, message, span_tree=render_request(request))

    # -- check 1: engine liveness -----------------------------------------
    def _check_engine_liveness(self, point: str, idle: bool,
                               deep: bool) -> None:
        engine = self.system.engine
        pending = engine.live_pending()
        if engine._live != pending:
            self.fail(
                "engine_liveness",
                f"at {point}: _live={engine._live} but the heap holds "
                f"{pending} non-cancelled non-daemon entries "
                "(cancel/step accounting drifted)",
            )
        if idle and engine._live != 0:
            self.fail(
                "engine_liveness",
                f"at {point}: engine reported idle with _live={engine._live}",
            )

    # -- check 2: buf refcount / leak -------------------------------------
    def _drivers(self) -> "list[tuple[str, Any]]":
        """The kernel-facing device plus, for multi-member volumes, every
        member driver — buf balance must hold at each layer."""
        drivers: "list[tuple[str, Any]]" = [("driver", self.system.driver)]
        volume = getattr(self.system, "volume", None)
        if volume is not None and len(volume.members) > 1:
            drivers.extend((m.name, m.driver) for m in volume.members)
        return drivers

    def _check_buf_balance(self, point: str, idle: bool, deep: bool) -> None:
        for label, driver in self._drivers():
            if not driver.idle:
                self.fail(
                    "buf_balance",
                    f"at {point}: quiesced with {label} busy "
                    f"(queue={len(driver.queue)}, busy={driver._busy})",
                )
            if driver.outstanding:
                buf = next(iter(driver.outstanding.values()))
                self.fail(
                    "buf_balance",
                    f"at {point}: {len(driver.outstanding)} buf(s) issued "
                    f"to {label} never completed; first leak: {buf!r} "
                    f"(owner={buf.owner!r})",
                    request=getattr(buf, "request", None),
                )
            issued = driver.stats["tracked_issued"]
            done = driver.stats["tracked_completed"]
            if issued != done:
                self.fail(
                    "buf_balance",
                    f"at {point}: {label}: {issued:g} bufs issued but "
                    f"{done:g} completions recorded (a buf completed twice "
                    "or vanished)",
                )

    # -- check 3: write-throttle conservation ------------------------------
    def _throttles(self) -> Iterable[tuple[str, "WriteThrottle"]]:
        mount = self.system.mount
        if mount is not None:
            for ino, ip in mount._icache.items():
                yield f"inode {ino}", ip.throttle
        for source in self.throttle_sources:
            yield from source()

    def _check_throttles(self, point: str, idle: bool, deep: bool) -> None:
        # Bytes still in the driver per throttle, recovered from the write
        # iodone hooks riding on the outstanding bufs.
        queued: dict[int, int] = {}
        for buf in self.system.driver.outstanding.values():
            for hook in buf.iodone:
                throttle = getattr(hook, "throttle", None)
                charged = getattr(hook, "charged", None)
                if throttle is not None and charged is not None:
                    queued[id(throttle)] = queued.get(id(throttle), 0) + charged
        for owner, throttle in self._throttles():
            if not throttle.enabled:
                continue  # limit 0: take/credit are no-ops, nothing to hold
            if throttle.value > throttle.limit:
                self.fail(
                    "throttle_conservation",
                    f"at {point}: {owner} write throttle over-credited "
                    f"(value={throttle.value} > limit={throttle.limit})",
                )
            in_driver = queued.get(id(throttle), 0)
            if throttle.in_flight < in_driver:
                self.fail(
                    "throttle_conservation",
                    f"at {point}: {owner} has {in_driver} bytes queued in "
                    f"the driver but only {throttle.in_flight} charged "
                    "(a completion credited bytes still in flight)",
                )
            if idle and throttle.in_flight != 0:
                self.fail(
                    "throttle_conservation",
                    f"at {point}: {owner} still has "
                    f"{throttle.in_flight} bytes charged at idle "
                    "(a completion path never credited them back)",
                )

    # -- check 4: request/span balance -------------------------------------
    def _check_request_spans(self, point: str, idle: bool,
                             deep: bool) -> None:
        registry = self.system.requests
        if registry.span_leaks:
            rid, kind, names = registry.span_leaks[0]
            self.fail(
                "request_spans",
                f"at {point}: request #{rid} ({kind}) finished with open "
                f"span(s) {list(names)} — a begin() without a finally end() "
                f"({len(registry.span_leaks)} leak(s) total)",
            )
        if idle and registry.open:
            req = next(iter(registry.open.values()))
            self.fail(
                "request_spans",
                f"at {point}: {len(registry.open)} request(s) still open at "
                f"idle; first: {req!r}",
                request=req,
            )
        if idle and registry.inflight.value != 0:
            self.fail(
                "request_spans",
                f"at {point}: inflight gauge reads "
                f"{registry.inflight.value:g} at idle (start/complete "
                "accounting drifted)",
            )

    # -- check 5: page-cache / on-disk coherency ---------------------------
    def _resolve_lbn(self, mount: Any, ip: Any, lbn: int) -> int:
        """Block pointer for ``lbn`` without simulated I/O: in-memory inode
        pointers, then the metacache's cached copy, then the raw store —
        the same bytes bmap would read, in the same precedence."""
        from repro.ufs.bmap import HOLE, nindir
        from repro.ufs.ondisk import NDADDR

        if lbn < NDADDR:
            return ip.direct[lbn]
        n = nindir(mount.sb.bsize)
        rel = lbn - NDADDR
        if rel < n:
            if ip.indirect == HOLE:
                return HOLE
            return self._read_ptr_raw(mount, ip.indirect, rel)
        rel -= n
        if ip.dindirect == HOLE:
            return HOLE
        outer = self._read_ptr_raw(mount, ip.dindirect, rel // n)
        if outer == HOLE:
            return HOLE
        return self._read_ptr_raw(mount, outer, rel % n)

    @staticmethod
    def _read_ptr_raw(mount: Any, addr_block: int, index: int) -> int:
        meta = mount.metacache._bufs.get(addr_block)
        if meta is not None:
            return struct.unpack_from("<I", meta.data, index * 4)[0]
        # read_through: the drive-visible bytes — on a disk with a volatile
        # write cache the authoritative copy may still sit in its buffer.
        disk = mount.driver.disk
        frag_sectors = mount.sb.fsize // 512
        data = disk.read_through(addr_block * frag_sectors,
                                 mount.sb.bsize // 512)
        return struct.unpack_from("<I", data, index * 4)[0]

    def _check_page_coherency(self, point: str, idle: bool,
                              deep: bool) -> None:
        from repro.ufs.bmap import HOLE

        mount = self.system.mount
        if mount is None:
            return
        pc = self.system.pagecache
        disk = mount.driver.disk
        sb = mount.sb
        for vn in list(mount._vnodes.values()):
            ip = vn.inode
            if not ip.is_reg:
                continue
            for page in pc.vnode_pages(vn):
                if page.dirty or page.locked or not page.valid:
                    continue  # only clean, settled pages promise coherency
                if page.offset >= ip.size:
                    continue
                lbn = page.offset // sb.bsize
                nbytes = min(ip.blksize(lbn), ip.size - page.offset)
                addr = self._resolve_lbn(mount, ip, lbn)
                if addr == HOLE:
                    if any(page.data[:nbytes]):
                        self.fail(
                            "page_coherency",
                            f"at {point}: inode {ip.ino} offset "
                            f"{page.offset}: clean page over a hole holds "
                            "non-zero bytes",
                        )
                    continue
                nsectors = -(-nbytes // 512)
                ondisk = disk.read_through(sb.fsb_to_sector(addr), nsectors)
                if bytes(page.data[:nbytes]) != ondisk[:nbytes]:
                    self.fail(
                        "page_coherency",
                        f"at {point}: inode {ip.ino} offset {page.offset}: "
                        f"clean page differs from disk at fragment {addr} "
                        "(a write was lost or mis-addressed)",
                    )

    # -- check 6: allocator consistency ------------------------------------
    def _check_allocator(self, point: str, idle: bool, deep: bool) -> None:
        from repro.ufs.bmap import HOLE
        from repro.ufs.ondisk import NDADDR

        mount = self.system.mount
        if mount is None:
            return
        sb = mount.sb
        total_nbfree = total_nffree = 0
        for cg in mount.cgs:
            base = sb.cgbase(cg.cgx)
            data_start = sb.cg_data_frag(cg.cgx) - base
            end = sb.cg_end_frag(cg.cgx) - base
            nbfree = nffree = 0
            for block_rel in range(data_start, end - sb.frag + 1, sb.frag):
                free_here = sum(
                    cg.frag_is_free(block_rel + i) for i in range(sb.frag)
                )
                if free_here == sb.frag:
                    nbfree += 1
                else:
                    nffree += free_here
            if nbfree != cg.nbfree or nffree != cg.nffree:
                self.fail(
                    "allocator",
                    f"at {point}: group {cg.cgx} counters say "
                    f"nbfree={cg.nbfree} nffree={cg.nffree} but its bitmap "
                    f"shows {nbfree}/{nffree}",
                )
            total_nbfree += cg.nbfree
            total_nffree += cg.nffree
        if (total_nbfree != sb.cs_nbfree
                or total_nffree != sb.cs_nffree):
            self.fail(
                "allocator",
                f"at {point}: superblock totals nbfree={sb.cs_nbfree} "
                f"nffree={sb.cs_nffree} != group sums "
                f"{total_nbfree}/{total_nffree}",
            )
        # Every block an active inode points at must be allocated in its
        # group's bitmap (a free-but-claimed fragment is a lost-data bug).
        for ino, ip in mount._icache.items():
            if ip.nlink <= 0:
                continue
            if not (ip.is_reg or ip.is_dir):
                continue  # fast symlinks reuse direct[] as target bytes
            claims = [a for a in ip.direct[:NDADDR] if a != HOLE]
            for a in (ip.indirect, ip.dindirect):
                if a != HOLE:
                    claims.append(a)
            for addr in claims:
                cgx = addr // sb.fpg
                rel = addr - sb.cgbase(cgx)
                if mount.cgs[cgx].frag_is_free(rel):
                    self.fail(
                        "allocator",
                        f"at {point}: inode {ino} claims fragment {addr} "
                        f"but group {cgx}'s bitmap marks it free",
                    )
        if deep:
            self._check_allocator_deep(point)

    def _check_allocator_deep(self, point: str) -> None:
        """The on-disk form: fsck's walkers, read-only, must come back
        clean.  Only valid after a full sync (the caller's contract)."""
        from repro.ufs.fsck import fsck

        report = fsck(self.system.store)
        if not report.clean:
            self.fail(
                "allocator",
                f"at {point}: on-disk walk found "
                f"{len(report.findings)} problem(s); first: "
                f"{report.findings[0]}",
            )

    # -- check 7: volatile write-cache accounting ---------------------------
    def _check_write_cache(self, point: str, idle: bool, deep: bool) -> None:
        volume = getattr(self.system, "volume", None)
        if volume is not None:
            caches = volume.write_caches()
        else:
            cache = getattr(self.system, "write_cache", None)
            caches = [("cache", cache)] if cache is not None else []
        for label, cache in caches:
            actual = sum(e.nbytes for e in cache.entries)
            if cache.bytes != actual:
                self.fail(
                    "write_cache",
                    f"at {point}: {label} cache byte counter {cache.bytes} "
                    f"!= {actual} bytes actually held (accounting leak)",
                )
            if idle and cache.bytes > cache.limit_bytes:
                # Mid-service the cache may transiently exceed its limit
                # while the triggering write destages room; settled, it
                # must fit.
                self.fail(
                    "write_cache",
                    f"at {point}: {label} cache holds {cache.bytes} bytes "
                    f"over the {cache.limit_bytes}-byte limit at idle",
                )
            for entry in cache.entries:
                if len(entry.data) != entry.nsectors * cache.sector_size:
                    self.fail(
                        "write_cache",
                        f"at {point}: {label} entry #{entry.seq} claims "
                        f"{entry.nsectors} sectors but holds "
                        f"{len(entry.data)} bytes",
                    )

    # -- check 8: integrity-table audit (deep only) -------------------------
    def _check_integrity(self, point: str, idle: bool, deep: bool) -> None:
        """Every stamped fragment's media bytes must match its record.

        Deep-only: it reads the whole stamped set, and is only sound at a
        full quiesce (dirty cache pages may legitimately be newer than the
        media, but their *fragments* were stamped at the last media write,
        so a synced machine has no excuse).  Skipped per fragment: BAD
        marks (scrub already gave up, loudly) and write-cache overlays
        (those bytes are stamped at destage).
        """
        if not deep:
            return
        region = getattr(self.system.disk, "integrity", None)
        if region is None:
            return
        fs = region.frag_sectors
        cache = getattr(self.system, "write_cache", None)
        for frag in region.stamped_frags():
            if region.record(frag).bad:
                continue
            data = self.system.disk.read_through(frag * fs, fs)
            bad = region.verify_range(frag * fs, data, cache=cache)
            if bad:
                frag_, reason = bad[0]
                self.fail(
                    "integrity",
                    f"at {point}: fragment {frag_} fails its integrity "
                    f"record ({reason}) with no fault outstanding",
                )

    #: The check registry: (name, idle_only, method).
    CHECKS: "list[tuple[str, bool, Callable[..., None]]]" = [
        ("engine_liveness", False, _check_engine_liveness),
        ("buf_balance", True, _check_buf_balance),
        ("throttle_conservation", False, _check_throttles),
        ("request_spans", False, _check_request_spans),
        ("page_coherency", False, _check_page_coherency),
        ("allocator", False, _check_allocator),
        ("write_cache", False, _check_write_cache),
        ("integrity", False, _check_integrity),
    ]


def render_request(request: Any) -> "str | None":
    """The span tree of ``request`` as text, when tracing captured one."""
    if request is None:
        return None
    tracer = getattr(request, "tracer", None)
    root = getattr(request, "root", None)
    if tracer is None or root is None or not tracer.spans:
        return None
    try:
        return tracer.render_spans(root)
    except Exception:  # pragma: no cover - rendering must never mask the bug
        return None
