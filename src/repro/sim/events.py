"""Waitable events and generator-based processes.

An :class:`Event` is a one-shot occurrence that callbacks (or processes) can
wait on.  A :class:`Process` wraps a generator; every value the generator
yields must be an :class:`Event`, and the process resumes when that event
triggers.  A process is itself an event that triggers when the generator
returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Engine

#: Sentinel distinguishing "not yet triggered" from a ``None`` value.
_PENDING = object()


class EventFailed(Exception):
    """Raised into a process when a yielded event fails."""


class Interrupt(Exception):
    """Raised into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers them.
    Callbacks registered before the trigger run (in registration order) at
    the simulated time of the trigger; callbacks registered afterwards run
    immediately (still via the event heap, preserving determinism).
    """

    __slots__ = ("engine", "_callbacks", "_value", "_failed", "_exc", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._failed = False
        self._exc: BaseException | None = None

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING or self._failed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and not self._failed

    @property
    def value(self) -> Any:
        """The success value (raises if pending or failed)."""
        if not self.triggered:
            raise RuntimeError(f"event {self.name!r} has not triggered")
        if self._failed:
            assert self._exc is not None
            raise self._exc
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or None."""
        return self._exc

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc``."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._failed = True
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            self.engine.schedule(0.0, cb, self)

    # -- waiting ---------------------------------------------------------
    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event triggers (now, if already has)."""
        if self._callbacks is None:
            self.engine.schedule(0.0, cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "failed" if self._failed else f"ok({self._value!r})"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    ``daemon=True`` marks the underlying heap entry as housekeeping that
    must not keep :meth:`Engine.run` alive (see Engine.schedule).
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 daemon: bool = False):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(engine, name=f"timeout({delay:g})")
        self.delay = delay
        self._entry = engine.schedule(delay, self._expire, value, daemon=daemon)

    def cancel(self) -> None:
        """Abandon the timeout: it will never trigger (no-op if it has).

        Used by races like "reply versus retransmission timer" so the loser
        does not keep the engine busy or stretch simulated time.
        """
        if not self.triggered:
            self.engine.cancel(self._entry)

    def _expire(self, value: Any) -> None:
        self.succeed(value)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process triggers (as an event) when the generator returns; the
    generator's return value becomes the event value.  An uncaught exception
    in the generator fails the process event, and — if nothing is waiting on
    the process — is re-raised by :meth:`Engine.run` so bugs do not pass
    silently.
    """

    __slots__ = ("_gen", "_waiting_on", "_started")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        self._started = False
        engine.schedule(0.0, self._resume, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its trigger will
        be ignored by this process).
        """
        if self.triggered:
            return
        self._waiting_on = None
        self.engine.schedule(0.0, self._throw, Interrupt(cause))

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event | None) -> None:
        if self.triggered:
            return
        if event is not None and event is not self._waiting_on:
            return  # stale wakeup from an abandoned wait (after interrupt)
        self._waiting_on = None
        if event is not None and not event.ok:
            exc = event.exception
            assert exc is not None
            self._step(lambda: self._gen.throw(EventFailed(exc)))
        else:
            value = event.value if event is not None and self._started else None
            self._started = True
            self._step(lambda: self._gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must capture process crash
            orphan = not self._callbacks  # nobody waiting on this process
            self.fail(exc)
            if orphan:
                self.engine._process_crashed(self, exc)
            return
        if not isinstance(target, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event"
            )
            orphan = not self._callbacks
            self.fail(exc)
            if orphan:
                self.engine._process_crashed(self, exc)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is the event that won.  A failure of any constituent fails the
    AnyOf.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="any_of")
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed(ev)
        else:
            assert ev.exception is not None
            self.fail(ev.exception)


class AllOf(Event):
    """Triggers when all of ``events`` have triggered.

    The value is the list of events, in the order supplied.  The first
    failure fails the AllOf immediately.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            engine.schedule(0.0, lambda _=None: self.succeed([]), None)
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            assert ev.exception is not None
            self.fail(ev.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(list(self._events))
