"""Event tracing.

The paper's figures 3, 6 and 7 are *traces*: the sequence of actions taken by
``ufs_getpage``/``ufs_putpage`` as pages are faulted in order.  We reproduce
them by recording tagged trace records and rendering them as the same style
of per-page box diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: a time, a tag, and free-form fields."""

    time: float
    tag: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def describe(self) -> str:
        """Human-readable one-liner."""
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:10.3f}ms] {self.tag} {inner}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by tag.

    Tracing is off by default (``enabled=False``) so the hot paths pay only
    one attribute check.
    """

    def __init__(self, engine: "Engine", enabled: bool = False):
        self.engine = engine
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._tag_filter: set[str] | None = None

    def limit_to(self, tags: Iterable[str] | None) -> None:
        """Record only the given tags (None = record everything)."""
        self._tag_filter = set(tags) if tags is not None else None

    def emit(self, tag: str, **fields: Any) -> None:
        """Record an occurrence at the current simulated time."""
        if not self.enabled:
            return
        if self._tag_filter is not None and tag not in self._tag_filter:
            return
        self.records.append(TraceRecord(self.engine.now, tag, fields))

    def clear(self) -> None:
        """Drop all recorded history."""
        self.records.clear()

    def select(self, *tags: str) -> list[TraceRecord]:
        """All records whose tag is one of ``tags``, in time order."""
        wanted = set(tags)
        return [r for r in self.records if r.tag in wanted]

    def tags(self) -> list[str]:
        """Tags in first-appearance order."""
        seen: list[str] = []
        for rec in self.records:
            if rec.tag not in seen:
                seen.append(rec.tag)
        return seen

    def render(self, predicate: Callable[[TraceRecord], bool] | None = None) -> str:
        """Render matching records one per line (for logs and debugging)."""
        records = self.records if predicate is None else [r for r in self.records if predicate(r)]
        return "\n".join(rec.describe() for rec in records)
