"""Event tracing and hierarchical spans.

The paper's figures 3, 6 and 7 are *traces*: the sequence of actions taken by
``ufs_getpage``/``ufs_putpage`` as pages are faulted in order.  We reproduce
them by recording tagged trace records and rendering them as the same style
of per-page box diagram.

On top of the flat records the tracer also collects **spans**: timed,
hierarchical intervals that let a completed I/O request show its whole
lifecycle as one tree — syscall → getpage → cluster decision → queue wait →
rotational service.  Spans carry a parent id, begin/end simulated times, and
free-form fields; :meth:`Tracer.export_jsonl` writes both records and spans
as JSON lines for offline analysis.

Hot-path discipline: the keyword dict for ``emit``/``span_begin`` is built
by the *caller* before the tracer can decline it, so instrumentation on hot
paths must guard on :attr:`Tracer.enabled` first::

    if trace.enabled:
        trace.emit("getpage_sync", offset=offset, bytes=nbytes)

With the guard (and the early returns inside the tracer itself) a disabled
tracer costs one attribute check per site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

#: Schema tag written as the first line of every JSONL export, so offline
#: consumers (``python -m repro trace --trace-jsonl``) can refuse traces
#: from an incompatible writer instead of mis-parsing them.
TRACE_SCHEMA = "repro-trace/v1"


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: a time, a tag, and free-form fields."""

    time: float
    tag: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def describe(self) -> str:
        """Human-readable one-liner."""
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:10.3f}ms] {self.tag} {inner}"


@dataclass
class Span:
    """One timed interval in a request's lifecycle.

    ``parent_id`` links spans into a tree (None = a root, e.g. one syscall);
    ``end`` stays None while the span is open.  All times are simulated
    seconds.
    """

    id: int
    name: str
    parent_id: int | None
    begin: float
    end: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.begin

    def describe(self) -> str:
        """Human-readable one-liner (no tree context)."""
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        dur = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"{self.name} [{self.begin * 1e3:.3f}ms +{dur}] {inner}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` and :class:`Span` objects.

    Tracing is off by default (``enabled=False``) so the hot paths pay only
    one attribute check; see the module docstring for the call-site guard
    that keeps even the kwargs construction off the disabled path.
    """

    def __init__(self, engine: "Engine", enabled: bool = False):
        self.engine = engine
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self.spans: list[Span] = []
        self._tag_filter: set[str] | None = None
        # Span ids are *per tracer* (they used to come from a module-global
        # counter, which leaked across System instances in one process and
        # made same-seed exports differ byte-for-byte until renumbered).
        self._span_ids = count(1)
        # Lazy tree indexes, maintained incrementally on every append so
        # span_children/span_tree/render_spans never rescan self.spans
        # (which was O(n) per node, O(n^2) per tree walk).
        self._by_id: dict[int, Span] = {}
        self._children: dict[int, list[Span]] = {}
        self._roots: list[Span] = []

    def _add_span(self, span: Span) -> Span:
        """Append one span and keep the tree indexes current (O(1))."""
        self.spans.append(span)
        self._by_id[span.id] = span
        if span.parent_id is None:
            self._roots.append(span)
        else:
            self._children.setdefault(span.parent_id, []).append(span)
        return span

    def span_by_id(self, span_id: int) -> Span:
        """The span with ``span_id`` (KeyError if absent)."""
        return self._by_id[span_id]

    def limit_to(self, tags: Iterable[str] | None) -> None:
        """Record only the given tags (None = record everything).

        The filter applies to flat records only; spans are structural and
        always recorded while enabled.
        """
        self._tag_filter = set(tags) if tags is not None else None

    def emit(self, tag: str, **fields: Any) -> None:
        """Record an occurrence at the current simulated time.

        The ``enabled`` check is the very first statement so a disabled
        tracer returns before touching the filter or building the record —
        but note the kwargs dict itself is built by the caller; guard hot
        call sites on :attr:`enabled` (module docstring).
        """
        if not self.enabled:
            return
        if self._tag_filter is not None and tag not in self._tag_filter:
            return
        self.records.append(TraceRecord(self.engine.now, tag, fields))

    # -- spans ---------------------------------------------------------------
    def span_begin(self, name: str, parent: "Span | int | None" = None,
                   **fields: Any) -> Span | None:
        """Open a span at the current simulated time.

        Returns None when tracing is disabled; :meth:`span_end` accepts the
        None so callers need no branches of their own.
        """
        if not self.enabled:
            return None
        parent_id = parent.id if isinstance(parent, Span) else parent
        span = Span(next(self._span_ids), name, parent_id, self.engine.now,
                    fields=fields)
        return self._add_span(span)

    def span_end(self, span: Span | None, **fields: Any) -> None:
        """Close a span at the current simulated time (no-op on None)."""
        if span is None:
            return
        span.end = self.engine.now
        if fields:
            span.fields.update(fields)

    def record_span(self, name: str, begin: float, end: float,
                    parent: "Span | int | None" = None,
                    **fields: Any) -> Span | None:
        """Record an already-completed interval (e.g. from buf timestamps)."""
        if not self.enabled:
            return None
        parent_id = parent.id if isinstance(parent, Span) else parent
        span = Span(next(self._span_ids), name, parent_id, begin, end, fields)
        return self._add_span(span)

    def span_roots(self) -> list[Span]:
        """Spans with no parent, in recording (= begin) order."""
        return list(self._roots)

    def span_children(self, parent: "Span | int") -> list[Span]:
        """Direct children of ``parent``, in recording order.

        Served from the incrementally-maintained parent index: O(children),
        never a rescan of every span.
        """
        pid = parent.id if isinstance(parent, Span) else parent
        return list(self._children.get(pid, ()))

    def children_index(self) -> dict[int, list[Span]]:
        """The live parent-id -> children index (read-only by convention).

        Analyzers (:mod:`repro.obs.critpath`, :mod:`repro.obs.export`) walk
        thousands of trees; handing them the index directly avoids even the
        per-call list copies of :meth:`span_children`.
        """
        return self._children

    def span_tree(self, root: "Span | int") -> list[tuple[int, Span]]:
        """The subtree under ``root`` as (depth, span) pairs, preorder."""
        root_span = root if isinstance(root, Span) else self._by_id[root]
        out: list[tuple[int, Span]] = []
        children = self._children
        stack: list[tuple[int, Span]] = [(0, root_span)]
        while stack:
            depth, span = stack.pop()
            out.append((depth, span))
            stack.extend(
                (depth + 1, child)
                for child in reversed(children.get(span.id, ()))
            )
        return out

    def open_spans(self) -> list[Span]:
        """Spans never closed (end is None), in recording order."""
        return [s for s in self.spans if s.end is None]

    def trace_end(self) -> float:
        """The last instant the trace knows about.

        The maximum over record times and span begin/end times — the clamp
        target analyzers use for spans that were still open when tracing
        stopped.
        """
        end = 0.0
        for rec in self.records:
            end = max(end, rec.time)
        for span in self.spans:
            end = max(end, span.begin if span.end is None else span.end)
        return end

    def render_spans(self, root: "Span | int | None" = None) -> str:
        """An indented text tree of spans (one root, or all roots)."""
        roots = [root] if root is not None else self.span_roots()
        lines: list[str] = []
        for r in roots:
            for depth, span in self.span_tree(r):
                lines.append("  " * depth + span.describe())
        return "\n".join(lines)

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One meta line, then records, then spans, as JSON lines.

        The meta line carries the schema tag (:data:`TRACE_SCHEMA`) and the
        record/span counts; :func:`load_jsonl` checks it on the way back in.
        With per-tracer span ids (and per-registry request / per-engine buf
        ids) two same-seed runs export byte-identically, with no
        renumbering step.
        """
        lines = [json.dumps({"type": "meta", "schema": TRACE_SCHEMA,
                             "records": len(self.records),
                             "spans": len(self.spans)})]
        lines.extend(
            json.dumps({"type": "record", "time": r.time, "tag": r.tag,
                        **r.fields}, default=str)
            for r in self.records
        )
        lines.extend(
            json.dumps({"type": "span", "id": s.id, "parent": s.parent_id,
                        "name": s.name, "begin": s.begin, "end": s.end,
                        **s.fields}, default=str)
            for s in sorted(self.spans, key=lambda s: (s.begin, s.id))
        )
        return "\n".join(lines)

    def export_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the line count."""
        text = self.to_jsonl()
        with open(path, "w") as f:
            if text:
                f.write(text + "\n")
        return 0 if not text else text.count("\n") + 1

    def clear(self) -> None:
        """Drop all recorded history (records and spans); ids restart."""
        self.records.clear()
        self.spans.clear()
        self._by_id.clear()
        self._children.clear()
        self._roots.clear()
        self._span_ids = count(1)

    def select(self, *tags: str) -> list[TraceRecord]:
        """All records whose tag is one of ``tags``, in time order."""
        wanted = set(tags)
        return [r for r in self.records if r.tag in wanted]

    def tags(self) -> list[str]:
        """Tags in first-appearance order."""
        seen: list[str] = []
        for rec in self.records:
            if rec.tag not in seen:
                seen.append(rec.tag)
        return seen

    def render(self, predicate: Callable[[TraceRecord], bool] | None = None) -> str:
        """Render matching records one per line (for logs and debugging)."""
        records = self.records if predicate is None else [r for r in self.records if predicate(r)]
        return "\n".join(rec.describe() for rec in records)


def load_jsonl(text: str) -> Tracer:
    """Rebuild a :class:`Tracer` from a :meth:`Tracer.to_jsonl` document.

    The returned tracer is an offline artifact: it carries a private idle
    engine, is disabled (appending to an ingested trace would corrupt the
    counts), and exists so every analyzer — critical path, exporters,
    attribution — works identically on a live tracer and a file.

    Raises ``ValueError`` on a missing/incompatible schema line or a span
    whose parent never appears.
    """
    from repro.sim.engine import Engine

    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace document")
    meta = json.loads(lines[0])
    if meta.get("type") != "meta" or meta.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a {TRACE_SCHEMA} trace (first line: {lines[0][:80]!r})")
    tracer = Tracer(Engine(), enabled=False)
    max_id = 0
    for line in lines[1:]:
        obj = json.loads(line)
        kind = obj.pop("type", None)
        if kind == "record":
            tracer.records.append(
                TraceRecord(obj.pop("time"), obj.pop("tag"), obj))
        elif kind == "span":
            span = Span(obj.pop("id"), obj.pop("name"), obj.pop("parent"),
                        obj.pop("begin"), obj.pop("end"), obj)
            max_id = max(max_id, span.id)
            tracer._add_span(span)
        else:
            raise ValueError(f"unknown trace line type {kind!r}")
    for span in tracer.spans:
        if span.parent_id is not None and span.parent_id not in tracer._by_id:
            raise ValueError(f"span {span.id} has unknown parent "
                             f"{span.parent_id}")
    tracer._span_ids = count(max_id + 1)
    return tracer
