"""The CI perf gate: fail the build when the bench regresses.

A committed BENCH baseline pins the expected numbers; :func:`check_gate`
compares a freshly generated document against it and reports violations
when:

* a **headline rate** (FSR or FSW by default — the paper's sequential
  read/write story) drops more than ``rate_tolerance`` (10%) below the
  baseline, or
* a **layer attribution share** grows more than ``share_tolerance`` (10
  absolute points) — a phase got slower *somewhere specific*, e.g. queue
  wait ballooning after a scheduler change, even if the headline rate
  survived.

Faster-than-baseline is never a violation (re-baseline to bank the win),
and mismatched run parameters are — a gate comparing a 4 MB run against a
16 MB baseline would be meaningless, so it fails loudly instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.bench import BENCH_SCHEMA, _shares

#: The paper's headline phases: sequential read and sequential write.
HEADLINE_PHASES = ("FSR", "FSW")


@dataclass
class GateResult:
    """Outcome of one gate evaluation: verdict + every violation found."""

    ok: bool
    checks: int
    violations: "list[str]" = field(default_factory=list)

    def render(self) -> str:
        if self.ok:
            return f"perf gate OK ({self.checks} checks)"
        body = "\n".join(f"  - {v}" for v in self.violations)
        return (f"perf gate FAILED ({len(self.violations)} violation(s) "
                f"over {self.checks} checks):\n{body}")


def check_gate(current: dict, baseline: dict,
               rate_tolerance: float = 0.10,
               share_tolerance: float = 0.10,
               phases: "tuple[str, ...]" = HEADLINE_PHASES) -> GateResult:
    """Compare a fresh BENCH document against the committed baseline."""
    violations: list[str] = []
    checks = 0

    checks += 1
    if current.get("schema") != BENCH_SCHEMA:
        violations.append(f"current document schema "
                          f"{current.get('schema')!r} != {BENCH_SCHEMA!r}")
    checks += 1
    if baseline.get("schema") != BENCH_SCHEMA:
        violations.append(f"baseline schema {baseline.get('schema')!r} != "
                          f"{BENCH_SCHEMA!r} (regenerate the baseline)")
    checks += 1
    if current.get("run") != baseline.get("run"):
        violations.append(
            f"run parameters differ from baseline: {current.get('run')!r} "
            f"!= {baseline.get('run')!r} — regenerate the baseline with "
            "the same parameters")
        return GateResult(ok=False, checks=checks, violations=violations)

    results = current.get("results", {})
    for name, base in sorted(baseline.get("results", {}).items()):
        cur = results.get(name)
        checks += 1
        if cur is None:
            violations.append(f"config {name}: in baseline but missing "
                              "from current run")
            continue
        base_rates = base.get("rates", {})
        cur_rates = cur.get("rates", {})
        for phase in phases:
            expected = base_rates.get(phase)
            if expected is None or expected <= 0:
                continue
            checks += 1
            got = cur_rates.get(phase, 0.0)
            floor = expected * (1.0 - rate_tolerance)
            if got < floor:
                drop = (expected - got) / expected * 100.0
                violations.append(
                    f"{name}/{phase}: {got:.1f} KB/s is {drop:.1f}% below "
                    f"baseline {expected:.1f} KB/s "
                    f"(tolerance {rate_tolerance * 100:.0f}%)")
        base_shares = _shares(base)
        cur_shares = _shares(cur)
        for category in sorted(base_shares.keys() | cur_shares.keys()):
            checks += 1
            growth = (cur_shares.get(category, 0.0)
                      - base_shares.get(category, 0.0))
            if growth > share_tolerance:
                violations.append(
                    f"{name}/attribution/{category}: time share grew "
                    f"{growth * 100:.1f} points over baseline "
                    f"({base_shares.get(category, 0.0) * 100:.1f}% -> "
                    f"{cur_shares.get(category, 0.0) * 100:.1f}%)")
    return GateResult(ok=not violations, checks=checks,
                      violations=violations)


__all__ = ["GateResult", "HEADLINE_PHASES", "check_gate"]
