"""``python -m repro bench``: one deterministic BENCH.json per run.

The orchestrator runs IObench over a set of figure 9 configurations with
the tracer on for every phase, then folds three views into a single
schema-versioned document:

* headline **rates** (KB/s per phase) and CPU utilization — the numbers
  the paper argues about;
* the full **metrics snapshot** from the system's
  :class:`~repro.obs.metrics.MetricsRegistry` — every layer's counters in
  one namespaced dict;
* the **layer attribution** table from :mod:`repro.obs.attrib` — where
  simulated time went, per request kind.

Everything in the document derives from the simulation, which is seeded
and deterministic; nothing reads the wall clock.  Two runs with the same
parameters therefore serialize byte-identically, and the document carries
a content hash (``id``) over its canonical JSON form so "same bench" is
one string comparison.  The CI perf gate (:mod:`repro.obs.gate`) diffs a
fresh document against a committed baseline.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

BENCH_SCHEMA = "repro-bench/v1"


def canonical_json(document: dict) -> str:
    """The one serialization used for files, ids, and byte comparisons."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def document_id(document: dict) -> str:
    """Content hash over the canonical form, ``id`` field excluded."""
    body = {k: v for k, v in document.items() if k != "id"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def run_bench(configs: str = "AC", file_mb: int = 4, random_ops: int = 512,
              seed: int = 1991, scheduler: "str | None" = None,
              layout: "str | None" = None,
              out: "Callable[[str], None] | None" = None) -> dict:
    """Run the bench matrix; return the BENCH document (JSON-ready dict).

    ``out`` receives human progress lines (one per configuration); pass
    None to run silently.  The returned document is deterministic for a
    given parameter set — see the module docstring.
    """
    import dataclasses

    from repro.bench.iobench import IObench
    from repro.kernel.config import SystemConfig
    from repro.obs.attrib import attribution_table
    from repro.units import MB

    say = out if out is not None else (lambda _msg: None)
    names = [name.upper() for name in configs]
    results: dict[str, Any] = {}
    for name in names:
        config = SystemConfig.by_name(name)
        overrides: dict[str, Any] = {}
        if scheduler:
            overrides["scheduler"] = scheduler
        if layout:
            overrides["layout"] = layout
        if overrides:
            config = dataclasses.replace(config, **overrides)
        bench = IObench(config, file_size=file_mb * MB,
                        random_ops=random_ops, seed=seed, trace_phase="*")
        result = bench.run()
        system = bench.system
        assert system is not None
        results[name] = {
            "rates": dict(result.rates),
            "cpu_util": dict(result.cpu_util),
            "layout": system.volume.describe(),
            "scheduler": system.driver.scheduler_name,
            "metrics": system.metrics.snapshot(),
            "attribution": attribution_table(system.tracer),
        }
        say(f"bench: config {name} ({system.volume.describe()}): "
            + "  ".join(f"{phase}={rate:.0f}"
                        for phase, rate in sorted(result.rates.items()))
            + " KB/s")
    document = {
        "schema": BENCH_SCHEMA,
        "run": {
            "configs": "".join(names),
            "file_mb": file_mb,
            "random_ops": random_ops,
            "seed": seed,
            "scheduler": scheduler,
            "layout": layout,
        },
        "results": results,
    }
    document["id"] = document_id(document)
    return document


def _shares(result: dict) -> "dict[str, float]":
    """A config's attribution collapsed to per-category time shares."""
    totals: dict[str, float] = {}
    grand = 0.0
    for row in result.get("attribution", {}).values():
        grand += row.get("total", 0.0)
        for category, spent in row.get("categories", {}).items():
            totals[category] = totals.get(category, 0.0) + spent
    if grand <= 0.0:
        return {}
    return {category: spent / grand for category, spent in totals.items()}


def diff_documents(a: dict, b: dict) -> "list[str]":
    """Human-readable differences between two BENCH documents.

    Returns one line per delta (rates as percentages, attribution as
    absolute share points); an empty list means the documents agree on
    every compared quantity.  Used by ``python -m repro bench --diff`` and
    as the explanation layer under the perf gate.
    """
    lines: list[str] = []
    if a.get("schema") != b.get("schema"):
        lines.append(f"schema: {a.get('schema')!r} != {b.get('schema')!r}")
    if a.get("run") != b.get("run"):
        lines.append(f"run parameters differ: {a.get('run')!r} "
                     f"!= {b.get('run')!r}")
    results_a = a.get("results", {})
    results_b = b.get("results", {})
    for name in sorted(results_a.keys() | results_b.keys()):
        ra, rb = results_a.get(name), results_b.get(name)
        if ra is None or rb is None:
            lines.append(f"{name}: present in only one document")
            continue
        rates_a, rates_b = ra.get("rates", {}), rb.get("rates", {})
        for phase in sorted(rates_a.keys() | rates_b.keys()):
            va, vb = rates_a.get(phase), rates_b.get(phase)
            if va is None or vb is None:
                lines.append(f"{name}/{phase}: rate present in only one "
                             "document")
            elif va != vb:
                pct = (vb - va) / va * 100.0 if va else float("inf")
                lines.append(f"{name}/{phase}: {va:.1f} -> {vb:.1f} KB/s "
                             f"({pct:+.1f}%)")
        shares_a, shares_b = _shares(ra), _shares(rb)
        for category in sorted(shares_a.keys() | shares_b.keys()):
            sa = shares_a.get(category, 0.0)
            sb = shares_b.get(category, 0.0)
            if abs(sb - sa) >= 0.005:  # below half a point is noise
                lines.append(f"{name}/attribution/{category}: "
                             f"{sa * 100:.1f}% -> {sb * 100:.1f}% of time")
    return lines


__all__ = ["BENCH_SCHEMA", "canonical_json", "diff_documents",
           "document_id", "run_bench"]
