"""Simulated-time telemetry series over the metrics registry.

The metrics registry (:mod:`repro.obs.metrics`) renders the machine at
*one* instant; a performance question is usually about a *curve* —
does write throughput oscillate with the throttle, does the scrub
daemon's pass dent foreground queue depth, when does free memory hit
the low-water mark?  :class:`TelemetryRecorder` answers those by
sampling selected registry namespaces on a fixed **simulated-time**
cadence (an :meth:`~repro.sim.engine.Engine.every` daemon timer), so
the series is as deterministic as the run itself and costs zero
simulated time — sampling reads live counters; it never schedules
work, charges CPU, or perturbs the workload.

Per instrument shape, each sample records:

* **counter sets** (``StatSet``) — the windowed *delta* of every key
  since the previous sample (a throughput series, not a climbing total);
* **histograms** — the windowed delta's ``count`` and ``mean`` (via
  ``Histogram.snapshot()/since()``);
* **gauges** (``TimeWeighted``) — the instantaneous ``value`` plus the
  window's exact time-weighted ``avg`` (via ``TimeWeighted.area()``),
  because a queue that is busy *between* sample instants would
  otherwise alias to zero;
* **callables** — numeric leaves of the returned dict (one level of
  nesting flattened as ``outer.inner``), sampled instantaneously.

Samples land in plain row dicts; :meth:`~TelemetryRecorder.series`
reads one ``(namespace, key)`` out as an aligned list, and
:meth:`~TelemetryRecorder.to_json` exports the whole run for plotting
or assertions (write-throttle oscillation, scrub interference windows).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.stats import Histogram, StatSet, TimeWeighted

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.system import System

#: Schema tag on the exported document.
SERIES_SCHEMA = "repro-series/v1"


def _flatten_callable(rendered: dict) -> dict[str, float]:
    flat: dict[str, float] = {}
    for key, value in rendered.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[key] = float(value)
        elif isinstance(value, dict):
            for inner, leaf in value.items():
                if isinstance(leaf, bool):
                    continue
                if isinstance(leaf, (int, float)):
                    flat[f"{key}.{inner}"] = float(leaf)
    return flat


class TelemetryRecorder:
    """Samples metrics namespaces on a fixed simulated cadence.

    ``namespaces=None`` means every namespace registered at
    :meth:`start` time.  The timer is a daemon: it never keeps the
    engine alive, so workloads still run to idle and the series simply
    covers the instants where simulated work existed.
    """

    def __init__(self, system: "System", interval: float = 0.010,
                 namespaces: "list[str] | None" = None):
        if interval <= 0:
            raise ValueError("sampling interval must be > 0")
        self.system = system
        self.interval = interval
        self._wanted = list(namespaces) if namespaces is not None else None
        self.times: list[float] = []
        #: One row per tick: ``{namespace: {key: value}}``.
        self.rows: list[dict[str, dict[str, float]]] = []
        self.samples_taken = 0
        self.running = False
        self._timer = None
        self._sources: dict[str, Any] = {}
        # Previous-window state, per namespace, keyed by shape.
        self._prev: dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "TelemetryRecorder":
        """Resolve namespaces, take the time-zero baseline, start the
        timer; returns self for chaining."""
        if self.running:
            return self
        registry = self.system.metrics
        names = (self._wanted if self._wanted is not None
                 else registry.namespaces())
        for name in names:
            self._sources[name] = registry.get(name)  # KeyError = typo
        for name, source in self._sources.items():
            self._prev[name] = self._baseline(source)
        self.running = True
        self._timer = self.system.engine.every(self.interval, self._sample)
        return self

    def stop(self) -> None:
        """Stop sampling; the collected series stays readable."""
        if not self.running:
            return
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- sampling ----------------------------------------------------------
    @staticmethod
    def _baseline(source: Any) -> Any:
        if isinstance(source, StatSet):
            return dict(source.as_dict())
        if isinstance(source, Histogram):
            return source.snapshot()
        if isinstance(source, TimeWeighted):
            return source.area()
        return None  # callables sample instantaneously

    def _sample(self) -> None:
        engine = self.system.engine
        row: dict[str, dict[str, float]] = {}
        for name, source in self._sources.items():
            if isinstance(source, StatSet):
                current = source.as_dict()
                prev = self._prev[name]
                row[name] = {
                    key: value - prev.get(key, 0.0)
                    for key, value in current.items()
                    if value - prev.get(key, 0.0)
                }
                self._prev[name] = dict(current)
            elif isinstance(source, Histogram):
                delta = source.since(self._prev[name])
                row[name] = {"count": float(delta.count),
                             "mean": delta.mean}
                self._prev[name] = source.snapshot()
            elif isinstance(source, TimeWeighted):
                area = source.area()
                row[name] = {
                    "value": source.value,
                    "avg": (area - self._prev[name]) / self.interval,
                }
                self._prev[name] = area
            else:
                row[name] = _flatten_callable(source())
        self.times.append(engine.now)
        self.rows.append(row)
        self.samples_taken += 1

    # -- reading -----------------------------------------------------------
    def series(self, namespace: str, key: str) -> "list[tuple[float, float]]":
        """One ``(time, value)`` series; ticks without the key read 0.0."""
        return [
            (t, row.get(namespace, {}).get(key, 0.0))
            for t, row in zip(self.times, self.rows)
        ]

    def keys(self, namespace: str) -> "list[str]":
        """Every key that ever appeared under ``namespace``, sorted."""
        seen: set[str] = set()
        for row in self.rows:
            seen.update(row.get(namespace, ()))
        return sorted(seen)

    def to_json(self) -> dict:
        """The whole run as one JSON-ready document."""
        return {
            "schema": SERIES_SCHEMA,
            "interval": self.interval,
            "namespaces": sorted(self._sources),
            "samples": self.samples_taken,
            "times": list(self.times),
            "rows": self.rows,
        }

    def render(self, namespace: str, key: str, width: int = 60) -> str:
        """One series as a crude text sparkline (for bench output)."""
        series = self.series(namespace, key)
        if not series:
            return f"{namespace}.{key}: (no samples)"
        values = [v for _, v in series]
        lo, hi = min(values), max(values)
        span = hi - lo
        glyphs = " .:-=+*#%@"
        if len(values) > width:
            # Downsample deterministically: mean per even-sized chunk.
            chunks = [values[i * len(values) // width:
                             (i + 1) * len(values) // width] or [0.0]
                      for i in range(width)]
            values = [sum(c) / len(c) for c in chunks]
        body = "".join(
            glyphs[int((v - lo) / span * (len(glyphs) - 1))] if span > 0
            else glyphs[0]
            for v in values)
        return (f"{namespace}.{key} [{lo:g}..{hi:g}] "
                f"n={len(series)} |{body}|")


__all__ = ["SERIES_SCHEMA", "TelemetryRecorder"]
