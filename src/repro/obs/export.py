"""Exporters: span trees as Chrome trace events and folded flame stacks.

Two standard offline formats for the tracer's span trees:

* :func:`chrome_trace` — the Chrome trace-event JSON format (load the
  file in ``chrome://tracing`` or https://ui.perfetto.dev).  The whole
  machine is one process (``pid=1``, named ``system``); each traced
  request is its own thread track (``tid`` = request id), so one
  request's syscall → getpage → disk_io lifecycle reads as one swim
  lane.  Member-tagged I/O (``disk_io[mN]`` spans from a concat/stripe/
  mirror volume) moves — subtree and all — onto a per-member
  ``disk[mN]`` track, which is where overlapped member service is
  actually visible.  Spans with no request id (the NFS server's
  ``nfs_server`` spans, ad-hoc roots) get one named track per root
  name.

* :func:`folded_stacks` — collapsed "folded" stack lines
  (``read;getpage;disk_io 123``) consumable by standard flamegraph
  tooling (flamegraph.pl, inferno, speedscope).  Each line's value is
  critical-path time in integer microseconds, so the flame widths sum
  to the traced requests' total latency.

Both exporters are **byte-deterministic** for same-seed runs: span /
request / buf ids come from per-world counters, events are explicitly
sorted, and JSON is serialized with sorted keys.  Open spans never skew
either export: open roots are excluded and counted, open descendants
are clamped to their root's end and counted (see
:mod:`repro.obs.critpath`), and the counts ride along in the output
metadata.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.critpath import CritReport, critical_paths, span_category

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Span, Tracer

#: Schema tag carried in the Chrome document's ``otherData``.
CHROME_SCHEMA = "repro-chrome/v1"

#: Track ids for non-request tracks start here, far above any realistic
#: request id, so request tids and named-track tids never collide.
_NAMED_TRACK_BASE = 1_000_000

#: The one simulated machine is one Chrome "process".
_PID = 1


def _usec(seconds: float) -> float:
    """Simulated seconds -> trace-event microseconds (ns-stable round)."""
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: "Tracer") -> dict:
    """The trace as a Chrome trace-event document (JSON-ready dict).

    Every closed span becomes one complete (``ph="X"``) event carrying
    its span/parent ids and fields in ``args`` and its attribution
    category in ``cat``.  See the module docstring for the track layout
    and the open-span policy.
    """
    children = tracer.children_index()
    events: list[tuple] = []
    named_tracks: dict[str, int] = {}
    open_roots = 0
    open_spans = 0

    def track_for(name: str) -> int:
        tid = named_tracks.get(name)
        if tid is None:
            tid = named_tracks[name] = _NAMED_TRACK_BASE + len(named_tracks)
        return tid

    def emit(span: "Span", tid: int, clamp: float) -> None:
        nonlocal open_spans
        end = span.end
        if end is None:
            open_spans += 1
            end = clamp
        begin = min(span.begin, end)
        args = {"span": span.id, "parent": span.parent_id}
        for key, value in span.fields.items():
            args[key] = (value if isinstance(value, (int, float, str, bool))
                         or value is None else str(value))
        events.append((_usec(begin), tid, span.id, {
            "name": span.name,
            "cat": span_category(span.name),
            "ph": "X",
            "ts": _usec(begin),
            "dur": _usec(end - begin),
            "pid": _PID,
            "tid": tid,
            "args": args,
        }))

    def walk(span: "Span", tid: int, clamp: float) -> None:
        # A member-tagged I/O span drags its whole subtree onto the
        # member's track; everything else inherits the parent's.
        if span.name.startswith("disk_io[") and span.name.endswith("]"):
            tid = track_for("disk" + span.name[len("disk_io"):])
        emit(span, tid, clamp)
        for child in children.get(span.id, ()):
            walk(child, tid, clamp)

    for root in tracer.span_roots():
        if root.end is None:
            open_roots += 1
            continue
        request = root.fields.get("request")
        tid = int(request) if request is not None else track_for(root.name)
        walk(root, tid, root.end)

    meta_events = [{
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "args": {"name": "system"},
    }]
    meta_events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in sorted(named_tracks.items(), key=lambda kv: kv[1])
    )
    events.sort(key=lambda item: (item[0], item[1], item[2]))
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_SCHEMA,
            "open_roots": open_roots,
            "open_spans": open_spans,
        },
        "traceEvents": meta_events + [event for _, _, _, event in events],
    }


def chrome_trace_json(tracer: "Tracer") -> str:
    """:func:`chrome_trace` in its one canonical byte form."""
    return json.dumps(chrome_trace(tracer), indent=1, sort_keys=True) + "\n"


def folded_stacks(tracer: "Tracer",
                  report: "CritReport | None" = None) -> str:
    """The trace as collapsed flamegraph lines, sorted, one per stack.

    Each completed request contributes its critical-path segments; a
    segment's stack is the ``;``-joined span-name chain from the request
    root down to the blamed span, and its value is the segment time in
    integer microseconds.  Pass a precomputed ``report`` to reuse the
    critical paths (the CLI does); its ``open_roots``/``open_spans``
    counts are the exporter's data-quality warnings.
    """
    if report is None:
        report = critical_paths(tracer)
    totals: dict[str, float] = {}
    for path in report.paths:
        names: dict[int, str] = {}

        def stack_of(span: "Span") -> str:
            cached = names.get(span.id)
            if cached is None:
                if span.parent_id is None or span is path.root:
                    cached = span.name
                else:
                    parent = tracer.span_by_id(span.parent_id)
                    cached = stack_of(parent) + ";" + span.name
                names[span.id] = cached
            return cached

        for seg in path.segments:
            stack = stack_of(seg.span)
            totals[stack] = totals.get(stack, 0.0) + seg.duration
    lines = []
    for stack in sorted(totals):
        usec = round(totals[stack] * 1e6)
        if usec > 0:
            lines.append(f"{stack} {usec}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["CHROME_SCHEMA", "chrome_trace", "chrome_trace_json",
           "folded_stacks"]
