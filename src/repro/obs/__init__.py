"""Performance observability: one registry, one attribution table, one gate.

The paper's whole argument is quantitative — figure-by-figure transfer
rates and CPU-per-byte — so the reproduction's perf story has to be held
to the same standard.  This package gives it three legs:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` attached to every
  :class:`~repro.kernel.system.System`, consolidating the per-layer
  counters, gauges, and histograms (driver retries, page-cache hits,
  throttle waits, write-cache destages, checksum errors, scrub progress,
  per-volume-member I/O) behind one namespaced ``snapshot()`` /
  ``to_json()`` view;
* :mod:`repro.obs.attrib` — per-layer *time attribution* computed from the
  request span trees: for any traced run, a table of where simulated time
  went (cpu / queue_wait / rotation_seek / transfer / throttle_wait /
  rpc) per request kind;
* :mod:`repro.obs.bench` + :mod:`repro.obs.gate` — the ``python -m repro
  bench`` orchestrator emitting one schema-versioned ``BENCH.json``
  (byte-identical across same-seed runs), a differ for two such
  documents, and the CI perf gate that fails on headline-rate regressions
  or attribution blowups against a committed baseline;
* :mod:`repro.obs.critpath` — per-request critical-path extraction: for
  each completed request, the chain of child spans that determined its
  latency, with per-layer blame totals (conserving the request's elapsed
  time exactly) and a "slowest requests, dominated by X" report;
* :mod:`repro.obs.export` — byte-deterministic exporters from span trees
  to Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and
  collapsed folded-stack lines for standard flamegraph tools;
* :mod:`repro.obs.timeseries` — a :class:`TelemetryRecorder` sampling
  registry namespaces on a fixed simulated-time cadence (windowed deltas
  for counters/histograms, window-averaged gauges), so throughput and
  queue-depth *curves* over a run can be exported and asserted on.
"""

from repro.obs.attrib import (
    ATTRIBUTION_CATEGORIES, attribution_table, render_attribution,
)
from repro.obs.bench import BENCH_SCHEMA, diff_documents, run_bench
from repro.obs.critpath import (
    CritReport, critical_path, critical_paths, verify_against_attribution,
    verify_conservation,
)
from repro.obs.export import chrome_trace, chrome_trace_json, folded_stacks
from repro.obs.gate import GateResult, check_gate
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryRecorder

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "BENCH_SCHEMA",
    "CritReport",
    "GateResult",
    "MetricsRegistry",
    "TelemetryRecorder",
    "attribution_table",
    "check_gate",
    "chrome_trace",
    "chrome_trace_json",
    "critical_path",
    "critical_paths",
    "diff_documents",
    "folded_stacks",
    "render_attribution",
    "run_bench",
    "verify_against_attribution",
    "verify_conservation",
]
