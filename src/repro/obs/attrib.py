"""Per-layer time attribution from request span trees.

The span trees recorded by :class:`~repro.sim.request.IORequest` already
say *what happened* to each request; this module turns them into the
paper-style question of *where the time went*.  For every traced request
root it classifies each instant of the request's lifetime into exactly
one category:

==============  ======================================================
category        meaning
==============  ======================================================
cpu             no wait span active — the request was computing
                (syscall path, page copies, checksum work)
queue_wait      buf sat in the driver queue behind other I/O
rotation_seek   disk arm seeking / head switching / rotational latency
transfer        bytes moving over the media or the bus
throttle_wait   blocked on the write throttle or waiting for memory
rpc             network round-trip (NFS client waiting on the wire)
other_io        inside disk service but not attributable to seek or
                transfer (controller overhead, track-buffer housekeeping)
==============  ======================================================

Classification is a sweep over each root's descendant spans.  Wait spans
(queue_wait, rotation_seek, transfer, throttle_wait, mem_wait, rpc) take
priority over the generic ``service`` interval, which in turn beats the
bare root; whatever no span covers is cpu.  Nested or overlapping waits
never double-count: each instant lands in exactly one bucket, so the
categories of one request sum to its elapsed time.

The output — :func:`attribution_table` — is a per-request-kind table of
seconds per category, ready for ``BENCH.json`` and the perf gate's
"attribution blowup" check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Span, Tracer

#: Category order — also the deterministic tiebreak when two spans of the
#: same priority overlap (earlier wins).
ATTRIBUTION_CATEGORIES = (
    "cpu",
    "queue_wait",
    "rotation_seek",
    "transfer",
    "throttle_wait",
    "rpc",
    "other_io",
)

#: span name -> (category, priority).  Higher priority wins the sweep;
#: ``service`` is the priority-0 fallback that catches disk time not
#: explained by the synthesized rotation_seek/transfer children.
_SPAN_CATEGORY: dict[str, tuple[str, int]] = {
    "queue_wait": ("queue_wait", 1),
    "rotation_seek": ("rotation_seek", 1),
    "transfer": ("transfer", 1),
    "throttle_wait": ("throttle_wait", 1),
    "mem_wait": ("throttle_wait", 1),
    "rpc": ("rpc", 1),
    "service": ("other_io", 0),
}

_CATEGORY_RANK = {name: i for i, name in enumerate(ATTRIBUTION_CATEGORIES)}


def _children_index(spans: Iterable["Span"]) -> dict[int, list["Span"]]:
    """parent id -> children, built once (Tracer.span_children is O(n))."""
    index: dict[int, list["Span"]] = {}
    for span in spans:
        if span.parent_id is not None:
            index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(root: "Span",
                 children: dict[int, list["Span"]]) -> list["Span"]:
    out: list["Span"] = []
    stack = [root]
    while stack:
        span = stack.pop()
        kids = children.get(span.id)
        if kids:
            out.extend(kids)
            stack.extend(kids)
    return out


def _attribute_root(root: "Span",
                    children: dict[int, list["Span"]]) -> dict[str, float]:
    """Split one closed root span's duration across the categories."""
    lo, hi = root.begin, root.end
    assert hi is not None
    buckets = dict.fromkeys(ATTRIBUTION_CATEGORIES, 0.0)
    if hi <= lo:
        return buckets

    # Categorized intervals, clamped into the root's lifetime.
    intervals: list[tuple[float, float, int, str]] = []
    for span in _descendants(root, children):
        mapped = _SPAN_CATEGORY.get(span.name)
        if mapped is None or span.end is None:
            continue
        begin = max(span.begin, lo)
        end = min(span.end, hi)
        if end > begin:
            intervals.append((begin, end, mapped[1], mapped[0]))

    if not intervals:
        buckets["cpu"] = hi - lo
        return buckets

    # Sweep the boundary points; each segment goes to the highest-priority
    # active interval (category order breaks priority ties), else cpu.
    points = sorted({lo, hi, *(b for b, _, _, _ in intervals),
                     *(e for _, e, _, _ in intervals)})
    for seg_lo, seg_hi in zip(points, points[1:]):
        winner = "cpu"
        winner_key = (-1, 0)
        for begin, end, priority, category in intervals:
            if begin <= seg_lo and end >= seg_hi:
                key = (priority, -_CATEGORY_RANK[category])
                if key > winner_key:
                    winner_key = key
                    winner = category
        buckets[winner] += seg_hi - seg_lo
    return buckets


def attribution_table(tracer: "Tracer") -> dict[str, dict[str, object]]:
    """Where simulated time went, per request kind.

    Returns ``{kind: {"requests": n, "total": seconds,
    "categories": {category: seconds}}}``, kinds sorted.  Only closed
    root spans count; an open root (request still in flight at snapshot
    time) is skipped rather than guessed at.
    """
    children = _children_index(tracer.spans)
    table: dict[str, dict[str, object]] = {}
    for root in tracer.spans:
        if root.parent_id is not None or root.end is None:
            continue
        row = table.get(root.name)
        if row is None:
            row = table[root.name] = {
                "requests": 0,
                "total": 0.0,
                "categories": dict.fromkeys(ATTRIBUTION_CATEGORIES, 0.0),
            }
        split = _attribute_root(root, children)
        row["requests"] += 1
        row["total"] += root.end - root.begin
        cats = row["categories"]
        for category, seconds in split.items():
            cats[category] += seconds
    return {kind: table[kind] for kind in sorted(table)}


def render_attribution(table: dict[str, dict[str, object]]) -> str:
    """The attribution table as fixed-width text (one row per kind)."""
    if not table:
        return "(no traced requests)"
    header = (f"{'kind':<12} {'reqs':>6} {'total_ms':>10}  "
              + "  ".join(f"{c:>13}" for c in ATTRIBUTION_CATEGORIES))
    lines = [header, "-" * len(header)]
    for kind, row in table.items():
        total = row["total"]
        cells = []
        for category in ATTRIBUTION_CATEGORIES:
            seconds = row["categories"][category]
            share = (seconds / total * 100.0) if total > 0 else 0.0
            cells.append(f"{seconds * 1e3:8.2f}({share:3.0f}%)")
        lines.append(f"{kind:<12} {row['requests']:>6} {total * 1e3:>10.2f}  "
                     + "  ".join(f"{c:>13}" for c in cells))
    return "\n".join(lines)


__all__ = ["ATTRIBUTION_CATEGORIES", "attribution_table",
           "render_attribution"]
