"""The unified metrics registry: every layer reports into one namespace.

Before this module each layer kept its own bag of numbers — the driver's
retry counters, the page cache's hit/miss counts, the write cache's
destage tally, the scrubber's progress, each volume member's I/O — and
every benchmark that wanted a cross-layer view had to know where each bag
lived.  :class:`MetricsRegistry` is the single place they all report
into: one instance per :class:`~repro.kernel.system.System`, holding
*references* to the live instruments under stable dotted namespaces, so
``snapshot()`` renders the whole machine as one plain dict and
``to_json()`` exports it.

Three instrument shapes are understood (all from :mod:`repro.sim.stats`,
so the hot paths keep the exact objects they already had):

* **counter sets** — :class:`StatSet`: monotonic named counts;
* **gauges** — :class:`TimeWeighted`: piecewise-constant quantities with
  time-weighted averages (queue depth, free memory);
* **histograms** — :class:`Histogram`: latency/size distributions,
  rendered as their ``summary()``.

A namespace may also hold a zero-argument callable returning a plain
dict — the escape hatch for dynamic collections (per-request-kind
latency histograms, per-member breakdowns) that cannot be registered as
one object up front.

Registration happens at construction/attach time (``System.__init__``,
``mount_fs``, ``start_scrub``), never on the hot path; reading a metric
costs exactly what it cost before this module existed.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.stats import Histogram, StatSet, TimeWeighted

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

#: The shapes a namespace can hold.
MetricSource = "StatSet | Histogram | TimeWeighted | Callable[[], dict]"


class MetricsRegistry:
    """Namespaced view over every layer's live instruments.

    One registry per machine (``system.metrics``).  Namespaces are dotted
    paths (``disk.m0.driver``, ``vm.pagecache``, ``ufs.throttle``); the
    snapshot is a flat ``{namespace: {key: value}}`` dict, sorted by
    namespace, so two same-seed runs serialize byte-identically.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._sources: dict[str, Any] = {}

    # -- registration ------------------------------------------------------
    def register(self, namespace: str, source: Any,
                 replace: bool = False) -> Any:
        """Attach a live instrument (or dict-returning callable) at
        ``namespace``.  Duplicate namespaces are a wiring bug unless
        ``replace=True`` (daemons restarted over the same machine)."""
        if not namespace:
            raise ValueError("namespace must be non-empty")
        if namespace in self._sources and not replace:
            raise ValueError(f"metrics namespace {namespace!r} already "
                             "registered")
        if not (isinstance(source, (StatSet, Histogram, TimeWeighted))
                or callable(source)):
            raise TypeError(
                f"unsupported metrics source {type(source).__name__} "
                f"for namespace {namespace!r}")
        self._sources[namespace] = source
        return source

    # -- instrument factories ---------------------------------------------
    def counters(self, namespace: str) -> StatSet:
        """Create (or fetch) a :class:`StatSet` owned by the registry."""
        existing = self._sources.get(namespace)
        if isinstance(existing, StatSet):
            return existing
        return self.register(namespace, StatSet(namespace))

    def gauge(self, namespace: str, initial: float = 0.0) -> TimeWeighted:
        """Create (or fetch) a time-weighted gauge at ``namespace``."""
        existing = self._sources.get(namespace)
        if isinstance(existing, TimeWeighted):
            return existing
        return self.register(namespace, TimeWeighted(self.engine, initial))

    def histogram(self, namespace: str) -> Histogram:
        """Create (or fetch) a histogram at ``namespace``."""
        existing = self._sources.get(namespace)
        if isinstance(existing, Histogram):
            return existing
        return self.register(namespace, Histogram(namespace))

    # -- reading -----------------------------------------------------------
    def namespaces(self) -> list[str]:
        """All registered namespaces, sorted."""
        return sorted(self._sources)

    def __contains__(self, namespace: str) -> bool:
        return namespace in self._sources

    def get(self, namespace: str) -> Any:
        """The live source object at ``namespace`` (KeyError if absent)."""
        return self._sources[namespace]

    @staticmethod
    def _render(source: Any) -> dict[str, Any]:
        if isinstance(source, StatSet):
            return source.as_dict()
        if isinstance(source, Histogram):
            return source.summary()
        if isinstance(source, TimeWeighted):
            return {
                "value": source.value,
                "avg": source.average(),
                "min": source.minimum,
                "max": source.maximum,
            }
        rendered = source()
        if not isinstance(rendered, dict):
            raise TypeError("callable metrics source must return a dict")
        return rendered

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """The whole machine as one plain dict, sorted by namespace.

        Every value derives from simulated time and seeded workloads, so
        two same-seed runs snapshot byte-identically at their quiesce
        points — the property the bench determinism check pins.
        """
        return {ns: self._render(self._sources[ns])
                for ns in sorted(self._sources)}

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`snapshot` as a JSON document (sorted keys)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True,
                          default=str)


__all__ = ["MetricsRegistry"]
